#!/usr/bin/env bash
# Runs the counter benches with machine-readable output and merges
# their JSONL records into one BENCH_counter.json array.
#
#   tools/run_bench.sh [--quick] [build-dir] [output-json]
#
# Defaults: build/ and BENCH_counter.json in the repo root.  --quick
# shrinks workloads and skips the microbenchmark matrix / slowest
# ablations (what CI's bench-smoke job runs).  Each record carries
# op, impl (canonical spec), threads, ns_per_op, and stripes.
set -u
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

quick=""
if [ "${1:-}" = "--quick" ]; then
  quick="--quick"
  shift
fi
build_dir="${1:-$repo_root/build}"
out_file="${2:-$repo_root/BENCH_counter.json}"

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found — build first:" >&2
  echo "  cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT

status=0
for b in bench_counter_ops bench_counter_impl bench_shared; do
  bin="$build_dir/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "missing bench binary: $bin" >&2
    status=1
    continue
  fi
  echo "### $b ${quick:+(quick)}"
  if ! "$bin" $quick --json "$jsonl"; then
    echo "FAILED: $bin" >&2
    status=1
  fi
done

# JSONL -> one JSON array (comma-join all lines but the last).
{
  echo "["
  sed '$!s/$/,/' "$jsonl"
  echo "]"
} > "$out_file"

echo "wrote $out_file ($(wc -l < "$jsonl") records)"
exit $status
