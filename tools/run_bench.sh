#!/usr/bin/env bash
# Runs the counter benches with machine-readable output and merges
# their JSONL records into one BENCH_counter.json array.
#
#   tools/run_bench.sh [--quick|--tables] [build-dir] [output]
#
# Defaults: build/ and BENCH_counter.json in the repo root.  --quick
# shrinks workloads and skips the microbenchmark matrix / slowest
# ablations (what CI's bench-smoke job runs).  Each record carries
# op, impl (canonical spec), threads, ns_per_op, and stripes.
#
# --tables switches to the human-readable collector (the old
# tools/run_benches.sh): it runs EVERY bench_* binary with default
# (table) output and concatenates the tables into one text file
# (default bench_output.txt) instead of emitting JSON.
set -u
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

quick=""
tables=""
case "${1:-}" in
  --quick)  quick="--quick"; shift ;;
  --tables) tables=1; shift ;;
esac
build_dir="${1:-$repo_root/build}"

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found — build first:" >&2
  echo "  cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

if [ -n "$tables" ]; then
  out_file="${2:-$repo_root/bench_output.txt}"
  : > "$out_file"
  status=0
  for b in "$build_dir"/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "### $(basename "$b")" | tee -a "$out_file"
    if ! "$b" >> "$out_file" 2>&1; then
      echo "FAILED: $b" | tee -a "$out_file"
      status=1
    fi
    echo >> "$out_file"
  done
  echo "wrote $out_file"
  exit $status
fi

out_file="${2:-$repo_root/BENCH_counter.json}"
jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT

status=0
for b in bench_counter_ops bench_counter_impl bench_shared bench_server; do
  bin="$build_dir/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "missing bench binary: $bin" >&2
    status=1
    continue
  fi
  echo "### $b ${quick:+(quick)}"
  if ! "$bin" $quick --json "$jsonl"; then
    echo "FAILED: $bin" >&2
    status=1
  fi
done

# JSONL -> one JSON array (comma-join all lines but the last).
{
  echo "["
  sed '$!s/$/,/' "$jsonl"
  echo "]"
} > "$out_file"

echo "wrote $out_file ($(wc -l < "$jsonl") records)"
exit $status
