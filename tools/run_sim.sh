#!/usr/bin/env bash
# Builds and drives the deterministic-schedule simulation harness
# (src/monotonic/sim/, docs/simulation.md).
#
#   tools/run_sim.sh                          # corpus replay + fresh sweep
#   tools/run_sim.sh --seeds 10000            # wider fresh sweep
#   tools/run_sim.sh --scenario NAME --seed S # replay one failure
#   tools/run_sim.sh --list
#
# The first form is what CI's `sim` job runs: the committed regression
# corpus (tests/sim_seeds/, via ctest) followed by a fresh-seed sweep
# of every scenario through the sim_explorer CLI.  Any failure prints
# a `tools/run_sim.sh --scenario ... --seed ...` replay command; run
# it, fix the engine, then append the seed to the scenario's corpus
# file so it replays forever.
set -eu
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

build_dir="$repo_root/build-sim"
seeds=2000
budget=300
passthrough=()
replay_mode=0
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir)
      [ $# -ge 2 ] || { echo "error: --build-dir requires a path" >&2; exit 2; }
      build_dir="$2"; shift 2 ;;
    --seeds)
      [ $# -ge 2 ] || { echo "error: --seeds requires a count" >&2; exit 2; }
      seeds="$2"; shift 2 ;;
    --budget-seconds)
      [ $# -ge 2 ] || { echo "error: --budget-seconds requires a count" >&2; exit 2; }
      budget="$2"; shift 2 ;;
    --seed|--trace)
      # Single-run replay: skip the corpus, forward everything.
      replay_mode=1
      passthrough+=("$1" "$2"); shift 2 ;;
    --list)
      replay_mode=1
      passthrough+=("$1"); shift ;;
    *)
      passthrough+=("$1"); shift ;;
  esac
done

cmake -B "$build_dir" -G Ninja \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMONOTONIC_BUILD_BENCH=OFF \
  -DMONOTONIC_BUILD_EXAMPLES=OFF \
  "$repo_root" >/dev/null
cmake --build "$build_dir" --target sim_explorer sim_regression_test \
  sim_explorer_test >/dev/null

if [ "$replay_mode" = 1 ]; then
  exec "$build_dir/tests/sim_explorer" ${passthrough[@]+"${passthrough[@]}"}
fi

echo "== regression corpus (tests/sim_seeds/) =="
ctest --test-dir "$build_dir" -R 'sim_regression_test' \
  --output-on-failure --timeout 300

echo "== fresh sweep: $seeds seeds/scenario, ${budget}s budget =="
"$build_dir/tests/sim_explorer" --seeds "$seeds" --budget-seconds "$budget" \
  ${passthrough[@]+"${passthrough[@]}"}
