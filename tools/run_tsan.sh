#!/usr/bin/env bash
# Builds and runs the test suite under ThreadSanitizer (CP.9: validate
# concurrent code with tools).
#
#   tools/run_tsan.sh [build-dir] [-R <regex>]
#
# -R narrows the ctest run to tests matching <regex> (passed through),
# e.g. `tools/run_tsan.sh -R 'counter.*'` for a quick counter-only run.
set -eu
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

build_dir=""
ctest_args=()
while [ $# -gt 0 ]; do
  case "$1" in
    -R)
      [ $# -ge 2 ] || { echo "error: -R requires a regex" >&2; exit 2; }
      ctest_args+=(-R "$2")
      shift 2
      ;;
    *)
      [ -z "$build_dir" ] || { echo "error: unexpected argument: $1" >&2; exit 2; }
      build_dir="$1"
      shift
      ;;
  esac
done
build_dir="${build_dir:-$repo_root/build-tsan}"

cmake -B "$build_dir" -G Ninja \
  -DMONOTONIC_SANITIZE_THREAD=ON \
  -DMONOTONIC_BUILD_BENCH=OFF \
  -DMONOTONIC_BUILD_EXAMPLES=OFF \
  "$repo_root"
cmake --build "$build_dir"
# --timeout: a hung test (stranded waiter) fails fast instead of
# stalling the whole sanitizer run.
ctest --test-dir "$build_dir" --output-on-failure --timeout 120 \
  ${ctest_args[@]+"${ctest_args[@]}"}
