#!/usr/bin/env bash
# Builds and runs the test suite under ThreadSanitizer (CP.9: validate
# concurrent code with tools).
#
#   tools/run_tsan.sh [build-dir]
set -eu
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

cmake -B "$build_dir" -G Ninja \
  -DMONOTONIC_SANITIZE_THREAD=ON \
  -DMONOTONIC_BUILD_BENCH=OFF \
  -DMONOTONIC_BUILD_EXAMPLES=OFF \
  "$repo_root"
cmake --build "$build_dir"
ctest --test-dir "$build_dir" --output-on-failure
