#!/usr/bin/env bash
# Runs every experiment bench and collects their tables into one file.
#
#   tools/run_benches.sh [build-dir] [output-file]
#
# Defaults: build/ and bench_output.txt in the repo root.
set -u
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_file="${2:-$repo_root/bench_output.txt}"

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found — build first:" >&2
  echo "  cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

: > "$out_file"
status=0
for b in "$build_dir"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a "$out_file"
  if ! "$b" >> "$out_file" 2>&1; then
    echo "FAILED: $b" | tee -a "$out_file"
    status=1
  fi
  echo >> "$out_file"
done
echo "wrote $out_file"
exit $status
