// counter_figure2_test.cpp — step-by-step reproduction of the paper's
// Figure 2 (experiment E6), for EVERY implementation.
//
// Figure 2 traces the internal structure of a counter c through:
//   (a) construction                 — value 0, empty list
//   (b) c.Check(5) by thread T1      — node {level 5, count 1}
//   (c) c.Check(9) by thread T2      — nodes {5,1} -> {9,1}
//   (d) c.Check(5) by thread T3      — nodes {5,2} -> {9,1}
//   (e) c.Increment(7) by T0         — value 7, node {5,2} released
//                                      (condition set), {9,1} remains
//   (f) T1 resumes execution         — node {5,...} count drops to 1
//   (g) T3 resumes execution         — node {5} deallocated; {9,1} left
//
// Since the policy-based refactor the ordered wait list lives in the
// shared engine, so the scenario is a typed suite: every policy (and
// decorated composition) must draw exactly the figure's (value,
// [(level, count)]) shape.  Released-but-not-yet-exited waiters
// ((e)-(f)) are scheduler-timed, so the test asserts the stable states
// before (d)->(e) and after (g).  Node/notify accounting that depends
// on the single-list layout stays Counter-only at the bottom.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <type_traits>

#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_decorator.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/sync/latch.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

template <typename C>
void wait_until_waiters(C& c, std::size_t total_waiters) {
  for (;;) {
    std::size_t total = 0;
    for (const auto& wl : c.debug_snapshot().wait_levels) {
      total += wl.waiters;
    }
    if (total == total_waiters) return;
    std::this_thread::sleep_for(1ms);
  }
}

template <typename C>
class Figure2 : public ::testing::Test {
 protected:
  C counter_;
};

using Figure2Types =
    ::testing::Types<Counter, SingleCvCounter, FutexCounter, SpinCounter,
                     HybridCounter, Traced<Counter>, Batching<HybridCounter>,
                     Broadcasting<Counter>>;

struct Figure2TypeNames {
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, Counter>) return "list";
    if constexpr (std::is_same_v<T, SingleCvCounter>) return "single_cv";
    if constexpr (std::is_same_v<T, FutexCounter>) return "futex";
    if constexpr (std::is_same_v<T, SpinCounter>) return "spin";
    if constexpr (std::is_same_v<T, HybridCounter>) return "hybrid";
    if constexpr (std::is_same_v<T, Traced<Counter>>) return "list_traced";
    if constexpr (std::is_same_v<T, Batching<HybridCounter>>)
      return "hybrid_batching";
    if constexpr (std::is_same_v<T, Broadcasting<Counter>>)
      return "list_broadcast";
  }
};

TYPED_TEST_SUITE(Figure2, Figure2Types, Figure2TypeNames);

TYPED_TEST(Figure2, FullScenario) {
  auto& c = this->counter_;

  // (a) construction.
  {
    auto snap = c.debug_snapshot();
    EXPECT_EQ(snap.value, 0u);
    EXPECT_TRUE(snap.wait_levels.empty());
  }

  // (b) c.Check(5) by thread T1.
  std::jthread t1([&c] { c.Check(5); });
  wait_until_waiters(c, 1);
  {
    auto snap = c.debug_snapshot();
    EXPECT_EQ(snap.value, 0u);
    ASSERT_EQ(snap.wait_levels.size(), 1u);
    EXPECT_EQ(snap.wait_levels[0].level, 5u);
    EXPECT_EQ(snap.wait_levels[0].waiters, 1u);
  }

  // (c) c.Check(9) by thread T2: appended after the level-5 node.
  std::jthread t2([&c] { c.Check(9); });
  wait_until_waiters(c, 2);
  {
    auto snap = c.debug_snapshot();
    ASSERT_EQ(snap.wait_levels.size(), 2u);
    EXPECT_EQ(snap.wait_levels[0].level, 5u);
    EXPECT_EQ(snap.wait_levels[0].waiters, 1u);
    EXPECT_EQ(snap.wait_levels[1].level, 9u);
    EXPECT_EQ(snap.wait_levels[1].waiters, 1u);
  }

  // (d) c.Check(5) by thread T3: joins the existing level-5 node — no
  // third level entry appears.
  std::jthread t3([&c] { c.Check(5); });
  wait_until_waiters(c, 3);
  {
    auto snap = c.debug_snapshot();
    ASSERT_EQ(snap.wait_levels.size(), 2u);
    EXPECT_EQ(snap.wait_levels[0].level, 5u);
    EXPECT_EQ(snap.wait_levels[0].waiters, 2u);
    EXPECT_EQ(snap.wait_levels[1].level, 9u);
    EXPECT_EQ(snap.wait_levels[1].waiters, 1u);
  }

  // (e) c.Increment(7) by T0: value 7 >= 5, so the level-5 node is
  // unlinked and its signal set; level-9 node remains.
  c.Increment(7);

  // (f)+(g) T1 and T3 resume and the level-5 node is deallocated by
  // whichever of them leaves last.
  t1.join();
  t3.join();
  {
    auto snap = c.debug_snapshot();
    EXPECT_EQ(snap.value, 7u);
    ASSERT_EQ(snap.wait_levels.size(), 1u);
    EXPECT_EQ(snap.wait_levels[0].level, 9u);
    EXPECT_EQ(snap.wait_levels[0].waiters, 1u);
  }

  // Epilogue: release T2 so the counter can be destroyed.
  c.Increment(2);
  t2.join();
  EXPECT_TRUE(c.debug_snapshot().wait_levels.empty());
  EXPECT_EQ(c.stats().live_nodes, 0u);
}

TYPED_TEST(Figure2, WakeupAccountingMatchesScenario) {
  auto& c = this->counter_;
  std::jthread t1([&c] { c.Check(5); });
  std::jthread t2([&c] { c.Check(9); });
  std::jthread t3([&c] { c.Check(5); });
  wait_until_waiters(c, 3);

  c.Increment(7);
  t1.join();
  t3.join();
  EXPECT_EQ(c.stats().wakeups, 2u)
      << "Increment(7) wakes the two level-5 waiters";

  c.Increment(2);
  t2.join();
  auto s = c.stats();
  EXPECT_EQ(s.wakeups, 3u);
  EXPECT_EQ(s.suspensions, 3u);
}

// ---------------------------------------------------------------------
// Node and notify accounting that depends on the single-list layout
// (Broadcasting spreads waiters over shards; SingleCv broadcasts per
// Increment), asserted on the §7 reference only.

TEST(Figure2Accounting, NodesAndNotifiesOnReferenceCounter) {
  Counter c;
  std::jthread t1([&c] { c.Check(5); });
  std::jthread t2([&c] { c.Check(9); });
  std::jthread t3([&c] { c.Check(5); });
  wait_until_waiters(c, 3);
  EXPECT_EQ(c.stats().max_live_nodes, 2u)
      << "three waiters must occupy exactly two nodes";

  c.Increment(7);
  t1.join();
  t3.join();
  auto s = c.stats();
  EXPECT_EQ(s.notifies, 1u) << "one notify_all covers both (one per node)";
  EXPECT_EQ(c.stats().live_nodes, 1u);

  c.Increment(2);
  t2.join();
  s = c.stats();
  EXPECT_EQ(s.notifies, 2u);
  EXPECT_EQ(s.nodes_allocated, 2u);
  EXPECT_EQ(s.live_nodes, 0u);
}

}  // namespace
}  // namespace monotonic
