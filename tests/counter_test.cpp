// counter_test.cpp — semantics of all counter implementations.
//
// The typed conformance suite runs the §2 contract — plus the timed,
// async and introspection extensions every implementation gained from
// the policy-based engine — against all five BasicCounter
// instantiations AND decorated compositions (Traced<Counter>,
// Batching<HybridCounter>, Broadcasting<Counter>), so a decorator
// cannot silently weaken counter semantics.  Counter-only tests cover
// the §7 structure (nodes, pooling, snapshots) and the AnyCounter
// factory surface.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/counter_decorator.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/core/wait_policy.hpp"
#include "monotonic/sim/fault_env.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

// Every policy instantiated over the fault-injecting environment
// (fault_env.hpp).  With no FaultScope armed the injections are inert,
// so these must pass the whole conformance suite bit-for-bit — the
// fault seam itself cannot change semantics.
using FaultListCounter =
    BasicCounter<BlockingWaitT<monotonic::sim::RealFaultEnv>>;
using FaultSingleCvCounter =
    BasicCounter<SingleCvWaitT<monotonic::sim::RealFaultEnv>>;
using FaultFutexCounter =
    BasicCounter<FutexWaitT<monotonic::sim::RealFaultEnv>>;
using FaultSpinCounter = BasicCounter<SpinWaitT<monotonic::sim::RealFaultEnv>>;
using FaultHybridCounter =
    BasicCounter<HybridWaitT<monotonic::sim::RealFaultEnv>>;

// Every implementation and every decorator models the full concept
// ladder since the refactor.
static_assert(CounterLike<Counter>);
static_assert(CounterLike<SingleCvCounter>);
static_assert(CounterLike<FutexCounter>);
static_assert(CounterLike<SpinCounter>);
static_assert(CounterLike<HybridCounter>);
static_assert(TimedCounterLike<Counter>);
static_assert(TimedCounterLike<SingleCvCounter>);
static_assert(TimedCounterLike<FutexCounter>);
static_assert(TimedCounterLike<SpinCounter>);
static_assert(TimedCounterLike<HybridCounter>);
static_assert(IntrospectableCounter<Counter>);
static_assert(IntrospectableCounter<SingleCvCounter>);
static_assert(IntrospectableCounter<FutexCounter>);
static_assert(IntrospectableCounter<SpinCounter>);
static_assert(IntrospectableCounter<HybridCounter>);
static_assert(TimedCounterLike<Traced<Counter>>);
static_assert(TimedCounterLike<Batching<HybridCounter>>);
static_assert(TimedCounterLike<Broadcasting<Counter>>);
static_assert(IntrospectableCounter<Traced<Counter>>);
static_assert(IntrospectableCounter<Batching<HybridCounter>>);
static_assert(IntrospectableCounter<Broadcasting<Counter>>);
static_assert(TimedCounterLike<ShardedCounter>);
static_assert(TimedCounterLike<ShardedHybridCounter>);
static_assert(IntrospectableCounter<ShardedCounter>);
static_assert(IntrospectableCounter<ShardedHybridCounter>);
static_assert(IntrospectableCounter<Traced<ShardedHybridCounter>>);
static_assert(PredicateCounterLike<Counter>);
static_assert(PredicateCounterLike<SingleCvCounter>);
static_assert(PredicateCounterLike<FutexCounter>);
static_assert(PredicateCounterLike<SpinCounter>);
static_assert(PredicateCounterLike<HybridCounter>);
static_assert(PredicateCounterLike<ShardedHybridCounter>);
static_assert(PredicateCounterLike<Traced<Counter>>);
static_assert(PredicateCounterLike<Batching<HybridCounter>>);
static_assert(PredicateCounterLike<Broadcasting<Counter>>);
static_assert(PredicateCounterLike<AnyHandle>);

// Wrappers that default-construct over the heap wait plane
// (waitplane=heap — wait_index.hpp), so the typed suite runs the same
// bodies over both WaitIndex representations.  Shard count 3 is
// deliberately not a power of two and smaller than the level spread,
// so cross-shard min-scans and level%S collisions both happen; the
// pooled variant composes preallocation with the index to cover the
// pool/recycle interaction.
inline WaitListOptions heap_plane_options(std::size_t shards,
                                          std::size_t preallocated = 0) {
  WaitListOptions o;
  o.wait_plane = WaitPlaneKind::kHeap;
  o.wait_shards = shards;
  o.preallocated_nodes = preallocated;
  return o;
}

template <typename C>
struct HeapPlane : C {
  HeapPlane() : C(heap_plane_options(3)) {}
};

template <typename C>
struct PooledHeapPlane : C {
  PooledHeapPlane() : C(heap_plane_options(2, 8)) {}
};

template <typename C>
class CounterSemantics : public ::testing::Test {
 protected:
  C counter_;
};

// Five bare implementations + three decorated compositions + the
// striped value plane (bare, over a locking policy, and under a
// decorator) + the heap wait plane (bare, pooled, and composed with
// the striped value plane).  Batching is instantiated with batch=1
// (its default), which must behave as an exact pass-through.
using AllCounterTypes =
    ::testing::Types<Counter, SingleCvCounter, FutexCounter, SpinCounter,
                     HybridCounter, Traced<Counter>, Batching<HybridCounter>,
                     Broadcasting<Counter>, ShardedCounter,
                     ShardedHybridCounter, Traced<ShardedHybridCounter>,
                     FaultListCounter, FaultSingleCvCounter,
                     FaultFutexCounter, FaultSpinCounter, FaultHybridCounter,
                     HeapPlane<Counter>, HeapPlane<HybridCounter>,
                     HeapPlane<ShardedHybridCounter>,
                     PooledHeapPlane<HybridCounter>>;

struct CounterTypeNames {
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, Counter>) return "list";
    if constexpr (std::is_same_v<T, SingleCvCounter>) return "single_cv";
    if constexpr (std::is_same_v<T, FutexCounter>) return "futex";
    if constexpr (std::is_same_v<T, SpinCounter>) return "spin";
    if constexpr (std::is_same_v<T, HybridCounter>) return "hybrid";
    if constexpr (std::is_same_v<T, Traced<Counter>>) return "list_traced";
    if constexpr (std::is_same_v<T, Batching<HybridCounter>>)
      return "hybrid_batching";
    if constexpr (std::is_same_v<T, Broadcasting<Counter>>)
      return "list_broadcast";
    if constexpr (std::is_same_v<T, ShardedCounter>) return "sharded_list";
    if constexpr (std::is_same_v<T, ShardedHybridCounter>)
      return "sharded_hybrid";
    if constexpr (std::is_same_v<T, Traced<ShardedHybridCounter>>)
      return "sharded_hybrid_traced";
    if constexpr (std::is_same_v<T, FaultListCounter>) return "fault_list";
    if constexpr (std::is_same_v<T, FaultSingleCvCounter>)
      return "fault_single_cv";
    if constexpr (std::is_same_v<T, FaultFutexCounter>) return "fault_futex";
    if constexpr (std::is_same_v<T, FaultSpinCounter>) return "fault_spin";
    if constexpr (std::is_same_v<T, FaultHybridCounter>) return "fault_hybrid";
    if constexpr (std::is_same_v<T, HeapPlane<Counter>>) return "heap_list";
    if constexpr (std::is_same_v<T, HeapPlane<HybridCounter>>)
      return "heap_hybrid";
    if constexpr (std::is_same_v<T, HeapPlane<ShardedHybridCounter>>)
      return "heap_sharded_hybrid";
    if constexpr (std::is_same_v<T, PooledHeapPlane<HybridCounter>>)
      return "heap_pooled_hybrid";
  }
};

TYPED_TEST_SUITE(CounterSemantics, AllCounterTypes, CounterTypeNames);

TYPED_TEST(CounterSemantics, CheckZeroNeverBlocks) {
  // §2: initial value is zero, so Check(0) is satisfied immediately.
  this->counter_.Check(0);
}

TYPED_TEST(CounterSemantics, CheckAtOrBelowValueReturnsImmediately) {
  this->counter_.Increment(5);
  this->counter_.Check(5);
  this->counter_.Check(3);
  this->counter_.Check(0);
}

TYPED_TEST(CounterSemantics, IncrementAccumulates) {
  this->counter_.Increment(2);
  this->counter_.Increment(3);
  this->counter_.Check(5);  // would hang if increments did not accumulate
}

TYPED_TEST(CounterSemantics, IncrementZeroIsNoOp) {
  this->counter_.Increment(0);
  this->counter_.Increment(0);
  this->counter_.Increment(1);
  this->counter_.Check(1);
}

TYPED_TEST(CounterSemantics, CheckBlocksUntilLevelReached) {
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    this->counter_.Check(3);
    passed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load());
  this->counter_.Increment(2);
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load()) << "woke below the requested level";
  this->counter_.Increment(1);
  waiter.join();
  EXPECT_TRUE(passed.load());
}

TYPED_TEST(CounterSemantics, PredicateCheckSatisfiedReturnsImmediately) {
  this->counter_.Increment(5);
  this->counter_.Check([](counter_value_t v) { return v >= 5; });
  this->counter_.Check([](counter_value_t v) { return v >= 2; });
  this->counter_.Check([](counter_value_t) { return true; });
}

TYPED_TEST(CounterSemantics, PredicateCheckBlocksUntilThresholdReached) {
  // The engine reduces the monotone predicate to the exact threshold 3
  // and parks through the ordinary wait plane — a wake at 2 would mean
  // the reduction (or the rearm) is wrong.
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    this->counter_.Check([](counter_value_t v) { return v >= 3; });
    passed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load());
  this->counter_.Increment(2);
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load()) << "woke below the reduced threshold";
  this->counter_.Increment(1);
  waiter.join();
  EXPECT_TRUE(passed.load());
}

TYPED_TEST(CounterSemantics, PredicateCheckCancellable) {
  // v >= 100 is never reached, so the stop request is the only way out
  // and the return value must say "cancelled".
  std::stop_source ss;
  std::atomic<bool> returned{true};
  std::jthread waiter([&] {
    returned.store(this->counter_.Check(
        [](counter_value_t v) { return v >= 100; }, ss.get_token()));
  });
  std::this_thread::sleep_for(20ms);
  ss.request_stop();
  waiter.join();
  EXPECT_FALSE(returned.load());
}

TYPED_TEST(CounterSemantics, SingleIncrementWakesAllLevelsReached) {
  // One big Increment must release waiters at several distinct levels.
  std::atomic<int> released{0};
  std::vector<std::jthread> waiters;
  for (counter_value_t level : {1u, 2u, 3u, 4u}) {
    waiters.emplace_back([&, level] {
      this->counter_.Check(level);
      released.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(released.load(), 0);
  this->counter_.Increment(10);
  waiters.clear();  // join
  EXPECT_EQ(released.load(), 4);
}

TYPED_TEST(CounterSemantics, ManyWaitersAtSameLevelAllWake) {
  constexpr int kWaiters = 8;
  std::atomic<int> released{0};
  {
    std::vector<std::jthread> waiters;
    for (int i = 0; i < kWaiters; ++i) {
      waiters.emplace_back([&] {
        this->counter_.Check(7);
        released.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(20ms);
    this->counter_.Increment(7);
  }
  EXPECT_EQ(released.load(), kWaiters);
}

TYPED_TEST(CounterSemantics, WriterReaderHandoff) {
  // §5.3's per-item broadcast, single reader: data written before the
  // Increment must be visible after the corresponding Check.
  constexpr int kItems = 200;
  std::vector<int> data(kItems, -1);
  multithreaded_block(
      [&] {  // writer
        for (int i = 0; i < kItems; ++i) {
          data[i] = i * i;
          this->counter_.Increment(1);
        }
      },
      [&] {  // reader
        for (int i = 0; i < kItems; ++i) {
          this->counter_.Check(static_cast<counter_value_t>(i) + 1);
          EXPECT_EQ(data[i], i * i);
        }
      });
}

TYPED_TEST(CounterSemantics, ConcurrentIncrementsAllCounted) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  multithreaded_for(0, kThreads, 1, [&](int) {
    for (int i = 0; i < kPerThread; ++i) this->counter_.Increment(1);
  });
  this->counter_.Check(kThreads * kPerThread);  // hangs if any were lost
}

TYPED_TEST(CounterSemantics, LargeAmountsAndLevels) {
  const counter_value_t big = counter_value_t{1} << 40;
  this->counter_.Increment(big);
  this->counter_.Check(big);
  this->counter_.Increment(big);
  this->counter_.Check(2 * big);
}

TYPED_TEST(CounterSemantics, OverflowIsRejected) {
  // Lock-free policies spend one bit on the attention flag, so their
  // range is half of the locked implementations'; every type (including
  // decorators) advertises its bound as kMaxValue.
  const counter_value_t max = TypeParam::kMaxValue;
  this->counter_.Increment(max);
  EXPECT_THROW(this->counter_.Increment(1), std::invalid_argument);
}

TYPED_TEST(CounterSemantics, StatsCountOperations) {
  this->counter_.Increment(1);
  this->counter_.Increment(1);
  this->counter_.Check(1);
  auto s = this->counter_.stats();
  EXPECT_EQ(s.increments, 2u);
  EXPECT_EQ(s.checks, 1u);
  EXPECT_EQ(s.fast_checks, 1u);
  EXPECT_EQ(s.suspensions, 0u);
}

TYPED_TEST(CounterSemantics, SnapshotTracksValueAndWaiters) {
  // Every implementation exposes the Figure 2 structural shape now that
  // the wait list lives in the shared engine.
  auto snap = this->counter_.debug_snapshot();
  EXPECT_EQ(snap.value, 0u);
  EXPECT_TRUE(snap.wait_levels.empty());

  this->counter_.Increment(3);
  std::jthread waiter([&] { this->counter_.Check(10); });
  for (;;) {
    snap = this->counter_.debug_snapshot();
    std::size_t waiting = 0;
    for (const auto& wl : snap.wait_levels) waiting += wl.waiters;
    if (waiting == 1) break;
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(snap.wait_levels.size(), 1u);
  EXPECT_EQ(snap.value, 3u);
  EXPECT_EQ(snap.wait_levels[0].level, 10u);
  EXPECT_EQ(snap.wait_levels[0].waiters, 1u);
  this->counter_.Increment(7);
  waiter.join();
  EXPECT_TRUE(this->counter_.debug_snapshot().wait_levels.empty());
}

// ---------------------------------------------------------------------
// Timed checks — uniform across policies since the engine owns the
// timed-unlink machinery.

TYPED_TEST(CounterSemantics, CheckForTimesOutBelowLevelAndUnlinks) {
  this->counter_.Increment(3);
  EXPECT_FALSE(this->counter_.CheckFor(10, 20ms));
  // The timed-out waiter must have removed its node (storage bound).
  EXPECT_TRUE(this->counter_.debug_snapshot().wait_levels.empty());
}

TYPED_TEST(CounterSemantics, CheckForSucceedsImmediatelyAtLevel) {
  this->counter_.Increment(10);
  EXPECT_TRUE(this->counter_.CheckFor(10, 1ms));
}

TYPED_TEST(CounterSemantics, CheckForSucceedsWhenIncrementArrives) {
  std::jthread incrementer([&] {
    std::this_thread::sleep_for(10ms);
    this->counter_.Increment(5);
  });
  EXPECT_TRUE(this->counter_.CheckFor(5, 5s));
}

TYPED_TEST(CounterSemantics, CheckUntilSteadyClockRespectsDeadline) {
  const auto deadline = std::chrono::steady_clock::now() + 20ms;
  EXPECT_FALSE(this->counter_.CheckUntil(1, deadline));
}

TYPED_TEST(CounterSemantics, CheckUntilSystemClockDeadline) {
  // Regression: CheckUntil used time_point_cast, which converts only
  // the duration type, not the clock epoch — a system_clock deadline
  // (epoch 1970) cast to steady_clock (epoch ~boot) landed decades in
  // the future, so the timeout below would never fire.  Deadlines on
  // non-steady clocks are now converted via a now()-delta.
  const auto past_deadline = std::chrono::system_clock::now() + 20ms;
  EXPECT_FALSE(this->counter_.CheckUntil(1, past_deadline));

  std::jthread incrementer([&] {
    std::this_thread::sleep_for(10ms);
    this->counter_.Increment(2);
  });
  EXPECT_TRUE(
      this->counter_.CheckUntil(2, std::chrono::system_clock::now() + 5s));
}

// ---------------------------------------------------------------------
// OnReach — the async Check, now on every implementation.

TYPED_TEST(CounterSemantics, OnReachRunsImmediatelyWhenReached) {
  this->counter_.Increment(4);
  bool ran = false;
  this->counter_.OnReach(3, [&] { ran = true; });
  EXPECT_TRUE(ran);
}

TYPED_TEST(CounterSemantics, OnReachFiresInLevelThenRegistrationOrder) {
  std::vector<int> order;
  this->counter_.OnReach(2, [&] { order.push_back(20); });
  this->counter_.OnReach(1, [&] { order.push_back(10); });
  this->counter_.OnReach(1, [&] { order.push_back(11); });
  EXPECT_TRUE(order.empty());
  this->counter_.Increment(2);  // releases both levels in one call
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 10);
  EXPECT_EQ(order[1], 11);
  EXPECT_EQ(order[2], 20);
}

TYPED_TEST(CounterSemantics, OnReachMayReenterCounter) {
  // Callbacks run outside the internal lock (CP.22), so they may call
  // back into the same counter.
  bool chained = false;
  this->counter_.OnReach(1, [&] { this->counter_.Increment(1); });
  this->counter_.OnReach(2, [&] { chained = true; });
  this->counter_.Increment(1);
  EXPECT_TRUE(chained);
  this->counter_.Check(2);
}

TYPED_TEST(CounterSemantics, ResetRestartsFromZero) {
  this->counter_.Increment(42);
  this->counter_.Reset();
  EXPECT_EQ(this->counter_.debug_value(), 0u);
  // Reusable for a new phase (§2's motivation for Reset).
  std::jthread waiter([&] { this->counter_.Check(2); });
  std::this_thread::sleep_for(10ms);
  this->counter_.Increment(2);
}

// ---------------------------------------------------------------------
// Counter (paper §7 implementation) specifics.

TEST(CounterStructure, SnapshotInitiallyEmpty) {
  Counter c;
  auto snap = c.debug_snapshot();
  EXPECT_EQ(snap.value, 0u);
  EXPECT_TRUE(snap.wait_levels.empty());
}

TEST(CounterStructure, NodePerDistinctLevelNotPerWaiter) {
  // §7: "storage ... proportional to the number of different levels on
  // which threads are waiting, not to the total number of waiting
  // threads."
  Counter c;
  std::vector<std::jthread> waiters;
  for (int i = 0; i < 6; ++i) {
    waiters.emplace_back([&c] { c.Check(10); });  // six waiters, one level
  }
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&c] { c.Check(20); });  // two waiters, one level
  }
  // Wait until all eight are suspended.
  while (true) {
    auto snap = c.debug_snapshot();
    std::size_t total = 0;
    for (auto& wl : snap.wait_levels) total += wl.waiters;
    if (total == 8) break;
    std::this_thread::sleep_for(1ms);
  }
  auto snap = c.debug_snapshot();
  ASSERT_EQ(snap.wait_levels.size(), 2u);
  EXPECT_EQ(snap.wait_levels[0].level, 10u);
  EXPECT_EQ(snap.wait_levels[0].waiters, 6u);
  EXPECT_EQ(snap.wait_levels[1].level, 20u);
  EXPECT_EQ(snap.wait_levels[1].waiters, 2u);
  EXPECT_EQ(c.stats().max_live_nodes, 2u);
  c.Increment(20);
  waiters.clear();
  EXPECT_TRUE(c.debug_snapshot().wait_levels.empty());
}

TEST(CounterStructure, WaitListStaysSortedAscending) {
  Counter c;
  std::vector<std::jthread> waiters;
  for (counter_value_t level : {50u, 10u, 30u, 20u, 40u}) {
    waiters.emplace_back([&c, level] { c.Check(level); });
  }
  while (c.debug_snapshot().wait_levels.size() < 5) {
    std::this_thread::sleep_for(1ms);
  }
  auto snap = c.debug_snapshot();
  ASSERT_EQ(snap.wait_levels.size(), 5u);
  for (std::size_t i = 1; i < snap.wait_levels.size(); ++i) {
    EXPECT_LT(snap.wait_levels[i - 1].level, snap.wait_levels[i].level);
  }
  c.Increment(50);
  waiters.clear();
}

TEST(CounterStructure, PartialReleaseRemovesOnlyReachedLevels) {
  Counter c;
  std::vector<std::jthread> waiters;
  for (counter_value_t level : {5u, 9u}) {
    waiters.emplace_back([&c, level] { c.Check(level); });
  }
  while (c.debug_snapshot().wait_levels.size() < 2) {
    std::this_thread::sleep_for(1ms);
  }
  c.Increment(7);  // releases level 5, leaves level 9 (Figure 2 step e/f)
  while (c.debug_snapshot().wait_levels.size() > 1) {
    std::this_thread::sleep_for(1ms);
  }
  auto snap = c.debug_snapshot();
  EXPECT_EQ(snap.value, 7u);
  ASSERT_EQ(snap.wait_levels.size(), 1u);
  EXPECT_EQ(snap.wait_levels[0].level, 9u);
  c.Increment(2);
  waiters.clear();
}

TEST(CounterStructure, NodePoolReusesNodes) {
  Counter c;  // pooling on by default
  for (int round = 0; round < 5; ++round) {
    std::jthread waiter(
        [&c, round] { c.Check(static_cast<counter_value_t>(round) + 1); });
    while (c.debug_snapshot().wait_levels.empty()) {
      std::this_thread::sleep_for(1ms);
    }
    c.Increment(1);
  }
  auto s = c.stats();
  EXPECT_EQ(s.nodes_allocated, 5u);
  EXPECT_GE(s.nodes_pooled, 4u) << "later rounds should reuse pooled nodes";
  EXPECT_EQ(s.live_nodes, 0u);
}

TEST(CounterStructure, NoPoolOptionAllocatesFresh) {
  Counter::Options opts;
  opts.pool_nodes = false;
  Counter c(opts);
  for (int round = 0; round < 3; ++round) {
    std::jthread waiter(
        [&c, round] { c.Check(static_cast<counter_value_t>(round) + 1); });
    while (c.debug_snapshot().wait_levels.empty()) {
      std::this_thread::sleep_for(1ms);
    }
    c.Increment(1);
  }
  auto s = c.stats();
  EXPECT_EQ(s.nodes_allocated, 3u);
  EXPECT_EQ(s.nodes_pooled, 0u);
}

TEST(CounterReset, ResetWithWaitersIsAnError) {
  Counter c;
  std::jthread waiter([&c] { c.Check(1); });
  while (c.debug_snapshot().wait_levels.empty()) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_THROW(c.Reset(), std::invalid_argument);
  c.Increment(1);
}

TEST(CounterReset, ResetWithPendingCallbacksIsAnError) {
  Counter c;
  c.OnReach(5, [] {});
  c.OnReach(9, [] {});
  // The error is typed (CounterError) and names every pending level, so
  // the caller knows which registrations are keeping the counter alive.
  try {
    c.Reset();
    FAIL() << "Reset with pending OnReach callbacks did not throw";
  } catch (const CounterError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("levels 5, 9"), std::string::npos) << what;
  }
  c.Increment(9);  // run the callbacks so the counter can wind down
  c.Reset();
}

TEST(CounterTimed, TimedWaiterSharingNodeDoesNotStrandOthers) {
  Counter c;
  std::atomic<bool> passed{false};
  std::jthread persistent([&] {
    c.Check(5);
    passed.store(true);
  });
  while (c.debug_snapshot().wait_levels.empty()) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_FALSE(c.CheckFor(5, 10ms));  // joins then abandons the same node
  auto snap = c.debug_snapshot();
  ASSERT_EQ(snap.wait_levels.size(), 1u);
  EXPECT_EQ(snap.wait_levels[0].waiters, 1u);
  c.Increment(5);
  persistent.join();
  EXPECT_TRUE(passed.load());
}

// ---------------------------------------------------------------------
// AnyCounter factory (kind-based; spec strings in counter_spec_test).

TEST(AnyCounter, FactoryProducesEveryKind) {
  for (CounterKind kind : all_counter_kinds()) {
    auto c = make_counter(kind);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->kind(), kind);
    EXPECT_EQ(c->spec(), std::string(to_string(kind)));
    c->Increment(3);
    c->Check(3);
    EXPECT_EQ(c->stats().increments, 1u);
    EXPECT_EQ(c->debug_value(), 3u);
    c->Reset();
    c->Check(0);
  }
}

TEST(AnyCounter, KindNamesRoundTrip) {
  for (CounterKind kind : all_counter_kinds()) {
    EXPECT_EQ(counter_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(counter_kind_from_string("bogus"), std::invalid_argument);
}

TEST(AnyCounter, BlocksAndWakesThroughInterface) {
  for (CounterKind kind : all_counter_kinds()) {
    auto c = make_counter(kind);
    std::atomic<bool> passed{false};
    std::jthread waiter([&] {
      c->Check(2);
      passed.store(true);
    });
    std::this_thread::sleep_for(5ms);
    EXPECT_FALSE(passed.load()) << to_string(kind);
    c->Increment(2);
    waiter.join();
    EXPECT_TRUE(passed.load()) << to_string(kind);
  }
}

TEST(AnyCounter, TimedAndAsyncThroughInterface) {
  // The virtual interface carries CheckFor and OnReach now that every
  // implementation supports them.
  for (CounterKind kind : all_counter_kinds()) {
    auto c = make_counter(kind);
    EXPECT_FALSE(c->CheckFor(1, std::chrono::nanoseconds(2ms)))
        << to_string(kind);
    bool ran = false;
    c->OnReach(2, [&] { ran = true; });
    c->Increment(2);
    EXPECT_TRUE(ran) << to_string(kind);
    EXPECT_TRUE(c->CheckFor(2, std::chrono::nanoseconds(1ms)))
        << to_string(kind);
    EXPECT_EQ(c->debug_value(), 2u) << to_string(kind);
    EXPECT_TRUE(c->debug_snapshot().wait_levels.empty()) << to_string(kind);
  }
}

}  // namespace
}  // namespace monotonic
