// counter_test.cpp — semantics of all counter implementations.
//
// Typed tests run the §2 contract against every implementation (the
// paper's wait-list Counter plus the ablation baselines); Counter-only
// tests cover the §7 structure (nodes, pooling, snapshots) and the
// extensions (Reset, timed Check).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <type_traits>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

static_assert(CounterLike<Counter>);
static_assert(CounterLike<SingleCvCounter>);
static_assert(CounterLike<FutexCounter>);
static_assert(CounterLike<SpinCounter>);
static_assert(CounterLike<HybridCounter>);

template <typename C>
class CounterSemantics : public ::testing::Test {
 protected:
  C counter_;
};

using AllCounterTypes =
    ::testing::Types<Counter, SingleCvCounter, FutexCounter, SpinCounter,
                     HybridCounter>;
TYPED_TEST_SUITE(CounterSemantics, AllCounterTypes);

TYPED_TEST(CounterSemantics, CheckZeroNeverBlocks) {
  // §2: initial value is zero, so Check(0) is satisfied immediately.
  this->counter_.Check(0);
}

TYPED_TEST(CounterSemantics, CheckAtOrBelowValueReturnsImmediately) {
  this->counter_.Increment(5);
  this->counter_.Check(5);
  this->counter_.Check(3);
  this->counter_.Check(0);
}

TYPED_TEST(CounterSemantics, IncrementAccumulates) {
  this->counter_.Increment(2);
  this->counter_.Increment(3);
  this->counter_.Check(5);  // would hang if increments did not accumulate
}

TYPED_TEST(CounterSemantics, IncrementZeroIsNoOp) {
  this->counter_.Increment(0);
  this->counter_.Increment(0);
  this->counter_.Increment(1);
  this->counter_.Check(1);
}

TYPED_TEST(CounterSemantics, CheckBlocksUntilLevelReached) {
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    this->counter_.Check(3);
    passed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load());
  this->counter_.Increment(2);
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load()) << "woke below the requested level";
  this->counter_.Increment(1);
  waiter.join();
  EXPECT_TRUE(passed.load());
}

TYPED_TEST(CounterSemantics, SingleIncrementWakesAllLevelsReached) {
  // One big Increment must release waiters at several distinct levels.
  std::atomic<int> released{0};
  std::vector<std::jthread> waiters;
  for (counter_value_t level : {1u, 2u, 3u, 4u}) {
    waiters.emplace_back([&, level] {
      this->counter_.Check(level);
      released.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(released.load(), 0);
  this->counter_.Increment(10);
  waiters.clear();  // join
  EXPECT_EQ(released.load(), 4);
}

TYPED_TEST(CounterSemantics, ManyWaitersAtSameLevelAllWake) {
  constexpr int kWaiters = 8;
  std::atomic<int> released{0};
  {
    std::vector<std::jthread> waiters;
    for (int i = 0; i < kWaiters; ++i) {
      waiters.emplace_back([&] {
        this->counter_.Check(7);
        released.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(20ms);
    this->counter_.Increment(7);
  }
  EXPECT_EQ(released.load(), kWaiters);
}

TYPED_TEST(CounterSemantics, WriterReaderHandoff) {
  // §5.3's per-item broadcast, single reader: data written before the
  // Increment must be visible after the corresponding Check.
  constexpr int kItems = 200;
  std::vector<int> data(kItems, -1);
  multithreaded_block(
      [&] {  // writer
        for (int i = 0; i < kItems; ++i) {
          data[i] = i * i;
          this->counter_.Increment(1);
        }
      },
      [&] {  // reader
        for (int i = 0; i < kItems; ++i) {
          this->counter_.Check(static_cast<counter_value_t>(i) + 1);
          EXPECT_EQ(data[i], i * i);
        }
      });
}

TYPED_TEST(CounterSemantics, ConcurrentIncrementsAllCounted) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  multithreaded_for(0, kThreads, 1, [&](int) {
    for (int i = 0; i < kPerThread; ++i) this->counter_.Increment(1);
  });
  this->counter_.Check(kThreads * kPerThread);  // hangs if any were lost
}

TYPED_TEST(CounterSemantics, LargeAmountsAndLevels) {
  const counter_value_t big = counter_value_t{1} << 40;
  this->counter_.Increment(big);
  this->counter_.Check(big);
  this->counter_.Increment(big);
  this->counter_.Check(2 * big);
}

TYPED_TEST(CounterSemantics, OverflowIsRejected) {
  // HybridCounter spends one bit on its waiters flag, so its range is
  // half of the plain implementations'.
  const counter_value_t max = std::is_same_v<TypeParam, HybridCounter>
                                  ? HybridCounter::kMaxValue
                                  : ~counter_value_t{0};
  this->counter_.Increment(max);
  EXPECT_THROW(this->counter_.Increment(1), std::invalid_argument);
}

TYPED_TEST(CounterSemantics, StatsCountOperations) {
  this->counter_.Increment(1);
  this->counter_.Increment(1);
  this->counter_.Check(1);
  auto s = this->counter_.stats();
  EXPECT_EQ(s.increments, 2u);
  EXPECT_EQ(s.checks, 1u);
  EXPECT_EQ(s.fast_checks, 1u);
  EXPECT_EQ(s.suspensions, 0u);
}

// ---------------------------------------------------------------------
// Counter (paper §7 implementation) specifics.

TEST(CounterStructure, SnapshotInitiallyEmpty) {
  Counter c;
  auto snap = c.debug_snapshot();
  EXPECT_EQ(snap.value, 0u);
  EXPECT_TRUE(snap.wait_levels.empty());
}

TEST(CounterStructure, NodePerDistinctLevelNotPerWaiter) {
  // §7: "storage ... proportional to the number of different levels on
  // which threads are waiting, not to the total number of waiting
  // threads."
  Counter c;
  std::vector<std::jthread> waiters;
  for (int i = 0; i < 6; ++i) {
    waiters.emplace_back([&c] { c.Check(10); });  // six waiters, one level
  }
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&c] { c.Check(20); });  // two waiters, one level
  }
  // Wait until all eight are suspended.
  while (true) {
    auto snap = c.debug_snapshot();
    std::size_t total = 0;
    for (auto& wl : snap.wait_levels) total += wl.waiters;
    if (total == 8) break;
    std::this_thread::sleep_for(1ms);
  }
  auto snap = c.debug_snapshot();
  ASSERT_EQ(snap.wait_levels.size(), 2u);
  EXPECT_EQ(snap.wait_levels[0].level, 10u);
  EXPECT_EQ(snap.wait_levels[0].waiters, 6u);
  EXPECT_EQ(snap.wait_levels[1].level, 20u);
  EXPECT_EQ(snap.wait_levels[1].waiters, 2u);
  EXPECT_EQ(c.stats().max_live_nodes, 2u);
  c.Increment(20);
  waiters.clear();
  EXPECT_TRUE(c.debug_snapshot().wait_levels.empty());
}

TEST(CounterStructure, WaitListStaysSortedAscending) {
  Counter c;
  std::vector<std::jthread> waiters;
  for (counter_value_t level : {50u, 10u, 30u, 20u, 40u}) {
    waiters.emplace_back([&c, level] { c.Check(level); });
  }
  while (c.debug_snapshot().wait_levels.size() < 5) {
    std::this_thread::sleep_for(1ms);
  }
  auto snap = c.debug_snapshot();
  ASSERT_EQ(snap.wait_levels.size(), 5u);
  for (std::size_t i = 1; i < snap.wait_levels.size(); ++i) {
    EXPECT_LT(snap.wait_levels[i - 1].level, snap.wait_levels[i].level);
  }
  c.Increment(50);
  waiters.clear();
}

TEST(CounterStructure, PartialReleaseRemovesOnlyReachedLevels) {
  Counter c;
  std::vector<std::jthread> waiters;
  for (counter_value_t level : {5u, 9u}) {
    waiters.emplace_back([&c, level] { c.Check(level); });
  }
  while (c.debug_snapshot().wait_levels.size() < 2) {
    std::this_thread::sleep_for(1ms);
  }
  c.Increment(7);  // releases level 5, leaves level 9 (Figure 2 step e/f)
  while (c.debug_snapshot().wait_levels.size() > 1) {
    std::this_thread::sleep_for(1ms);
  }
  auto snap = c.debug_snapshot();
  EXPECT_EQ(snap.value, 7u);
  ASSERT_EQ(snap.wait_levels.size(), 1u);
  EXPECT_EQ(snap.wait_levels[0].level, 9u);
  c.Increment(2);
  waiters.clear();
}

TEST(CounterStructure, NodePoolReusesNodes) {
  Counter c;  // pooling on by default
  for (int round = 0; round < 5; ++round) {
    std::jthread waiter(
        [&c, round] { c.Check(static_cast<counter_value_t>(round) + 1); });
    while (c.debug_snapshot().wait_levels.empty()) {
      std::this_thread::sleep_for(1ms);
    }
    c.Increment(1);
  }
  auto s = c.stats();
  EXPECT_EQ(s.nodes_allocated, 5u);
  EXPECT_GE(s.nodes_pooled, 4u) << "later rounds should reuse pooled nodes";
  EXPECT_EQ(s.live_nodes, 0u);
}

TEST(CounterStructure, NoPoolOptionAllocatesFresh) {
  Counter::Options opts;
  opts.pool_nodes = false;
  Counter c(opts);
  for (int round = 0; round < 3; ++round) {
    std::jthread waiter(
        [&c, round] { c.Check(static_cast<counter_value_t>(round) + 1); });
    while (c.debug_snapshot().wait_levels.empty()) {
      std::this_thread::sleep_for(1ms);
    }
    c.Increment(1);
  }
  auto s = c.stats();
  EXPECT_EQ(s.nodes_allocated, 3u);
  EXPECT_EQ(s.nodes_pooled, 0u);
}

TEST(CounterReset, ResetRestartsFromZero) {
  Counter c;
  c.Increment(42);
  c.Reset();
  auto snap = c.debug_snapshot();
  EXPECT_EQ(snap.value, 0u);
  // Reusable for a new phase (§2's motivation for Reset).
  std::jthread waiter([&c] { c.Check(2); });
  std::this_thread::sleep_for(10ms);
  c.Increment(2);
}

TEST(CounterReset, ResetWithWaitersIsAnError) {
  Counter c;
  std::jthread waiter([&c] { c.Check(1); });
  while (c.debug_snapshot().wait_levels.empty()) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_THROW(c.Reset(), std::invalid_argument);
  c.Increment(1);
}

TEST(CounterTimed, CheckForTimesOutBelowLevel) {
  Counter c;
  c.Increment(3);
  EXPECT_FALSE(c.CheckFor(10, 20ms));
  // The timed-out waiter must have removed its node (storage bound).
  EXPECT_TRUE(c.debug_snapshot().wait_levels.empty());
}

TEST(CounterTimed, CheckForSucceedsImmediatelyAtLevel) {
  Counter c;
  c.Increment(10);
  EXPECT_TRUE(c.CheckFor(10, 1ms));
}

TEST(CounterTimed, CheckForSucceedsWhenIncrementArrives) {
  Counter c;
  std::jthread incrementer([&c] {
    std::this_thread::sleep_for(10ms);
    c.Increment(5);
  });
  EXPECT_TRUE(c.CheckFor(5, 5s));
}

TEST(CounterTimed, TimedWaiterSharingNodeDoesNotStrandOthers) {
  Counter c;
  std::atomic<bool> passed{false};
  std::jthread persistent([&] {
    c.Check(5);
    passed.store(true);
  });
  while (c.debug_snapshot().wait_levels.empty()) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_FALSE(c.CheckFor(5, 10ms));  // joins then abandons the same node
  auto snap = c.debug_snapshot();
  ASSERT_EQ(snap.wait_levels.size(), 1u);
  EXPECT_EQ(snap.wait_levels[0].waiters, 1u);
  c.Increment(5);
  persistent.join();
  EXPECT_TRUE(passed.load());
}

TEST(CounterTimed, CheckUntilRespectsDeadline) {
  Counter c;
  const auto deadline = std::chrono::steady_clock::now() + 20ms;
  EXPECT_FALSE(c.CheckUntil(1, deadline));
}

// ---------------------------------------------------------------------
// AnyCounter factory.

TEST(AnyCounter, FactoryProducesEveryKind) {
  for (CounterKind kind : all_counter_kinds()) {
    auto c = make_counter(kind);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->kind(), kind);
    c->Increment(3);
    c->Check(3);
    EXPECT_EQ(c->stats().increments, 1u);
    c->Reset();
    c->Check(0);
  }
}

TEST(AnyCounter, KindNamesRoundTrip) {
  for (CounterKind kind : all_counter_kinds()) {
    EXPECT_EQ(counter_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(counter_kind_from_string("bogus"), std::invalid_argument);
}

TEST(AnyCounter, BlocksAndWakesThroughInterface) {
  for (CounterKind kind : all_counter_kinds()) {
    auto c = make_counter(kind);
    std::atomic<bool> passed{false};
    std::jthread waiter([&] {
      c->Check(2);
      passed.store(true);
    });
    std::this_thread::sleep_for(5ms);
    EXPECT_FALSE(passed.load()) << to_string(kind);
    c->Increment(2);
    waiter.join();
    EXPECT_TRUE(passed.load()) << to_string(kind);
  }
}

}  // namespace
}  // namespace monotonic
