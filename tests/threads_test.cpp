// threads_test.cpp — the multithreaded block/for constructs (§3),
// execution policies, exception aggregation, and ThreadTeam.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "monotonic/threads/multi_error.hpp"
#include "monotonic/threads/pool.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

TEST(MultithreadedBlock, RunsEveryStatement) {
  std::atomic<int> ran{0};
  multithreaded_block([&] { ran += 1; }, [&] { ran += 10; },
                      [&] { ran += 100; });
  EXPECT_EQ(ran.load(), 111);
}

TEST(MultithreadedBlock, JoinsBeforeContinuing) {
  // §3: "Execution does not continue past the multithreaded block until
  // all the threads have individually terminated."
  std::atomic<bool> slow_done{false};
  multithreaded_block(
      [&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        slow_done.store(true);
      },
      [] {});
  EXPECT_TRUE(slow_done.load());
}

TEST(MultithreadedBlock, StatementsRunConcurrently) {
  // Two statements that each wait for the other would deadlock if the
  // block were secretly sequential.
  std::atomic<int> stage{0};
  multithreaded_block(
      [&] {
        stage.fetch_add(1);
        while (stage.load() < 2) std::this_thread::yield();
      },
      [&] {
        stage.fetch_add(1);
        while (stage.load() < 2) std::this_thread::yield();
      });
  EXPECT_EQ(stage.load(), 2);
}

TEST(MultithreadedBlock, EmptyBlockIsFine) {
  multithreaded(std::vector<std::function<void()>>{});
}

TEST(MultithreadedFor, IteratesExactRange) {
  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> count{0};
  multithreaded_for(3, 11, 2, [&](int i) {  // 3,5,7,9
    sum += static_cast<std::uint64_t>(i);
    count += 1;
  });
  EXPECT_EQ(count.load(), 4);
  EXPECT_EQ(sum.load(), 24u);
}

TEST(MultithreadedFor, NegativeStepCountsDown) {
  std::vector<int> seen(5, 0);
  multithreaded_for(4, -1, -1, [&](int i) { seen[i] = 1; });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 5);
}

TEST(MultithreadedFor, EachIterationHasPrivateControlVariable) {
  // §3: "each thread has a local copy of the loop control-variable".
  std::mutex m;
  std::set<int> values;
  multithreaded_for(0, 8, 1, [&](int i) {
    std::this_thread::yield();
    std::scoped_lock lock(m);
    values.insert(i);
  });
  EXPECT_EQ(values.size(), 8u);
}

TEST(MultithreadedFor, CountConvenienceForm) {
  std::atomic<int> count{0};
  multithreaded_for(6, [&](int) { count += 1; });
  EXPECT_EQ(count.load(), 6);
}

TEST(MultithreadedFor, ZeroStepIsRejected) {
  EXPECT_THROW(multithreaded_for(0, 4, 0, [](int) {}),
               std::invalid_argument);
}

TEST(MultithreadedFor, EmptyRangeRunsNothing) {
  std::atomic<int> count{0};
  multithreaded_for(5, 5, 1, [&](int) { count += 1; });
  multithreaded_for(5, 3, 1, [&](int) { count += 1; });
  EXPECT_EQ(count.load(), 0);
}

TEST(MultithreadedNesting, BlocksAndLoopsNest) {
  std::atomic<int> leaves{0};
  multithreaded_for(0, 3, 1, [&](int) {
    multithreaded_block([&] { leaves += 1; }, [&] { leaves += 1; });
  });
  EXPECT_EQ(leaves.load(), 6);
}

TEST(SequentialPolicy, RunsInProgramOrder) {
  std::vector<int> order;
  multithreaded(
      {[&] { order.push_back(0); }, [&] { order.push_back(1); },
       [&] { order.push_back(2); }},
      Execution::kSequential);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SequentialPolicy, ForLoopRunsAscending) {
  std::vector<int> order;
  multithreaded_for(0, 5, 1, [&](int i) { order.push_back(i); },
                    Execution::kSequential);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SequentialPolicy, DefaultPolicyIsScoped) {
  EXPECT_EQ(default_execution(), Execution::kMultithreaded);
  {
    ScopedExecution scope(Execution::kSequential);
    EXPECT_EQ(default_execution(), Execution::kSequential);
    std::vector<int> order;
    multithreaded_for(0, 3, 1, [&](int i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  }
  EXPECT_EQ(default_execution(), Execution::kMultithreaded);
}

TEST(Exceptions, SingleFailureSurfacesAsMultiError) {
  EXPECT_THROW(
      multithreaded_block([] { throw std::runtime_error("boom"); }, [] {}),
      MultiError);
}

TEST(Exceptions, AllThreadsStillJoinOnFailure) {
  std::atomic<bool> other_finished{false};
  try {
    multithreaded_block(
        [] { throw std::runtime_error("boom"); },
        [&] {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          other_finished.store(true);
        });
    FAIL() << "expected MultiError";
  } catch (const MultiError& e) {
    EXPECT_EQ(e.size(), 1u);
    EXPECT_TRUE(other_finished.load())
        << "the failing statement must not abandon its siblings";
  }
}

TEST(Exceptions, MultipleFailuresAggregateInStatementOrder) {
  try {
    multithreaded_block([] { throw std::runtime_error("first"); },
                        [] {},
                        [] { throw std::logic_error("third"); });
    FAIL() << "expected MultiError";
  } catch (const MultiError& e) {
    ASSERT_EQ(e.size(), 2u);
    EXPECT_THROW(std::rethrow_exception(e.errors()[0]), std::runtime_error);
    EXPECT_THROW(std::rethrow_exception(e.errors()[1]), std::logic_error);
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("third"), std::string::npos);
  }
}

TEST(Exceptions, SequentialPolicyPropagatesDirectly) {
  std::vector<int> order;
  EXPECT_THROW(multithreaded({[&] { order.push_back(0); },
                              [] { throw std::runtime_error("x"); },
                              [&] { order.push_back(2); }},
                             Execution::kSequential),
               std::runtime_error);
  // Sequential semantics: later statements do not run after a throw.
  EXPECT_EQ(order, (std::vector<int>{0}));
}

TEST(ThreadTeamTest, RunsBodyOnEveryWorker) {
  ThreadTeam team(4);
  std::atomic<std::uint64_t> mask{0};
  team.run([&](std::size_t tid) { mask |= (1ull << tid); });
  EXPECT_EQ(mask.load(), 0b1111u);
}

TEST(ThreadTeamTest, ReusableAcrossRegions) {
  ThreadTeam team(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    team.run([&](std::size_t) { total += 1; });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadTeamTest, WorkerExceptionsAggregate) {
  ThreadTeam team(2);
  EXPECT_THROW(team.run([](std::size_t tid) {
    if (tid == 1) throw std::runtime_error("worker failed");
  }),
               MultiError);
  // The team survives a failing region.
  std::atomic<int> ok{0};
  team.run([&](std::size_t) { ok += 1; });
  EXPECT_EQ(ok.load(), 2);
}

TEST(ThreadTeamTest, SingleWorkerTeam) {
  ThreadTeam team(1);
  int x = 0;
  team.run([&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    x = 42;
  });
  EXPECT_EQ(x, 42);
}

}  // namespace
}  // namespace monotonic
