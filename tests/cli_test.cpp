// cli_test.cpp — the shared example/bench argument parser.

#include <gtest/gtest.h>

#include "monotonic/support/cli.hpp"

namespace monotonic {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, ProgramNameAndPositionals) {
  const auto args = make({"prog", "64", "4", "counter"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.positional_count(), 3u);
  EXPECT_EQ(args.positional_u64(0, 1), 64u);
  EXPECT_EQ(args.positional_u64(1, 1), 4u);
  EXPECT_EQ(args.positional_str(2, "x"), "counter");
}

TEST(CliTest, FallbacksWhenAbsent) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.positional_u64(0, 128), 128u);
  EXPECT_EQ(args.positional_str(5, "default"), "default");
}

TEST(CliTest, OptionsWithValues) {
  const auto args = make({"prog", "--threads=8", "--impl=futex", "10"});
  EXPECT_EQ(args.option_u64("threads"), 8u);
  EXPECT_EQ(args.option_str("impl"), "futex");
  EXPECT_EQ(args.positional_u64(0, 0), 10u);
  EXPECT_FALSE(args.option_u64("missing").has_value());
}

TEST(CliTest, BareFlags) {
  const auto args = make({"prog", "--verbose", "--out=x.json"});
  EXPECT_TRUE(args.has_flag("verbose"));
  EXPECT_TRUE(args.has_flag("out"));
  EXPECT_FALSE(args.has_flag("quiet"));
  EXPECT_FALSE(args.option_str("verbose").has_value());
}

TEST(CliTest, MalformedNumbersThrow) {
  const auto args = make({"prog", "12x", "--n=abc"});
  EXPECT_THROW(args.positional_u64(0, 0), std::invalid_argument);
  EXPECT_THROW(args.option_u64("n"), std::invalid_argument);
}

TEST(CliTest, NegativeNumbersRejected) {
  const auto args = make({"prog", "-5"});
  // "-5" does not start with "--", so it is positional — and invalid.
  EXPECT_THROW(args.positional_u64(0, 0), std::invalid_argument);
}

TEST(CliTest, OptionKeysListed) {
  const auto args = make({"prog", "--a=1", "--b"});
  const auto keys = args.option_keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

}  // namespace
}  // namespace monotonic
