// counter_spec_test.cpp — the make_counter(spec) factory grammar.
//
// Every supported spec must round-trip: make_counter(spec)->spec()
// yields the canonical form, and feeding the canonical form back in
// reproduces it (a fixed point).  Behavior is spot-checked through the
// type-erased interface so a wrong wiring of a decorator layer (e.g.
// batching that never flushes) fails here rather than in a bench.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/shared_counter.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace monotonic {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------
// Canonicalization: input spec -> expected canonical spec() string.

struct SpecCase {
  const char* input;
  const char* canonical;
};

class SpecRoundTrip : public ::testing::TestWithParam<SpecCase> {};

TEST_P(SpecRoundTrip, CanonicalFormIsAFixedPoint) {
  const auto p = GetParam();
  auto c = make_counter(p.input);
  EXPECT_EQ(c->spec(), p.canonical);

  // Feeding the canonical spec back in must be stable.
  auto c2 = make_counter(c->spec());
  EXPECT_EQ(c2->spec(), p.canonical);
  EXPECT_EQ(c2->kind(), c->kind());
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, SpecRoundTrip,
    ::testing::Values(
        // Bare kinds.
        SpecCase{"list", "list"}, SpecCase{"single-cv", "single-cv"},
        SpecCase{"futex", "futex"}, SpecCase{"spin", "spin"},
        SpecCase{"hybrid", "hybrid"},
        // Pooling options fold onto the named kinds.
        SpecCase{"list-nopool", "list-nopool"},
        SpecCase{"list,pool=0", "list-nopool"},
        SpecCase{"list-nopool,pool=1", "list"},
        SpecCase{"list,pool=1", "list"},
        SpecCase{"list,pool_size=8", "list,pool_size=8"},
        SpecCase{"list,pool_size=64", "list"},  // 64 is the default
        // Whitespace is insignificant.
        SpecCase{" hybrid , pool_size = 64 ", "hybrid"},
        // Decorators, defaults elided.
        SpecCase{"hybrid+traced", "hybrid+traced"},
        SpecCase{"hybrid+batching", "hybrid+batching"},
        SpecCase{"hybrid+batching,batch=64", "hybrid+batching"},
        SpecCase{"hybrid+batching,batch=16", "hybrid+batching,batch=16"},
        SpecCase{"list+broadcast", "list+broadcast"},
        SpecCase{"list+broadcast,shards=4", "list+broadcast"},
        SpecCase{"list+broadcast,shards=2", "list+broadcast,shards=2"},
        // Stacked layers keep their order.
        SpecCase{"futex+batching,batch=8+traced",
                 "futex+batching,batch=8+traced"},
        SpecCase{"list,pool=0+traced+broadcast,shards=2",
                 "list-nopool+traced+broadcast,shards=2"},
        // Sharded value plane: bare "sharded" means sharded+hybrid; an
        // explicit stripe count always prints, the auto count never
        // does (canonical specs are machine-independent).
        SpecCase{"sharded", "sharded+hybrid"},
        SpecCase{"sharded+hybrid", "sharded+hybrid"},
        SpecCase{"sharded+list", "sharded+list"},
        SpecCase{"sharded+single-cv", "sharded+single-cv"},
        SpecCase{"sharded:8+hybrid", "sharded:8+hybrid"},
        SpecCase{"sharded:4+futex", "sharded:4+futex"},
        SpecCase{"sharded:1+spin", "sharded:1+spin"},
        SpecCase{"sharded+list,pool=0", "sharded+list-nopool"},
        SpecCase{"sharded:2+hybrid+traced", "sharded:2+hybrid+traced"},
        SpecCase{"sharded+hybrid+batching,batch=16",
                 "sharded+hybrid+batching,batch=16"},
        // Heap wait plane: waitplane=list is the default and never
        // prints; an explicit heap shard count always prints, the auto
        // count never does (mirrors the sharded prefix).
        SpecCase{"hybrid,waitplane=list", "hybrid"},
        SpecCase{"hybrid,waitplane=heap", "hybrid,waitplane=heap"},
        SpecCase{"hybrid,waitplane=heap:4", "hybrid,waitplane=heap:4"},
        SpecCase{"list,pool=0,waitplane=heap:2",
                 "list-nopool,waitplane=heap:2"},
        SpecCase{"sharded:2+hybrid,waitplane=heap:4+traced",
                 "sharded:2+hybrid,waitplane=heap:4+traced"},
        SpecCase{"pooled:16+futex,waitplane=heap",
                 "pooled:16+futex,waitplane=heap"},
        // Completion executor: inline is the default and never prints;
        // pool always prints with its explicit worker count (bare
        // "pool" means one worker).
        SpecCase{"hybrid,executor=inline", "hybrid"},
        SpecCase{"hybrid,executor=pool", "hybrid,executor=pool:1"},
        SpecCase{"hybrid,executor=pool:1", "hybrid,executor=pool:1"},
        SpecCase{"hybrid,executor=pool:2", "hybrid,executor=pool:2"},
        SpecCase{"list,pool=0,executor=pool:4",
                 "list-nopool,executor=pool:4"},
        SpecCase{"hybrid,waitplane=heap:4,executor=pool:2",
                 "hybrid,waitplane=heap:4,executor=pool:2"},
        SpecCase{"sharded:2+hybrid,executor=pool+traced",
                 "sharded:2+hybrid,executor=pool:1+traced"}));

// Every enumerated kind round-trips through its kind string.
TEST(SpecFactory, EveryKindRoundTrips) {
  for (CounterKind kind : all_counter_kinds()) {
    auto by_kind = make_counter(kind);
    EXPECT_EQ(by_kind->kind(), kind);
    EXPECT_EQ(by_kind->spec(), to_string(kind));
    auto by_spec = make_counter(to_string(kind));
    EXPECT_EQ(by_spec->kind(), kind);
    EXPECT_EQ(by_spec->spec(), to_string(kind));
  }
}

// ---------------------------------------------------------------------
// Malformed specs are rejected with invalid_argument (MC_REQUIRE).

class SpecRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(SpecRejects, ThrowsInvalidArgument) {
  EXPECT_THROW((void)make_counter(std::string_view(GetParam())),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, SpecRejects,
    ::testing::Values("", "bogus", "list+bogus", "list,bogus=1",
                      "list,pool", "list,pool=x", "list+batching,shards=2",
                      "list+broadcast,batch=2", "list+broadcast,shards=0",
                      "list+", "+traced",
                      // Duplicate decorators and misplaced/malformed
                      // sharded prefixes.
                      "hybrid+traced+traced", "list+batching+batching",
                      "list+broadcast+traced+broadcast", "hybrid+sharded",
                      "list+sharded:4", "sharded:0+hybrid",
                      "sharded:x+hybrid", "sharded:+hybrid",
                      "sharded,stripes=4+hybrid",
                      // waitplane: the list has no shard count, and the
                      // value must be a known plane.
                      "hybrid,waitplane=list:2", "hybrid,waitplane=bogus",
                      "hybrid,waitplane=heap:0", "hybrid,waitplane=heap:x",
                      "hybrid,waitplane=heap:65",
                      "hybrid,waitplane=",
                      // executor: value must be inline or pool[:N>=1].
                      "hybrid,executor=bogus", "hybrid,executor=pool:0",
                      "hybrid,executor=pool:x", "hybrid,executor="));

// Cross-process specs: the name grammar is POSIX shm's, and every
// rejection must name the bad token like the rest of the grammar.
INSTANTIATE_TEST_SUITE_P(
    SharedNames, SpecRejects,
    ::testing::Values("shared:",            // empty name
                      "shared:jobs",        // missing leading '/'
                      "shared:/",           // nothing after the slash
                      "shared:/a/b",        // embedded slash
                      "shared:/name,bogus=1", "shared:/name,detect=x",
                      "shared:/name,detect=0", "shared:/name,detect",
                      // Only the redundant '+futex' may follow; shared
                      // counters take no decorators.
                      "shared:/name+traced", "shared:/name+batching"));

// Satellite requirement: a rejected spec's message names the token
// that caused the rejection, not just "bad spec".
TEST(SpecRejects, MessagesNameTheBadToken) {
  const auto message_of = [](const char* spec) {
    try {
      (void)make_counter(std::string_view(spec));
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    ADD_FAILURE() << "spec was accepted: " << spec;
    return std::string();
  };
  EXPECT_NE(message_of("hybrid+traced+traced").find("duplicate"),
            std::string::npos);
  EXPECT_NE(message_of("hybrid+traced+traced").find("'traced'"),
            std::string::npos);
  EXPECT_NE(message_of("hybrid+tarced").find("'tarced'"), std::string::npos);
  EXPECT_NE(message_of("bogus").find("'bogus'"), std::string::npos);
  EXPECT_NE(message_of("hybrid+sharded").find("'sharded'"),
            std::string::npos);
  EXPECT_NE(message_of("list,bogus=1").find("'bogus'"), std::string::npos);
  // The list plane has no shards; the message points at the heap form.
  EXPECT_NE(message_of("hybrid,waitplane=list:2").find("waitplane=heap"),
            std::string::npos);
  EXPECT_NE(message_of("hybrid,waitplane=bogus").find("waitplane"),
            std::string::npos);
  // shared: names — the malformed part of the name is quoted back.
  EXPECT_NE(message_of("shared:").find("empty"), std::string::npos);
  EXPECT_NE(message_of("shared:jobs").find("'jobs'"), std::string::npos);
  EXPECT_NE(message_of("shared:jobs").find("start with '/'"),
            std::string::npos);
  EXPECT_NE(message_of("shared:/a/b").find("'/a/b'"), std::string::npos);
  const std::string oversized = "shared:/" + std::string(300, 'x');
  EXPECT_NE(message_of(oversized.c_str()).find("NAME_MAX"),
            std::string::npos);
  EXPECT_NE(message_of("shared:/name+traced").find("'traced'"),
            std::string::npos);
  EXPECT_NE(message_of("shared:/name,bogus=1").find("'bogus'"),
            std::string::npos);
}

#if !defined(_WIN32)

// ---------------------------------------------------------------------
// 'shared:' behavior through the factory (cross-process wiring proper
// is exercised by shared_counter_test.cpp; this covers the spec seam).

TEST(SpecShared, CanonicalFormRoundTripsAndDropsRedundantFutex) {
  const std::string name = "/mc-spec-" + std::to_string(::getpid());
  SharedCounter::Unlink(name);
  {
    auto c = make_counter("shared:" + name + "+futex");
    EXPECT_EQ(c->kind(), CounterKind::kShared);
    // '+futex' is redundant (the shared wait plane IS the futex word)
    // and canonicalizes away.
    EXPECT_EQ(c->spec(), "shared:" + name);
    c->Increment(2);
    EXPECT_TRUE(c->CheckFor(2, 0ms));

    // Round-tripping the canonical spec attaches to the SAME segment.
    auto again = make_counter(c->spec());
    EXPECT_EQ(again->spec(), c->spec());
    EXPECT_EQ(again->debug_value(), 2u);
    EXPECT_EQ(again->stats().epoch, 1u);

    // Non-default options print; defaults do not.
    auto tuned = make_counter("shared:" + name + ",detect=250,stale=500");
    EXPECT_EQ(tuned->spec(), "shared:" + name + ",detect=250,stale=500");
  }
  SharedCounter::Unlink(name);
}

TEST(SpecShared, BareKindNeedsAName) {
  EXPECT_THROW((void)make_counter(CounterKind::kShared),
               std::invalid_argument);
}

#endif  // !_WIN32

// ---------------------------------------------------------------------
// Behavior through the erased interface, per composed spec.

void exercise(const std::string& spec) {
  SCOPED_TRACE(spec);
  auto c = make_counter(spec);

  // Timed probe below the level fails fast, then an increment lands.
  EXPECT_FALSE(c->CheckFor(3, 0ms));
  std::atomic<bool> fired{false};
  c->OnReach(3, [&fired] { fired.store(true); });
  c->Increment(2);
  c->Increment(1);
  EXPECT_TRUE(c->CheckFor(3, 0ms));
  c->Check(3);
  EXPECT_TRUE(fired.load());
  EXPECT_EQ(c->debug_value(), 3u);

  // A parked waiter is woken through however many layers the spec has.
  std::jthread waiter([&c] { c->Check(5); });
  std::this_thread::sleep_for(1ms);
  c->Increment(2);
  waiter.join();
  EXPECT_TRUE(c->debug_snapshot().wait_levels.empty());
  EXPECT_GE(c->stats().increments, 3u);
}

TEST(SpecBehavior, ComposedSpecsIncrementAndWake) {
  for (const char* spec :
       {"list", "list-nopool", "single-cv", "futex", "spin", "hybrid",
        "hybrid+traced", "list+batching,batch=2",
        "hybrid+broadcast,shards=2", "futex+batching,batch=2+traced",
        "list+traced+broadcast,shards=2", "sharded", "sharded:4+hybrid",
        "sharded+list", "sharded:2+futex", "sharded:2+hybrid+traced",
        "hybrid,waitplane=heap", "list,waitplane=heap:2",
        "pooled:8+futex,waitplane=heap:3",
        "sharded:2+hybrid,waitplane=heap:4+traced"}) {
    exercise(spec);
  }
}

// Wait-plane metadata flows through the erased interface the same way
// stripe metadata does: wait_shard_count reports the heap's shard
// count, and list-plane counters report 1.
TEST(SpecBehavior, HeapPlaneSpecsExposeWaitShardMetadata) {
  auto heap = make_counter("hybrid,waitplane=heap:4");
  EXPECT_EQ(heap->stats().wait_shard_count, 4u);

  // Parking a waiter exercises the index; the depth high-water mark
  // and shard count surface through stats().
  std::jthread waiter([&heap] { heap->Check(2); });
  while (heap->stats().live_nodes == 0) std::this_thread::yield();
  heap->Increment(2);
  waiter.join();
#if MONOTONIC_ENABLE_STATS
  EXPECT_GE(heap->stats().index_depth, 1u);
#endif

  auto list = make_counter("hybrid");
  EXPECT_EQ(list->stats().wait_shard_count, 1u);
  EXPECT_EQ(list->stats().index_depth, 0u);

  // Auto shard count: at least one, resolved at construction.
  auto auto_heap = make_counter("list,waitplane=heap");
  EXPECT_GE(auto_heap->stats().wait_shard_count, 1u);
}

// Stripe metadata flows through the erased interface: stripe_count()
// and the stats snapshot agree, and unsharded counters report 1.
TEST(SpecBehavior, ShardedSpecsExposeStripeMetadata) {
  auto sharded = make_counter("sharded:4+hybrid");
  EXPECT_EQ(sharded->stripe_count(), 4u);
  EXPECT_EQ(sharded->stats().stripe_count, 4u);
  sharded->Increment(1);  // no waiters → private-stripe fast path
  EXPECT_EQ(sharded->debug_value(), 1u);
  EXPECT_GE(sharded->stats().fast_path_increments, 1u);

  auto plain = make_counter("hybrid");
  EXPECT_EQ(plain->stripe_count(), 1u);
  EXPECT_EQ(plain->stats().stripe_count, 1u);

  // Auto stripe count: at least one, and consistent across the surface.
  auto auto_sharded = make_counter("sharded");
  EXPECT_GE(auto_sharded->stripe_count(), 1u);
  EXPECT_EQ(auto_sharded->stripe_count(), auto_sharded->stats().stripe_count);
}

// Batching really batches: increments below the batch threshold stay
// pending until a flush point (a Check-family call) forces them down.
TEST(SpecBehavior, BatchingDefersUntilFlush) {
  auto c = make_counter("list+batching,batch=100");
  for (int i = 0; i < 99; ++i) c->Increment(1);
  // A timed probe flushes before sampling, so the 99 pending land now.
  EXPECT_TRUE(c->CheckFor(99, 0ms));
  EXPECT_EQ(c->debug_value(), 99u);
  c->Increment(1);  // 1 pending again
  c->Check(100);    // flush + wait
  EXPECT_EQ(c->debug_value(), 100u);
}

// Broadcast replicates increments into every shard; the merged snapshot
// and normalized stats must still look like ONE logical counter.
TEST(SpecBehavior, BroadcastActsAsOneLogicalCounter) {
  auto c = make_counter("list+broadcast,shards=3");
  c->Increment(7);
  EXPECT_EQ(c->debug_value(), 7u);
  EXPECT_EQ(c->stats().increments, 1u) << "per-shard fanout is normalized";
  c->Check(7);
  c->Reset();
  EXPECT_EQ(c->debug_value(), 0u);
}

}  // namespace
}  // namespace monotonic
