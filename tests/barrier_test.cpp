// barrier_test.cpp — the three barrier implementations (S2), including
// reuse across rounds and the instrumentation the benches rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "monotonic/sync/barrier.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

// Shared harness: `parties` threads run `rounds` rounds; within each
// round every thread bumps a per-round arrival count before the
// barrier, and after passing asserts the count is complete — which can
// only hold if nobody passed early.
template <typename PassFn>
void exercise_barrier(std::size_t parties, std::size_t rounds, PassFn pass) {
  std::vector<std::atomic<std::size_t>> arrivals(rounds);
  multithreaded_for(
      std::size_t{0}, parties, std::size_t{1},
      [&](std::size_t slot) {
        for (std::size_t r = 0; r < rounds; ++r) {
          arrivals[r].fetch_add(1, std::memory_order_relaxed);
          pass(slot);
          EXPECT_EQ(arrivals[r].load(std::memory_order_relaxed), parties)
              << "thread passed round " << r << " before all arrived";
        }
      },
      Execution::kMultithreaded);
}

class BarrierParties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BarrierParties, CentralBarrierSynchronizesEveryRound) {
  const std::size_t parties = GetParam();
  CentralBarrier barrier(parties);
  exercise_barrier(parties, 20, [&](std::size_t) { barrier.Pass(); });
  EXPECT_EQ(barrier.stat_rounds(), 20u);
}

TEST_P(BarrierParties, AtomicBarrierSynchronizesEveryRound) {
  const std::size_t parties = GetParam();
  AtomicBarrier barrier(parties);
  exercise_barrier(parties, 20, [&](std::size_t) { barrier.Pass(); });
  EXPECT_EQ(barrier.stat_rounds(), 20u);
}

TEST_P(BarrierParties, TreeBarrierSynchronizesEveryRound) {
  const std::size_t parties = GetParam();
  TreeBarrier barrier(parties);
  exercise_barrier(parties, 20, [&](std::size_t slot) { barrier.Pass(slot); });
}

INSTANTIATE_TEST_SUITE_P(Parties, BarrierParties,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "p" + std::to_string(i.param);
                         });

TEST(CentralBarrierTest, SinglePartyNeverBlocks) {
  CentralBarrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.Pass();
  EXPECT_EQ(barrier.stat_rounds(), 100u);
  EXPECT_EQ(barrier.stat_suspensions(), 0u);
}

TEST(CentralBarrierTest, SuspensionAccounting) {
  CentralBarrier barrier(3);
  multithreaded_for(0, 3, 1, [&](int) { barrier.Pass(); });
  // Exactly parties-1 threads suspend per round (the last flips sense).
  EXPECT_EQ(barrier.stat_rounds(), 1u);
  EXPECT_EQ(barrier.stat_suspensions(), 2u);
}

TEST(CentralBarrierTest, ZeroPartiesRejected) {
  EXPECT_THROW(CentralBarrier b(0), std::invalid_argument);
  EXPECT_THROW(AtomicBarrier b2(0), std::invalid_argument);
  EXPECT_THROW(TreeBarrier b3(0), std::invalid_argument);
}

TEST(TreeBarrierTest, SlotOutOfRangeRejected) {
  TreeBarrier barrier(2);
  EXPECT_THROW(barrier.Pass(2), std::invalid_argument);
}

TEST(BarrierInterleaving, TwoBarriersAlternate) {
  // The §5.1 double-barrier step structure: read-barrier then
  // write-barrier, repeated; exercises sense reversal under pipelining.
  CentralBarrier read_barrier(4), write_barrier(4);
  std::atomic<int> phase_sum{0};
  multithreaded_for(0, 4, 1, [&](int) {
    for (int t = 0; t < 10; ++t) {
      read_barrier.Pass();
      phase_sum.fetch_add(1);
      write_barrier.Pass();
    }
  });
  EXPECT_EQ(phase_sum.load(), 40);
  EXPECT_EQ(read_barrier.stat_rounds(), 10u);
  EXPECT_EQ(write_barrier.stat_rounds(), 10u);
}

}  // namespace
}  // namespace monotonic
