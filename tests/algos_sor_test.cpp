// algos_sor_test.cpp — red-black SOR: convergence, and bit-exact
// equivalence between sequential, barrier, and ragged-counter variants
// (the half-sweep protocol relies on red/black disjointness; these
// tests would catch any skew bug).

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "monotonic/algos/sor.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {
namespace {

Grid2D boundary_problem(std::size_t rows, std::size_t cols) {
  Grid2D grid(rows, cols, 0.0);
  for (std::size_t c = 0; c < cols; ++c) grid.at(0, c) = 100.0;  // hot top
  return grid;
}

Grid2D random_problem(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Grid2D grid(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      grid.at(r, c) = rng.uniform01() * 10.0;
    }
  }
  return grid;
}

SorOptions opts(std::size_t iterations, std::size_t threads,
                double omega = 1.5) {
  SorOptions o;
  o.iterations = iterations;
  o.num_threads = threads;
  o.omega = omega;
  return o;
}

TEST(SorSequential, ResidualDecreasesMonotonically) {
  const auto grid = boundary_problem(12, 12);
  double prev = sor_residual(grid);
  for (std::size_t iters : {5u, 20u, 80u}) {
    const double res = sor_residual(sor_sequential(grid, opts(iters, 1)));
    EXPECT_LT(res, prev);
    prev = res;
  }
}

TEST(SorSequential, ConvergesToHarmonicSolution) {
  // With enough iterations every interior cell approaches the average
  // of its neighbours (residual -> 0).
  const auto solved = sor_sequential(boundary_problem(10, 10),
                                     opts(2000, 1));
  EXPECT_LT(sor_residual(solved), 1e-9);
}

TEST(SorSequential, OmegaOneIsGaussSeidel) {
  // omega = 1 must still converge (plain Gauss-Seidel).
  const auto solved = sor_sequential(boundary_problem(8, 8),
                                     opts(2000, 1, 1.0));
  EXPECT_LT(sor_residual(solved), 1e-9);
}

TEST(SorSequential, BoundariesFixed) {
  const auto grid = boundary_problem(8, 9);
  const auto solved = sor_sequential(grid, opts(100, 1));
  for (std::size_t c = 0; c < 9; ++c) {
    EXPECT_DOUBLE_EQ(solved.at(0, c), 100.0);
    EXPECT_DOUBLE_EQ(solved.at(7, c), 0.0);
  }
}

struct SorParam {
  std::size_t rows;
  std::size_t cols;
  std::size_t iterations;
  std::size_t threads;
};

class SorEquivalence : public ::testing::TestWithParam<SorParam> {};

TEST_P(SorEquivalence, BarrierMatchesSequentialExactly) {
  const auto p = GetParam();
  const auto grid = random_problem(p.rows, p.cols, 60 + p.rows);
  const auto options = opts(p.iterations, p.threads);
  EXPECT_EQ(sor_barrier(grid, options), sor_sequential(grid, options));
}

TEST_P(SorEquivalence, RaggedMatchesSequentialExactly) {
  const auto p = GetParam();
  const auto grid = random_problem(p.rows, p.cols, 70 + p.rows);
  const auto options = opts(p.iterations, p.threads);
  EXPECT_EQ(sor_ragged(grid, options), sor_sequential(grid, options));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SorEquivalence,
    ::testing::Values(SorParam{3, 3, 10, 1}, SorParam{4, 5, 25, 2},
                      SorParam{8, 8, 50, 3}, SorParam{8, 8, 50, 6},
                      SorParam{16, 12, 30, 4}, SorParam{11, 23, 40, 5}),
    [](const ::testing::TestParamInfo<SorParam>& info) {
      return "r" + std::to_string(info.param.rows) + "c" +
             std::to_string(info.param.cols) + "_i" +
             std::to_string(info.param.iterations) + "_t" +
             std::to_string(info.param.threads);
    });

TEST(SorEquivalenceExtra, SkewedStripsStillExact) {
  const auto grid = random_problem(10, 10, 5);
  auto skewed = opts(20, 4);
  skewed.strip_hook = [](std::size_t s, std::size_t) {
    if (s == 0) std::this_thread::yield();
  };
  EXPECT_EQ(sor_ragged(grid, skewed), sor_sequential(grid, opts(20, 4)));
}

TEST(SorEquivalenceExtra, DeterministicAcrossRuns) {
  const auto grid = random_problem(12, 12, 6);
  const auto options = opts(30, 4);
  const auto first = sor_ragged(grid, options);
  for (int run = 0; run < 5; ++run) {
    ASSERT_EQ(sor_ragged(grid, options), first);
  }
}

TEST(SorEquivalenceExtra, OtherCounterImplementations) {
  const auto grid = random_problem(8, 8, 7);
  const auto options = opts(20, 3);
  EXPECT_EQ(sor_ragged_with<SingleCvCounter>(grid, options),
            sor_sequential(grid, options));
}

TEST(SorValidation, TooSmallGridRejected) {
  EXPECT_THROW(sor_sequential(Grid2D(2, 8), opts(1, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace monotonic
