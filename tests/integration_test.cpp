// integration_test.cpp — cross-module scenarios: checked workloads,
// counters alongside traditional mechanisms, phase reuse with Reset,
// and end-to-end determinism sweeps.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "monotonic/algos/floyd_warshall.hpp"
#include "monotonic/algos/graph.hpp"
#include "monotonic/algos/heat1d.hpp"
#include "monotonic/determinacy/checked.hpp"
#include "monotonic/determinacy/recorder.hpp"
#include "monotonic/determinacy/tracked_counter.hpp"
#include "monotonic/patterns/broadcast.hpp"
#include "monotonic/patterns/sequencer.hpp"
#include "monotonic/sync/barrier.hpp"
#include "monotonic/sync/semaphore.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

// The §5.2 accumulation run under the §6 checker: clean by construction.
TEST(Integration, CheckedOrderedAccumulationIsRaceFree) {
  RaceDetector detector;
  TrackedCounter<> turn(detector);
  Checked<double> result(detector, "result", 0.0);
  constexpr int kN = 16;

  multithreaded_for(0, kN, 1, [&](int i) {
    const double subresult = 1.0 / (1 + i);
    turn.Check(static_cast<counter_value_t>(i));
    result.update([&](double r) { return r + subresult; });
    turn.Increment(1);
  });

  EXPECT_EQ(detector.race_count(), 0u);
  double expected = 0.0;
  for (int i = 0; i < kN; ++i) expected += 1.0 / (1 + i);
  EXPECT_DOUBLE_EQ(result.unchecked(), expected);
}

// The same program with the Check/Increment pair removed must be
// flagged — the checker catches the broken variant, not just blessed
// ones.
TEST(Integration, CheckedUnorderedAccumulationIsFlagged) {
  RaceDetector detector;
  Checked<double> result(detector, "result", 0.0);
  multithreaded_for(0, 8, 1, [&](int i) {
    result.update([&](double r) { return r + i; });
  });
  EXPECT_GT(detector.race_count(), 0u);
}

// Counter + barrier in one program: phases inside a step use a counter,
// steps are delimited by a barrier.
TEST(Integration, CounterinsideBarrierPhases) {
  constexpr std::size_t kThreads = 4;
  constexpr int kSteps = 20;
  CentralBarrier barrier(kThreads);
  std::vector<Counter> step_counter(kSteps);
  std::atomic<int> total{0};

  multithreaded_for(
      std::size_t{0}, kThreads, std::size_t{1},
      [&](std::size_t t) {
        for (int s = 0; s < kSteps; ++s) {
          // In-step pipeline: thread t waits for t predecessors.
          step_counter[s].Check(t);
          total.fetch_add(1);
          step_counter[s].Increment(1);
          barrier.Pass();
        }
      },
      Execution::kMultithreaded);

  EXPECT_EQ(total.load(), static_cast<int>(kThreads) * kSteps);
  EXPECT_EQ(barrier.stat_rounds(), static_cast<std::uint64_t>(kSteps));
}

// Reset-based phase reuse (§2): one counter serving consecutive phases.
TEST(Integration, ResetBetweenAlgorithmPhases) {
  Counter c;
  for (int phase = 0; phase < 10; ++phase) {
    multithreaded_block(
        [&] {
          for (int i = 0; i < 5; ++i) c.Increment(1);
        },
        [&] { c.Check(5); });
    c.Reset();
    auto snap = c.debug_snapshot();
    ASSERT_EQ(snap.value, 0u);
    ASSERT_TRUE(snap.wait_levels.empty());
  }
}

// Producer gates a broadcast channel with a semaphore-paced source:
// counters and semaphores composing in one program.
TEST(Integration, SemaphorePacedBroadcast) {
  constexpr std::size_t kItems = 64;
  BroadcastChannel<int> channel(kItems);
  Semaphore budget(8);  // producer may run at most 8 items ahead of ack
  std::atomic<long long> seen_sum{0};

  multithreaded_block(
      [&] {
        auto writer = channel.writer(1);
        for (std::size_t i = 0; i < kItems; ++i) {
          budget.acquire();
          writer.publish(static_cast<int>(i));
        }
      },
      [&] {
        auto reader = channel.reader(1);
        reader.for_each([&](std::size_t, const int& item) {
          seen_sum += item;
          budget.release();
        });
      });

  EXPECT_EQ(seen_sum.load(),
            static_cast<long long>(kItems) * (kItems - 1) / 2);
}

// End-to-end determinism sweep across the two flagship workloads with
// scheduling perturbation: results must be identical on every run.
TEST(Integration, FlagshipWorkloadsAreScheduleInvariant) {
  const auto edges = random_graph(24, {.seed = 2026});
  const auto rod = [] {
    std::vector<double> s(10);
    std::iota(s.begin(), s.end(), 0.0);
    return s;
  }();

  FwOptions fw_options;
  fw_options.num_threads = 3;
  HeatOptions heat_options{.steps = 20, .cell_hook = {}};

  const auto fw_first = fw_counter(edges, fw_options);
  const auto heat_first = heat_ragged(rod, heat_options);
  for (int run = 0; run < 5; ++run) {
    FwOptions noisy = fw_options;
    noisy.iteration_hook = [run](std::size_t t, std::size_t k) {
      if ((t + k + static_cast<std::size_t>(run)) % 2) {
        std::this_thread::yield();
      }
    };
    ASSERT_EQ(fw_counter(edges, noisy), fw_first);
    ASSERT_EQ(heat_ragged(rod, heat_options), heat_first);
  }
  EXPECT_EQ(fw_first, fw_sequential(edges));
  EXPECT_EQ(heat_first, heat_sequential(rod, heat_options));
}

}  // namespace
}  // namespace monotonic
