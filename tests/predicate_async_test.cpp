// predicate_async_test.cpp — the predicate wait surface and the async
// completion plane.
//
// Covers the pieces PR 8 layered onto the engine: Check(pred) with
// AutoSynch-style threshold reduction, check_any / check_sum_at_least
// riding the OnReach index instead of polling, the sum_of expression
// sugar, the CompletionExecutor seam (inline / manual / thread pool),
// and the C++20 awaitable adapter (`co_await reach(...)`,
// `when_all`).  Poison and cancellation interactions live in
// counter_failure_test.cpp; this file is the happy-path and
// plumbing-correctness suite.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <memory>
#include <stdexcept>
#include <stop_token>
#include <thread>
#include <utility>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/awaitable.hpp"
#include "monotonic/core/completion.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/counter_decorator.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/core/multi.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/support/trace.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- executors

TEST(CompletionExecutorTest, InlineRunsSynchronously) {
  InlineExecutor exec;
  bool ran = false;
  exec.post([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(CompletionExecutorTest, ManualQueuesUntilDrained) {
  ManualExecutor exec;
  int ran = 0;
  exec.post([&] { ++ran; });
  exec.post([&] { ++ran; });
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(exec.pending(), 2u);
  EXPECT_TRUE(exec.drain_one());
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(exec.drain(), 1u);
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(exec.drain_one());
}

TEST(CompletionExecutorTest, ManualDrainRunsWorkPostedByWork) {
  ManualExecutor exec;
  int ran = 0;
  exec.post([&] {
    ++ran;
    exec.post([&] { ++ran; });
  });
  EXPECT_EQ(exec.drain(), 2u);
  EXPECT_EQ(ran, 2);
}

TEST(CompletionExecutorTest, ThreadPoolDestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPoolExecutor exec(2);
    EXPECT_EQ(exec.worker_count(), 2u);
    for (int i = 0; i < 64; ++i) {
      exec.post([&] { ran.fetch_add(1); });
    }
  }  // dtor must finish everything already queued before joining
  EXPECT_EQ(ran.load(), 64);
}

TEST(CompletionExecutorTest, ThreadPoolZeroThreadsClampsToOne) {
  ThreadPoolExecutor exec(0);
  EXPECT_EQ(exec.worker_count(), 1u);
}

// ---------------------------------------------------------- Check(predicate)

TEST(PredicateCheckTest, SatisfiedPredicateReturnsImmediately) {
  Counter c;
  c.Increment(10);
  c.Check([](counter_value_t v) { return v >= 7; });
  c.Check([](counter_value_t v) { return v * 2 >= 20; });
  EXPECT_EQ(c.stats().predicate_checks, 2u);
}

TEST(PredicateCheckTest, PredicateTrueAtZeroNeverParks) {
  Counter c;  // value 0, no incrementer anywhere
  c.Check([](counter_value_t) { return true; });
}

TEST(PredicateCheckTest, NeverTruePredicateIsRejected) {
  Counter c;
  // False at the maximum value ⇒ no increment can ever signal it; the
  // reduction refuses rather than parking a thread forever.
  EXPECT_THROW(c.Check([](counter_value_t) { return false; }),
               std::invalid_argument);
}

TEST(PredicateCheckTest, ParkedPredicateWakesAtExactThreshold) {
  HybridCounter c;
  std::thread incrementer([&] {
    std::this_thread::sleep_for(20ms);
    c.Increment(2);
    std::this_thread::sleep_for(10ms);
    c.Increment(1);
  });
  c.Check([](counter_value_t v) { return v >= 3; });
  EXPECT_GE(c.debug_value(), 3u);
  incrementer.join();
}

TEST(PredicateCheckTest, StopTokenCancelsPredicateWait) {
  Counter c;
  std::stop_source source;
  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    returned.store(
        c.Check([](counter_value_t v) { return v >= 1000; },
                source.get_token()));
  });
  std::this_thread::sleep_for(20ms);
  source.request_stop();
  waiter.join();
  EXPECT_FALSE(returned.load());
}

// ------------------------------------------------------------- check_any

TEST(CheckAnyTest, ReturnsIndexOfFirstConditionToFire) {
  Counter a, b;
  std::thread incrementer([&] {
    std::this_thread::sleep_for(20ms);
    b.Increment(2);
  });
  const std::size_t winner =
      check_any({CounterCondition<Counter>{&a, 5},
                 CounterCondition<Counter>{&b, 2}});
  EXPECT_EQ(winner, 1u);
  incrementer.join();
}

TEST(CheckAnyTest, AlreadySatisfiedLowestIndexWins) {
  Counter a, b;
  a.Increment(3);
  b.Increment(3);
  const std::size_t winner =
      check_any({CounterCondition<Counter>{&a, 1},
                 CounterCondition<Counter>{&b, 1}});
  EXPECT_EQ(winner, 0u);
}

TEST(CheckAnyTest, PoisonedConditionFailsTheWait) {
  Counter a, b;
  a.Poison(std::make_exception_ptr(std::runtime_error("any bane")));
  EXPECT_THROW(check_any({CounterCondition<Counter>{&a, 5},
                          CounterCondition<Counter>{&b, 5}}),
               CounterPoisonedError);
}

TEST(CheckAnyTest, EmptyConditionListIsRejected) {
  EXPECT_THROW(check_any(std::initializer_list<CounterCondition<Counter>>{}),
               std::invalid_argument);
}

// ------------------------------------------------------ check_sum_at_least

TEST(CheckSumTest, AlreadySatisfiedReturnsWithoutWaiting) {
  Counter a, b;
  a.Increment(6);
  b.Increment(4);
  check_sum_at_least({&a, &b}, 10);
}

TEST(CheckSumTest, WaitsUntilCombinedSumReachesThreshold) {
  HybridCounter a, b;
  std::thread ta([&] {
    for (int i = 0; i < 5; ++i) {
      std::this_thread::sleep_for(5ms);
      a.Increment(1);
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < 5; ++i) {
      std::this_thread::sleep_for(5ms);
      b.Increment(1);
    }
  });
  check_sum_at_least({&a, &b}, 8);
  EXPECT_GE(a.debug_value() + b.debug_value(), 8u);
  ta.join();
  tb.join();
}

TEST(CheckSumTest, SumExpressionSugar) {
  Counter a, b, c;
  std::thread incrementer([&] {
    std::this_thread::sleep_for(20ms);
    a.Increment(2);
    b.Increment(1);
    c.Increment(2);
  });
  (sum_of(a, b, c) >= 5).wait();
  EXPECT_GE(a.debug_value() + b.debug_value() + c.debug_value(), 5u);
  incrementer.join();
}

// ------------------------------------------------- the completion executor

WaitListOptions with_executor(std::shared_ptr<CompletionExecutor> exec) {
  WaitListOptions options;
  options.completion_executor = std::move(exec);
  return options;
}

TEST(ExecutorPlaneTest, ManualExecutorDefersReachedCallbacks) {
  auto exec = std::make_shared<ManualExecutor>();
  Counter c(with_executor(exec));
  std::atomic<int> ran{0};
  c.OnReach(2, [&] { ran.fetch_add(1); });
  c.Increment(2);
  EXPECT_EQ(ran.load(), 0);  // detached under the lock, not yet delivered
  EXPECT_EQ(exec->drain(), 1u);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(c.stats().async_completions, 1u);
}

TEST(ExecutorPlaneTest, ImmediateFireAlsoRoutesThroughExecutor) {
  auto exec = std::make_shared<ManualExecutor>();
  Counter c(with_executor(exec));
  c.Increment(5);
  bool ran = false;
  // Registration on an already-reached level: same delivery context as
  // a late fire, so callbacks observe ONE execution discipline.
  c.OnReach(3, [&] { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(exec->drain(), 1u);
  EXPECT_TRUE(ran);
}

TEST(ExecutorPlaneTest, PoisonDeliversErrorsThroughExecutor) {
  auto exec = std::make_shared<ManualExecutor>();
  Counter c(with_executor(exec));
  std::atomic<bool> delivered{false};
  c.OnReach(
      10, [] { FAIL() << "fn must not run"; },
      [&](std::exception_ptr) { delivered.store(true); });
  c.Poison(std::make_exception_ptr(std::runtime_error("queued bane")));
  EXPECT_FALSE(delivered.load());
  EXPECT_EQ(exec->drain(), 1u);
  EXPECT_TRUE(delivered.load());
}

TEST(ExecutorPlaneTest, PoolExecutorUnblocksTheIncrementer) {
  auto exec = std::make_shared<ThreadPoolExecutor>(1);
  HybridCounter c(with_executor(exec));
  std::atomic<bool> callback_done{false};
  c.OnReach(1, [&] {
    std::this_thread::sleep_for(50ms);
    callback_done.store(true);
  });
  const auto start = std::chrono::steady_clock::now();
  c.Increment(1);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The slow callback runs on the pool worker; Increment must return
  // well before it finishes (generous bound for sanitizer builds).
  EXPECT_LT(elapsed, 40ms) << "Increment waited for the slow callback";
  for (int spin = 0; spin < 2000 && !callback_done.load(); ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(callback_done.load());
}

// ------------------------------------------------------------- awaitables

// state: 0 = pending, 1 = reached.
template <typename C>
DetachedTask await_level(C& counter, counter_value_t level,
                         std::atomic<int>& state) {
  co_await reach(counter, level);
  state.store(1);
}

template <typename A, typename B>
DetachedTask await_both(A& a, counter_value_t la, B& b, counter_value_t lb,
                        std::atomic<int>& state) {
  co_await when_all(reach(a, la), reach(b, lb));
  state.store(1);
}

int poll_state(std::atomic<int>& state) {
  for (int spin = 0; spin < 2000 && state.load() == 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  return state.load();
}

TEST(AwaitableTest, AlreadyReachedResumesWithoutSuspending) {
  Counter c;
  c.Increment(3);
  std::atomic<int> state{0};
  await_level(c, 3, state);
  // Inline executor + already-reached level: the immediate OnReach fire
  // completes the handshake before arm(), so the frame never suspends.
  EXPECT_EQ(state.load(), 1);
}

TEST(AwaitableTest, ResumesAfterIncrement) {
  Counter c;
  std::atomic<int> state{0};
  await_level(c, 2, state);
  EXPECT_EQ(state.load(), 0);
  c.Increment(1);
  EXPECT_EQ(state.load(), 0);
  c.Increment(1);
  EXPECT_EQ(poll_state(state), 1);
}

TEST(AwaitableTest, ManyCheapLogicalWaitersOneThread) {
  HybridCounter c;
  constexpr int kWaiters = 1000;
  std::atomic<int> done{0};
  std::vector<std::atomic<int>> states(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    await_level(c, static_cast<counter_value_t>(i + 1), states[i]);
  }
  for (int i = 0; i < kWaiters; ++i) c.Increment(1);
  for (int i = 0; i < kWaiters; ++i) done += poll_state(states[i]);
  EXPECT_EQ(done.load(), kWaiters);
}

TEST(AwaitableTest, WhenAllWaitsForEveryCondition) {
  Counter a;
  HybridCounter b;  // heterogeneous counter types compose
  std::atomic<int> state{0};
  await_both(a, 2, b, 1, state);
  a.Increment(2);
  EXPECT_EQ(state.load(), 0);  // b not yet at 1
  b.Increment(1);
  EXPECT_EQ(poll_state(state), 1);
}

TEST(AwaitableTest, WhenAllAlreadySatisfiedResumesInline) {
  Counter a, b;
  a.Increment(5);
  b.Increment(5);
  std::atomic<int> state{0};
  await_both(a, 1, b, 1, state);
  EXPECT_EQ(state.load(), 1);
}

TEST(AwaitableTest, ResumptionRunsOnTheExecutor) {
  auto exec = std::make_shared<ManualExecutor>();
  Counter c(with_executor(exec));
  std::atomic<int> state{0};
  await_level(c, 1, state);
  c.Increment(1);
  EXPECT_EQ(state.load(), 0);  // resumption is queued, not inline
  exec->drain();
  EXPECT_EQ(state.load(), 1);
}

// ----------------------------------------------- decorators and type erasure

TEST(TracedDecoratorTest, RecordsCompletionEvents) {
  Tracer tracer;
  tracer.enable();
  Traced<Counter> c("jobs", tracer);
  c.OnReach(2, [] {});
  c.Increment(2);
  bool saw_completion = false;
  for (const auto& e : tracer.events()) {
    if (e.kind == TraceEventKind::kCompletion) {
      saw_completion = true;
      EXPECT_EQ(e.arg, 2u);
      EXPECT_STREQ(e.name, "jobs");
    }
  }
  EXPECT_TRUE(saw_completion);
}

TEST(TracedDecoratorTest, PredicateCheckTracesLikeCheck) {
  Tracer tracer;
  tracer.enable();
  Traced<Counter> c("pred", tracer);
  c.Increment(4);
  c.Check([](counter_value_t v) { return v >= 4; });
  bool saw_fast = false;
  for (const auto& e : tracer.events()) {
    if (e.kind == TraceEventKind::kCheckFast) saw_fast = true;
  }
  EXPECT_TRUE(saw_fast);
}

TEST(BatchingDecoratorTest, PredicateCheckFlushesPendingIncrements) {
  Batching<Counter> c(8);  // batch of 8: three 1s stay locally pending
  c.Increment(1);
  c.Increment(1);
  c.Increment(1);
  // Without the flush-first rule this could park forever on its own
  // unpublished increments.
  c.Check([](counter_value_t v) { return v >= 3; });
}

TEST(AnyHandleTest, PredicateCheckThroughTypeErasure) {
  AnyHandle h(make_counter("hybrid"));
  h.Increment(6);
  h.Check([](counter_value_t v) { return v >= 5; });
  EXPECT_GE(h.value_lower_bound(), 6u);
}

TEST(AnyHandleTest, SpecPoolExecutorDelivers) {
  AnyHandle h(make_counter("list,executor=pool:2"));
  std::atomic<bool> ran{false};
  h.OnReach(1, [&] { ran.store(true); });
  h.Increment(1);
  for (int spin = 0; spin < 2000 && !ran.load(); ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(ran.load());
}

TEST(AnyHandleTest, AwaitableOverTypeErasedCounter) {
  AnyHandle h(make_counter("spin"));
  std::atomic<int> state{0};
  await_level(h, 2, state);
  h.Increment(2);
  EXPECT_EQ(poll_state(state), 1);
}

// ----------------------------------- detached-coroutine error routing

/// Restores the previous DetachedTask error handler on scope exit so a
/// failing test can't poison later ones.
class ScopedDetachedHandler {
 public:
  explicit ScopedDetachedHandler(DetachedTaskErrorHandler h)
      : prev_(set_detached_task_error_handler(std::move(h))) {}
  ~ScopedDetachedHandler() { set_detached_task_error_handler(std::move(prev_)); }

 private:
  DetachedTaskErrorHandler prev_;
};

template <typename C>
DetachedTask throw_after_reach(C& counter, counter_value_t level) {
  co_await reach(counter, level);
  throw std::runtime_error("boom after resume");
}

TEST(DetachedTaskErrorTest, EscapedExceptionRoutesToHandlerNotTerminate) {
  std::atomic<int> calls{0};
  std::string message;
  ScopedDetachedHandler guard([&](std::exception_ptr ep) {
    try {
      std::rethrow_exception(ep);
    } catch (const std::runtime_error& e) {
      message = e.what();
      calls.fetch_add(1);
    }
  });

  Counter c;
  throw_after_reach(c, 2);
  // Resuming the coroutine makes its body throw; without the handler
  // seam this Increment would std::terminate the process.
  c.Increment(2);
  for (int spin = 0; spin < 2000 && calls.load() == 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(message, "boom after resume");
}

TEST(DetachedTaskErrorTest, UncaughtPoisonFromAwaitLandsInHandler) {
  std::atomic<bool> saw_poison{false};
  ScopedDetachedHandler guard([&](std::exception_ptr ep) {
    try {
      std::rethrow_exception(ep);
    } catch (const CounterPoisonedError&) {
      saw_poison.store(true);
    } catch (...) {
    }
  });

  Counter c;
  std::atomic<int> state{0};
  await_level(c, 5, state);  // body has no try/catch around co_await
  c.Poison(std::make_exception_ptr(CounterPoisonedError("producer died")));
  for (int spin = 0; spin < 2000 && !saw_poison.load(); ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(saw_poison.load());
  EXPECT_EQ(state.load(), 0);  // the task died before its store
}

TEST(DetachedTaskErrorTest, SetHandlerReturnsPreviousAndEmptyRestoresDefault) {
  DetachedTaskErrorHandler first = [](std::exception_ptr) {};
  auto prev0 = set_detached_task_error_handler(first);
  auto prev1 = set_detached_task_error_handler({});  // back to default
  EXPECT_TRUE(static_cast<bool>(prev1));              // got `first` back
  auto prev2 = set_detached_task_error_handler(std::move(prev0));
  EXPECT_FALSE(static_cast<bool>(prev2));             // default slot is empty
  set_detached_task_error_handler(std::move(prev2));
}

}  // namespace
}  // namespace monotonic
