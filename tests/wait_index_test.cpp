// wait_index_test.cpp — structural tests for the sharded hierarchical
// level index (WaitPlaneKind::kHeap) behind the WaitIndex seam.
//
// These drive WaitList / CallbackListT directly (no threads, no
// policies): the §7 contract — ascending release order, released
// prefix exactness, O(live levels) storage under timeouts — must hold
// identically for both representations, so the heaviest test here is
// differential: one seeded operation stream applied to a list plane
// and a heap plane side by side, comparing every observable after
// every step.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/wait_list.hpp"

namespace {

using namespace monotonic;

struct StubSignal {
  void reset() {}
};

using List = WaitList<StubSignal>;
using Node = List::Node;

WaitListOptions heap_options(std::size_t shards) {
  WaitListOptions options;
  options.wait_plane = WaitPlaneKind::kHeap;
  options.wait_shards = shards;
  return options;
}

TEST(WaitIndex, ReportsConfiguration) {
  CounterStats stats;
  List list(WaitListOptions{}, stats);
  EXPECT_EQ(list.kind(), WaitPlaneKind::kList);
  EXPECT_EQ(list.wait_shard_count(), 1u);

  CounterStats heap_stats;
  List heap(heap_options(4), heap_stats);
  EXPECT_EQ(heap.kind(), WaitPlaneKind::kHeap);
  EXPECT_EQ(heap.wait_shard_count(), 4u);
  EXPECT_EQ(heap_stats.snapshot().wait_shard_count, 4u);
  // wait_shards = 0 resolves to one shard, still a heap.
  CounterStats one_stats;
  List one(heap_options(0), one_stats);
  EXPECT_EQ(one.kind(), WaitPlaneKind::kHeap);
  EXPECT_EQ(one.wait_shard_count(), 1u);
}

TEST(WaitIndex, ReleasesAscendingAcrossShards) {
  CounterStats stats;
  List heap(heap_options(4), stats);
  // Arm 100 levels in a scrambled order that hits every shard.
  std::vector<counter_value_t> levels;
  for (counter_value_t l = 1; l <= 100; ++l) levels.push_back(l);
  std::mt19937 rng(7);
  std::shuffle(levels.begin(), levels.end(), rng);
  std::vector<Node*> nodes;
  for (counter_value_t l : levels) nodes.push_back(heap.acquire(l));
  EXPECT_EQ(heap.live_level_count(), 100u);
  EXPECT_EQ(heap.min_level(), 1u);

  std::vector<counter_value_t> released;
  heap.release_prefix(50, [&](Node& node) { released.push_back(node.level); });
  ASSERT_EQ(released.size(), 50u);
  EXPECT_TRUE(std::is_sorted(released.begin(), released.end()));
  EXPECT_EQ(released.front(), 1u);
  EXPECT_EQ(released.back(), 50u);
  EXPECT_EQ(heap.min_level(), 51u);
  EXPECT_EQ(heap.live_level_count(), 50u);

  // Joining an existing level reuses its node; a new one links fresh.
  Node* join = heap.acquire(60);
  EXPECT_EQ(join->waiters, 2u);
  EXPECT_EQ(heap.live_level_count(), 50u);

  std::vector<counter_value_t> aborted;
  heap.abort_all([&](Node& node) {
    EXPECT_TRUE(node.aborted);
    aborted.push_back(node.level);
  });
  ASSERT_EQ(aborted.size(), 50u);
  EXPECT_TRUE(std::is_sorted(aborted.begin(), aborted.end()));
  EXPECT_TRUE(heap.empty());

  for (Node* node : nodes) heap.leave(node);
  heap.leave(join);
  EXPECT_EQ(heap.waiter_count(), 0u);
}

TEST(WaitIndex, BulkDrainCrossoverKeepsOrderAndSurvivors) {
  // A release past detail::kBulkWakeThreshold levels leaves the pop
  // loop for the sort-merge drain (drain_heap_sorted): the wake order
  // must stay globally ascending and the surviving entries must still
  // be a fully working index — back-links intact for timed unlinks,
  // joins finding their nodes, later releases correct.
  CounterStats stats;
  List heap(heap_options(5), stats);
  std::vector<counter_value_t> levels;
  for (counter_value_t l = 1; l <= 300; ++l) levels.push_back(l);
  std::mt19937 rng(11);
  std::shuffle(levels.begin(), levels.end(), rng);
  std::vector<Node*> nodes;
  for (counter_value_t l : levels) nodes.push_back(heap.acquire(l));

  std::vector<counter_value_t> released;
  heap.release_prefix(200, [&](Node& node) { released.push_back(node.level); });
  ASSERT_EQ(released.size(), 200u);
  EXPECT_TRUE(std::is_sorted(released.begin(), released.end()));
  EXPECT_EQ(released.front(), 1u);
  EXPECT_EQ(released.back(), 200u);
  EXPECT_EQ(heap.min_level(), 201u);
  EXPECT_EQ(heap.live_level_count(), 100u);

  // The survivors were re-based by discard_prefix: a timed unlink from
  // the middle exercises the heap_pos back-link assertion, and a join
  // must find its node through the hash.
  Node* mid = nullptr;
  for (Node* node : nodes) {
    if (node->level == 250) mid = node;
  }
  ASSERT_NE(mid, nullptr);
  heap.leave(mid);
  EXPECT_EQ(heap.live_level_count(), 99u);
  Node* join = heap.acquire(299);
  EXPECT_EQ(join->waiters, 2u);

  released.clear();
  heap.release_prefix(kNoArmedLevel - 1,
                      [&](Node& node) { released.push_back(node.level); });
  ASSERT_EQ(released.size(), 99u);
  EXPECT_TRUE(std::is_sorted(released.begin(), released.end()));
  EXPECT_EQ(released.front(), 201u);
  EXPECT_TRUE(heap.empty());

  for (Node* node : nodes) {
    if (node != mid) heap.leave(node);
  }
  heap.leave(join);
  EXPECT_EQ(heap.waiter_count(), 0u);
}

TEST(WaitIndex, RadixDrainSortsLargeShards) {
  // Past kRadixMinSort (4096) entries per shard the bulk drain's sort
  // switches from introsort to the LSD radix pass — cover it with
  // ~10k-entry shards, including a partial release so the radix-sorted
  // survivors stay a working index.
  CounterStats stats;
  List heap(heap_options(2), stats);
  std::vector<counter_value_t> levels;
  for (counter_value_t l = 1; l <= 20'000; ++l) levels.push_back(l);
  std::mt19937 rng(17);
  std::shuffle(levels.begin(), levels.end(), rng);
  std::vector<Node*> nodes;
  for (counter_value_t l : levels) nodes.push_back(heap.acquire(l));

  std::vector<counter_value_t> released;
  heap.release_prefix(15'000,
                      [&](Node& node) { released.push_back(node.level); });
  ASSERT_EQ(released.size(), 15'000u);
  EXPECT_TRUE(std::is_sorted(released.begin(), released.end()));
  EXPECT_EQ(released.front(), 1u);
  EXPECT_EQ(released.back(), 15'000u);
  EXPECT_EQ(heap.min_level(), 15'001u);

  released.clear();
  heap.abort_all([&](Node& node) { released.push_back(node.level); });
  ASSERT_EQ(released.size(), 5'000u);
  EXPECT_TRUE(std::is_sorted(released.begin(), released.end()));
  EXPECT_EQ(released.front(), 15'001u);
  EXPECT_TRUE(heap.empty());

  for (Node* node : nodes) heap.leave(node);
  EXPECT_EQ(heap.waiter_count(), 0u);
}

TEST(WaitIndex, CallbackIndexBulkDetachKeepsLevelOrder) {
  // Same crossover for the callback plane: a detach_reached past the
  // threshold must still run callbacks in global level order.
  CallbackList callbacks(WaitPlaneKind::kHeap, 4);
  std::vector<counter_value_t> levels;
  for (counter_value_t l = 1; l <= 250; ++l) levels.push_back(l);
  std::mt19937 rng(13);
  std::shuffle(levels.begin(), levels.end(), rng);
  std::vector<counter_value_t> ran;
  for (counter_value_t l : levels) {
    callbacks.insert(l, [&ran, l] { ran.push_back(l); });
  }

  CallbackList::run_chain(callbacks.detach_reached(180));
  ASSERT_EQ(ran.size(), 180u);
  EXPECT_TRUE(std::is_sorted(ran.begin(), ran.end()));
  EXPECT_EQ(ran.front(), 1u);
  EXPECT_EQ(ran.back(), 180u);
  EXPECT_EQ(callbacks.min_level(), 181u);

  std::vector<counter_value_t> rest;
  CallbackList::Node* chain = callbacks.detach_all();
  for (CallbackList::Node* n = chain; n != nullptr; n = n->next) {
    rest.push_back(n->level);
  }
  EXPECT_TRUE(callbacks.empty());
  ASSERT_EQ(rest.size(), 70u);
  EXPECT_TRUE(std::is_sorted(rest.begin(), rest.end()));
  CallbackList::run_chain(chain);
}

TEST(WaitIndex, TimedOutWaiterUnlinksFromTheMiddle) {
  CounterStats stats;
  List heap(heap_options(2), stats);
  Node* a = heap.acquire(10);
  Node* b = heap.acquire(20);
  Node* c = heap.acquire(30);
  Node* d = heap.acquire(40);
  // b "times out": last waiter at its level, node still linked.
  heap.leave(b);
  EXPECT_EQ(heap.live_level_count(), 3u);
  std::vector<counter_value_t> released;
  heap.release_prefix(kNoArmedLevel - 1,
                      [&](Node& node) { released.push_back(node.level); });
  EXPECT_EQ(released, (std::vector<counter_value_t>{10, 30, 40}));
  heap.leave(a);
  heap.leave(c);
  heap.leave(d);
  EXPECT_TRUE(heap.empty());
}

TEST(WaitIndex, AdmissionBoundsUseTheShardHash) {
  CounterStats stats;
  WaitListOptions options = heap_options(2);
  options.max_levels = 2;
  List heap(options, stats);
  Node* a = heap.acquire(1);
  Node* b = heap.acquire(2);
  EXPECT_TRUE(heap.admission_would_exceed(3));   // would link a third level
  EXPECT_FALSE(heap.admission_would_exceed(2));  // joining is always fine
  heap.leave(a);
  EXPECT_FALSE(heap.admission_would_exceed(3));
  heap.leave(b);
  EXPECT_TRUE(heap.empty());
}

TEST(WaitIndex, SnapshotIsAscending) {
  CounterStats stats;
  List heap(heap_options(3), stats);
  std::vector<Node*> nodes;
  for (counter_value_t l : {17, 3, 29, 11, 5}) nodes.push_back(heap.acquire(l));
  std::vector<DebugWaitLevel> snap;
  heap.snapshot_into(snap);
  ASSERT_EQ(snap.size(), 5u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].level, snap[i].level);
  }
  heap.release_prefix(kNoArmedLevel - 1, [](Node&) {});
  for (Node* node : nodes) heap.leave(node);
}

#if MONOTONIC_ENABLE_STATS
TEST(WaitIndex, RecordsDepthAndBulkWakes) {
  CounterStats stats;
  List heap(heap_options(1), stats);
  std::vector<Node*> nodes;
  for (counter_value_t l = 1; l <= 15; ++l) nodes.push_back(heap.acquire(l));
  // 15 nodes in one shard: a full 4-deep binary heap.
  EXPECT_EQ(stats.snapshot().index_depth, 4u);
  heap.release_prefix(15, [](Node&) {});
  EXPECT_EQ(stats.snapshot().bulk_wakes, 1u);  // one pass, 15 levels
  for (Node* node : nodes) heap.leave(node);

  // A single-level release is not a bulk wake.
  Node* solo = heap.acquire(99);
  heap.release_prefix(99, [](Node&) {});
  heap.leave(solo);
  EXPECT_EQ(stats.snapshot().bulk_wakes, 1u);
}
#endif

// The differential test: one seeded operation stream, two planes, every
// observable compared after every step.  The heap plane must be
// indistinguishable from §7's list through the WaitList API.
TEST(WaitIndex, DifferentialAgainstTheListPlane) {
  for (std::uint32_t seed : {1u, 2u, 3u, 4u, 5u}) {
    CounterStats list_stats, heap_stats;
    List list(WaitListOptions{}, list_stats);
    List heap(heap_options(3), heap_stats);
    std::mt19937 rng(seed);
    // Parallel node registries: entry i of each vector is the same
    // logical waiter on both planes.
    std::vector<Node*> list_nodes, heap_nodes;
    std::vector<bool> left;
    counter_value_t value = 0;  // released levels stay <= value

    const auto compare = [&](const char* what) {
      EXPECT_EQ(list.min_level(), heap.min_level()) << what;
      EXPECT_EQ(list.waiter_count(), heap.waiter_count()) << what;
      EXPECT_EQ(list.live_level_count(), heap.live_level_count()) << what;
      std::vector<DebugWaitLevel> ls, hs;
      list.snapshot_into(ls);
      heap.snapshot_into(hs);
      ASSERT_EQ(ls.size(), hs.size()) << what;
      for (std::size_t i = 0; i < ls.size(); ++i) {
        EXPECT_EQ(ls[i].level, hs[i].level) << what;
        EXPECT_EQ(ls[i].waiters, hs[i].waiters) << what;
      }
    };

    for (int step = 0; step < 400; ++step) {
      const int op = static_cast<int>(rng() % 100);
      if (op < 55) {  // acquire a (possibly shared) level above value
        const counter_value_t level = value + 1 + rng() % 40;
        list_nodes.push_back(list.acquire(level));
        heap_nodes.push_back(heap.acquire(level));
        left.push_back(false);
      } else if (op < 80) {  // a random live waiter leaves (timeout)
        std::vector<std::size_t> live;
        for (std::size_t i = 0; i < left.size(); ++i) {
          if (!left[i]) live.push_back(i);
        }
        if (live.empty()) continue;
        const std::size_t pick = live[rng() % live.size()];
        list.leave(list_nodes[pick]);
        heap.leave(heap_nodes[pick]);
        left[pick] = true;
      } else {  // increment: release the prefix on both planes
        value += 1 + rng() % 30;
        std::vector<counter_value_t> lrel, hrel;
        list.release_prefix(value,
                            [&](Node& node) { lrel.push_back(node.level); });
        heap.release_prefix(value,
                            [&](Node& node) { hrel.push_back(node.level); });
        EXPECT_EQ(lrel, hrel) << "release order diverged, seed " << seed;
        // Released waiters wake and leave on both planes.
        for (std::size_t i = 0; i < left.size(); ++i) {
          if (left[i] || !list_nodes[i]->released) continue;
          EXPECT_TRUE(heap_nodes[i]->released);
          list.leave(list_nodes[i]);
          heap.leave(heap_nodes[i]);
          left[i] = true;
        }
      }
      compare("after step");
    }
    // Drain: abort everything, then every survivor leaves.
    std::vector<counter_value_t> labort, habort;
    list.abort_all([&](Node& node) { labort.push_back(node.level); });
    heap.abort_all([&](Node& node) { habort.push_back(node.level); });
    EXPECT_EQ(labort, habort);
    for (std::size_t i = 0; i < left.size(); ++i) {
      if (left[i]) continue;
      EXPECT_EQ(list_nodes[i]->aborted, heap_nodes[i]->aborted);
      list.leave(list_nodes[i]);
      heap.leave(heap_nodes[i]);
    }
    EXPECT_TRUE(list.empty());
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(list.waiter_count(), 0u);
    EXPECT_EQ(heap.waiter_count(), 0u);
  }
}

// ---- CallbackListT over the heap index ------------------------------

TEST(WaitIndex, CallbackIndexDetachesAscendingChains) {
  CallbackList callbacks(WaitPlaneKind::kHeap, 3);
  std::vector<counter_value_t> ran;
  for (counter_value_t l : {25, 5, 15, 35, 10, 5}) {
    callbacks.insert(l, [&ran, l] { ran.push_back(l); });
  }
  EXPECT_FALSE(callbacks.empty());
  EXPECT_EQ(callbacks.min_level(), 5u);

  std::vector<counter_value_t> snap;
  callbacks.snapshot_into(snap);
  EXPECT_EQ(snap, (std::vector<counter_value_t>{5, 10, 15, 25, 35}));

  CallbackList::run_chain(callbacks.detach_reached(15));
  // Both level-5 entries ran (registration order), then 10, then 15.
  EXPECT_EQ(ran, (std::vector<counter_value_t>{5, 5, 10, 15}));
  EXPECT_EQ(callbacks.min_level(), 25u);

  std::vector<counter_value_t> errored;
  auto cause = std::make_exception_ptr(std::runtime_error("producer died"));
  CallbackList::Node* rest = callbacks.detach_all();
  EXPECT_TRUE(callbacks.empty());
  for (CallbackList::Node* n = rest; n != nullptr; n = n->next) {
    errored.push_back(n->level);
  }
  EXPECT_EQ(errored, (std::vector<counter_value_t>{25, 35}));
  CallbackList::run_chain_error(rest, cause);
}

TEST(WaitIndex, CallbackIndexDropsUnreachedAtDestruction) {
  // Covers the heap-plane destructor sweep (list mode walks head_).
  CallbackList callbacks(WaitPlaneKind::kHeap, 2);
  for (counter_value_t l : {8, 2, 4}) {
    callbacks.insert(l, [] { FAIL() << "unreached callback must not run"; });
  }
}

}  // namespace
