// determinacy_test.cpp — the §6 determinacy machinery: vector clocks,
// counter-induced happens-before, and race detection on the paper's own
// three example programs.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "monotonic/determinacy/checked.hpp"
#include "monotonic/determinacy/recorder.hpp"
#include "monotonic/determinacy/tracked_counter.hpp"
#include "monotonic/determinacy/vector_clock.hpp"
#include "monotonic/sync/lock.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

TEST(VectorClockTest, TickAdvancesOwnComponent) {
  VectorClock c;
  EXPECT_EQ(c.component(3), 0u);
  c.tick(3);
  c.tick(3);
  EXPECT_EQ(c.component(3), 2u);
  EXPECT_EQ(c.component(0), 0u);
}

TEST(VectorClockTest, MergeTakesPointwiseMax) {
  VectorClock a, b;
  a.set_component(0, 5);
  a.set_component(1, 1);
  b.set_component(1, 7);
  b.set_component(2, 2);
  a.merge(b);
  EXPECT_EQ(a.component(0), 5u);
  EXPECT_EQ(a.component(1), 7u);
  EXPECT_EQ(a.component(2), 2u);
}

TEST(VectorClockTest, LeqIsPartialOrder) {
  VectorClock a, b, c;
  a.set_component(0, 1);
  b.set_component(0, 2);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  // Incomparable pair:
  c.set_component(1, 1);
  EXPECT_FALSE(c.leq(a));
  EXPECT_FALSE(a.leq(c));
  // Reflexive:
  EXPECT_TRUE(a.leq(a));
}

TEST(VectorClockTest, LeqAgainstLongerClock) {
  VectorClock shorter, longer;
  shorter.set_component(0, 1);
  longer.set_component(0, 1);
  longer.set_component(5, 9);
  EXPECT_TRUE(shorter.leq(longer));
  EXPECT_FALSE(longer.leq(shorter));
}

TEST(RaceDetectorTest, AssignsDistinctThreadIndices) {
  RaceDetector detector;
  std::atomic<std::size_t> a{0}, b{0};
  multithreaded_block([&] { a = detector.thread_index(); },
                      [&] { b = detector.thread_index(); });
  EXPECT_NE(a.load(), b.load());
  EXPECT_EQ(detector.known_threads(), 2u);
}

TEST(RaceDetectorTest, SameThreadKeepsItsIndex) {
  RaceDetector detector;
  EXPECT_EQ(detector.thread_index(), detector.thread_index());
}

TEST(RaceDetectorTest, ResetInvalidatesIndices) {
  RaceDetector detector;
  const auto before = detector.thread_index();
  detector.reset();
  EXPECT_EQ(detector.known_threads(), 0u);
  const auto after = detector.thread_index();
  EXPECT_EQ(detector.known_threads(), 1u);
  (void)before;
  (void)after;
}

// ---------------------------------------------------------------------
// The three §6 example programs.

// Program 2 (deterministic): counter-sequenced updates of x.
//   multithreaded {
//     { xCount.Check(0); x = x+1; xCount.Increment(1); }
//     { xCount.Check(1); x = x*2; xCount.Increment(1); }
//   }
TEST(Section6, CounterSequencedProgramIsRaceFree) {
  for (int run = 0; run < 20; ++run) {
    RaceDetector detector;
    TrackedCounter<> x_count(detector);
    Checked<int> x(detector, "x", 3);
    multithreaded_block(
        [&] {
          x_count.Check(0);
          x.update([](int v) { return v + 1; });
          x_count.Increment(1);
        },
        [&] {
          x_count.Check(1);
          x.update([](int v) { return v * 2; });
          x_count.Increment(1);
        });
    EXPECT_EQ(detector.race_count(), 0u) << "run " << run;
    EXPECT_EQ(x.unchecked(), 8);  // always (3+1)*2 — never 3*2+1 = 7
  }
}

// Program 3 (racy): both branches Check(0), so the operations on x are
// concurrent — §6: "The result of the program is nondeterministic
// because of the possibility of concurrent execution of operations on
// x."  The checker must flag it in every schedule, since neither order
// has a separating chain.
TEST(Section6, ConcurrentCheckZeroProgramIsFlagged) {
  for (int run = 0; run < 20; ++run) {
    RaceDetector detector;
    TrackedCounter<> x_count(detector);
    Checked<int> x(detector, "x", 3);
    multithreaded_block(
        [&] {
          x_count.Check(0);
          x.update([](int v) { return v + 1; });
          x_count.Increment(1);
        },
        [&] {
          x_count.Check(0);
          x.update([](int v) { return v * 2; });
          x_count.Increment(1);
        });
    EXPECT_GT(detector.race_count(), 0u) << "run " << run;
  }
}

// Program 1 (lock-based): with a lock the accesses are mutually
// exclusive yet unordered.  Our checker only models counter edges, so
// a lock-guarded program written with Checked variables is reported —
// which is the right answer for the *§6 discipline*: the lock provides
// no deterministic ordering.
TEST(Section6, LockOrderingIsNotACounterChain) {
  RaceDetector detector;
  Checked<int> x(detector, "x", 3);
  Lock x_lock;
  multithreaded_block(
      [&] {
        std::scoped_lock hold(x_lock);
        x.update([](int v) { return v + 1; });
      },
      [&] {
        std::scoped_lock hold(x_lock);
        x.update([](int v) { return v * 2; });
      });
  EXPECT_GT(detector.race_count(), 0u)
      << "mutual exclusion without ordering violates the discipline";
}

TEST(CheckedVariable, ReportsCarryVariableName) {
  RaceDetector detector;
  Checked<int> v(detector, "shared_total");
  multithreaded_block([&] { v.write(1); }, [&] { v.write(2); });
  ASSERT_GT(detector.race_count(), 0u);
  const auto reports = detector.reports();
  EXPECT_EQ(reports[0].variable, "shared_total");
  EXPECT_NE(reports[0].to_string().find("shared_total"), std::string::npos);
}

TEST(CheckedVariable, UniqueReportsDeduplicateLoops) {
  RaceDetector detector;
  Checked<int> v(detector, "hot");
  // A racy pair hammered in a strictly alternating loop: raw reports
  // pile up (one per handoff), unique reports collapse to the two
  // distinct (variable, kind, thread-pair) patterns.
  std::atomic<int> turn{0};
  multithreaded_block(
      [&] {
        for (int i = 0; i < 10; ++i) {
          while (turn.load() != 0) std::this_thread::yield();
          v.write(i);
          turn.store(1);
        }
      },
      [&] {
        for (int i = 0; i < 10; ++i) {
          while (turn.load() != 1) std::this_thread::yield();
          v.write(-i);
          turn.store(0);
        }
      });
  EXPECT_GE(detector.race_count(), 19u) << "every alternation conflicts";
  const auto unique = detector.unique_reports();
  EXPECT_EQ(unique.size(), 2u) << "A-then-B and B-then-A write-write pairs";
}

TEST(CheckedVariable, WriteReadRaceDetected) {
  RaceDetector detector;
  Checked<int> v(detector, "v");
  v.write(1);  // main thread writes first
  std::atomic<int> seen{0};
  std::jthread reader([&] { seen = v.read(); });
  reader.join();
  // Reader never synchronized with the writer: flagged.
  ASSERT_EQ(detector.race_count(), 1u);
  EXPECT_EQ(detector.reports()[0].kind, RaceReport::Kind::kWriteRead);
}

TEST(CheckedVariable, ReadsAloneNeverRace) {
  RaceDetector detector;
  Checked<int> v(detector, "v", 42);
  std::atomic<int> total{0};
  multithreaded_for(0, 4, 1, [&](int) { total += v.read(); });
  EXPECT_EQ(detector.race_count(), 0u);
  EXPECT_EQ(total.load(), 4 * 42);
}

TEST(CheckedVariable, SameThreadSequencesItself) {
  RaceDetector detector;
  Checked<int> v(detector, "v");
  v.write(1);
  (void)v.read();
  v.write(2);
  v.update([](int x) { return x + 1; });
  EXPECT_EQ(detector.race_count(), 0u);
  EXPECT_EQ(v.unchecked(), 3);
}

TEST(TrackedCounterTest, ChainThroughCounterOrdersAccesses) {
  RaceDetector detector;
  TrackedCounter<> done(detector);
  Checked<int> v(detector, "v");
  multithreaded_block(
      [&] {
        v.write(10);
        done.Increment(1);
      },
      [&] {
        done.Check(1);
        EXPECT_EQ(v.read(), 10);
      });
  EXPECT_EQ(detector.race_count(), 0u);
}

TEST(TrackedCounterTest, TransitiveChainAcrossThreeThreads) {
  // §6: "separated by a *transitive* chain of counter operations".
  RaceDetector detector;
  TrackedCounter<> ab(detector), bc(detector);
  Checked<int> v(detector, "v");
  multithreaded_block(
      [&] {
        v.write(1);
        ab.Increment(1);
      },
      [&] {
        ab.Check(1);
        bc.Increment(1);  // no direct access to v
      },
      [&] {
        bc.Check(1);
        EXPECT_EQ(v.read(), 1);
      });
  EXPECT_EQ(detector.race_count(), 0u);
}

TEST(TrackedCounterTest, BroadcastOrdersManyReaders) {
  // §5.3 shape: one writer, several readers, one counter.
  RaceDetector detector;
  TrackedCounter<> count(detector);
  Checked<int> item(detector, "item");
  std::vector<std::function<void()>> bodies;
  bodies.emplace_back([&] {
    item.write(5);
    count.Increment(1);
  });
  for (int r = 0; r < 3; ++r) {
    bodies.emplace_back([&] {
      count.Check(1);
      EXPECT_EQ(item.read(), 5);
    });
  }
  multithreaded(std::move(bodies), Execution::kMultithreaded);
  EXPECT_EQ(detector.race_count(), 0u);
}

// Determinism property (E7): the counter-sequenced program produces the
// same result on every run even with adversarial stalls.
TEST(Determinism, SequencedUpdatesAreScheduleInvariant) {
  int first_result = 0;
  for (int run = 0; run < 30; ++run) {
    Counter c;
    int x = 3;
    multithreaded_block(
        [&] {
          if (run % 2) std::this_thread::yield();
          c.Check(0);
          x = x + 1;
          c.Increment(1);
        },
        [&] {
          if (run % 3) std::this_thread::yield();
          c.Check(1);
          x = x * 2;
          c.Increment(1);
        });
    if (run == 0) {
      first_result = x;
    } else {
      ASSERT_EQ(x, first_result) << "run " << run;
    }
  }
  EXPECT_EQ(first_result, 8);
}

}  // namespace
}  // namespace monotonic
