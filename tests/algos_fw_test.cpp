// algos_fw_test.cpp — §4's Floyd-Warshall programs: the Figure 1 worked
// example, cross-variant equivalence over sizes/thread counts, and the
// counter variant's structural properties (E1).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <tuple>

#include "monotonic/algos/floyd_warshall.hpp"
#include "monotonic/algos/graph.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/spin_counter.hpp"

namespace monotonic {
namespace {

TEST(Figure1, SequentialSolvesTheWorkedExample) {
  const auto result = fw_sequential(figure1_edges());
  EXPECT_EQ(result, figure1_paths());
}

TEST(Figure1, AllVariantsSolveTheWorkedExample) {
  FwOptions options;
  options.num_threads = 2;
  const auto expected = figure1_paths();
  EXPECT_EQ(fw_barrier(figure1_edges(), options), expected);
  EXPECT_EQ(fw_condition_array(figure1_edges(), options), expected);
  EXPECT_EQ(fw_counter(figure1_edges(), options), expected);
}

TEST(FwSequential, SingleVertex) {
  SquareMatrix m(1, kInfinity);
  m.at(0, 0) = 0;
  EXPECT_EQ(fw_sequential(m).at(0, 0), 0);
}

TEST(FwSequential, DisconnectedPairsStayInfinite) {
  SquareMatrix m(3, kInfinity);
  for (std::size_t i = 0; i < 3; ++i) m.at(i, i) = 0;
  m.at(0, 1) = 5;  // only edge: 0 -> 1
  const auto paths = fw_sequential(m);
  EXPECT_EQ(paths.at(0, 1), 5);
  EXPECT_EQ(paths.at(1, 0), kInfinity);
  EXPECT_EQ(paths.at(0, 2), kInfinity);
  EXPECT_EQ(paths.at(2, 1), kInfinity);
}

TEST(FwSequential, TriangleInequalityHolds) {
  const auto paths = fw_sequential(random_graph(40, {.seed = 9}));
  const std::size_t n = paths.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_LE(paths.at(i, j), path_add(paths.at(i, k), paths.at(k, j)));
      }
    }
  }
}

TEST(FwSequential, NegativeEdgesNoNegativeCycles) {
  const auto edges = random_graph(30, {.seed = 11, .allow_negative = true});
  const auto paths = fw_sequential(edges);
  // No negative cycle: every diagonal entry stays zero.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(paths.at(i, i), 0) << "negative cycle through " << i;
  }
  // Some negative path should actually exist, or the generator option
  // is not exercising anything.
  bool any_negative = false;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = 0; j < paths.size(); ++j) {
      if (paths.at(i, j) < 0) any_negative = true;
    }
  }
  EXPECT_TRUE(any_negative);
}

// ------------------------------------------------------- equivalence

struct FwParam {
  std::size_t n;
  std::size_t threads;
  bool negative;
};

std::string fw_param_name(const ::testing::TestParamInfo<FwParam>& info) {
  return "n" + std::to_string(info.param.n) + "_t" +
         std::to_string(info.param.threads) +
         (info.param.negative ? "_neg" : "");
}

class FwEquivalence : public ::testing::TestWithParam<FwParam> {};

TEST_P(FwEquivalence, AllVariantsMatchSequential) {
  const auto p = GetParam();
  const auto edges = random_graph(
      p.n, {.seed = 1000 + p.n, .allow_negative = p.negative});
  const auto expected = fw_sequential(edges);
  FwOptions options;
  options.num_threads = p.threads;
  EXPECT_EQ(fw_barrier(edges, options), expected) << "barrier";
  EXPECT_EQ(fw_condition_array(edges, options), expected) << "condvar array";
  EXPECT_EQ(fw_counter(edges, options), expected) << "counter";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FwEquivalence,
    ::testing::Values(FwParam{1, 1, false}, FwParam{2, 2, false},
                      FwParam{5, 2, false}, FwParam{16, 1, false},
                      FwParam{16, 3, false}, FwParam{16, 16, false},
                      FwParam{33, 4, true}, FwParam{64, 4, false},
                      FwParam{64, 8, true}, FwParam{96, 5, false}),
    fw_param_name);

TEST(FwEquivalence, ThreadsBeyondVerticesAreClamped) {
  const auto edges = random_graph(4, {.seed = 5});
  FwOptions options;
  options.num_threads = 64;  // > n: must clamp, not crash or deadlock
  EXPECT_EQ(fw_counter(edges, options), fw_sequential(edges));
}

TEST(FwEquivalence, DeterministicAcrossRepeatedRuns) {
  const auto edges = random_graph(32, {.seed = 77});
  FwOptions options;
  options.num_threads = 4;
  const auto first = fw_counter(edges, options);
  for (int run = 0; run < 10; ++run) {
    ASSERT_EQ(fw_counter(edges, options), first) << "run " << run;
  }
}

TEST(FwEquivalence, ImbalanceHookDoesNotChangeResults) {
  const auto edges = random_graph(24, {.seed = 31});
  const auto expected = fw_sequential(edges);
  FwOptions options;
  options.num_threads = 3;
  options.iteration_hook = [](std::size_t t, std::size_t k) {
    if ((t + k) % 3 == 0) std::this_thread::yield();
  };
  EXPECT_EQ(fw_barrier(edges, options), expected);
  EXPECT_EQ(fw_counter(edges, options), expected);
}

// --------------------------------------------- counter-variant structure

TEST(FwCounterStructure, OneCounterManyLevels) {
  // E1's structural claim: the counter replaces N Conditions.  Over the
  // whole run the counter passes through n-1 levels, but the number of
  // *live* wait levels at any instant stays far below n.
  constexpr std::size_t kN = 64;
  const auto edges = random_graph(kN, {.seed = 12});
  FwOptions options;
  options.num_threads = 4;
  Counter counter;
  (void)fw_counter_with(edges, options, counter);
  const auto s = counter.stats();
  EXPECT_EQ(s.increments, kN - 1);
  EXPECT_LE(s.max_live_nodes, options.num_threads)
      << "§4.5: live wait levels bounded by thread count, not by N";
  EXPECT_EQ(s.live_nodes, 0u);
}

TEST(FwCounterStructure, WorksWithEveryCounterKind) {
  const auto edges = random_graph(20, {.seed = 13});
  const auto expected = fw_sequential(edges);
  FwOptions options;
  options.num_threads = 3;
  {
    SingleCvCounter c;
    EXPECT_EQ(fw_counter_with(edges, options, c), expected);
  }
  {
    FutexCounter c;
    EXPECT_EQ(fw_counter_with(edges, options, c), expected);
  }
  {
    SpinCounter c;
    EXPECT_EQ(fw_counter_with(edges, options, c), expected);
  }
}

}  // namespace
}  // namespace monotonic
