// soak_test.cpp — long-running randomized stress, environment-gated.
//
// By default each scenario runs a quick slice (~200ms) so the suite
// stays fast; set MONOTONIC_SOAK_SECONDS=<n> to stretch every scenario
// to n seconds for soak runs (tools/run_tsan.sh + soak is the
// recommended pre-release gate).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/patterns/broadcast.hpp"
#include "monotonic/patterns/task_graph.hpp"
#include "monotonic/support/rng.hpp"
#include "monotonic/support/stopwatch.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

std::chrono::milliseconds scenario_budget() {
  if (const char* env = std::getenv("MONOTONIC_SOAK_SECONDS")) {
    const long seconds = std::atol(env);
    if (seconds > 0) return std::chrono::seconds(seconds);
  }
  return std::chrono::milliseconds(200);
}

// Scenario 1: mixed random traffic against every implementation.
// Invariant: after each round, Check(total issued) never hangs and the
// structural stats stay consistent.
TEST(Soak, RandomTrafficAllKinds) {
  const auto budget = scenario_budget();
  for (CounterKind kind : all_counter_kinds()) {
    Stopwatch clock;
    Xoshiro256 rng(0xC0FFEE ^ static_cast<std::uint64_t>(kind));
    std::uint64_t rounds = 0;
    while (clock.elapsed() < budget / all_counter_kinds().size()) {
      auto counter = make_counter(kind);
      const int producers = 1 + rng.uniform(0, 2);
      const int consumers = 1 + rng.uniform(0, 2);
      const counter_value_t per_producer = 50 + rng.uniform(0, 200);
      const counter_value_t total = producers * per_producer;

      std::vector<std::function<void()>> bodies;
      for (int p = 0; p < producers; ++p) {
        bodies.emplace_back([&] {
          for (counter_value_t i = 0; i < per_producer; ++i) {
            counter->Increment(1);
          }
        });
      }
      for (int c = 0; c < consumers; ++c) {
        const std::uint64_t salt = rng();
        bodies.emplace_back([&, salt] {
          Xoshiro256 local(salt);
          for (int i = 0; i < 20; ++i) {
            counter->Check(local.uniform(1, total));
          }
        });
      }
      multithreaded(std::move(bodies), Execution::kMultithreaded);
      counter->Check(total);
      ++rounds;
    }
    EXPECT_GT(rounds, 0u) << to_string(kind);
  }
}

// Scenario 2: broadcast channel churn with mixed block sizes; every
// reader must observe every item of every round.
TEST(Soak, BroadcastChurn) {
  const auto budget = scenario_budget();
  Stopwatch clock;
  Xoshiro256 rng(0xBEEF);
  std::uint64_t rounds = 0;
  while (clock.elapsed() < budget) {
    const std::size_t items = 64 + rng.uniform(0, 512);
    BroadcastChannel<std::uint64_t> channel(items);
    const std::size_t writer_block = 1 + rng.uniform(0, 32);
    std::atomic<std::uint64_t> total{0};
    std::uint64_t expected_each = 0;
    for (std::size_t i = 0; i < items; ++i) expected_each += i * 3;

    std::vector<std::function<void()>> bodies;
    bodies.emplace_back([&] {
      auto writer = channel.writer(writer_block);
      for (std::size_t i = 0; i < items; ++i) writer.publish(i * 3);
    });
    const int readers = 1 + rng.uniform(0, 3);
    for (int r = 0; r < readers; ++r) {
      const std::size_t block = 1 + rng.uniform(0, 64);
      bodies.emplace_back([&, block] {
        auto reader = channel.reader(block);
        std::uint64_t sum = 0;
        reader.for_each(
            [&](std::size_t, const std::uint64_t& v) { sum += v; });
        total += sum;
      });
    }
    multithreaded(std::move(bodies), Execution::kMultithreaded);
    ASSERT_EQ(total.load(), expected_each * readers);
    ++rounds;
  }
  EXPECT_GT(rounds, 0u);
}

// Scenario 3: random task DAGs; every run must honour dependencies
// (checked inside the tasks) and terminate.
TEST(Soak, RandomTaskGraphs) {
  const auto budget = scenario_budget();
  Stopwatch clock;
  Xoshiro256 rng(0xDA6);
  std::uint64_t rounds = 0;
  while (clock.elapsed() < budget) {
    TaskGraph<> graph;
    const std::size_t tasks = 10 + rng.uniform(0, 80);
    std::vector<std::atomic<bool>> done(tasks);
    std::vector<std::vector<std::size_t>> deps(tasks);
    for (std::size_t i = 0; i < tasks; ++i) {
      if (i > 0) {
        const std::size_t count = rng.uniform(0, 2);
        for (std::size_t d = 0; d < count; ++d) {
          deps[i].push_back(rng.uniform(0, i - 1));
        }
      }
      graph.add_task(
          [&, i] {
            for (std::size_t dep : deps[i]) {
              ASSERT_TRUE(done[dep].load());
            }
            done[i].store(true);
          },
          deps[i]);
    }
    graph.run(1 + rng.uniform(0, 5));
    for (std::size_t i = 0; i < tasks; ++i) ASSERT_TRUE(done[i].load());
    ++rounds;
  }
  EXPECT_GT(rounds, 0u);
}

}  // namespace
}  // namespace monotonic
