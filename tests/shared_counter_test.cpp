// shared_counter_test.cpp — cross-process counters and death recovery.
//
// The suite that actually crosses process boundaries: every MultiProcess
// and death test forks real children over a real shm segment, because
// the property under test — "a SIGKILLed participant never leaves any
// waiter in any process parked" — cannot be faked with threads.
//
// Kill injection reuses the Env seam: KillEnv forwards every primitive
// to SharedRealEnv but raises SIGKILL against the child's own pid on
// the Nth visit to a chosen SchedulePoint, so the seed-swept test walks
// the death through each window of the increment protocol (slot claim,
// in-flight raise, publish, wake, sweep).  The segment layout is
// env-independent, so KillEnv children interoperate with the parent's
// plain SharedCounter on the same segment.
//
// Clean-detach discipline: a child that wants to exit WITHOUT poisoning
// the counter must destroy its handle first (the destructor releases
// the registration slot).  _exit() with a live handle is an unclean
// death by definition — that is the contract, not a test artifact.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/shared_counter.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace monotonic {
namespace {

using namespace std::chrono_literals;

/// A level no test ever reaches: parks a waiter until poison/recovery.
constexpr counter_value_t kNever = 1'000'000'000;

/// Fast-detection options so death tests converge in milliseconds.
SharedCounterOptions fast_detect() {
  SharedCounterOptions opt;
  opt.detect_period = 25ms;
  return opt;
}

std::string unique_name(const char* tag) {
  static std::atomic<int> serial{0};
  return std::string("/mc-") + tag + "-" + std::to_string(::getpid()) + "-" +
         std::to_string(serial.fetch_add(1));
}

/// RAII unlink so a failed test does not leak its segment into the
/// next run (shm names persist until unlinked or reboot).
struct ScopedName {
  std::string name;
  explicit ScopedName(const char* tag) : name(unique_name(tag)) {
    SharedCounter::Unlink(name);
  }
  ~ScopedName() { SharedCounter::Unlink(name); }
};

/// Forks, runs `fn` in the child, and _exit()s with its return value
/// (99 on exception).  The child must not return to gtest.
template <typename Fn>
pid_t spawn_child(Fn&& fn) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    int code = 99;
    try {
      code = fn();
    } catch (...) {
    }
    ::_exit(code);
  }
  EXPECT_GT(pid, 0) << "fork failed";
  return pid;
}

/// Reaps the child and returns its raw waitpid status.
int wait_child(pid_t pid) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return status;
}

/// The kill-injecting environment: SharedRealEnv plus a SIGKILL tripwire
/// on the Nth visit to one schedule point.  Static config is fine — it
/// is set after fork(), in the child, before the counter is opened.
struct KillEnv {
  static inline SchedulePoint kill_at = SchedulePoint::kSharedPublish;
  static inline std::atomic<int> countdown{-1};  ///< <0 disarms

  static void arm(SchedulePoint point, int skip) {
    kill_at = point;
    countdown.store(skip, std::memory_order_relaxed);
  }

  static void point(SchedulePoint p) noexcept {
    if (p != kill_at) return;
    if (countdown.fetch_sub(1, std::memory_order_relaxed) == 0) {
      ::kill(::getpid(), SIGKILL);
    }
  }
  static std::uint32_t pid() noexcept { return SharedRealEnv::pid(); }
  static bool process_alive(std::uint32_t p) noexcept {
    return SharedRealEnv::process_alive(p);
  }
  static std::uint64_t now_ns() noexcept { return SharedRealEnv::now_ns(); }
  static bool futex_wait_until(std::atomic<std::uint32_t>* a, std::uint32_t e,
                               std::chrono::steady_clock::time_point d) {
    return SharedRealEnv::futex_wait_until(a, e, d);
  }
  static void futex_wake_all(std::atomic<std::uint32_t>* a) {
    SharedRealEnv::futex_wake_all(a);
  }
};

PoisonCause cause_of(const std::function<void()>& op) {
  try {
    op();
  } catch (const CounterPoisonedError& e) {
    return e.poison_cause();
  }
  ADD_FAILURE() << "operation did not throw CounterPoisonedError";
  return PoisonCause::kExplicit;
}

// ---------------------------------------------------------------------
// Single-process basics (two handles on one segment).

TEST(SharedCounterBasics, TwoHandlesShareOneValuePlane) {
  ScopedName n("basics");
  auto a = SharedCounter::Create(n.name);
  auto b = SharedCounter::Open(n.name);
  a.Increment(2);
  b.Increment(3);
  a.Check(5);
  b.Check(5);
  EXPECT_EQ(a.debug_value(), 5u);
  EXPECT_EQ(b.debug_value(), 5u);
  EXPECT_EQ(a.stats().epoch, 1u);
  EXPECT_FALSE(a.CheckFor(6, 1ms));
}

TEST(SharedCounterBasics, CreateOnLiveNameThrowsOpenOrCreateAttaches) {
  ScopedName n("modes");
  auto a = SharedCounter::Create(n.name);
  a.Increment();
  EXPECT_THROW((void)SharedCounter::Create(n.name), std::invalid_argument);
  auto b = SharedCounter::OpenOrCreate(n.name);
  EXPECT_EQ(b.debug_value(), 1u);
}

TEST(SharedCounterBasics, OpenOfMissingNameThrows) {
  EXPECT_THROW((void)SharedCounter::Open("/mc-no-such-segment-xyzzy"),
               std::invalid_argument);
}

TEST(SharedCounterBasics, MalformedNamesAreRejectedAtTheApiToo) {
  EXPECT_THROW((void)SharedCounter::Create(""), std::invalid_argument);
  EXPECT_THROW((void)SharedCounter::Create("nope"), std::invalid_argument);
  EXPECT_THROW((void)SharedCounter::Create("/"), std::invalid_argument);
  EXPECT_THROW((void)SharedCounter::Create("/a/b"), std::invalid_argument);
  EXPECT_THROW((void)SharedCounter::Create("/" + std::string(300, 'x')),
               std::invalid_argument);
}

TEST(SharedCounterBasics, StopTokenCancelsAParkedWait) {
  ScopedName n("cancel");
  auto c = SharedCounter::Create(n.name, fast_detect());
  std::stop_source stop;
  std::atomic<bool> result{true};
  std::jthread waiter(
      [&] { result.store(c.Check(kNever, stop.get_token())); });
  std::this_thread::sleep_for(20ms);
  stop.request_stop();
  waiter.join();
  EXPECT_FALSE(result.load());
  EXPECT_GE(c.stats().cancelled_checks, 1u);
}

TEST(SharedCounterBasics, OnReachFiresAcrossHandles) {
  ScopedName n("onreach");
  auto a = SharedCounter::Create(n.name, fast_detect());
  auto b = SharedCounter::Open(n.name);
  std::atomic<bool> fired{false};
  a.OnReach(3, [&] { fired.store(true); });
  b.Increment(3);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!fired.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(fired.load());
}

TEST(SharedCounterBasics, ReachedLevelsSucceedEvenAfterPoison) {
  ScopedName n("frozen");
  auto c = SharedCounter::Create(n.name);
  c.Increment(5);
  c.Poison(std::string_view("stop"));
  c.Check(5);  // already-covered levels still succeed — that work happened
  EXPECT_EQ(cause_of([&] { c.Check(6); }), PoisonCause::kExplicit);
  c.Increment();  // counted drop, not a throw
  EXPECT_GE(c.stats().dropped_increments, 1u);
}

// ---------------------------------------------------------------------
// Multi-process behavior.

TEST(SharedCounterMultiProcess, ChildIncrementsReleaseParentWaiter) {
  ScopedName n("handoff");
  auto parent = SharedCounter::Create(n.name, fast_detect());
  const pid_t child = spawn_child([&]() -> int {
    auto c = SharedCounter::Open(n.name);
    for (int i = 0; i < 1000; ++i) c.Increment();
    return 0;  // handle destroyed before _exit: clean detach
  });
  parent.Check(1000);  // parked until the child's increments arrive
  EXPECT_EQ(parent.debug_value(), 1000u);
  const int status = wait_child(child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  // Clean detach: no poison, no deaths.
  EXPECT_FALSE(parent.poisoned());
  EXPECT_EQ(parent.stats().participant_deaths, 0u);
}

TEST(SharedCounterMultiProcess, ParentIncrementsReleaseChildWaiter) {
  ScopedName n("handoff2");
  auto parent = SharedCounter::Create(n.name, fast_detect());
  const pid_t child = spawn_child([&]() -> int {
    auto c = SharedCounter::Open(n.name, fast_detect());
    c.Check(500);
    return c.debug_value() >= 500 ? 0 : 1;
  });
  std::this_thread::sleep_for(20ms);  // let the child park
  for (int i = 0; i < 500; ++i) parent.Increment();
  const int status = wait_child(child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "status=" << status;
}

TEST(SharedCounterMultiProcess, ExplicitPoisonCrossesTheProcessBoundary) {
  ScopedName n("xpoison");
  auto parent = SharedCounter::Create(n.name, fast_detect());
  const pid_t child = spawn_child([&]() -> int {
    auto c = SharedCounter::Open(n.name);
    c.Poison(std::string_view("child says stop"));
    return 0;
  });
  // The parent's parked waiter wakes with the EXPLICIT cause — the
  // child detached cleanly, so this must not classify as a death.
  EXPECT_EQ(cause_of([&] { parent.Check(kNever); }), PoisonCause::kExplicit);
  const int status = wait_child(child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(parent.stats().participant_deaths, 0u);
}

// ---------------------------------------------------------------------
// Death detection: the acceptance property.

TEST(SharedCounterDeath, KilledChildWakesEveryParkedWaiter) {
  ScopedName n("death");
  auto parent = SharedCounter::Create(n.name, fast_detect());
  // Two parked waiters — "never leaves ANY waiter parked".
  std::atomic<int> poisoned_waiters{0};
  auto park = [&] {
    if (cause_of([&] { parent.Check(kNever); }) ==
        PoisonCause::kParticipantDied) {
      poisoned_waiters.fetch_add(1);
    }
  };
  std::jthread w1(park), w2(park);
  std::this_thread::sleep_for(20ms);
  const pid_t child = spawn_child([&]() -> int {
    KillEnv::arm(SchedulePoint::kSharedPublish, 2);
    auto c = SharedCounterT<KillEnv>::Open(n.name);
    for (int i = 0; i < 100; ++i) c.Increment();  // killed mid-protocol
    return 1;  // unreachable
  });
  w1.join();
  w2.join();
  EXPECT_EQ(poisoned_waiters.load(), 2);
  const int status = wait_child(child);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  EXPECT_GE(parent.stats().participant_deaths, 1u);
  // A late joiner sees the poison immediately: an unreached level
  // throws before any wait.  (An already-reached level still succeeds
  // — the child published at least one increment before dying, so
  // Check(1) returning is the monotone-success rule, not a bug.)
  auto late = SharedCounter::Open(n.name);
  EXPECT_TRUE(late.poisoned());
  EXPECT_NO_THROW(late.Check(1));
  EXPECT_EQ(cause_of([&] { late.Check(kNever); }),
            PoisonCause::kParticipantDied);
}

// The seed sweep: walk the SIGKILL through every window of the shared
// increment protocol.  Seed → (schedule point, visits to skip); the
// child also self-KILLs after its loop so every seed ends in an unclean
// death even when the armed point is not reached again (e.g. register
// fires once).  MONOTONIC_SHARED_KILL_SEEDS overrides the seed count —
// CI runs 300, the default keeps local runs fast.
TEST(SharedCounterDeath, KillPointSweep) {
  const SchedulePoint points[] = {
      SchedulePoint::kSharedRegister, SchedulePoint::kSharedInflight,
      SchedulePoint::kSharedPublish, SchedulePoint::kSharedWake,
      SchedulePoint::kSharedSweep};
  int seeds = 20;
  if (const char* env = std::getenv("MONOTONIC_SHARED_KILL_SEEDS")) {
    seeds = std::atoi(env);
  }
  for (int seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SchedulePoint point = points[seed % 5];
    const int skip = (seed / 5) % 7;  // 0..6 visits before the kill
    ScopedName n("sweep");
    auto parent = SharedCounter::Create(n.name, fast_detect());
    const pid_t child = spawn_child([&]() -> int {
      KillEnv::arm(point, skip);
      auto c = SharedCounterT<KillEnv>::Open(n.name, fast_detect());
      for (int i = 0; i < 200; ++i) c.Increment();
      ::kill(::getpid(), SIGKILL);  // backstop: die uncleanly regardless
      return 1;
    });
    EXPECT_EQ(cause_of([&] { parent.Check(kNever); }),
              PoisonCause::kParticipantDied);
    const int status = wait_child(child);
    EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
    EXPECT_GE(parent.stats().participant_deaths, 1u);
  }
}

TEST(SharedCounterDeath, RecreateRecoversTheNameWithANewEpoch) {
  ScopedName n("recover");
  auto old_handle = SharedCounter::Create(n.name, fast_detect());
  old_handle.Increment(7);
  const pid_t child = spawn_child([&]() -> int {
    auto c = SharedCounter::Open(n.name);
    c.Increment();
    ::kill(::getpid(), SIGKILL);  // die holding the registration slot
    return 1;
  });
  EXPECT_EQ(cause_of([&] { old_handle.Check(kNever); }),
            PoisonCause::kParticipantDied);
  (void)wait_child(child);

  // Park a waiter on the DOOMED epoch, then recover the name under it.
  std::atomic<bool> superseded{false};
  std::jthread old_waiter([&] {
    // This waiter joins after the poison, so it throws immediately with
    // kParticipantDied — but a recovery may also land first, which
    // yields kEpochSuperseded.  Either way it must not stay parked.
    try {
      old_handle.Check(kNever);
    } catch (const CounterPoisonedError&) {
      superseded.store(true);
    }
  });

  auto fresh = SharedCounter::Create(n.name, fast_detect());
  old_waiter.join();
  EXPECT_TRUE(superseded.load());
  EXPECT_EQ(fresh.stats().epoch, 2u);
  EXPECT_EQ(fresh.debug_value(), 0u);  // new epoch starts clean
  EXPECT_FALSE(fresh.poisoned());
  // Deaths survive recovery: it is a segment-lifetime statistic.
  EXPECT_GE(fresh.stats().participant_deaths, 1u);
  fresh.Increment(3);
  fresh.Check(3);

  // The superseded handle now refuses both operations, naming the epoch.
  EXPECT_EQ(cause_of([&] { old_handle.Check(1); }),
            PoisonCause::kEpochSuperseded);
  EXPECT_EQ(cause_of([&] { old_handle.Increment(); }),
            PoisonCause::kEpochSuperseded);
}

TEST(SharedCounterDeath, StaleHeartbeatBackstopPoisonsWhenEnabled) {
  ScopedName n("stale");
  SharedCounterOptions opt = fast_detect();
  opt.heartbeat_stale_after = 150ms;
  auto parent = SharedCounter::Create(n.name, opt);
  // The child registers (stamping its heartbeat once) and then goes
  // silent while STAYING alive — exactly the state kill(pid,0) cannot
  // flag.  With the opt-in staleness backstop the parent poisons
  // anyway; this is also why the backstop defaults to OFF.
  const pid_t child = spawn_child([&]() -> int {
    auto c = SharedCounter::Open(n.name);
    std::this_thread::sleep_for(30s);  // reaped by SIGKILL below
    return 0;
  });
  EXPECT_EQ(cause_of([&] { parent.Check(kNever); }),
            PoisonCause::kParticipantDied);
  ::kill(child, SIGKILL);
  (void)wait_child(child);
}

TEST(SharedCounterDeath, KillStormWithBystanders) {
  // Several producer children; one dies mid-storm.  The parked parent
  // must observe the poison, and the surviving children must not hang
  // (their Increments become counted drops).
  ScopedName n("storm");
  auto parent = SharedCounter::Create(n.name, fast_detect());
  pid_t children[4];
  for (int i = 0; i < 4; ++i) {
    const bool victim = (i == 2);
    children[i] = spawn_child([&, victim]() -> int {
      if (victim) KillEnv::arm(SchedulePoint::kSharedWake, 50);
      auto c = SharedCounterT<KillEnv>::Open(n.name, fast_detect());
      for (int k = 0; k < 5000; ++k) c.Increment();
      return victim ? 1 : 0;  // victim must not survive its loop
    });
  }
  EXPECT_EQ(cause_of([&] { parent.Check(kNever); }),
            PoisonCause::kParticipantDied);
  int killed = 0, clean = 0;
  for (pid_t child : children) {
    const int status = wait_child(child);
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
      ++killed;
    } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      ++clean;
    }
  }
  EXPECT_EQ(killed, 1);
  EXPECT_EQ(clean, 3);
  EXPECT_GE(parent.stats().participant_deaths, 1u);
}

// ---------------------------------------------------------------------
// Factory-built shared counters behave like directly-built ones.

TEST(SharedCounterFactory, SpecHandleInteroperatesWithDirectHandle) {
  ScopedName n("factory");
  auto direct = SharedCounter::Create(n.name, fast_detect());
  auto erased = make_counter("shared:" + n.name);
  EXPECT_EQ(erased->kind(), CounterKind::kShared);
  erased->Increment(4);
  direct.Check(4);
  direct.Increment(1);
  EXPECT_TRUE(erased->CheckFor(5, std::chrono::nanoseconds(5s)));
  EXPECT_EQ(erased->stats().epoch, 1u);
}

}  // namespace
}  // namespace monotonic
