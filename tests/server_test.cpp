// server_test.cpp — the counter shard server end to end: protocol
// round-trips, parked connections, wire-protocol robustness (truncated
// / corrupt / oversized frames), disconnect-while-parked registration
// cleanup, poison propagation as typed errors, the overload policy
// triple, and a forked multi-process integration test.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "monotonic/core/counter_error.hpp"
#include "monotonic/server/client.hpp"
#include "monotonic/server/protocol.hpp"
#include "monotonic/server/server.hpp"

namespace ms = monotonic::server;
using monotonic::CounterError;
using monotonic::CounterOverloadedError;
using monotonic::CounterPoisonedError;
using monotonic::OverloadPolicy;

namespace {

std::string unique_sock_path() {
  static int seq = 0;
  return "/tmp/mc_server_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(seq++) + ".sock";
}

/// Starts a server on a fresh UDS path with the given options.
class ServerFixture {
 public:
  explicit ServerFixture(ms::ServerOptions opts = {}) {
    opts.uds_path = unique_sock_path();
    path_ = opts.uds_path;
    server_.emplace(std::move(opts));
    server_->Start();
  }
  ~ServerFixture() { server_->Stop(); }

  ms::ServerClient connect() { return ms::ServerClient::connect_uds(path_); }
  ms::CounterServer& server() { return *server_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::optional<ms::CounterServer> server_;
};

/// str16 message body of an error response.
std::string body_message(const ms::ServerClient::Response& resp) {
  ms::Reader r(resp.body);
  std::string_view msg;
  return r.get_str16(msg) ? std::string(msg) : std::string();
}

/// Polls `pred` until true or ~2s elapse.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 400; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

TEST(ServerBasics, OpenIncrementCheckRoundTrip) {
  ServerFixture fx;
  ms::ServerClient c = fx.connect();
  const auto opened = c.open("jobs/done");
  EXPECT_GT(opened.id, 0u);
  EXPECT_EQ(opened.value, 0u);
  c.increment(opened.id, 5);
  EXPECT_EQ(c.check(opened.id, 5), 5u);  // already reached: fast path
  const auto st = c.stats(opened.id);
  EXPECT_EQ(st.at("value"), 5u);
}

TEST(ServerBasics, ReopenReturnsSameId) {
  ServerFixture fx;
  ms::ServerClient c = fx.connect();
  const auto a = c.open("same/name");
  c.increment(a.id, 3);
  const auto b = c.open("same/name", "list");  // spec ignored on reopen
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(b.value, 3u);
}

TEST(ServerBasics, ExplicitSpecAndBadSpec) {
  ServerFixture fx;
  ms::ServerClient c = fx.connect();
  const auto opened = c.open("striped", "sharded:4+hybrid");
  c.increment(opened.id, 2);
  EXPECT_EQ(c.check(opened.id, 2), 2u);
  EXPECT_THROW(c.open("bad", "no-such-kind"), std::invalid_argument);
  // The connection survives the bad spec — it was a kBadRequest, not a
  // protocol error.
  EXPECT_EQ(c.check(opened.id, 1), 2u);
}

TEST(ServerBasics, UnknownCounterId) {
  ServerFixture fx;
  ms::ServerClient c = fx.connect();
  EXPECT_THROW(c.check(999, 1), std::invalid_argument);
  EXPECT_THROW(c.increment(999, 1), std::invalid_argument);
}

TEST(ServerBasics, ManyCountersShardByName) {
  ms::ServerOptions opts;
  opts.shards = 4;
  ServerFixture fx(opts);
  ms::ServerClient c = fx.connect();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(c.open("counter/" + std::to_string(i)).id);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    c.increment(ids[i], i + 1);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(c.check(ids[i], i + 1), i + 1);
  }
  const auto st = c.stats();
  EXPECT_EQ(st.at("counters_open"), 200u);
}

TEST(ServerParking, BlockingCheckParksConnectionNotThread) {
  ServerFixture fx;
  ms::ServerClient waiter = fx.connect();
  ms::ServerClient inc = fx.connect();
  const auto opened = waiter.open("parked");
  const auto opened2 = inc.open("parked");
  ASSERT_EQ(opened.id, opened2.id);

  // Park the wait asynchronously, then verify the server sees it
  // parked (a registration, not a thread).
  const std::uint64_t rid = waiter.on_reach_async(opened.id, 10);
  ASSERT_TRUE(eventually(
      [&] { return fx.server().stats().parked_waits == 1; }));

  inc.increment(opened.id, 10);
  EXPECT_EQ(waiter.await_reach(rid), 10u);
  EXPECT_EQ(fx.server().stats().parked_waits, 0u);
}

TEST(ServerParking, ThousandsOfWaitsOnOneConnection) {
  ServerFixture fx;
  ms::ServerClient c = fx.connect();
  const auto opened = c.open("fanout");
  constexpr int kWaits = 2000;
  std::vector<std::uint64_t> rids;
  rids.reserve(kWaits);
  for (int i = 1; i <= kWaits; ++i) {
    rids.push_back(c.on_reach_async(opened.id, i));
  }
  c.increment(opened.id, kWaits);
  for (int i = 0; i < kWaits; ++i) {
    EXPECT_GE(c.await_reach(rids[i]), static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(fx.server().stats().parked_waits, 0u);
}

TEST(ServerParking, CheckForTimesOut) {
  ServerFixture fx;
  ms::ServerClient c = fx.connect();
  const auto opened = c.open("timed");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(c.check_for(opened.id, 100, std::chrono::milliseconds(50)));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, std::chrono::milliseconds(45));
  std::uint64_t value = 0;
  c.increment(opened.id, 100);
  EXPECT_TRUE(
      c.check_for(opened.id, 100, std::chrono::seconds(5), &value));
  EXPECT_EQ(value, 100u);
}

TEST(ServerBatching, ReadYourWrites) {
  ms::ServerOptions opts;
  opts.batch_size = 1000;  // increments buffer server-side
  ServerFixture fx(opts);
  ms::ServerClient c = fx.connect();
  const auto opened = c.open("batched");
  // Ten no-ack increments in ONE write: they land in one event-loop
  // tick and coalesce in the per-counter batcher.  (Acked increments
  // are one round-trip each — a tick apiece — so they flush singly.)
  std::string burst;
  for (int i = 0; i < 10; ++i) {
    std::string body;
    ms::put_u64(body, opened.id);
    ms::put_u64(body, 1);
    ms::put_u8(body, ms::kIncrementNoAck);
    burst += ms::make_frame(static_cast<std::uint8_t>(ms::Op::kIncrement),
                            /*req_id=*/0, body);
  }
  c.send_raw(burst);
  // A read op must flush the batch first: the client sees all ten.
  EXPECT_EQ(c.stats(opened.id).at("value"), 10u);
  EXPECT_EQ(c.check(opened.id, 10), 10u);
  // The engine saw coalesced sub-batches, not ten singles.
  EXPECT_LT(c.stats(opened.id).at("increments"), 10u);
}

TEST(ServerPoison, PropagatesTypedToParkedAndFutureWaiters) {
  ServerFixture fx;
  ms::ServerClient waiter = fx.connect();
  ms::ServerClient killer = fx.connect();
  const auto opened = waiter.open("doomed");
  killer.open("doomed");

  const std::uint64_t rid = waiter.on_reach_async(opened.id, 100);
  ASSERT_TRUE(eventually(
      [&] { return fx.server().stats().parked_waits == 1; }));

  killer.poison(opened.id, "producer exploded");
  try {
    waiter.await_reach(rid);
    FAIL() << "parked wait should have been poisoned";
  } catch (const CounterPoisonedError& e) {
    EXPECT_NE(std::string(e.what()).find("producer exploded"),
              std::string::npos);
  }
  // Future waits and acked increments get the typed error immediately.
  EXPECT_THROW(waiter.check(opened.id, 100), CounterPoisonedError);
  EXPECT_THROW(killer.increment(opened.id, 1), CounterPoisonedError);
  // Below the frozen value still succeeds (poison freezes, not zeroes).
  EXPECT_EQ(waiter.check(opened.id, 0), 0u);
}

// ---- overload policy triple ----------------------------------------

TEST(ServerOverload, ThrowPolicyAnswersOverloaded) {
  ms::ServerOptions opts;
  opts.max_parked_waits = 2;
  opts.overload_policy = OverloadPolicy::kThrow;
  ServerFixture fx(opts);
  ms::ServerClient c = fx.connect();
  const auto opened = c.open("bounded");
  c.on_reach_async(opened.id, 100);
  c.on_reach_async(opened.id, 100);
  ASSERT_TRUE(eventually(
      [&] { return fx.server().stats().parked_waits == 2; }));
  EXPECT_THROW(c.check(opened.id, 100), CounterOverloadedError);
  EXPECT_GE(fx.server().stats().overload_rejections, 1u);
  // Capacity frees when the parked waits fire; new waits are admitted.
  c.increment(opened.id, 100);
  EXPECT_EQ(c.check(opened.id, 100), 100u);
}

TEST(ServerOverload, SpinFallbackDegradesButCompletes) {
  ms::ServerOptions opts;
  opts.max_parked_waits = 1;
  opts.overload_policy = OverloadPolicy::kSpinFallback;
  ServerFixture fx(opts);
  ms::ServerClient c = fx.connect();
  const auto opened = c.open("degraded");
  const std::uint64_t parked = c.on_reach_async(opened.id, 10);
  ASSERT_TRUE(eventually(
      [&] { return fx.server().stats().parked_waits == 1; }));
  // Over capacity: these waits poll on the tick loop instead.
  const std::uint64_t d1 = c.on_reach_async(opened.id, 10);
  const std::uint64_t d2 = c.on_reach_async(opened.id, 10);
  ASSERT_TRUE(eventually(
      [&] { return fx.server().stats().degraded_polls == 2; }));
  c.increment(opened.id, 10);
  EXPECT_EQ(c.await_reach(parked), 10u);
  EXPECT_EQ(c.await_reach(d1), 10u);
  EXPECT_EQ(c.await_reach(d2), 10u);
  const auto st = fx.server().stats();
  EXPECT_EQ(st.parked_waits, 0u);
  EXPECT_EQ(st.degraded_polls, 0u);
}

TEST(ServerOverload, DegradedTimedWaitStillTimesOut) {
  ms::ServerOptions opts;
  opts.max_parked_waits = 1;
  opts.overload_policy = OverloadPolicy::kSpinFallback;
  ServerFixture fx(opts);
  ms::ServerClient c = fx.connect();
  const auto opened = c.open("degraded-timed");
  c.on_reach_async(opened.id, 10);  // fills capacity
  ASSERT_TRUE(eventually(
      [&] { return fx.server().stats().parked_waits == 1; }));
  EXPECT_FALSE(c.check_for(opened.id, 10, std::chrono::milliseconds(50)));
}

TEST(ServerOverload, BlockIncrementersBackpressuresConnection) {
  ms::ServerOptions opts;
  opts.max_parked_waits = 1;
  opts.overload_policy = OverloadPolicy::kBlockIncrementers;
  ServerFixture fx(opts);
  ms::ServerClient gated = fx.connect();
  ms::ServerClient inc = fx.connect();
  const auto opened = gated.open("gated");
  inc.open("gated");

  const std::uint64_t first = gated.on_reach_async(opened.id, 5);
  ASSERT_TRUE(eventually(
      [&] { return fx.server().stats().parked_waits == 1; }));
  // Second wait exceeds capacity: the connection gates — the request
  // is deferred, not rejected.
  const std::uint64_t second = gated.on_reach_async(opened.id, 7);
  ASSERT_TRUE(eventually(
      [&] { return fx.server().stats().gated_connections == 1; }));

  // The OTHER connection keeps flowing, releases the first wait, which
  // frees capacity, ungates the connection and admits the second.
  inc.increment(opened.id, 5);
  EXPECT_EQ(gated.await_reach(first), 5u);
  inc.increment(opened.id, 2);
  EXPECT_EQ(gated.await_reach(second), 7u);
  EXPECT_EQ(fx.server().stats().gated_connections, 0u);
}

// ---- wire-protocol robustness --------------------------------------

TEST(ServerRobustness, OversizedFrameClosesConnection) {
  ServerFixture fx;
  ms::ServerClient bad = fx.connect();
  ms::ServerClient good = fx.connect();
  const auto opened = good.open("survives");

  std::string evil;
  ms::put_u32(evil, 10 * 1024 * 1024);  // 10MB "payload"
  bad.send_raw(evil);
  // The server names the offense — offending size and the cap — in a
  // final kBadRequest (req_id 0: no frame header ever parsed) before
  // hanging up.
  const auto last = bad.read_response();
  EXPECT_EQ(last.status, ms::Status::kBadRequest);
  EXPECT_EQ(last.req_id, 0u);
  EXPECT_NE(body_message(last).find("10485760"), std::string::npos);
  EXPECT_NE(body_message(last).find("65536"), std::string::npos);
  EXPECT_THROW(bad.read_response(), std::runtime_error);  // then hung up

  // The server itself is fine and other connections are untouched.
  good.increment(opened.id, 1);
  EXPECT_EQ(good.check(opened.id, 1), 1u);
  EXPECT_GE(fx.server().stats().protocol_errors, 1u);
}

TEST(ServerRobustness, RuntFrameClosesConnection) {
  ServerFixture fx;
  ms::ServerClient bad = fx.connect();
  std::string evil;
  ms::put_u32(evil, 3);  // < opcode + req_id
  evil += "abc";
  bad.send_raw(evil);
  const auto last = bad.read_response();  // named kBadRequest first
  EXPECT_EQ(last.status, ms::Status::kBadRequest);
  EXPECT_THROW(bad.read_response(), std::runtime_error);
}

TEST(ServerRobustness, TruncatedBodyAnswersBadRequest) {
  ServerFixture fx;
  ms::ServerClient c = fx.connect();
  // Well-formed frame, but an Increment body with only 4 of the 17
  // required bytes.
  std::string body = "\x01\x02\x03\x04";
  c.send_frame(ms::Op::kIncrement, 42, body);
  const auto resp = c.read_response();
  EXPECT_EQ(resp.status, ms::Status::kBadRequest);
  EXPECT_EQ(resp.req_id, 42u);
  // Stream stays usable: body length was honest, only content was bad.
  const auto opened = c.open("after-bad-body");
  EXPECT_EQ(opened.value, 0u);
}

TEST(ServerRobustness, UnknownOpcodeAnswersBadRequest) {
  ServerFixture fx;
  ms::ServerClient c = fx.connect();
  c.send_frame(static_cast<ms::Op>(99), 7, "");
  const auto resp = c.read_response();
  EXPECT_EQ(resp.status, ms::Status::kBadRequest);
  EXPECT_EQ(resp.req_id, 7u);
}

TEST(ServerRobustness, HalfFrameThenDisconnectLeaksNothing) {
  ServerFixture fx;
  {
    ms::ServerClient c = fx.connect();
    std::string half;
    ms::put_u32(half, 100);  // promises 100 bytes...
    half += "only a few";    // ...delivers ten, then disconnects
    c.send_raw(half);
  }
  ASSERT_TRUE(eventually(
      [&] { return fx.server().stats().connections_open == 0; }));
}

TEST(ServerRobustness, DisconnectWhileParkedFreesRegistration) {
  ServerFixture fx;
  ms::ServerClient keeper = fx.connect();
  const auto opened = keeper.open("abandoned");
  {
    ms::ServerClient doomed = fx.connect();
    doomed.open("abandoned");
    doomed.on_reach_async(opened.id, 1000);
    doomed.on_reach_async(opened.id, 2000);
    ASSERT_TRUE(eventually(
        [&] { return fx.server().stats().parked_waits == 2; }));
  }  // doomed disconnects with both waits parked

  // The death sweep must tombstone the registrations: parked_waits
  // drops without any increment ever reaching those levels —
  // observable through the wire Stats op, like the issue demands.
  ASSERT_TRUE(eventually([&] {
    return keeper.stats().at("parked_waits") == 0;
  }));

  // The engine's eventual fire against the tombstones is a no-op; the
  // server keeps serving.
  keeper.increment(opened.id, 2000);
  EXPECT_EQ(keeper.check(opened.id, 2000), 2000u);
  EXPECT_EQ(fx.server().stats().connections_open, 1u);
}

TEST(ServerRobustness, TcpListenerWorksToo) {
  ms::ServerOptions opts;
  opts.uds_path = unique_sock_path();
  opts.tcp_any_port = true;
  ms::CounterServer server(opts);
  server.Start();
  ASSERT_NE(server.tcp_port(), 0);
  {
    ms::ServerClient c = ms::ServerClient::connect_tcp(server.tcp_port());
    const auto opened = c.open("over-tcp");
    c.increment(opened.id, 4);
    EXPECT_EQ(c.check(opened.id, 4), 4u);
  }
  server.Stop();
}

// ---- multi-process integration -------------------------------------

TEST(ServerMultiProcess, ForkedWritersOneBlockingReader) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  ServerFixture fx;

  std::vector<pid_t> pids;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: separate process, own connection, acked increments.
      int rc = 0;
      try {
        ms::ServerClient c = ms::ServerClient::connect_uds(fx.path());
        const auto opened = c.open("multiproc/total");
        for (int i = 0; i < kPerWriter; ++i) c.increment(opened.id, 1);
      } catch (...) {
        rc = 1;
      }
      ::_exit(rc);
    }
    pids.push_back(pid);
  }

  // Parent: blocking wait for the full total, racing the children.
  ms::ServerClient c = fx.connect();
  const auto opened = c.open("multiproc/total");
  EXPECT_EQ(c.check(opened.id, kWriters * kPerWriter),
            static_cast<std::uint64_t>(kWriters * kPerWriter));

  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "writer " << pid << " failed";
  }
  const auto st = c.stats(opened.id);
  EXPECT_EQ(st.at("value"), static_cast<std::uint64_t>(kWriters * kPerWriter));
}

}  // namespace
