// server_recovery_child.cpp — the server process the crash-recovery
// suite forks, SIGKILLs, SIGTERMs and restarts.
//
// A separate exec'd binary, not a fork-without-exec, on purpose: the
// gtest parent is multi-threaded by the time the recovery tests run
// (client retry loops, chaos proxy), and constructing a CounterServer
// in a forked copy of a multi-threaded process is a locked-mutex
// lottery.  exec resets the world.
//
//   server_recovery_child <uds_path> <state_file> [--no-fsync]
//
// Runs a persistent, SIGTERM-drainable shard server until a drain
// completes (exit 0).  SIGKILL is the other way out — that is the
// test's job.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "monotonic/server/server.hpp"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <uds_path> <state_file> [--no-fsync]\n", argv[0]);
    return 2;
  }
  monotonic::server::ServerOptions opts;
  opts.uds_path = argv[1];
  opts.state_file = argv[2];
  opts.drain_on_sigterm = true;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-fsync") == 0) opts.journal_fsync = false;
  }
  monotonic::server::CounterServer server(std::move(opts));
  server.Start();
  while (!server.drained()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return 0;
}
