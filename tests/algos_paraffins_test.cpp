// algos_paraffins_test.cpp — the Paraffins Problem [9], §5.3's cited
// application: radical enumeration through chained broadcast stages and
// alkane counting by centroid decomposition, validated against the
// published isomer counts.

#include <gtest/gtest.h>

#include <string>

#include "monotonic/algos/paraffins.hpp"

namespace monotonic {
namespace {

// OEIS A000598: rooted trees with out-degree <= 3 ("radicals").
const std::vector<std::uint64_t> kRadicals = {1,  1,  1,  2,   4,   8,
                                              17, 39, 89, 211, 507, 1238};
// OEIS A000602: alkanes C_n H_2n+2 (free carbon trees, degree <= 4).
const std::vector<std::uint64_t> kAlkanes = {0,  1,  1,  1,  2,   3,
                                             5,  9,  18, 35, 75,  159};

TEST(ParaffinsSequential, RadicalCountsMatchOeisA000598) {
  const auto r = paraffins_sequential(11);
  ASSERT_EQ(r.radicals.size(), 12u);
  for (std::size_t k = 0; k < 12; ++k) {
    EXPECT_EQ(r.radicals[k], kRadicals[k]) << "k=" << k;
  }
}

TEST(ParaffinsSequential, AlkaneCountsMatchOeisA000602) {
  const auto r = paraffins_sequential(11);
  ASSERT_EQ(r.alkanes.size(), 12u);
  for (std::size_t n = 1; n < 12; ++n) {
    EXPECT_EQ(r.alkanes[n], kAlkanes[n]) << "n=" << n;
  }
}

TEST(ParaffinsSequential, FamousIsomerCounts) {
  const auto r = paraffins_sequential(10);
  EXPECT_EQ(r.alkanes[4], 2u);   // butane, isobutane
  EXPECT_EQ(r.alkanes[5], 3u);   // pentane, isopentane, neopentane
  EXPECT_EQ(r.alkanes[8], 18u);  // the octanes
  EXPECT_EQ(r.alkanes[10], 75u); // the decanes
}

TEST(ParaffinsSequential, ChecksumsAreReproducible) {
  EXPECT_EQ(paraffins_sequential(9), paraffins_sequential(9));
}

TEST(ParaffinsSequential, DistinctStagesHaveDistinctChecksums) {
  const auto r = paraffins_sequential(8);
  for (std::size_t i = 1; i < r.radical_checksums.size(); ++i) {
    EXPECT_NE(r.radical_checksums[i], r.radical_checksums[i - 1]);
  }
}

struct ParaffinsParam {
  std::size_t max_carbons;
  std::size_t block;
};

class ParaffinsPipeline : public ::testing::TestWithParam<ParaffinsParam> {};

TEST_P(ParaffinsPipeline, MatchesSequentialReference) {
  const auto p = GetParam();
  const auto expected = paraffins_sequential(p.max_carbons);
  const auto actual = paraffins_pipeline(p.max_carbons, p.block,
                                         Execution::kMultithreaded);
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParaffinsPipeline,
    ::testing::Values(ParaffinsParam{1, 1}, ParaffinsParam{5, 1},
                      ParaffinsParam{8, 1}, ParaffinsParam{8, 16},
                      ParaffinsParam{10, 4}, ParaffinsParam{11, 32}),
    [](const ::testing::TestParamInfo<ParaffinsParam>& info) {
      return "c" + std::to_string(info.param.max_carbons) + "_b" +
             std::to_string(info.param.block);
    });

TEST(ParaffinsPipelineExtra, SequentialPolicyMatches) {
  EXPECT_EQ(paraffins_pipeline(9, 4, Execution::kSequential),
            paraffins_sequential(9));
}

TEST(ParaffinsPipelineExtra, DeterministicAcrossRuns) {
  const auto first = paraffins_pipeline(9, 2, Execution::kMultithreaded);
  for (int run = 0; run < 5; ++run) {
    ASSERT_EQ(paraffins_pipeline(9, 2, Execution::kMultithreaded), first);
  }
}

}  // namespace
}  // namespace monotonic
