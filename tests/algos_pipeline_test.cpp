// algos_pipeline_test.cpp — the paraffins-shaped composition pipeline
// (§5.3's motivating application, per the DESIGN.md substitution).

#include <gtest/gtest.h>

#include <string>

#include "monotonic/algos/compositions.hpp"

namespace monotonic {
namespace {

TEST(CompositionsSequential, KnownCountsMaxPart2) {
  // Compositions into parts {1,2} count as Fibonacci: 1 1 2 3 5 8 13.
  const auto r = compositions_sequential(6, 2);
  EXPECT_EQ(r.counts,
            (std::vector<std::uint64_t>{1, 1, 2, 3, 5, 8, 13}));
}

TEST(CompositionsSequential, KnownCountsMaxPart3) {
  // Tribonacci: 1 1 2 4 7 13 24.
  const auto r = compositions_sequential(6, 3);
  EXPECT_EQ(r.counts, (std::vector<std::uint64_t>{1, 1, 2, 4, 7, 13, 24}));
}

TEST(CompositionsSequential, UnboundedPartsDoublesCounts) {
  // All compositions of k: 2^(k-1).
  const auto r = compositions_sequential(10, 10);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_EQ(r.counts[k], std::uint64_t{1} << (k - 1)) << "k=" << k;
  }
}

TEST(CompositionsSequential, ChecksumsAreReproducible) {
  const auto a = compositions_sequential(8, 3);
  const auto b = compositions_sequential(8, 3);
  EXPECT_EQ(a, b);
}

struct PipelineParam {
  std::size_t max_size;
  std::size_t max_part;
  std::size_t block;
};

class CompositionPipeline : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(CompositionPipeline, MatchesSequentialReference) {
  const auto p = GetParam();
  const auto expected = compositions_sequential(p.max_size, p.max_part);
  const auto actual = compositions_pipeline(p.max_size, p.max_part, p.block,
                                            Execution::kMultithreaded);
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompositionPipeline,
    ::testing::Values(PipelineParam{1, 1, 1}, PipelineParam{6, 2, 1},
                      PipelineParam{8, 3, 1}, PipelineParam{8, 3, 4},
                      PipelineParam{10, 2, 16}, PipelineParam{12, 3, 8},
                      PipelineParam{14, 2, 32}),
    [](const ::testing::TestParamInfo<PipelineParam>& info) {
      return "k" + std::to_string(info.param.max_size) + "_p" +
             std::to_string(info.param.max_part) + "_b" +
             std::to_string(info.param.block);
    });

TEST(CompositionPipelineExtra, SequentialPolicyMatchesToo) {
  const auto expected = compositions_sequential(10, 3);
  EXPECT_EQ(compositions_pipeline(10, 3, 4, Execution::kSequential),
            expected);
}

TEST(CompositionPipelineExtra, DeterministicAcrossRuns) {
  const auto first =
      compositions_pipeline(9, 3, 2, Execution::kMultithreaded);
  for (int run = 0; run < 5; ++run) {
    ASSERT_EQ(compositions_pipeline(9, 3, 2, Execution::kMultithreaded),
              first);
  }
}

}  // namespace
}  // namespace monotonic
