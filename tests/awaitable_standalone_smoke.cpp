// awaitable_standalone_smoke.cpp — guards the header's standalone
// contract: monotonic/core/awaitable.hpp must compile as the FIRST and
// only project include (plus completion.hpp, which makes the same
// promise), without dragging in the engine.  CI compiles this file as
// its coroutine smoke check; breaking the include graph breaks the
// build, not a downstream user.
#include "monotonic/core/awaitable.hpp"

#include "monotonic/core/completion.hpp"

#include <atomic>
#include <functional>

namespace {

// A minimal OnReach-capable type: the awaitable needs nothing else
// from a counter, which is exactly the standalone claim.
struct FakeCounter {
  std::function<void()> pending;
  void OnReach(monotonic::counter_value_t, std::function<void()> fn,
               std::function<void(std::exception_ptr)>) {
    pending = std::move(fn);
  }
};

monotonic::DetachedTask smoke(FakeCounter& c, std::atomic<int>& state) {
  const bool reached = co_await monotonic::reach(c, 1);
  state.store(reached ? 1 : 2);
}

}  // namespace

int main() {
  FakeCounter c;
  std::atomic<int> state{0};
  smoke(c, state);
  if (state.load() != 0) return 1;  // must be suspended, not fired
  c.pending();                      // "reach" the level
  if (state.load() != 1) return 1;
  monotonic::InlineExecutor inline_exec;
  bool ran = false;
  inline_exec.post([&] { ran = true; });
  return ran ? 0 : 1;
}
