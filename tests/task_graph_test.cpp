// task_graph_test.cpp — counter-scheduled task DAGs: dependency
// correctness on hand-built and randomized graphs.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/patterns/task_graph.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {
namespace {

TEST(TaskGraphTest, LinearChainRunsInOrder) {
  TaskGraph<> graph;
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::size_t> deps;
    if (i > 0) deps.push_back(static_cast<std::size_t>(i - 1));
    graph.add_task(
        [&, i] {
          std::scoped_lock lock(m);
          order.push_back(i);
        },
        deps);
  }
  graph.run(4);
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(TaskGraphTest, DiamondJoinSeesBothBranches) {
  TaskGraph<> graph;
  std::atomic<int> a{0}, b{0}, joined{0};
  const auto source = graph.add_task([] {});
  const auto left = graph.add_task([&] { a = 1; }, {source});
  const auto right = graph.add_task([&] { b = 2; }, {source});
  graph.add_task([&] { joined = a + b; }, {left, right});
  graph.run(3);
  EXPECT_EQ(joined.load(), 3);
}

TEST(TaskGraphTest, IndependentTasksAllRun) {
  TaskGraph<> graph;
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    graph.add_task([&] { count.fetch_add(1); });
  }
  graph.run(8);
  EXPECT_EQ(count.load(), 32);
}

TEST(TaskGraphTest, FanOutBroadcastsOneCounter) {
  // One producer, many dependents: all successors wait on the SAME
  // counter — the §1 broadcast framing.
  TaskGraph<> graph;
  std::atomic<int> produced{0};
  std::atomic<int> consumers_ok{0};
  const auto producer = graph.add_task([&] { produced = 42; });
  for (int i = 0; i < 10; ++i) {
    graph.add_task(
        [&] {
          if (produced.load() == 42) consumers_ok.fetch_add(1);
        },
        {producer});
  }
  graph.run(4);
  EXPECT_EQ(consumers_ok.load(), 10);
}

TEST(TaskGraphTest, RandomDagsHonourAllDependencies) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Xoshiro256 rng(seed * 1000003);
    TaskGraph<> graph;
    constexpr std::size_t kTasks = 60;
    std::vector<std::atomic<bool>> finished(kTasks);
    std::vector<std::vector<std::size_t>> deps_of(kTasks);

    for (std::size_t i = 0; i < kTasks; ++i) {
      // Up to 3 random dependencies on earlier tasks.
      if (i > 0) {
        const std::size_t num_deps = rng.uniform(0, 3);
        for (std::size_t d = 0; d < num_deps; ++d) {
          deps_of[i].push_back(rng.uniform(0, i - 1));
        }
      }
      graph.add_task(
          [&, i] {
            for (std::size_t dep : deps_of[i]) {
              // A dependency must be complete before we start.
              EXPECT_TRUE(finished[dep].load()) << "task " << i
                                                << " dep " << dep;
            }
            finished[i].store(true);
          },
          deps_of[i]);
    }
    graph.run(1 + seed % 6);
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_TRUE(finished[i].load());
    }
  }
}

TEST(TaskGraphTest, ForwardDependencyRejected) {
  TaskGraph<> graph;
  graph.add_task([] {});
  EXPECT_THROW(graph.add_task([] {}, {5}), std::invalid_argument);
  EXPECT_THROW(graph.add_task([] {}, {1}), std::invalid_argument);  // self
}

TEST(TaskGraphTest, EmptyGraphRuns) {
  TaskGraph<> graph;
  graph.run(4);
}

TEST(TaskGraphTest, SecondRunRejected) {
  TaskGraph<> graph;
  graph.add_task([] {});
  graph.run(1);
  EXPECT_THROW(graph.run(1), std::invalid_argument);
}

TEST(TaskGraphTest, ExternalConsumersViaDoneCounter) {
  TaskGraph<> graph;
  std::atomic<int> value{0};
  const auto id = graph.add_task([&] { value = 7; });
  std::jthread external([&] {
    graph.done_counter(id).Check(1);
    EXPECT_EQ(value.load(), 7);
  });
  graph.run(2);
}

TEST(TaskGraphTest, WorksWithAnyCounterImplementation) {
  TaskGraph<SingleCvCounter> graph;
  std::atomic<int> total{0};
  const auto a = graph.add_task([&] { total += 1; });
  graph.add_task([&] { total += 10; }, {a});
  graph.run(2);
  EXPECT_EQ(total.load(), 11);
}

TEST(TaskGraphTest, MoreWorkersThanTasksClamps) {
  TaskGraph<> graph;
  std::atomic<int> count{0};
  for (int i = 0; i < 3; ++i) graph.add_task([&] { count.fetch_add(1); });
  graph.run(64);
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace monotonic
