// edge_cases_test.cpp — failure handling, misuse detection, and
// boundary behaviour across the library.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/patterns/broadcast.hpp"
#include "monotonic/patterns/pipeline.hpp"
#include "monotonic/support/table.hpp"
#include "monotonic/sync/event.hpp"
#include "monotonic/threads/multi_error.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------- counter misuse

TEST(CounterEdge, DestructionWithWaitersAborts) {
  // Destroying a counter while a thread sleeps in Check would destroy
  // a condition variable under a waiter (UB); the library aborts with
  // a message instead.  Death test: the child process must die.
  EXPECT_DEATH(
      {
        auto* counter = new Counter();
        std::thread waiter([&] { counter->Check(1); });
        waiter.detach();  // death-test child: deliberately unjoined
        // Give the waiter time to suspend, then destroy underneath it.
        std::this_thread::sleep_for(100ms);
        delete counter;
      },
      "destroyed with suspended waiters");
}

TEST(CounterEdge, CheckForZeroTimeoutIsNonBlockingProbe) {
  Counter c;
  EXPECT_FALSE(c.CheckFor(1, 0ms));
  c.Increment(1);
  EXPECT_TRUE(c.CheckFor(1, 0ms));
}

TEST(CounterEdge, CheckLevelZeroAlwaysPasses) {
  Counter c;
  c.Check(0);
  c.Increment(~counter_value_t{0});
  c.Check(0);
}

TEST(CounterEdge, IncrementByMaxFromZero) {
  Counter c;
  c.Increment(~counter_value_t{0});
  c.Check(~counter_value_t{0});
  EXPECT_EQ(c.debug_snapshot().value, ~counter_value_t{0});
}

TEST(CounterEdge, PoolBoundedByOption) {
  Counter::Options opts;
  opts.max_pool_size = 2;
  Counter c(opts);
  // Park waiters on 4 distinct levels, then release all at once: four
  // nodes are freed but at most two may be retained by the pool.
  {
    std::vector<std::jthread> waiters;
    for (counter_value_t level : {1u, 2u, 3u, 4u}) {
      waiters.emplace_back([&c, level] { c.Check(level); });
    }
    while (c.debug_snapshot().wait_levels.size() < 4) {
      std::this_thread::yield();
    }
    c.Increment(4);
  }
  // Re-park on 4 levels again: at most 2 allocations can come from the
  // pool.
  {
    std::vector<std::jthread> waiters;
    for (counter_value_t level : {5u, 6u, 7u, 8u}) {
      waiters.emplace_back([&c, level] { c.Check(level); });
    }
    while (c.debug_snapshot().wait_levels.size() < 4) {
      std::this_thread::yield();
    }
    c.Increment(4);
  }
  EXPECT_LE(c.stats().nodes_pooled, 2u);
}

TEST(CounterEdge, FutexCounterSurvivesWakeupStorm) {
  FutexCounter c;
  std::atomic<int> released{0};
  {
    std::vector<std::jthread> waiters;
    for (int i = 0; i < 16; ++i) {
      waiters.emplace_back([&c, &released, i] {
        c.Check(static_cast<counter_value_t>(i % 4) + 1);
        released.fetch_add(1);
      });
    }
    // Many tiny increments: each FUTEX_WAKE storms all sleepers.
    for (int i = 0; i < 4; ++i) {
      std::this_thread::sleep_for(1ms);
      c.Increment(1);
    }
  }
  EXPECT_EQ(released.load(), 16);
}

// ------------------------------------------------------ channel misuse

TEST(BroadcastEdge, PublishPastCapacityRejected) {
  BroadcastChannel<int> ch(2);
  auto writer = ch.writer(1);
  writer.publish(1);
  writer.publish(2);
  EXPECT_THROW(writer.publish(3), std::invalid_argument);
}

TEST(BroadcastEdge, ReadPastCapacityRejected) {
  BroadcastChannel<int> ch(2);
  auto reader = ch.reader(1);
  EXPECT_THROW(reader.get(2), std::invalid_argument);
}

TEST(BroadcastEdge, ZeroBlockSizeRejected) {
  BroadcastChannel<int> ch(4);
  EXPECT_THROW(ch.writer(0), std::invalid_argument);
  EXPECT_THROW(ch.reader(0), std::invalid_argument);
  EXPECT_THROW(BroadcastChannel<int>(0), std::invalid_argument);
}

TEST(PipelineEdge, OutputBeforeRunRejected) {
  Pipeline<int> p;
  p.add_stage(1, [](Pipeline<int>::Context& ctx) { ctx.emit(1); });
  EXPECT_THROW(p.output(0), std::invalid_argument);
}

TEST(PipelineEdge, SecondRunRejected) {
  Pipeline<int> p;
  p.add_stage(1, [](Pipeline<int>::Context& ctx) { ctx.emit(1); });
  p.run(Execution::kSequential);
  EXPECT_THROW(p.run(Execution::kSequential), std::invalid_argument);
  EXPECT_THROW(
      p.add_stage(1, [](Pipeline<int>::Context& ctx) { ctx.emit(1); }),
      std::invalid_argument);
}

// ---------------------------------------------------------- multi_error

TEST(MultiErrorEdge, MessageListsEveryFailure) {
  std::vector<std::exception_ptr> errors;
  try {
    throw std::runtime_error("alpha failed");
  } catch (...) {
    errors.push_back(std::current_exception());
  }
  try {
    throw std::logic_error("beta failed");
  } catch (...) {
    errors.push_back(std::current_exception());
  }
  const MultiError error(std::move(errors));
  const std::string what = error.what();
  EXPECT_NE(what.find("2 thread(s)"), std::string::npos);
  EXPECT_NE(what.find("alpha failed"), std::string::npos);
  EXPECT_NE(what.find("beta failed"), std::string::npos);
}

TEST(MultiErrorEdge, NonStdExceptionHandled) {
  std::vector<std::exception_ptr> errors;
  try {
    throw 42;  // NOLINT: deliberately not a std::exception
  } catch (...) {
    errors.push_back(std::current_exception());
  }
  const MultiError error(std::move(errors));
  EXPECT_NE(std::string(error.what()).find("non-std exception"),
            std::string::npos);
}

TEST(MultiErrorEdge, NestedMultithreadedPropagates) {
  EXPECT_THROW(multithreaded_block([] {
                 multithreaded_block(
                     [] { throw std::runtime_error("inner"); });
               }),
               MultiError);
}

// --------------------------------------------------------------- tables

TEST(TableEdge, StreamOperatorMatchesToString) {
  TextTable t({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

TEST(TableEdge, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

// ------------------------------------------------------------ condition

TEST(ConditionEdge, StressManySettersManyWaiters) {
  // Set() is idempotent: concurrent setters and waiters must all
  // converge without double-notify issues.
  for (int round = 0; round < 20; ++round) {
    Condition cond;
    std::atomic<int> passed{0};
    std::vector<std::function<void()>> bodies;
    for (int i = 0; i < 4; ++i) {
      bodies.emplace_back([&] {
        cond.Check();
        passed.fetch_add(1);
      });
    }
    for (int i = 0; i < 2; ++i) {
      bodies.emplace_back([&] { cond.Set(); });
    }
    multithreaded(std::move(bodies), Execution::kMultithreaded);
    ASSERT_EQ(passed.load(), 4);
  }
}

}  // namespace
}  // namespace monotonic
