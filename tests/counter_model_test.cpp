// counter_model_test.cpp — model-based testing of the counter.
//
// A reference model (plain integer + pending-check list) is driven with
// randomized operation sequences; the real implementations must agree
// with the model on every observable: which timed checks pass, which
// time out, the final snapshot value, and the wait-list shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

// ----------------------------------------------------------------------
// Single-threaded model equivalence: sequences of Increment / probing
// timed Check / Reset, mirrored against a plain integer.

TEST(CounterModel, RandomSequencesMatchIntegerModel) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Xoshiro256 rng(seed);
    Counter counter;
    counter_value_t model = 0;

    for (int op = 0; op < 400; ++op) {
      switch (rng.uniform(0, 2)) {
        case 0: {  // Increment
          const counter_value_t amount = rng.uniform(0, 20);
          counter.Increment(amount);
          model += amount;
          break;
        }
        case 1: {  // timed Check as a safe probe
          // Probe a level near the model value; CheckFor(., 0ms) is a
          // non-blocking observation: passes iff model >= level.
          const counter_value_t level =
              model > 5 ? model - 5 + rng.uniform(0, 10)
                        : rng.uniform(0, 10);
          const bool expected = model >= level;
          EXPECT_EQ(counter.CheckFor(level, 0ms), expected)
              << "seed=" << seed << " op=" << op << " level=" << level
              << " model=" << model;
          break;
        }
        case 2: {  // Reset (valid here: no concurrent waiters)
          if (rng.uniform(0, 9) == 0) {
            counter.Reset();
            model = 0;
          }
          break;
        }
      }
      ASSERT_EQ(counter.debug_snapshot().value, model);
    }
  }
}

// The same sequences applied to every implementation kind through the
// type-erased interface: all kinds must agree on the value trajectory.
TEST(CounterModel, AllKindsAgreeOnValueTrajectory) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    // Generate one operation tape.
    Xoshiro256 rng(seed * 977);
    std::vector<counter_value_t> amounts;
    for (int op = 0; op < 200; ++op) amounts.push_back(rng.uniform(0, 15));

    // Apply to all kinds; verify with a blocking Check on the final sum
    // (which must not block) for each.
    counter_value_t total = 0;
    for (auto a : amounts) total += a;
    for (CounterKind kind : all_counter_kinds()) {
      auto c = make_counter(kind);
      for (auto a : amounts) c->Increment(a);
      c->Check(total);  // hangs (test timeout) if any increment was lost
      EXPECT_EQ(c->stats().increments, amounts.size()) << to_string(kind);
    }
  }
}

// ----------------------------------------------------------------------
// Wait-list shape model: issue a batch of waiters at random levels, and
// check the snapshot matches a map<level, count> model exactly.

TEST(CounterModel, WaitListShapeMatchesMultiset) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Xoshiro256 rng(seed * 31337);
    Counter counter;
    const std::size_t waiters = 6 + seed % 5;

    std::map<counter_value_t, std::size_t> model;
    std::vector<std::jthread> threads;
    for (std::size_t w = 0; w < waiters; ++w) {
      const counter_value_t level = rng.uniform(1, 6);
      ++model[level];
      threads.emplace_back([&counter, level] { counter.Check(level); });
    }

    // Wait until all suspended, then compare shapes.
    for (;;) {
      std::size_t total = 0;
      for (const auto& wl : counter.debug_snapshot().wait_levels) {
        total += wl.waiters;
      }
      if (total == waiters) break;
      std::this_thread::yield();
    }
    const auto snap = counter.debug_snapshot();
    ASSERT_EQ(snap.wait_levels.size(), model.size()) << "seed=" << seed;
    auto it = model.begin();
    for (const auto& wl : snap.wait_levels) {
      EXPECT_EQ(wl.level, it->first);
      EXPECT_EQ(wl.waiters, it->second);
      ++it;
    }

    // Release a random prefix of levels; the remaining shape must be
    // the model's tail.
    const counter_value_t release = rng.uniform(1, 6);
    counter.Increment(release);
    while (true) {
      const auto s = counter.debug_snapshot();
      std::size_t expected_nodes = 0;
      for (const auto& [level, count] : model) {
        if (level > release) ++expected_nodes;
      }
      if (s.wait_levels.size() == expected_nodes) break;
      std::this_thread::yield();
    }
    for (const auto& wl : counter.debug_snapshot().wait_levels) {
      EXPECT_GT(wl.level, release);
      EXPECT_EQ(wl.waiters, model[wl.level]);
    }
    counter.Increment(6);  // drain
    threads.clear();
  }
}

// ----------------------------------------------------------------------
// Timed checks racing increments: whatever the interleaving, a CheckFor
// that returns true implies the level was reached, and one that returns
// false implies the deadline passed — and the wait list is always empty
// once all actors are done.

TEST(CounterModel, TimedChecksNeverCorruptTheWaitList) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Counter counter;
    Xoshiro256 rng(seed * 7919);
    const counter_value_t target = 50;

    std::vector<std::jthread> actors;
    for (int a = 0; a < 4; ++a) {
      const std::uint64_t salt = rng();
      actors.emplace_back([&counter, salt] {
        Xoshiro256 local(salt);
        for (int i = 0; i < 25; ++i) {
          const auto level = local.uniform(1, target);
          (void)counter.CheckFor(level,
                                 std::chrono::microseconds(local.uniform(0, 300)));
        }
      });
    }
    actors.emplace_back([&counter] {
      for (counter_value_t i = 0; i < target; ++i) {
        counter.Increment(1);
        std::this_thread::yield();
      }
    });
    actors.clear();  // join all

    const auto snap = counter.debug_snapshot();
    EXPECT_EQ(snap.value, target);
    EXPECT_TRUE(snap.wait_levels.empty())
        << "timed-out waiters must unlink their nodes";
    EXPECT_EQ(counter.stats().live_nodes, 0u);
  }
}

}  // namespace
}  // namespace monotonic
