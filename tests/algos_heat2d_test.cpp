// algos_heat2d_test.cpp — the 2-D extension of §5.1: strip threads with
// halo exchange through RaggedStrips, bit-exact vs sequential Jacobi.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "monotonic/algos/heat2d.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {
namespace {

Grid2D random_grid(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Grid2D grid(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      grid.at(r, c) = rng.uniform01() * 100.0;
    }
  }
  return grid;
}

Heat2dOptions opts(std::size_t steps, std::size_t threads) {
  Heat2dOptions o;
  o.steps = steps;
  o.num_threads = threads;
  return o;
}

TEST(Heat2dSequential, UniformGridStaysUniform) {
  Grid2D grid(6, 7, 42.0);
  const auto result = heat2d_sequential(grid, opts(50, 1));
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_DOUBLE_EQ(result.at(r, c), 42.0);
    }
  }
}

TEST(Heat2dSequential, BoundariesNeverChange) {
  auto grid = random_grid(8, 9, 1);
  const auto result = heat2d_sequential(grid, opts(100, 1));
  for (std::size_t c = 0; c < 9; ++c) {
    EXPECT_DOUBLE_EQ(result.at(0, c), grid.at(0, c));
    EXPECT_DOUBLE_EQ(result.at(7, c), grid.at(7, c));
  }
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(result.at(r, 0), grid.at(r, 0));
    EXPECT_DOUBLE_EQ(result.at(r, 8), grid.at(r, 8));
  }
}

TEST(Heat2dSequential, HeatSpreadsInward) {
  Grid2D grid(8, 8, 0.0);
  for (std::size_t c = 0; c < 8; ++c) grid.at(0, c) = 100.0;  // hot top edge
  const auto result = heat2d_sequential(grid, opts(500, 1));
  EXPECT_GT(result.at(1, 4), 0.0);
  EXPECT_GT(result.at(1, 4), result.at(6, 4));  // gradient away from source
}

struct Heat2dParam {
  std::size_t rows;
  std::size_t cols;
  std::size_t steps;
  std::size_t threads;
};

class Heat2dEquivalence : public ::testing::TestWithParam<Heat2dParam> {};

TEST_P(Heat2dEquivalence, BarrierMatchesSequentialExactly) {
  const auto p = GetParam();
  const auto grid = random_grid(p.rows, p.cols, 10 + p.rows);
  const auto options = opts(p.steps, p.threads);
  EXPECT_EQ(heat2d_barrier(grid, options), heat2d_sequential(grid, options));
}

TEST_P(Heat2dEquivalence, RaggedMatchesSequentialExactly) {
  const auto p = GetParam();
  const auto grid = random_grid(p.rows, p.cols, 20 + p.rows);
  const auto options = opts(p.steps, p.threads);
  EXPECT_EQ(heat2d_ragged(grid, options), heat2d_sequential(grid, options));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Heat2dEquivalence,
    ::testing::Values(Heat2dParam{3, 3, 10, 1}, Heat2dParam{4, 4, 20, 2},
                      Heat2dParam{8, 8, 50, 2}, Heat2dParam{8, 8, 50, 6},
                      Heat2dParam{12, 6, 30, 4}, Heat2dParam{16, 16, 25, 4},
                      Heat2dParam{9, 17, 40, 3}),
    [](const ::testing::TestParamInfo<Heat2dParam>& info) {
      return "r" + std::to_string(info.param.rows) + "c" +
             std::to_string(info.param.cols) + "_s" +
             std::to_string(info.param.steps) + "_t" +
             std::to_string(info.param.threads);
    });

TEST(Heat2dEquivalenceExtra, ThreadsBeyondStripsClamp) {
  const auto grid = random_grid(5, 5, 3);  // 3 interior rows
  const auto options = opts(20, 16);       // clamped to 3 strips
  EXPECT_EQ(heat2d_ragged(grid, options), heat2d_sequential(grid, options));
}

TEST(Heat2dEquivalenceExtra, ImbalancedStripsStillExact) {
  const auto grid = random_grid(10, 10, 4);
  auto skewed = opts(20, 4);
  skewed.strip_hook = [](std::size_t s, std::size_t) {
    if (s == 1) std::this_thread::yield();
  };
  EXPECT_EQ(heat2d_ragged(grid, skewed), heat2d_sequential(grid, opts(20, 4)));
}

TEST(Heat2dEquivalenceExtra, DeterministicAcrossRuns) {
  const auto grid = random_grid(10, 8, 5);
  const auto options = opts(30, 3);
  const auto first = heat2d_ragged(grid, options);
  for (int run = 0; run < 5; ++run) {
    ASSERT_EQ(heat2d_ragged(grid, options), first);
  }
}

TEST(Heat2dEquivalenceExtra, OtherCounterImplementations) {
  const auto grid = random_grid(8, 8, 6);
  const auto options = opts(20, 3);
  EXPECT_EQ(heat2d_ragged_with<SingleCvCounter>(grid, options),
            heat2d_sequential(grid, options));
}

TEST(Heat2dValidation, TooSmallGridsRejected) {
  EXPECT_THROW(heat2d_sequential(Grid2D(2, 5), opts(1, 1)),
               std::invalid_argument);
  EXPECT_THROW(heat2d_ragged(Grid2D(5, 2), opts(1, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace monotonic
