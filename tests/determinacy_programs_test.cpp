// determinacy_programs_test.cpp — certifying the paper's *programs*
// under the §6 checker, at small sizes, with CheckedArray tracking
// every shared element.
//
// The paper asserts: "All the programs using counters that we have
// presented in this paper satisfy the conditions on shared variables,
// therefore are guaranteed to be deterministic."  These tests actually
// run the §4.5 Floyd-Warshall, §5.1 heat exchange, and §5.3 broadcast
// programs under the dynamic checker — and run broken variants (a
// missing Check, a premature Increment) that the checker must flag.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "monotonic/core/multi.hpp"
#include "monotonic/determinacy/checked_array.hpp"
#include "monotonic/determinacy/recorder.hpp"
#include "monotonic/determinacy/tracked_counter.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

TEST(CheckedArrayBasics, ElementsAreIndependent) {
  RaceDetector detector;
  CheckedArray<int> a(detector, "a", 4);
  // Two threads writing DIFFERENT elements: no race.
  multithreaded_block([&] { a.write(0, 10); }, [&] { a.write(3, 30); });
  EXPECT_EQ(detector.race_count(), 0u);
  EXPECT_EQ(a.unchecked(0), 10);
  EXPECT_EQ(a.unchecked(3), 30);
}

TEST(CheckedArrayBasics, SameElementConflicts) {
  RaceDetector detector;
  CheckedArray<int> a(detector, "a", 4);
  multithreaded_block([&] { a.write(2, 1); }, [&] { a.write(2, 2); });
  EXPECT_GT(detector.race_count(), 0u);
  EXPECT_EQ(detector.reports()[0].variable, "a[2]");
}

TEST(CheckedArrayBasics, OutOfRangeRejected) {
  RaceDetector detector;
  CheckedArray<int> a(detector, "a", 2);
  EXPECT_THROW(a.read(2), std::invalid_argument);
  EXPECT_THROW(a.write(5, 0), std::invalid_argument);
}

// §5.3's broadcast program, checked: writer publishes data[i] then
// increments; readers Check(i+1) then read data[i].
TEST(CertifiedPrograms, BroadcastIsClean) {
  RaceDetector detector;
  TrackedCounter<> count(detector);
  constexpr std::size_t kItems = 8;
  CheckedArray<std::uint64_t> data(detector, "data", kItems);

  std::vector<std::function<void()>> bodies;
  bodies.emplace_back([&] {
    for (std::size_t i = 0; i < kItems; ++i) {
      data.write(i, i * 7);
      count.Increment(1);
    }
  });
  for (int r = 0; r < 3; ++r) {
    bodies.emplace_back([&] {
      for (std::size_t i = 0; i < kItems; ++i) {
        count.Check(i + 1);
        EXPECT_EQ(data.read(i), i * 7);
      }
    });
  }
  multithreaded(std::move(bodies), Execution::kMultithreaded);
  EXPECT_EQ(detector.race_count(), 0u)
      << "§5.3's program satisfies the §6 conditions";
}

// The broken broadcast: the writer increments BEFORE writing.  Readers
// can then read concurrently with the write — flagged.
TEST(CertifiedPrograms, PrematureIncrementIsFlagged) {
  RaceDetector detector;
  TrackedCounter<> count(detector);
  constexpr std::size_t kItems = 8;
  CheckedArray<std::uint64_t> data(detector, "data", kItems);

  multithreaded_block(
      [&] {
        for (std::size_t i = 0; i < kItems; ++i) {
          count.Increment(1);  // BUG: announced before written
          data.write(i, i);
        }
      },
      [&] {
        for (std::size_t i = 0; i < kItems; ++i) {
          count.Check(i + 1);
          (void)data.read(i);
        }
      });
  EXPECT_GT(detector.race_count(), 0u)
      << "write after announce must break the discipline";
}

// §5.1's heat-exchange skeleton at 5 cells, checked.  State reads and
// writes go through CheckedArray; the counters are tracked.
TEST(CertifiedPrograms, HeatExchangeIsClean) {
  RaceDetector detector;
  constexpr std::size_t kCells = 5;
  constexpr std::size_t kSteps = 4;
  CheckedArray<double> state(detector, "state", kCells, 1.0);
  std::vector<std::unique_ptr<TrackedCounter<>>> c;
  for (std::size_t i = 0; i < kCells; ++i) {
    c.push_back(std::make_unique<TrackedCounter<>>(detector));
  }
  c[0]->Increment(2 * kSteps);
  c[kCells - 1]->Increment(2 * kSteps);

  multithreaded_for(
      std::size_t{1}, kCells - 1, std::size_t{1},
      [&](std::size_t i) {
        double my_state = state.read(i);
        for (std::size_t t = 1; t <= kSteps; ++t) {
          c[i - 1]->Check(2 * t - 2);
          const double l = state.read(i - 1);
          c[i + 1]->Check(2 * t - 2);
          const double r = state.read(i + 1);
          c[i]->Increment(1);
          my_state = (l + my_state + r) / 3.0;
          c[i - 1]->Check(2 * t - 1);
          c[i + 1]->Check(2 * t - 1);
          state.write(i, my_state);
          c[i]->Increment(1);
        }
      },
      Execution::kMultithreaded);

  EXPECT_EQ(detector.race_count(), 0u)
      << "§5.1's ragged-barrier program satisfies the §6 conditions";
}

// The broken heat exchange: skip the "neighbours finished reading"
// wait before writing.  A neighbour's read can then race the write.
TEST(CertifiedPrograms, MissingReadWaitIsFlagged) {
  std::size_t flagged_runs = 0;
  for (int attempt = 0; attempt < 10 && flagged_runs == 0; ++attempt) {
    RaceDetector detector;
    constexpr std::size_t kCells = 5;
    constexpr std::size_t kSteps = 4;
    CheckedArray<double> state(detector, "state", kCells, 1.0);
    std::vector<std::unique_ptr<TrackedCounter<>>> c;
    for (std::size_t i = 0; i < kCells; ++i) {
      c.push_back(std::make_unique<TrackedCounter<>>(detector));
    }
    c[0]->Increment(2 * kSteps);
    c[kCells - 1]->Increment(2 * kSteps);

    multithreaded_for(
        std::size_t{1}, kCells - 1, std::size_t{1},
        [&](std::size_t i) {
          double my_state = state.read(i);
          for (std::size_t t = 1; t <= kSteps; ++t) {
            c[i - 1]->Check(2 * t - 2);
            const double l = state.read(i - 1);
            c[i + 1]->Check(2 * t - 2);
            const double r = state.read(i + 1);
            c[i]->Increment(1);
            my_state = (l + my_state + r) / 3.0;
            // BUG: no Check(2t-1) on the neighbours before writing.
            state.write(i, my_state);
            c[i]->Increment(1);
          }
        },
        Execution::kMultithreaded);
    if (detector.race_count() > 0) ++flagged_runs;
  }
  EXPECT_GT(flagged_runs, 0u)
      << "an unordered write/read pair should appear within 10 runs";
}

// §4.5's Floyd-Warshall, checked at 6x6 with 2 threads: every element
// of `path` and `kRow` is tracked.  The initialization happens on the
// parent thread before the workers exist; that ordering is conveyed to
// the checker by seeding each worker with the parent's clock (the
// fork edge), exactly as a structured multithreaded block guarantees.
TEST(CertifiedPrograms, FloydWarshallCounterIsClean) {
  RaceDetector detector;
  constexpr std::size_t kN = 6;
  constexpr std::size_t kThreads = 2;
  CheckedArray<long long> path(detector, "path", kN * kN);
  CheckedArray<long long> k_row(detector, "kRow", kN * kN);
  TrackedCounter<> k_count(detector);

  // Parent-thread initialization (random small weights, zero diagonal).
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      const long long w =
          i == j ? 0 : static_cast<long long>((i * 31 + j * 17) % 9 + 1);
      path.write(i * kN + j, w);
    }
  }
  for (std::size_t j = 0; j < kN; ++j) {
    k_row.write(0 * kN + j, path.read(0 * kN + j));
  }
  const VectorClock fork_clock = detector.thread_clock();

  multithreaded_for(
      std::size_t{0}, kThreads, std::size_t{1},
      [&](std::size_t t) {
        detector.acquire(fork_clock);  // fork edge from the parent
        const std::size_t begin = t * kN / kThreads;
        const std::size_t end = (t + 1) * kN / kThreads;
        for (std::size_t k = 0; k < kN; ++k) {
          k_count.Check(k);
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t j = 0; j < kN; ++j) {
              const long long candidate =
                  path.read(i * kN + k) + k_row.read(k * kN + j);
              if (candidate < path.read(i * kN + j)) {
                path.write(i * kN + j, candidate);
              }
            }
            if (i == k + 1) {
              for (std::size_t j = 0; j < kN; ++j) {
                k_row.write((k + 1) * kN + j, path.read((k + 1) * kN + j));
              }
              k_count.Increment(1);
            }
          }
        }
      },
      Execution::kMultithreaded);

  EXPECT_EQ(detector.race_count(), 0u)
      << "§4.5's program satisfies the §6 conditions (paper §6: \"All the "
         "programs using counters that we have presented in this paper "
         "satisfy the conditions\")";

  // And the result is the correct shortest-path matrix.
  std::vector<long long> expected(kN * kN);
  for (std::size_t i = 0; i < kN * kN; ++i) expected[i] = path.unchecked(i);
  // Re-run Floyd-Warshall sequentially over a copy of the same input.
  std::vector<long long> seq(kN * kN);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      seq[i * kN + j] =
          i == j ? 0 : static_cast<long long>((i * 31 + j * 17) % 9 + 1);
    }
  }
  for (std::size_t k = 0; k < kN; ++k) {
    for (std::size_t i = 0; i < kN; ++i) {
      for (std::size_t j = 0; j < kN; ++j) {
        seq[i * kN + j] =
            std::min(seq[i * kN + j], seq[i * kN + k] + seq[k * kN + j]);
      }
    }
  }
  EXPECT_EQ(expected, seq);
}

// check_all (core/multi.hpp): conjunction across counters, any order.
TEST(MultiCounter, CheckAllWaitsForEveryCondition) {
  Counter a, b, d;
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    check_all<Counter>({{&a, 2}, {&b, 1}, {&d, 3}});
    passed.store(true);
  });
  a.Increment(2);
  b.Increment(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(passed.load());
  d.Increment(3);
  waiter.join();
  EXPECT_TRUE(passed.load());
}

TEST(MultiCounter, CheckAllForTimesOutOnMissingConjunct) {
  Counter a, b;
  a.Increment(5);
  const std::vector<CounterCondition<Counter>> conditions = {{&a, 5},
                                                             {&b, 1}};
  EXPECT_FALSE(check_all_for(std::span{conditions},
                             std::chrono::milliseconds(20)));
  b.Increment(1);
  EXPECT_TRUE(check_all_for(std::span{conditions},
                            std::chrono::milliseconds(20)));
}

TEST(MultiCounter, CheckBothOrdersNeighbours) {
  Counter left, right;
  left.Increment(4);
  right.Increment(4);
  check_both(left, 4, right, 4);  // returns immediately
}

}  // namespace
}  // namespace monotonic
