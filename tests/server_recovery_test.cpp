// server_recovery_test.cpp — the fault-tolerant service plane, proven
// the hard way: state files torn and checksummed, servers SIGKILLed
// mid-workload and restarted from snapshot + journal, clients
// reconnecting through seeded chaos, increments retried and applied
// exactly once, drains answered typed.
//
// The suite leans on one invariant for every assertion: monotonicity.
// A restore may only land a counter at an EQUAL-OR-GREATER value than
// any value a client was shown (a reached Check must never un-reach),
// and a retried increment must move the value by its amount AT MOST
// once.  Everything here is some concrete violation of one of those
// two, injected and shown not to happen.
//
// The kill-point schedule is seed-swept: MONOTONIC_SERVER_KILL_SEEDS
// ("3" or "1 2 7") widens the sweep in CI's chaos job; each seed
// shifts where in the workload the SIGKILL lands.  A failing run
// prints its seed.

#include <gtest/gtest.h>

#include <libgen.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "monotonic/core/counter_error.hpp"
#include "monotonic/server/chaos_proxy.hpp"
#include "monotonic/server/client.hpp"
#include "monotonic/server/protocol.hpp"
#include "monotonic/server/server.hpp"
#include "monotonic/server/state_file.hpp"

namespace ms = monotonic::server;
using monotonic::CounterEpochChangedError;
using monotonic::CounterShutdownError;
using monotonic::CounterTimeoutError;

namespace {

std::string unique_path(const char* tag) {
  static int seq = 0;
  return "/tmp/mc_recovery_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(seq++);
}

std::vector<std::uint64_t> seeds_from_env(const char* var,
                                          std::vector<std::uint64_t> dflt) {
  const char* env = std::getenv(var);
  if (env == nullptr || *env == '\0') return dflt;
  std::vector<std::uint64_t> seeds;
  std::istringstream in(env);
  std::uint64_t s;
  while (in >> s) seeds.push_back(s);
  return seeds.empty() ? dflt : seeds;
}

/// Path of the exec'd server child: sibling of this test binary.
std::string child_binary() {
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) return "./server_recovery_child";
  self[n] = '\0';
  return std::string(::dirname(self)) + "/server_recovery_child";
}

/// A forked+exec'd drainable server process on (sock, state).
class ServerProcess {
 public:
  ServerProcess(std::string sock, std::string state)
      : sock_(std::move(sock)), state_(std::move(state)) {
    spawn();
  }
  ~ServerProcess() { kill9(); }

  void spawn() {
    const std::string bin = child_binary();
    pid_ = ::fork();
    if (pid_ == 0) {
      ::execl(bin.c_str(), bin.c_str(), sock_.c_str(), state_.c_str(),
              static_cast<char*>(nullptr));
      std::perror("execl(server_recovery_child)");
      ::_exit(127);
    }
    ASSERT_GT(pid_, 0);
    wait_listening();
  }

  /// The crash: SIGKILL, no goodbye, no snapshot.
  void kill9() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  /// The rolling restart: SIGTERM → drain → exit 0.
  int sigterm_and_wait() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
  }

  void restart() { spawn(); }

  const std::string& sock() const { return sock_; }
  pid_t pid() const { return pid_; }

 private:
  void wait_listening() {
    for (int i = 0; i < 1000; ++i) {
      try {
        ms::ServerClient probe = ms::ServerClient::connect_uds(sock_);
        return;
      } catch (...) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    FAIL() << "server child never started listening on " << sock_;
  }

  std::string sock_;
  std::string state_;
  pid_t pid_ = -1;
};

ms::ClientOptions retry_options() {
  ms::ClientOptions o;
  o.retry.enabled = true;
  o.retry.backoff_initial = std::chrono::milliseconds(5);
  o.retry.backoff_max = std::chrono::milliseconds(100);
  o.retry.overall_deadline = std::chrono::milliseconds(20000);
  return o;
}

// ---- state_file.hpp: the durability primitives ----------------------

TEST(StateFile, SnapshotRoundTripsAndRejectsCorruption) {
  ms::StateSnapshot snap;
  snap.epoch = 7;
  snap.generation = 42;
  snap.dedup_window = 4096;
  snap.counters.push_back({3, "jobs/done", "pooled:64+hybrid", 123, false, ""});
  snap.counters.push_back({9, "failed", "basic", 5, true, "boom"});
  snap.sessions.push_back({0xa, 0xb, 77, std::vector<std::uint64_t>(64, 1)});

  const std::string path = unique_path("snap");
  ASSERT_TRUE(ms::save_snapshot(path, snap));
  ms::StateSnapshot back;
  ASSERT_TRUE(ms::load_snapshot(path, back));
  EXPECT_EQ(back.epoch, 7u);
  EXPECT_EQ(back.generation, 42u);
  ASSERT_EQ(back.counters.size(), 2u);
  EXPECT_EQ(back.counters[0].name, "jobs/done");
  EXPECT_EQ(back.counters[0].value, 123u);
  EXPECT_TRUE(back.counters[1].poisoned);
  EXPECT_EQ(back.counters[1].poison_reason, "boom");
  ASSERT_EQ(back.sessions.size(), 1u);
  EXPECT_EQ(back.sessions[0].max_seq, 77u);

  // Flip one byte in the middle: the checksum must reject the file.
  std::string bytes = ms::encode_snapshot(snap);
  bytes[bytes.size() / 2] ^= 0x40;
  ms::StateSnapshot corrupt;
  EXPECT_FALSE(ms::decode_snapshot(bytes, corrupt));
  ::unlink(path.c_str());
}

TEST(StateFile, JournalTornTailStopsReplayCleanly) {
  std::string journal = ms::encode_journal_header(5);
  ms::append_journal_record(journal, ms::journal_open_body(1, "c", "basic"));
  ms::append_journal_record(journal,
                            ms::journal_increment_body(1, 10, 0, 0, 0));
  const std::size_t intact = journal.size();
  ms::append_journal_record(journal,
                            ms::journal_increment_body(1, 99, 0, 0, 0));
  journal.resize(intact + 7);  // the crash landed mid-append

  const std::string path = unique_path("journal");
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(journal.data(), 1, journal.size(), f);
    std::fclose(f);
  }
  std::vector<ms::JournalRecord> records;
  ASSERT_TRUE(ms::load_journal(path, 5, records));
  ASSERT_EQ(records.size(), 2u);  // torn third record: replay stops, no error
  EXPECT_EQ(records[1].amount, 10u);

  // Generation mismatch = a journal already folded into a snapshot:
  // the double-apply guard must refuse it outright.
  EXPECT_FALSE(ms::load_journal(path, 6, records));
  ::unlink(path.c_str());
}

TEST(StateFile, DedupWindowAppliesEachSeqAtMostOnce) {
  ms::DedupWindow w(128);
  EXPECT_FALSE(w.seen(1));
  w.record(1);
  EXPECT_TRUE(w.seen(1));
  EXPECT_FALSE(w.seen(2));
  w.record(100);
  EXPECT_TRUE(w.seen(100));
  EXPECT_FALSE(w.seen(99));  // skipped, still claimable
  w.record(99);
  EXPECT_TRUE(w.seen(99));
  // Ancient seqs are conservatively "seen": dropping a duplicate is
  // safe for at-least-once delivery, double-applying is not.
  w.record(10'000);
  EXPECT_TRUE(w.seen(1));
  EXPECT_TRUE(w.seen(9'000));
  EXPECT_FALSE(w.seen(10'001));
  // seq 0 = "no seq": never deduped.
  EXPECT_FALSE(w.seen(0));
}

// ---- crash-shaped restarts (in-process) -----------------------------

TEST(Recovery, CrashRestartRestoresValuesUnderBumpedEpoch) {
  const std::string sock = unique_path("crash.sock");
  const std::string state = unique_path("crash.state");
  std::uint64_t old_epoch = 0;
  {
    ms::ServerOptions o;
    o.uds_path = sock;
    o.state_file = state;
    ms::CounterServer server(std::move(o));
    server.Start();
    old_epoch = server.epoch();
    ms::ServerClient c = ms::ServerClient::connect_uds(sock);
    const auto a = c.open("alpha");
    const auto b = c.open("beta", "list");
    c.increment(a.id, 41);
    c.increment(a.id, 1);
    EXPECT_EQ(c.check(a.id, 42), 42u);  // REACHED — must never regress
    c.increment(b.id, 7);
    c.poison(b.id, "producer exploded");
    server.Stop();  // the crash-shaped stop: no snapshot, journal only
  }
  {
    ms::ServerOptions o;
    o.uds_path = sock;
    o.state_file = state;
    ms::CounterServer server(std::move(o));
    server.Start();
    EXPECT_EQ(server.epoch(), old_epoch + 1);
    EXPECT_GE(server.stats().restored_counters, 2u);
    ms::ServerClient c = ms::ServerClient::connect_uds(sock);
    EXPECT_EQ(c.epoch(), old_epoch + 1);
    const auto a = c.resolve("alpha");  // Resolve: no create
    EXPECT_GE(a.value, 42u);            // equal-or-greater, the contract
    EXPECT_EQ(c.check(a.id, 42), a.value);  // the reached level holds
    const auto b = c.resolve("beta");
    EXPECT_GE(b.value, 7u);
    try {
      c.increment(b.id, 1);
      FAIL() << "poison must survive the restart";
    } catch (const monotonic::CounterPoisonedError&) {
    }
    EXPECT_THROW(c.resolve("never-existed"), std::invalid_argument);
    server.Stop();
  }
  ::unlink(state.c_str());
  ::unlink((state + ".journal").c_str());
}

TEST(Recovery, DuplicateRetriedIncrementsApplyExactlyOnce) {
  const std::string sock = unique_path("dedup.sock");
  const std::string state = unique_path("dedup.state");
  const std::uint64_t hi = 0x1111, lo = 0x2222;

  auto helloed_client = [&] {
    ms::ClientOptions o;
    o.session_hi = hi;
    o.session_lo = lo;
    return ms::ServerClient::connect_uds(sock, o);
  };
  auto send_seq_increment = [](ms::ServerClient& c, std::uint64_t id,
                               std::uint64_t amount, std::uint64_t seq) {
    std::string body;
    ms::put_u64(body, id);
    ms::put_u64(body, amount);
    ms::put_u8(body, ms::kIncrementHasSeq);
    ms::put_u64(body, seq);
    const auto resp = c.request(ms::Op::kIncrement, body);
    EXPECT_EQ(resp.status, ms::Status::kOk);
  };

  {
    ms::ServerOptions o;
    o.uds_path = sock;
    o.state_file = state;
    ms::CounterServer server(std::move(o));
    server.Start();
    ms::ServerClient c = helloed_client();
    const auto opened = c.open("exactly-once");
    send_seq_increment(c, opened.id, 5, /*seq=*/1);
    send_seq_increment(c, opened.id, 5, /*seq=*/1);  // duplicate: absorbed
    send_seq_increment(c, opened.id, 3, /*seq=*/2);
    EXPECT_EQ(c.check(opened.id, 8), 8u);  // 5 + 3, not 13
    EXPECT_EQ(server.stats().dedup_hits, 1u);
    server.Stop();  // crash-shaped
  }
  {
    // The dedup window survives the crash (journaled): a retry of a
    // pre-crash increment after restart must still be absorbed.
    ms::ServerOptions o;
    o.uds_path = sock;
    o.state_file = state;
    ms::CounterServer server(std::move(o));
    server.Start();
    ms::ServerClient c = helloed_client();
    const auto opened = c.resolve("exactly-once");
    EXPECT_EQ(opened.value, 8u);
    send_seq_increment(c, opened.id, 5, /*seq=*/1);  // ancient retry
    send_seq_increment(c, opened.id, 3, /*seq=*/2);  // ditto
    EXPECT_EQ(c.check(opened.id, 8), 8u);            // still 8
    EXPECT_EQ(server.stats().dedup_hits, 2u);
    server.Stop();
  }
  ::unlink(state.c_str());
  ::unlink((state + ".journal").c_str());
}

TEST(Recovery, EpochChangeSurfacesTypedWhenTransparencyDeclined) {
  const std::string sock = unique_path("epoch.sock");
  const std::string state = unique_path("epoch.state");
  auto server = std::make_optional<ms::CounterServer>([&] {
    ms::ServerOptions o;
    o.uds_path = sock;
    o.state_file = state;
    return o;
  }());
  server->Start();

  ms::ClientOptions copts = retry_options();
  copts.retry.transparent_reresolve = false;  // the opt-out under test
  ms::ServerClient c = ms::ServerClient::connect_uds(sock, copts);
  const auto opened = c.open("ids-are-my-problem");
  c.increment(opened.id, 1);
  const std::uint64_t first_epoch = c.epoch();

  server->Stop();  // crash
  server.emplace([&] {
    ms::ServerOptions o;
    o.uds_path = sock;
    o.state_file = state;
    return o;
  }());
  server->Start();  // restore → epoch bump

  try {
    c.increment(opened.id, 1);
    FAIL() << "epoch change must surface when transparency is declined";
  } catch (const CounterEpochChangedError& e) {
    EXPECT_EQ(e.old_epoch(), first_epoch);
    EXPECT_EQ(e.new_epoch(), first_epoch + 1);
  }
  server->Stop();
  ::unlink(state.c_str());
  ::unlink((state + ".journal").c_str());
}

// ---- deadlines (satellite: no more blocking forever) ----------------

TEST(Deadlines, SilentServerSurfacesTimeoutNotHang) {
  // A blackhole proxy in front of a live server: the connection is
  // alive at the socket level, dead at the protocol level (every byte
  // discarded, nothing ever answered) — the shape io_timeout exists
  // for, and the shape that used to block a client forever.
  const std::string sock = unique_path("blackhole_up.sock");
  ms::ServerOptions so;
  so.uds_path = sock;
  ms::CounterServer server(std::move(so));
  server.Start();

  ms::ChaosProxyOptions po;
  po.listen_path = unique_path("blackhole.sock");
  po.upstream_path = sock;
  po.blackhole = true;
  ms::ChaosProxy proxy(po);
  proxy.Start();

  ms::ClientOptions copts;
  copts.io_timeout = std::chrono::milliseconds(150);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    ms::ServerClient c = ms::ServerClient::connect_uds(po.listen_path, copts);
    FAIL() << "the Hello await must time out against a blackhole";
  } catch (const CounterTimeoutError&) {
  }
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::seconds(5));  // bounded, not a hang
  proxy.Stop();
  server.Stop();
}

// ---- graceful drain -------------------------------------------------

TEST(Drain, AnswersParkedWaitsTypedAndWritesSnapshot) {
  const std::string sock = unique_path("drain.sock");
  const std::string state = unique_path("drain.state");
  auto server = std::make_optional<ms::CounterServer>([&] {
    ms::ServerOptions o;
    o.uds_path = sock;
    o.state_file = state;
    return o;
  }());
  server->Start();

  ms::ServerClient c = ms::ServerClient::connect_uds(sock);
  const auto opened = c.open("drainee");
  c.increment(opened.id, 9);
  const std::uint64_t rid = c.on_reach_async(opened.id, 1'000'000);  // parks
  for (int i = 0; i < 400 && server->stats().parked_waits == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server->stats().parked_waits, 1u);

  server->Drain();
  EXPECT_TRUE(server->drained());
  EXPECT_GE(server->stats().shutdown_replies, 1u);
  EXPECT_GE(server->stats().snapshots_written, 1u);
  try {
    c.await_reach(rid);
    FAIL() << "a drained wait must surface the typed shutdown error";
  } catch (const CounterShutdownError&) {
  }
  // The listener is gone: a fresh connect is refused, not parked.
  EXPECT_THROW(ms::ServerClient::connect_uds(sock), std::exception);

  // The snapshot it wrote restores the value without journal replay.
  ms::StateSnapshot snap;
  ASSERT_TRUE(ms::load_snapshot(state, snap));
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 9u);
  server.reset();
  ::unlink(state.c_str());
  ::unlink((state + ".journal").c_str());
}

// ---- forked-process suite: real SIGKILL, real SIGTERM ---------------

TEST(ForkedRecovery, Kill9MidWorkloadClientFinishesExactlyOnce) {
  for (const std::uint64_t seed :
       seeds_from_env("MONOTONIC_SERVER_KILL_SEEDS", {1, 2})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string sock = unique_path("kill9.sock");
    const std::string state = unique_path("kill9.state");
    ServerProcess server(sock, state);

    ms::ServerClient c = ms::ServerClient::connect_uds(sock, retry_options());
    const auto opened = c.open("survivor");
    const std::uint64_t first_epoch = c.epoch();

    constexpr std::uint64_t kTotal = 60;
    const std::uint64_t kill_at = 10 + (seed * 13) % 35;  // seed-swept point
    std::uint64_t reached_before_kill = 0;
    for (std::uint64_t i = 1; i <= kTotal; ++i) {
      c.increment(opened.id, 1);  // acked, seq-tagged, replayed on loss
      if (i == kill_at) {
        reached_before_kill = c.check(opened.id, i);  // REACHED: pinned below
        server.kill9();
        server.restart();
      }
    }
    EXPECT_GE(reached_before_kill, kill_at);

    // Zero app-visible errors above; now the books must balance
    // EXACTLY — every retried increment applied once, none lost.
    const std::uint64_t final_value = c.check(opened.id, kTotal);
    EXPECT_EQ(final_value, kTotal);
    EXPECT_EQ(c.epoch(), first_epoch + 1);  // the restore was observed
    // And the name re-resolved to a live id under the new epoch.
    ms::ServerClient fresh = ms::ServerClient::connect_uds(sock);
    EXPECT_EQ(fresh.resolve("survivor").value, kTotal);
  }
}

TEST(ForkedRecovery, SigtermDrainsParkedWaitsAndExitsZero) {
  const std::string sock = unique_path("term.sock");
  const std::string state = unique_path("term.state");
  ServerProcess server(sock, state);

  ms::ServerClient c = ms::ServerClient::connect_uds(sock);
  const auto opened = c.open("drain-me");
  const std::uint64_t rid = c.on_reach_async(opened.id, 1'000'000);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // let it park

  EXPECT_EQ(server.sigterm_and_wait(), 0);  // drained() gated the exit
  try {
    c.await_reach(rid);
    FAIL() << "SIGTERM drain must answer the parked wait kShuttingDown";
  } catch (const CounterShutdownError&) {
  }
}

TEST(ForkedRecovery, RetryClientRidesRollingRestartTransparently) {
  const std::string sock = unique_path("rolling.sock");
  const std::string state = unique_path("rolling.state");
  ServerProcess server(sock, state);

  ms::ServerClient c = ms::ServerClient::connect_uds(sock, retry_options());
  const auto opened = c.open("rolling");
  for (int i = 0; i < 5; ++i) c.increment(opened.id, 1);

  EXPECT_EQ(server.sigterm_and_wait(), 0);  // drain + final snapshot
  server.restart();                         // the rolling restart

  c.increment(opened.id, 1);  // reconnects, re-resolves, succeeds
  EXPECT_EQ(c.check(opened.id, 6), 6u);
}

// ---- chaos proxy: protocol robustness under injected faults ---------

TEST(Chaos, FramesSplitIntoSingleBytesStillRoundTrip) {
  const std::string sock = unique_path("split.sock");
  ms::ServerOptions so;
  so.uds_path = sock;
  ms::CounterServer server(std::move(so));
  server.Start();

  ms::ChaosProxyOptions po;
  po.listen_path = unique_path("split_proxy.sock");
  po.upstream_path = sock;
  po.max_chunk = 1;  // every frame crosses one byte at a time
  ms::ChaosProxy proxy(po);
  proxy.Start();

  ms::ServerClient c = ms::ServerClient::connect_uds(po.listen_path);
  const auto opened = c.open("byte-at-a-time");
  c.increment(opened.id, 3);
  EXPECT_EQ(c.check(opened.id, 3), 3u);
  EXPECT_GT(proxy.bytes_forwarded(), 0u);
  proxy.Stop();
  server.Stop();
}

TEST(Chaos, TruncatedMidFrameConnectionsLeakNothing) {
  const std::string sock = unique_path("trunc.sock");
  ms::ServerOptions so;
  so.uds_path = sock;
  ms::CounterServer server(std::move(so));
  server.Start();

  for (const std::uint64_t seed :
       seeds_from_env("MONOTONIC_CHAOS_SEEDS", {1, 2, 3})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ms::ChaosProxyOptions po;
    po.listen_path = unique_path("trunc_proxy.sock");
    po.upstream_path = sock;
    po.seed = seed;
    po.cut_after_min = 5;  // inside the Hello frame most of the time
    po.cut_after_max = 60;
    ms::ChaosProxy proxy(po);
    proxy.Start();

    // Drive traffic until the cut lands; every outcome is acceptable
    // EXCEPT a hang or a leak.
    try {
      ms::ClientOptions copts;
      copts.io_timeout = std::chrono::milliseconds(2000);
      ms::ServerClient c =
          ms::ServerClient::connect_uds(po.listen_path, copts);
      for (int i = 0; i < 100; ++i) c.increment(1, 1);
    } catch (const std::exception&) {
      // the cut, surfacing as EOF/timeout — expected
    }
    EXPECT_GE(proxy.connections_cut(), 1u);
    proxy.Stop();

    // The server itself: unharmed, nothing parked, still serving.
    ms::ServerClient direct = ms::ServerClient::connect_uds(sock);
    const auto opened = direct.open("post-chaos-" + std::to_string(seed));
    direct.increment(opened.id, 1);
    EXPECT_EQ(direct.check(opened.id, 1), 1u);
    EXPECT_EQ(server.stats().parked_waits, 0u);
  }
  server.Stop();
}

TEST(Chaos, RetryClientThroughCuttingProxyAppliesExactlyOnce) {
  const std::string sock = unique_path("cutretry.sock");
  const std::string state = unique_path("cutretry.state");
  ms::ServerOptions so;
  so.uds_path = sock;
  so.state_file = state;
  ms::CounterServer server(std::move(so));
  server.Start();

  for (const std::uint64_t seed :
       seeds_from_env("MONOTONIC_CHAOS_SEEDS", {7, 8})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ms::ChaosProxyOptions po;
    po.listen_path = unique_path("cutretry_proxy.sock");
    po.upstream_path = sock;
    po.seed = seed;
    po.cut_after_min = 100;  // several frames in, then sever
    po.cut_after_max = 400;
    ms::ChaosProxy proxy(po);
    proxy.Start();

    ms::ServerClient c =
        ms::ServerClient::connect_uds(po.listen_path, retry_options());
    const std::string name = "chaos-exact-" + std::to_string(seed);
    const auto opened = c.open(name);
    constexpr std::uint64_t kN = 40;
    for (std::uint64_t i = 0; i < kN; ++i) {
      c.increment(opened.id, 1);  // survives any number of proxy cuts
    }
    EXPECT_EQ(c.check(opened.id, kN), kN);  // exactly once, every one
    EXPECT_GE(proxy.connections_cut(), 1u) << "chaos schedule never fired";
    proxy.Stop();

    ms::ServerClient direct = ms::ServerClient::connect_uds(sock);
    EXPECT_EQ(direct.resolve(name).value, kN);
  }
  server.Stop();
  ::unlink(state.c_str());
  ::unlink((state + ".journal").c_str());
}

}  // namespace
