// Replays the committed regression-seed corpus (tests/sim_seeds/)
// against every scenario it names.  Each line is a seed that once
// exposed a bug (or validates that a model's bug stays findable); a
// failure here prints the exact replay command.
//
// Corpus layout: tests/sim_seeds/<scenario>.seeds, one decimal seed
// per line, '#' comments.  For invariant scenarios every seed must
// PASS (the bug it caught is fixed and must stay fixed).  For
// expect_failure models every seed must still FAIL — the harness must
// keep finding the planted bug at exactly the recorded schedule.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "monotonic/sim/sim_explorer.hpp"
#include "monotonic/sim/sim_scenarios.hpp"

// Model scenarios leak their (deliberately) failed runs' counters —
// see sim_explorer_test.cpp.
extern "C" const char* __lsan_default_suppressions() {
  return "leak:monotonic::sim::\nleak:monotonic::BasicCounter\n";
}

#ifndef MONOTONIC_SIM_SEED_DIR
#error "build must define MONOTONIC_SIM_SEED_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace monotonic::sim;

std::filesystem::path seed_dir() { return MONOTONIC_SIM_SEED_DIR; }

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(seed_dir())) {
    if (entry.path().extension() == ".seeds") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(SimRegression, CorpusExistsAndIsNonTrivial) {
  ASSERT_TRUE(std::filesystem::exists(seed_dir()))
      << "seed corpus directory missing: " << seed_dir();
  EXPECT_GE(corpus_files().size(), 3u) << "corpus suspiciously small";
}

TEST(SimRegression, EveryCorpusFileNamesARealScenario) {
  for (const auto& file : corpus_files()) {
    EXPECT_NE(find_scenario(file.stem().string()), nullptr)
        << file << " names no registered scenario (renamed without "
        << "migrating its seeds?)";
  }
}

TEST(SimRegression, ReplaysEverySeedDeterministically) {
  std::size_t replayed = 0;
  for (const auto& file : corpus_files()) {
    const SimScenario* scenario = find_scenario(file.stem().string());
    ASSERT_NE(scenario, nullptr) << file;
    std::ifstream in(file);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::vector<std::uint64_t> seeds = parse_seed_corpus(buf.str());
    ASSERT_FALSE(seeds.empty()) << file << " is empty";
    for (const std::uint64_t seed : seeds) {
      SimOutcome out = run_once(*scenario, seed);
      ++replayed;
      if (scenario->expect_failure) {
        EXPECT_TRUE(out.failed)
            << "model seed went quiet — the harness no longer finds the "
            << "planted bug.  replay: " << replay_command(*scenario, seed);
      } else {
        EXPECT_FALSE(out.failed)
            << "regression seed failed again: " << out.message
            << "\n  replay: " << replay_command(*scenario, seed);
      }
      // Determinism: the replay of the replay is bit-identical.
      SimOutcome again = run_once(*scenario, seed);
      EXPECT_EQ(again.failed, out.failed);
      EXPECT_EQ(again.trace, out.trace)
          << "nondeterministic replay, seed " << seed << " of "
          << scenario->name;
    }
  }
  EXPECT_GE(replayed, 10u) << "corpus should hold a real body of seeds";
}

}  // namespace
