// algos_accumulate_test.cpp — §5.2: lock accumulation is
// order-nondeterministic; counter-sequenced accumulation always equals
// sequential execution (E3, E7).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>

#include "monotonic/algos/accumulate.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {
namespace {

TEST(OrderSensitiveValues, SumActuallyDependsOnOrder) {
  // Sanity of the workload itself: reversing the order changes the sum.
  const auto values = order_sensitive_values(64);
  auto reversed = values;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_NE(sum_sequential(values), sum_sequential(reversed));
}

TEST(SumOrdered, EqualsSequentialForAllThreadCounts) {
  const auto values = order_sensitive_values(128);
  const double expected = sum_sequential(values);
  for (std::size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    AccumulateOptions options;
    options.num_threads = threads;
    EXPECT_EQ(sum_ordered(values, options), expected)
        << threads << " threads";
  }
}

TEST(SumOrdered, DeterministicUnderAdversarialStalls) {
  const auto values = order_sensitive_values(96);
  const double expected = sum_sequential(values);
  Xoshiro256 rng(5);
  for (int run = 0; run < 10; ++run) {
    AccumulateOptions options;
    options.num_threads = 4;
    const std::uint64_t salt = rng();
    options.compute_hook = [salt](std::size_t i) {
      if (((i * 31) ^ salt) % 3 == 0) std::this_thread::yield();
    };
    ASSERT_EQ(sum_ordered(values, options), expected) << "run " << run;
  }
}

TEST(SumLock, TotalIsAlwaysAPermutationSum) {
  // The lock version is unordered but never loses items: with integer-
  // valued doubles the sum is exact and order-independent, so it must
  // equal the sequential total.
  std::vector<double> values(256);
  std::iota(values.begin(), values.end(), 1.0);
  AccumulateOptions options;
  options.num_threads = 8;
  EXPECT_EQ(sum_lock(values, options), sum_sequential(values));
}

TEST(SumOrdered, EmptyAndSingleton) {
  AccumulateOptions options;
  options.num_threads = 4;
  EXPECT_EQ(sum_ordered({}, options), 0.0);
  EXPECT_EQ(sum_ordered({3.5}, options), 3.5);
}

TEST(AppendOrdered, AlwaysSequentialOrder) {
  AccumulateOptions options;
  options.num_threads = 5;
  for (int run = 0; run < 10; ++run) {
    const auto result = append_ordered(64, options);
    ASSERT_EQ(result.size(), 64u);
    for (std::size_t i = 0; i < result.size(); ++i) {
      ASSERT_EQ(result[i], i) << "run " << run;
    }
  }
}

TEST(AppendLock, AlwaysAPermutation) {
  AccumulateOptions options;
  options.num_threads = 5;
  auto result = append_lock(64, options);
  ASSERT_EQ(result.size(), 64u);
  std::sort(result.begin(), result.end());
  for (std::size_t i = 0; i < result.size(); ++i) EXPECT_EQ(result[i], i);
}

TEST(AppendLock, InterleavingCanDifferFromSequential) {
  // With per-item stalls skewed against thread order, the lock version
  // should (at least once over many runs) produce a non-sequential
  // interleaving — §5.2: "the above program may produce different
  // results on repeated executions."  This is probabilistic by nature;
  // 50 runs with forced stalls makes a false PASS-as-sequential
  // astronomically unlikely, and we only *warn* if unobserved.
  AccumulateOptions options;
  options.num_threads = 4;
  options.compute_hook = [](std::size_t i) {
    // Stall the low-index items so later items tend to arrive first.
    if (i < 32) std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  bool saw_non_sequential = false;
  for (int run = 0; run < 50 && !saw_non_sequential; ++run) {
    const auto result = append_lock(64, options);
    for (std::size_t i = 0; i < result.size(); ++i) {
      if (result[i] != i) {
        saw_non_sequential = true;
        break;
      }
    }
  }
  if (!saw_non_sequential) {
    GTEST_SKIP() << "scheduler never interleaved; nondeterminism not "
                    "observable on this run";
  }
  SUCCEED();
}

TEST(SumOrderedWith, OtherCounterImplementations) {
  const auto values = order_sensitive_values(64);
  const double expected = sum_sequential(values);
  AccumulateOptions options;
  options.num_threads = 4;
  EXPECT_EQ(sum_ordered_with<SingleCvCounter>(values, options), expected);
}

TEST(PaperValues, SequencedUpdateProducesEight) {
  // §6's worked arithmetic: x = 3; x+1 then x*2 in sequence gives 8.
  Counter c;
  int x = 3;
  multithreaded_block(
      [&] {
        c.Check(0);
        x = x + 1;
        c.Increment(1);
      },
      [&] {
        c.Check(1);
        x = x * 2;
        c.Increment(1);
      });
  EXPECT_EQ(x, 8);
}

}  // namespace
}  // namespace monotonic
