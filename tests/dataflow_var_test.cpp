// dataflow_var_test.cpp — write-once cells and cell groups built on
// counters: blocking gets, timed gets, and async continuations.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "monotonic/core/multi.hpp"
#include "monotonic/patterns/dataflow_var.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

TEST(DataflowVarTest, GetBlocksUntilSet) {
  DataflowVar<int> cell;
  std::atomic<int> got{0};
  std::jthread reader([&] { got.store(cell.get()); });
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(got.load(), 0);
  cell.set(99);
  reader.join();
  EXPECT_EQ(got.load(), 99);
}

TEST(DataflowVarTest, GetAfterSetIsImmediate) {
  DataflowVar<std::string> cell;
  cell.set(std::string("ready"));
  EXPECT_EQ(cell.get(), "ready");
  EXPECT_EQ(cell.ready().stats().suspensions, 0u);
}

TEST(DataflowVarTest, DoubleSetRejected) {
  DataflowVar<int> cell;
  cell.set(1);
  EXPECT_THROW(cell.set(2), std::invalid_argument);
}

TEST(DataflowVarTest, TimedGet) {
  DataflowVar<int> cell;
  EXPECT_EQ(cell.get_for(10ms), nullptr);
  cell.set(5);
  const int* v = cell.get_for(10ms);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 5);
}

TEST(DataflowVarTest, ThenAfterSetRunsImmediately) {
  DataflowVar<int> cell;
  cell.set(3);
  int seen = 0;
  cell.then([&](const int& v) { seen = v; });
  EXPECT_EQ(seen, 3);
}

TEST(DataflowVarTest, ThenBeforeSetRunsInSetterThread) {
  DataflowVar<int> cell;
  std::atomic<int> seen{0};
  cell.then([&](const int& v) { seen = v * 10; });
  EXPECT_EQ(seen.load(), 0);
  std::jthread setter([&] { cell.set(7); });
  setter.join();
  EXPECT_EQ(seen.load(), 70);
}

TEST(DataflowVarTest, ContinuationChain) {
  // then() can set another var: dataflow composition with no thread
  // ever parked.
  DataflowVar<int> a, b, c;
  a.then([&](const int& v) { b.set(v + 1); });
  b.then([&](const int& v) { c.set(v * 2); });
  a.set(10);
  EXPECT_EQ(c.get(), 22);
}

TEST(DataflowVarTest, ManyReadersOneWriter) {
  DataflowVar<int> cell;
  std::atomic<int> total{0};
  {
    std::vector<std::jthread> readers;
    for (int i = 0; i < 4; ++i) {
      readers.emplace_back([&] { total += cell.get(); });
    }
    std::this_thread::sleep_for(5ms);
    cell.set(25);
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(DataflowVarTest, ComposesWithCheckAll) {
  DataflowVar<int> x, y;
  std::atomic<int> sum{0};
  std::jthread joiner([&] {
    check_all<Counter>({{&x.ready(), 1}, {&y.ready(), 1}});
    sum.store(x.get() + y.get());
  });
  x.set(40);
  std::this_thread::sleep_for(5ms);
  y.set(2);
  joiner.join();
  EXPECT_EQ(sum.load(), 42);
}

// ------------------------------------------------------- DataflowGroup

TEST(DataflowGroupTest, CellsReadableInPublicationOrder) {
  DataflowGroup<int> group(5);
  multithreaded_block(
      [&] {
        for (int i = 0; i < 5; ++i) group.set_next(i * 11);
      },
      [&] {
        for (std::size_t i = 0; i < 5; ++i) {
          EXPECT_EQ(group.get(i), static_cast<int>(i) * 11);
        }
      });
}

TEST(DataflowGroupTest, OneCounterForAllCells) {
  DataflowGroup<int> group(100);
  for (int i = 0; i < 100; ++i) group.set_next(i);
  EXPECT_EQ(group.ready().stats().increments, 100u);
  EXPECT_EQ(group.get(99), 99);
}

TEST(DataflowGroupTest, ThenOnLaterCell) {
  DataflowGroup<int> group(3);
  std::vector<int> fired;
  group.then(2, [&](const int& v) { fired.push_back(v); });
  group.set_next(1);
  group.set_next(2);
  EXPECT_TRUE(fired.empty());
  group.set_next(3);
  EXPECT_EQ(fired, (std::vector<int>{3}));
}

TEST(DataflowGroupTest, OverfillRejected) {
  DataflowGroup<int> group(1);
  group.set_next(1);
  EXPECT_THROW(group.set_next(2), std::invalid_argument);
}

TEST(DataflowGroupTest, OutOfRangeRejected) {
  DataflowGroup<int> group(2);
  EXPECT_THROW(group.get(2), std::invalid_argument);
  EXPECT_THROW(group.then(5, [](const int&) {}), std::invalid_argument);
}

}  // namespace
}  // namespace monotonic
