// async_and_failure_test.cpp — the OnReach asynchronous checks and the
// broadcast/pipeline failure-poisoning paths.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/patterns/broadcast.hpp"
#include "monotonic/patterns/pipeline.hpp"
#include "monotonic/threads/multi_error.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------- OnReach

TEST(OnReach, ReachedLevelRunsImmediately) {
  Counter c;
  c.Increment(5);
  bool ran = false;
  c.OnReach(3, [&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(OnReach, PendingCallbackRunsOnIncrement) {
  Counter c;
  std::atomic<int> ran{0};
  c.OnReach(2, [&] { ran = 1; });
  EXPECT_EQ(ran.load(), 0);
  c.Increment(1);
  EXPECT_EQ(ran.load(), 0) << "level 2 not yet reached";
  c.Increment(1);
  EXPECT_EQ(ran.load(), 1);
}

TEST(OnReach, CallbacksRunInLevelThenRegistrationOrder) {
  Counter c;
  std::vector<int> order;
  c.OnReach(3, [&] { order.push_back(31); });
  c.OnReach(1, [&] { order.push_back(10); });
  c.OnReach(3, [&] { order.push_back(32); });
  c.OnReach(2, [&] { order.push_back(20); });
  c.Increment(3);  // releases everything in one wave
  EXPECT_EQ(order, (std::vector<int>{10, 20, 31, 32}));
}

TEST(OnReach, PartialWaveRunsOnlyReachedLevels) {
  Counter c;
  std::vector<int> order;
  c.OnReach(1, [&] { order.push_back(1); });
  c.OnReach(5, [&] { order.push_back(5); });
  c.Increment(2);
  EXPECT_EQ(order, (std::vector<int>{1}));
  auto snap = c.debug_snapshot();
  ASSERT_EQ(snap.callback_levels.size(), 1u);
  EXPECT_EQ(snap.callback_levels[0], 5u);
  c.Increment(3);
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(OnReach, CallbackMayReenterTheCounter) {
  // CP.22: callbacks run outside the lock, so chaining is legal —
  // each reached level schedules the next and increments.
  Counter c;
  std::atomic<int> chain{0};
  std::function<void(counter_value_t)> link = [&](counter_value_t level) {
    chain.fetch_add(1);
    if (level < 5) {
      c.OnReach(level + 1, [&, level] { link(level + 1); });
      c.Increment(1);
    }
  };
  c.OnReach(1, [&] { link(1); });
  c.Increment(1);
  EXPECT_EQ(chain.load(), 5);
}

TEST(OnReach, CallbackWakesSuspendedChecker) {
  // The callback runs in the incrementing thread and can itself
  // increment another counter a sleeping thread waits on.
  Counter first, second;
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    second.Check(1);
    passed.store(true);
  });
  first.OnReach(1, [&] { second.Increment(1); });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(passed.load());
  first.Increment(1);
  waiter.join();
  EXPECT_TRUE(passed.load());
}

TEST(OnReach, ConcurrentRegistrationAndIncrements) {
  for (int round = 0; round < 10; ++round) {
    Counter c;
    std::atomic<int> fired{0};
    constexpr int kLevels = 50;
    multithreaded_block(
        [&] {
          for (counter_value_t l = 1; l <= kLevels; ++l) {
            c.OnReach(l, [&] { fired.fetch_add(1); });
          }
        },
        [&] {
          for (int i = 0; i < kLevels; ++i) c.Increment(1);
        });
    // Every callback's level was eventually reached, so every callback
    // fired (either at registration or at an increment).
    EXPECT_EQ(fired.load(), kLevels);
  }
}

TEST(OnReach, ResetWithPendingCallbackRejected) {
  Counter c;
  c.OnReach(10, [] {});
  // The error names the stranded registration (counter_test pins the
  // multi-level message shape).
  EXPECT_THROW(c.Reset(), CounterError);
  c.Increment(10);  // fires and clears the callback
  c.Reset();
}

// ------------------------------------------------- channel poisoning

TEST(Poisoning, ReaderGetsPublishedItemsThenThrows) {
  BroadcastChannel<int> ch(10);
  {
    auto writer = ch.writer(1);
    writer.publish(100);
    writer.publish(101);
    writer.poison();
  }
  auto reader = ch.reader(1);
  EXPECT_EQ(reader.get(0), 100);
  EXPECT_EQ(reader.get(1), 101);
  EXPECT_THROW(reader.get(2), BrokenChannelError);
  EXPECT_THROW(reader.get(9), BrokenChannelError);
  EXPECT_TRUE(ch.poisoned());
}

TEST(Poisoning, BlockedReaderIsReleasedNotDeadlocked) {
  BroadcastChannel<int> ch(100);
  std::atomic<bool> threw{false};
  multithreaded_block(
      [&] {
        auto writer = ch.writer(1);
        writer.publish(1);
        std::this_thread::sleep_for(10ms);
        writer.poison();  // reader is (likely) parked on item 50
      },
      [&] {
        auto reader = ch.reader(1);
        try {
          (void)reader.get(0);
          (void)reader.get(50);  // never published
        } catch (const BrokenChannelError&) {
          threw.store(true);
        }
      });
  EXPECT_TRUE(threw.load());
}

TEST(Poisoning, FailingPipelineStageDoesNotDeadlockDownstream) {
  Pipeline<int> p;
  p.add_stage(5, [](Pipeline<int>::Context& ctx) {
    ctx.emit(1);
    ctx.emit(2);
    throw std::runtime_error("producer exploded");
  });
  p.add_stage(5, [](Pipeline<int>::Context& ctx) {
    for (std::size_t i = 0; i < 5; ++i) ctx.emit(ctx.read(0, i) * 10);
  });
  try {
    p.run(Execution::kMultithreaded);
    FAIL() << "expected MultiError";
  } catch (const MultiError& e) {
    // Producer's runtime_error plus the consumer's BrokenChannelError.
    EXPECT_GE(e.size(), 1u);
    EXPECT_NE(std::string(e.what()).find("producer exploded"),
              std::string::npos);
  }
}

TEST(Poisoning, CascadeThroughThreeStages) {
  Pipeline<int> p;
  p.add_stage(3, [](Pipeline<int>::Context& ctx) {
    ctx.emit(1);
    throw std::runtime_error("stage 0 failed");
  });
  p.add_stage(3, [](Pipeline<int>::Context& ctx) {
    for (std::size_t i = 0; i < 3; ++i) ctx.emit(ctx.read(0, i));
  });
  p.add_stage(3, [](Pipeline<int>::Context& ctx) {
    for (std::size_t i = 0; i < 3; ++i) ctx.emit(ctx.read(1, i));
  });
  EXPECT_THROW(p.run(Execution::kMultithreaded), MultiError);
  // The key property is that run() RETURNED (no deadlock): each broken
  // stage poisoned its own channel for the next one.
}

TEST(Poisoning, HealthyChannelNeverThrows) {
  BroadcastChannel<int> ch(50);
  multithreaded_block(
      [&] {
        auto writer = ch.writer(8);
        for (int i = 0; i < 50; ++i) writer.publish(i);
      },
      [&] {
        auto reader = ch.reader(4);
        for (std::size_t i = 0; i < 50; ++i) {
          EXPECT_EQ(reader.get(i), static_cast<int>(i));
        }
      });
  EXPECT_FALSE(ch.poisoned());
}

}  // namespace
}  // namespace monotonic
