// counter_stress_test.cpp — parameterized stress and property sweeps
// over counter implementations, thread counts, and level shapes.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <stop_token>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/support/rng.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

struct StressParam {
  const char* spec;  // make_counter spec, so sharded variants sweep too
  int writers;
  int readers;
  int items;
};

std::string sanitize(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

std::string param_name(const ::testing::TestParamInfo<StressParam>& info) {
  return sanitize(info.param.spec) + "_w" +
         std::to_string(info.param.writers) + "_r" +
         std::to_string(info.param.readers) + "_n" +
         std::to_string(info.param.items);
}

class CounterStress : public ::testing::TestWithParam<StressParam> {};

// Property: with W incrementing threads each adding `items` ones, every
// reader's Check(level) for level <= W*items eventually passes, and no
// Check passes before the counter could have reached its level.
TEST_P(CounterStress, ChecksPassExactlyWhenReachable) {
  const auto p = GetParam();
  auto counter = make_counter(std::string_view(p.spec));
  const counter_value_t total =
      static_cast<counter_value_t>(p.writers) * p.items;

  std::atomic<std::uint64_t> increments_issued{0};
  std::vector<std::function<void()>> bodies;
  for (int w = 0; w < p.writers; ++w) {
    bodies.emplace_back([&] {
      for (int i = 0; i < p.items; ++i) {
        increments_issued.fetch_add(1, std::memory_order_relaxed);
        counter->Increment(1);
      }
    });
  }
  for (int r = 0; r < p.readers; ++r) {
    bodies.emplace_back([&, r] {
      // Each reader sweeps a different stride of levels.
      for (counter_value_t level = static_cast<counter_value_t>(r) + 1;
           level <= total; level += p.readers) {
        counter->Check(level);
        // The check can only pass once at least `level` unit
        // increments were issued (the issue counter is bumped before
        // each Increment, so issued >= value always).
        EXPECT_GE(increments_issued.load(std::memory_order_relaxed), level);
      }
    });
  }
  multithreaded(std::move(bodies), Execution::kMultithreaded);
  counter->Check(total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CounterStress,
    ::testing::Values(
        StressParam{"list", 1, 1, 2000},
        StressParam{"list", 1, 4, 1000},
        StressParam{"list", 4, 4, 500},
        StressParam{"list", 8, 8, 200},
        StressParam{"list-nopool", 4, 4, 500},
        StressParam{"single-cv", 1, 4, 1000},
        StressParam{"single-cv", 4, 4, 500},
        StressParam{"futex", 1, 4, 1000},
        StressParam{"futex", 4, 4, 500},
        StressParam{"spin", 1, 2, 500},
        StressParam{"spin", 2, 2, 500},
        StressParam{"hybrid", 1, 4, 1000},
        StressParam{"hybrid", 4, 4, 500},
        StressParam{"hybrid", 8, 8, 200},
        // Striped value plane: same property, but increments land on
        // stripes and checks observe collapsed sums.
        StressParam{"sharded:4+hybrid", 4, 4, 500},
        StressParam{"sharded:4+hybrid", 8, 8, 200},
        StressParam{"sharded+list", 4, 4, 500},
        StressParam{"sharded:2+futex", 4, 4, 500},
        StressParam{"sharded:2+single-cv", 4, 4, 500}),
    param_name);

struct LevelShapeParam {
  const char* spec;
  int waiters;
  int distinct_levels;
};

std::string shape_name(
    const ::testing::TestParamInfo<LevelShapeParam>& info) {
  return sanitize(info.param.spec) + "_t" +
         std::to_string(info.param.waiters) + "_l" +
         std::to_string(info.param.distinct_levels);
}

class LevelShapes : public ::testing::TestWithParam<LevelShapeParam> {};

// Property: waiters spread over D distinct levels are all released by
// a single Increment that covers every level, regardless of how many
// waiters share each level.
TEST_P(LevelShapes, OneIncrementReleasesEveryCoveredLevel) {
  const auto p = GetParam();
  auto counter = make_counter(std::string_view(p.spec));
  std::atomic<int> released{0};

  std::vector<std::function<void()>> bodies;
  for (int w = 0; w < p.waiters; ++w) {
    const counter_value_t level = (w % p.distinct_levels) + 1;
    bodies.emplace_back([&, level] {
      counter->Check(level);
      released.fetch_add(1, std::memory_order_relaxed);
    });
  }
  bodies.emplace_back([&] {
    // Wait until every waiter has suspended (structurally: all checks
    // either suspended or still arriving), then release all at once.
    while (counter->stats().checks <
           static_cast<std::uint64_t>(p.waiters)) {
      std::this_thread::yield();
    }
    counter->Increment(static_cast<counter_value_t>(p.distinct_levels));
  });
  multithreaded(std::move(bodies), Execution::kMultithreaded);
  EXPECT_EQ(released.load(), p.waiters);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LevelShapes,
    ::testing::Values(LevelShapeParam{"list", 16, 1},
                      LevelShapeParam{"list", 16, 4},
                      LevelShapeParam{"list", 16, 16},
                      LevelShapeParam{"list", 32, 8},
                      LevelShapeParam{"list-nopool", 16, 4},
                      LevelShapeParam{"single-cv", 16, 4},
                      LevelShapeParam{"futex", 16, 4},
                      LevelShapeParam{"spin", 8, 4},
                      LevelShapeParam{"hybrid", 16, 4},
                      LevelShapeParam{"hybrid", 32, 8},
                      LevelShapeParam{"sharded:4+hybrid", 16, 4},
                      LevelShapeParam{"sharded:4+hybrid", 32, 8},
                      LevelShapeParam{"sharded+list", 16, 4}),
    shape_name);

// Mixed increment amounts: the counter must behave as the running sum.
TEST(CounterProperty, RandomAmountsMatchRunningSum) {
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    Counter c;
    counter_value_t sum = 0;
    for (int op = 0; op < 200; ++op) {
      const counter_value_t amount = rng.uniform(0, 10);
      c.Increment(amount);
      sum += amount;
      c.Check(sum);  // never blocks: value == sum
      EXPECT_EQ(c.debug_snapshot().value, sum);
    }
  }
}

// Chaos round: writers, blocking checkers, and cancellable checkers
// storm one counter while a controller randomly cancels and/or poisons
// mid-storm.  The property under test is the failure model's central
// guarantee: WHATEVER the interleaving, no thread is left permanently
// parked — the block always joins — and every checker exits through
// one of exactly three doors: completed, cancelled, or
// CounterPoisonedError.
class ChaosRound : public ::testing::TestWithParam<const char*> {};

std::string chaos_name(const ::testing::TestParamInfo<const char*>& info) {
  std::string out(info.param);
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

TEST_P(ChaosRound, RandomPoisonAndCancelLeaveNoThreadParked) {
  const std::string_view spec = GetParam();
  Xoshiro256 rng(0xC4A05u ^ std::hash<std::string_view>{}(spec));
  constexpr int kTrials = 8;
  constexpr int kWriters = 2;
  constexpr int kCheckers = 3;
  constexpr int kCancellable = 2;
  constexpr counter_value_t kTotal = 1800;

  for (int trial = 0; trial < kTrials; ++trial) {
    auto counter = make_counter(spec);
    std::stop_source cancel;
    const bool do_cancel = rng.uniform(0, 1) == 1;
    const bool do_poison = rng.uniform(0, 3) != 0;  // 3 in 4 trials
    const auto writer_pause = std::chrono::microseconds(rng.uniform(0, 40));
    const auto chaos_delay = std::chrono::microseconds(rng.uniform(0, 1500));

    std::atomic<int> completed{0};
    std::atomic<int> cancelled{0};
    std::atomic<int> poisoned_exits{0};
    {
      std::vector<std::jthread> threads;
      threads.reserve(kWriters + kCheckers + kCancellable + 1);
      for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&] {
          // Increment never throws — a poisoned counter counts drops.
          for (counter_value_t i = 0; i < kTotal / kWriters; ++i) {
            counter->Increment(1);
            if (writer_pause.count() > 0 && i % 256 == 0) {
              std::this_thread::sleep_for(writer_pause);
            }
          }
          // A check-side call publishes any tail the spec buffered
          // (Batching flushes on every Check-family entry; level 0 is
          // always reached, so this never blocks or throws).
          counter->Check(0);
        });
      }
      for (int r = 0; r < kCheckers; ++r) {
        threads.emplace_back([&, r] {
          try {
            for (counter_value_t level = static_cast<counter_value_t>(r) + 1;
                 level <= kTotal; level += kCheckers) {
              counter->Check(level);
            }
            completed.fetch_add(1, std::memory_order_relaxed);
          } catch (const CounterPoisonedError&) {
            poisoned_exits.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      for (int c = 0; c < kCancellable; ++c) {
        threads.emplace_back([&, token = cancel.get_token()] {
          try {
            for (counter_value_t level = 1; level <= kTotal; level += 7) {
              if (!counter->Check(level, token)) {
                cancelled.fetch_add(1, std::memory_order_relaxed);
                return;
              }
            }
            completed.fetch_add(1, std::memory_order_relaxed);
          } catch (const CounterPoisonedError&) {
            poisoned_exits.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      threads.emplace_back([&] {  // the chaos controller
        std::this_thread::sleep_for(chaos_delay);
        if (do_cancel) cancel.request_stop();
        if (do_poison) {
          counter->Poison(
              std::make_exception_ptr(std::runtime_error("chaos strike")));
        }
      });
    }  // jthread join: the no-thread-left-parked assertion itself

    EXPECT_EQ(completed.load() + cancelled.load() + poisoned_exits.load(),
              kCheckers + kCancellable)
        << spec << " trial " << trial;
    EXPECT_EQ(counter->poisoned(), do_poison) << spec << " trial " << trial;
    if (!do_poison) {
      EXPECT_EQ(poisoned_exits.load(), 0) << spec << " trial " << trial;
      // No poison: the full total was published, so plain checkers all
      // ran to completion.
      EXPECT_GE(completed.load(), kCheckers) << spec << " trial " << trial;
      counter->Check(kTotal);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ChaosRound,
    ::testing::Values("list", "single-cv", "futex", "spin", "hybrid",
                      "hybrid+batching,batch=4", "list+broadcast,shards=2",
                      "hybrid+traced", "sharded", "sharded:4+hybrid+traced",
                      "sharded:2+futex"),
    chaos_name);

// The stripe-collapse handshake, raced on purpose: a waiter arms the
// watermark (under the mutex) at the same instant incrementers push
// per-stripe cells across the level.  The seq_cst protocol in
// striped_cells.hpp promises the level-crossing increment either sees
// the armed watermark (and takes the locked slow pass that releases
// the waiter) or happens early enough that the waiter's own collapse
// already covers it — a lost wakeup would strand the CheckFor below.
// Run under TSan in CI, where the handshake's orderings are checked,
// not just its outcome.
TEST(StripedPlaneRace, ArmConcurrentWithCrossingIncrementsNeverStrands) {
  constexpr int kTrials = 150;
  constexpr int kIncrementers = 4;
  constexpr counter_value_t kPerThread = 2;
  constexpr counter_value_t kLevel = kIncrementers * kPerThread;

  WaitListOptions options;
  options.stripes = 4;  // force real striping even on small machines

  for (int trial = 0; trial < kTrials; ++trial) {
    ShardedHybridCounter counter(options);
    std::atomic<int> ready{0};
    bool reached = false;
    {
      std::vector<std::jthread> threads;
      threads.reserve(kIncrementers + 1);
      for (int w = 0; w < kIncrementers; ++w) {
        threads.emplace_back([&] {
          ready.fetch_add(1, std::memory_order_relaxed);
          while (ready.load(std::memory_order_relaxed) <= kIncrementers) {
            std::this_thread::yield();
          }
          for (counter_value_t i = 0; i < kPerThread; ++i) {
            counter.Increment(1);
          }
        });
      }
      threads.emplace_back([&] {
        ready.fetch_add(1, std::memory_order_relaxed);
        while (ready.load(std::memory_order_relaxed) <= kIncrementers) {
          std::this_thread::yield();
        }
        // Bounded so a lost wakeup fails the assertion instead of
        // hanging the suite.
        reached = counter.CheckFor(kLevel, std::chrono::seconds(20));
      });
    }
    ASSERT_TRUE(reached) << "lost wakeup on trial " << trial;
    EXPECT_EQ(counter.debug_value(), kLevel);
    EXPECT_EQ(counter.stripe_count(), 4u);
  }
}

// The §7 storage claim under churn: many distinct levels over the
// counter's lifetime, few at any instant.
TEST(CounterProperty, LifetimeLevelsFarExceedLiveLevels) {
  Counter c;
  constexpr int kPhases = 100;
  std::jthread walker([&c] {
    for (int k = 1; k <= kPhases; ++k) {
      c.Check(static_cast<counter_value_t>(k));
    }
  });
  for (int k = 1; k <= kPhases; ++k) c.Increment(1);
  walker.join();
  auto s = c.stats();
  EXPECT_LE(s.max_live_nodes, 1u);
  EXPECT_EQ(s.live_nodes, 0u);
}

}  // namespace
}  // namespace monotonic
