// sim_explorer — CLI driver for the deterministic-schedule harness.
//
//   sim_explorer --list
//   sim_explorer --scenario boundary_blocking --seeds 2000
//   sim_explorer --seeds 2000 [--seed-base 1] [--budget-seconds 300]
//   sim_explorer --scenario striped_arm_vs_increment --seed 34
//   sim_explorer --scenario ... --seed 34 --trace 1,0,2
//
// Exit status: 0 when every swept scenario held (models: found their
// planted bug), 1 on a real failure, 2 on usage errors.  The CI `sim`
// job runs the big fresh-seed sweeps through this binary; gtest keeps
// the smaller deterministic sweeps.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "monotonic/sim/sim_explorer.hpp"
#include "monotonic/sim/sim_scenarios.hpp"

// Failed runs (e.g. every model-scenario probe) leak their counters by
// design; keep LeakSanitizer quiet when this binary is built with asan.
extern "C" const char* __lsan_default_suppressions() {
  return "leak:monotonic::sim::\nleak:monotonic::BasicCounter\n";
}

namespace {

using namespace monotonic::sim;

struct Cli {
  std::string scenario;             // empty = all
  std::uint64_t seed_base = 1;
  std::size_t seeds = 200;          // sweep width per scenario
  bool have_single_seed = false;    // --seed: replay exactly one run
  std::uint64_t single_seed = 0;
  std::vector<std::uint32_t> trace;  // --trace: forced decisions
  std::size_t max_steps = 50000;
  long budget_seconds = 0;  // 0 = unbounded
  bool list = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: sim_explorer [--list] [--scenario NAME] [--seeds N]\n"
      "                    [--seed-base S] [--seed S] [--trace a,b,c]\n"
      "                    [--max-steps N] [--budget-seconds N]\n");
}

bool parse(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return false;
      cli.scenario = v;
    } else if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return false;
      cli.seeds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed-base") {
      const char* v = next();
      if (v == nullptr) return false;
      cli.seed_base = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      cli.have_single_seed = true;
      cli.single_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      for (const char* p = v; *p != '\0';) {
        cli.trace.push_back(
            static_cast<std::uint32_t>(std::strtoul(p, nullptr, 10)));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
    } else if (arg == "--max-steps") {
      const char* v = next();
      if (v == nullptr) return false;
      cli.max_steps = std::strtoull(v, nullptr, 10);
    } else if (arg == "--budget-seconds") {
      const char* v = next();
      if (v == nullptr) return false;
      cli.budget_seconds = std::strtol(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Replay one (scenario, seed[, trace]) and narrate the outcome.
int replay(const SimScenario& s, const Cli& cli) {
  SimLimits limits;
  limits.max_steps = cli.max_steps;
  const std::vector<std::uint32_t>* forced =
      cli.trace.empty() ? nullptr : &cli.trace;
  SimOutcome out = run_once(s, cli.single_seed, forced, limits);
  std::printf("scenario: %s\nseed:     %llu\nsteps:    %zu\n"
              "virtual:  %lldms\nresult:   %s\n",
              s.name, static_cast<unsigned long long>(cli.single_seed),
              out.steps, static_cast<long long>(out.end_ns / 1000000),
              out.failed ? "FAILED" : "passed");
  if (out.failed) {
    std::printf("message:  %s\n", out.message.c_str());
    std::printf("trace:    ");
    for (std::size_t i = 0; i < out.trace.size(); ++i) {
      std::printf(i == 0 ? "%u" : ",%u", out.trace[i]);
    }
    std::printf("\n");
  }
  const bool ok = s.expect_failure ? out.failed : !out.failed;
  return ok ? 0 : 1;
}

/// Sweep one scenario; returns 0 when it held.
int sweep(const SimScenario& s, const Cli& cli,
          std::chrono::steady_clock::time_point hard_stop, bool bounded) {
  SimLimits limits;
  limits.max_steps = cli.max_steps;
  // Chunked sweep so the wall-clock budget is honoured between chunks.
  const std::size_t chunk = 50;
  std::size_t done = 0;
  while (done < cli.seeds) {
    if (bounded && std::chrono::steady_clock::now() >= hard_stop) {
      std::printf("%-32s budget exhausted after %zu seeds\n", s.name, done);
      return s.expect_failure ? 1 : 0;  // a model MUST be found in budget
    }
    const std::size_t n = std::min(chunk, cli.seeds - done);
    ExploreResult r = explore(s, cli.seed_base + done, n, limits);
    done += r.seeds_run;
    if (r.found_failure) {
      if (s.expect_failure) {
        std::printf("%-32s ok (model bug found at seed %llu, %zu seeds)\n",
                    s.name, static_cast<unsigned long long>(r.failing_seed),
                    done);
        return 0;
      }
      std::fprintf(stderr, "%s", describe_failure(s, r).c_str());
      return 1;
    }
  }
  if (s.expect_failure) {
    std::fprintf(stderr,
                 "%-32s FAILED: model bug not found in %zu seeds — the "
                 "harness lost its teeth\n",
                 s.name, done);
    return 1;
  }
  std::printf("%-32s ok (%zu seeds)\n", s.name, done);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse(argc, argv, cli)) {
    usage();
    return 2;
  }
  if (cli.list) {
    for (const auto& s : sim_scenarios()) {
      std::printf("%-32s %s%s\n", s.name,
                  s.expect_failure ? "[model] " : "", s.description);
    }
    return 0;
  }
  if (cli.have_single_seed) {
    if (cli.scenario.empty()) {
      std::fprintf(stderr, "--seed requires --scenario\n");
      return 2;
    }
    const SimScenario* s = find_scenario(cli.scenario);
    if (s == nullptr) {
      std::fprintf(stderr, "unknown scenario: %s\n", cli.scenario.c_str());
      return 2;
    }
    return replay(*s, cli);
  }
  const auto hard_stop =
      std::chrono::steady_clock::now() +
      std::chrono::seconds(cli.budget_seconds);
  const bool bounded = cli.budget_seconds > 0;
  int rc = 0;
  for (const auto& s : sim_scenarios()) {
    if (!cli.scenario.empty() && cli.scenario != s.name) continue;
    rc |= sweep(s, cli, hard_stop, bounded);
  }
  if (!cli.scenario.empty() && find_scenario(cli.scenario) == nullptr) {
    std::fprintf(stderr, "unknown scenario: %s\n", cli.scenario.c_str());
    return 2;
  }
  return rc;
}
