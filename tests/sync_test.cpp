// sync_test.cpp — the traditional-mechanism substrate (S2): locks,
// conditions, semaphores, latches, single-assignment, bounded buffer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "monotonic/sync/bounded_buffer.hpp"
#include "monotonic/sync/event.hpp"
#include "monotonic/sync/latch.hpp"
#include "monotonic/sync/lock.hpp"
#include "monotonic/sync/semaphore.hpp"
#include "monotonic/sync/single_assignment.hpp"
#include "monotonic/sync/spin_lock.hpp"
#include "monotonic/sync/ticket_lock.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- locks

template <typename L>
class LockTypes : public ::testing::Test {
 protected:
  L lock_;
};

using AllLockTypes = ::testing::Types<Lock, SpinLock, TicketLock>;
TYPED_TEST_SUITE(LockTypes, AllLockTypes);

TYPED_TEST(LockTypes, MutualExclusionUnderContention) {
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  long long counter = 0;  // unguarded except by the lock under test
  multithreaded_for(0, kThreads, 1, [&](int) {
    for (int i = 0; i < kIters; ++i) {
      std::scoped_lock hold(this->lock_);
      ++counter;
    }
  });
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

TEST(LockApi, PaperStyleNamesWork) {
  Lock lock;
  lock.Lock_();
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(SpinLockApi, TryLockReflectsState) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLockApi, GrantsInArrivalOrder) {
  // Arrival (ticket acquisition) happens inside lock(), so arrivals are
  // serialized here by staggering the spawns generously.  FIFO is the
  // lock's defining property; the stagger makes the expected order
  // overwhelmingly deterministic on this machine.
  TicketLock lock;
  std::vector<int> order;
  lock.lock();
  std::vector<std::jthread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      lock.lock();
      order.push_back(i);
      lock.unlock();
    });
    std::this_thread::sleep_for(30ms);  // let thread i take its ticket
  }
  lock.unlock();
  threads.clear();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ------------------------------------------------------------ condition

TEST(ConditionEvent, CheckAfterSetReturnsImmediately) {
  Condition cond;
  cond.Set();
  cond.Check();
  EXPECT_TRUE(cond.debug_is_set());
}

TEST(ConditionEvent, CheckBlocksUntilSet) {
  Condition cond;
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    cond.Check();
    passed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load());
  cond.Set();
  waiter.join();
  EXPECT_TRUE(passed.load());
}

TEST(ConditionEvent, SetWakesAllWaiters) {
  Condition cond;
  std::atomic<int> released{0};
  {
    std::vector<std::jthread> waiters;
    for (int i = 0; i < 5; ++i) {
      waiters.emplace_back([&] {
        cond.Check();
        released.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(20ms);
    cond.Set();
  }
  EXPECT_EQ(released.load(), 5);
  EXPECT_EQ(cond.stat_suspensions(), 5u);
}

TEST(ConditionEvent, SetIsIdempotent) {
  Condition cond;
  cond.Set();
  cond.Set();
  cond.Check();
}

// ------------------------------------------------------------ semaphore

TEST(SemaphoreTest, InitialPermitsAreAcquirable) {
  Semaphore sem(3);
  sem.acquire();
  sem.acquire(2);
  EXPECT_FALSE(sem.try_acquire());
}

TEST(SemaphoreTest, AcquireBlocksUntilRelease) {
  Semaphore sem;
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    sem.acquire();
    passed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load());
  sem.release();
  waiter.join();
  EXPECT_TRUE(passed.load());
}

TEST(SemaphoreTest, NaryAcquireIsAtomic) {
  Semaphore sem;
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    sem.acquire(3);
    passed.store(true);
  });
  sem.release(1);
  sem.release(1);
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load()) << "3-ary acquire must not take 2 permits";
  EXPECT_EQ(sem.debug_permits(), 2u);
  sem.release(1);
  waiter.join();
  EXPECT_EQ(sem.debug_permits(), 0u);
}

TEST(SemaphoreTest, PingPong) {
  Semaphore ping(1), pong(0);
  std::vector<int> order;
  multithreaded_block(
      [&] {
        for (int i = 0; i < 10; ++i) {
          ping.acquire();
          order.push_back(0);
          pong.release();
        }
      },
      [&] {
        for (int i = 0; i < 10; ++i) {
          pong.acquire();
          order.push_back(1);
          ping.release();
        }
      });
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i % 2));
  }
}

// ---------------------------------------------------------------- latch

TEST(LatchTest, WaitReleasesAtZero) {
  CountdownLatch latch(3);
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    latch.wait();
    passed.store(true);
  });
  latch.count_down();
  latch.count_down();
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load());
  latch.count_down();
  waiter.join();
  EXPECT_TRUE(passed.load());
  EXPECT_TRUE(latch.try_wait());
}

TEST(LatchTest, CountDownPastZeroIsAnError) {
  CountdownLatch latch(1);
  latch.count_down();
  EXPECT_THROW(latch.count_down(), std::invalid_argument);
}

TEST(LatchTest, ArriveAndWaitRendezvous) {
  CountdownLatch latch(4);
  std::atomic<int> past{0};
  multithreaded_for(0, 4, 1, [&](int) {
    latch.arrive_and_wait();
    past.fetch_add(1);
  });
  EXPECT_EQ(past.load(), 4);
}

// ---------------------------------------------------- single assignment

TEST(SingleAssignmentTest, GetBlocksUntilSet) {
  SingleAssignment<int> cell;
  std::atomic<int> got{0};
  std::jthread reader([&] { got.store(cell.get()); });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(got.load(), 0);
  cell.set(99);
  reader.join();
  EXPECT_EQ(got.load(), 99);
}

TEST(SingleAssignmentTest, ManyReadersOneWriter) {
  SingleAssignment<std::string> cell;
  std::atomic<int> matches{0};
  {
    std::vector<std::jthread> readers;
    for (int i = 0; i < 4; ++i) {
      readers.emplace_back([&] {
        if (cell.get() == "dataflow") matches.fetch_add(1);
      });
    }
    cell.set(std::string("dataflow"));
  }
  EXPECT_EQ(matches.load(), 4);
}

TEST(SingleAssignmentTest, DoubleSetIsAnError) {
  SingleAssignment<int> cell;
  cell.set(1);
  EXPECT_THROW(cell.set(2), std::invalid_argument);
}

// -------------------------------------------------------- bounded buffer

TEST(BoundedBufferTest, FifoSingleThread) {
  BoundedBuffer<int> buf(4);
  buf.push(1);
  buf.push(2);
  buf.push(3);
  EXPECT_EQ(buf.pop(), 1);
  EXPECT_EQ(buf.pop(), 2);
  EXPECT_EQ(buf.pop(), 3);
}

TEST(BoundedBufferTest, TryPushFailsWhenFull) {
  BoundedBuffer<int> buf(2);
  EXPECT_TRUE(buf.try_push(1));
  EXPECT_TRUE(buf.try_push(2));
  EXPECT_FALSE(buf.try_push(3));
  EXPECT_EQ(buf.pop(), 1);
  EXPECT_TRUE(buf.try_push(3));
}

TEST(BoundedBufferTest, EachItemConsumedExactlyOnce) {
  // The §5.3 contrast: a bounded buffer distributes items; a broadcast
  // channel replicates them.  Here 2 producers, 3 consumers, and every
  // item must be seen exactly once across all consumers.
  constexpr int kPerProducer = 500;
  BoundedBuffer<int> buf(8);
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  constexpr int kTotal = 2 * kPerProducer;

  multithreaded_block(
      [&] {
        for (int i = 0; i < kPerProducer; ++i) buf.push(i);
      },
      [&] {
        for (int i = 0; i < kPerProducer; ++i) buf.push(i + kPerProducer);
      },
      [&] {
        while (consumed.fetch_add(1) < kTotal) sum += buf.pop();
      },
      [&] {
        while (consumed.fetch_add(1) < kTotal) sum += buf.pop();
      },
      [&] {
        while (consumed.fetch_add(1) < kTotal) sum += buf.pop();
      });

  EXPECT_EQ(sum.load(),
            static_cast<long long>(kTotal) * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace monotonic
