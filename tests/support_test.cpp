// support_test.cpp — support substrate: RNG determinism, statistics,
// histograms, tables, spin-wait escalation, affinity.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "monotonic/support/affinity.hpp"
#include "monotonic/support/cache.hpp"
#include "monotonic/support/histogram.hpp"
#include "monotonic/support/rng.hpp"
#include "monotonic/support/spin_wait.hpp"
#include "monotonic/support/stats.hpp"
#include "monotonic/support/stopwatch.hpp"
#include "monotonic/support/table.hpp"

namespace monotonic {
namespace {

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, XoshiroIsDeterministicAndSeedSensitive) {
  Xoshiro256 a(1), b(1), c(2);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformCoversRange) {
  Xoshiro256 rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, HashIndexIsStable) {
  EXPECT_EQ(hash_index(1, 2), hash_index(1, 2));
  EXPECT_NE(hash_index(1, 2), hash_index(1, 3));
  EXPECT_NE(hash_index(1, 2), hash_index(2, 2));
}

TEST(Stats, RunningStatsMatchClosedForm) {
  RunningStats rs;
  for (int i = 1; i <= 100; ++i) rs.add(i);
  EXPECT_EQ(rs.count(), 100u);
  EXPECT_DOUBLE_EQ(rs.mean(), 50.5);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 100.0);
  // Sample variance of 1..100 is 841.6666...
  EXPECT_NEAR(rs.variance(), 841.6667, 1e-3);
}

TEST(Stats, SummaryPercentiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(i);
  const auto s = summarize(samples);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.p50, 500.5, 1.0);
  EXPECT_NEAR(s.p90, 900.1, 1.5);
  EXPECT_NEAR(s.p99, 990.01, 1.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(Stats, EmptySummaryIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(1023), 9u);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 10u);
}

TEST(Histogram, CountsAndMean) {
  Log2Histogram h;
  h.add(1);
  h.add(2);
  h.add(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 6u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, MergeAccumulates) {
  Log2Histogram a, b;
  a.add(10);
  b.add(20);
  b.add(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 60u);
}

TEST(Histogram, QuantileBoundIsMonotone) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_LE(h.quantile_bound(0.5), h.quantile_bound(0.99));
  EXPECT_GE(h.quantile_bound(0.99), 512u);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, WideRowsAreRejected) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell(42), "42");
  EXPECT_EQ(cell(std::uint64_t{7}), "7");
}

TEST(SpinWaitTest, EscalatesThroughPhases) {
  SpinBackoff spinner;
  for (std::uint32_t i = 0;
       i < SpinBackoff::kPauseIterations + SpinBackoff::kYieldIterations + 2; ++i) {
    spinner.once();
  }
  EXPECT_GT(spinner.spins(), SpinBackoff::kPauseIterations);
  spinner.reset();
  EXPECT_EQ(spinner.spins(), 0u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.elapsed_ms(), 9.0);
  const auto lap = sw.lap();
  EXPECT_GT(lap.count(), 0);
  EXPECT_LT(sw.elapsed_ms(), 9.0);  // restarted
}

TEST(Affinity, NumCpusIsPositive) { EXPECT_GE(num_cpus(), 1u); }

TEST(Affinity, PinAndNameDoNotCrash) {
  pin_this_thread(0);
  name_this_thread("mc-test-thread-with-long-name");
}

TEST(Cache, CacheAlignedSeparatesElements) {
  CacheAligned<int> pair[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&pair[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&pair[1]);
  EXPECT_GE(b - a, kCacheLineSize);
  EXPECT_EQ(a % kCacheLineSize, 0u);
  *pair[0] = 7;
  EXPECT_EQ(pair[0].value, 7);
}

}  // namespace
}  // namespace monotonic
