// patterns_test.cpp — §5's three patterns as components (ragged
// barrier, sequencer, broadcast channel) plus the wavefront and
// pipeline extensions.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/patterns/broadcast.hpp"
#include "monotonic/patterns/pipeline.hpp"
#include "monotonic/patterns/ragged_barrier.hpp"
#include "monotonic/patterns/sequencer.hpp"
#include "monotonic/patterns/wavefront.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

// ------------------------------------------------------- ragged barrier

TEST(RaggedBarrierTest, NeighbourChainPropagates) {
  // A pipeline of parties where each waits on its left neighbour:
  // arrival order is forced 0,1,2,...,N-1.
  constexpr std::size_t kParties = 6;
  RaggedBarrier<> barrier(kParties);
  std::vector<int> order;
  std::mutex m;
  multithreaded_for(
      std::size_t{0}, kParties, std::size_t{1},
      [&](std::size_t i) {
        if (i > 0) barrier.wait_for(i - 1, 1);
        {
          std::scoped_lock lock(m);
          order.push_back(static_cast<int>(i));
        }
        barrier.arrive(i);
      },
      Execution::kMultithreaded);
  std::vector<int> expected(kParties);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(RaggedBarrierTest, PreloadSatisfiesAllPhases) {
  RaggedBarrier<> barrier(3);
  barrier.preload(0, 100);
  for (counter_value_t t = 1; t <= 100; ++t) barrier.wait_for(0, t);
}

TEST(RaggedBarrierTest, PartiesAheadByDependencyDistance) {
  // Party 0 depends on nothing: it can finish all phases while party 1
  // (which depends on 0) lags — the "ragged" in ragged barrier.
  RaggedBarrier<> barrier(2);
  std::atomic<int> p0_phases{0};
  multithreaded_block(
      [&] {
        for (int t = 0; t < 50; ++t) {
          barrier.arrive(0);
          p0_phases.fetch_add(1);
        }
      },
      [&] {
        // Party 1 waits for party 0's *last* phase before starting.
        barrier.wait_for(0, 50);
        EXPECT_EQ(p0_phases.load(), 50);
      });
}

TEST(RaggedBarrierTest, IndexOutOfRangeRejected) {
  RaggedBarrier<> barrier(2);
  EXPECT_THROW(barrier.arrive(2), std::invalid_argument);
  EXPECT_THROW(barrier.counter(5), std::invalid_argument);
}

TEST(RaggedBarrierTest, WorksWithAnyCounterImplementation) {
  RaggedBarrier<SingleCvCounter> barrier(2);
  barrier.arrive(0);
  barrier.wait_for(0, 1);
}

// ------------------------------------------------------------ sequencer

TEST(SequencerTest, SectionsRunInIndexOrder) {
  Sequencer<> seq;
  std::vector<int> order;
  // Spawn in reverse so arrival order opposes sequence order.
  std::vector<std::function<void()>> bodies;
  for (int i = 7; i >= 0; --i) {
    bodies.emplace_back([&, i] {
      seq.run_in_order(static_cast<counter_value_t>(i),
                       [&] { order.push_back(i); });
    });
  }
  multithreaded(std::move(bodies), Execution::kMultithreaded);
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(SequencerTest, ExceptionStillCompletesTurn) {
  Sequencer<> seq;
  std::vector<int> order;
  EXPECT_THROW(multithreaded_block(
                   [&] {
                     seq.run_in_order(0, [&] {
                       order.push_back(0);
                       throw std::runtime_error("section 0 failed");
                     });
                   },
                   [&] { seq.run_in_order(1, [&] { order.push_back(1); }); }),
               MultiError);
  // Section 1 must not be deadlocked by section 0's exception.
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(SequencerTest, ManualTurnProtocol) {
  Sequencer<> seq;
  seq.wait_turn(0);
  seq.complete();
  seq.wait_turn(1);
  seq.complete();
  seq.wait_turn(2);
}

// ------------------------------------------------------------ broadcast

TEST(BroadcastChannelTest, EveryReaderSeesEveryItem) {
  constexpr std::size_t kItems = 300;
  constexpr int kReaders = 3;
  BroadcastChannel<int> channel(kItems);
  std::atomic<long long> total{0};

  std::vector<std::function<void()>> bodies;
  bodies.emplace_back([&] {
    auto writer = channel.writer(1);
    for (std::size_t i = 0; i < kItems; ++i) {
      writer.publish(static_cast<int>(i));
    }
  });
  for (int r = 0; r < kReaders; ++r) {
    bodies.emplace_back([&] {
      auto reader = channel.reader(1);
      long long sum = 0;
      reader.for_each([&](std::size_t i, const int& item) {
        EXPECT_EQ(item, static_cast<int>(i));
        sum += item;
      });
      total += sum;
    });
  }
  multithreaded(std::move(bodies), Execution::kMultithreaded);
  const long long each = static_cast<long long>(kItems) * (kItems - 1) / 2;
  EXPECT_EQ(total.load(), kReaders * each);
}

TEST(BroadcastChannelTest, MixedBlockSizes) {
  // §5.3: "Different threads can use different blocking granularity."
  constexpr std::size_t kItems = 1000;
  BroadcastChannel<int> channel(kItems);
  std::atomic<int> ok_readers{0};
  std::vector<std::function<void()>> bodies;
  bodies.emplace_back([&] {
    auto writer = channel.writer(16);  // writer announces every 16
    for (std::size_t i = 0; i < kItems; ++i) {
      writer.publish(static_cast<int>(i));
    }
  });
  for (std::size_t block : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{1000}}) {
    bodies.emplace_back([&, block] {
      auto reader = channel.reader(block);
      for (std::size_t i = 0; i < kItems; ++i) {
        if (reader.get(i) != static_cast<int>(i)) return;
      }
      ok_readers.fetch_add(1);
    });
  }
  multithreaded(std::move(bodies), Execution::kMultithreaded);
  EXPECT_EQ(ok_readers.load(), 4);
}

TEST(BroadcastChannelTest, BlockedWriterSynchronizesPerBlockNotPerItem) {
  constexpr std::size_t kItems = 256;
  BroadcastChannel<int> channel(kItems);
  {
    auto writer = channel.writer(32);
    for (std::size_t i = 0; i < kItems; ++i) {
      writer.publish(static_cast<int>(i));
    }
  }
  // 256/32 = 8 counter operations, not 256 (§5.3's tuning knob).
  EXPECT_EQ(channel.counter().stats().increments, 8u);
}

TEST(BroadcastChannelTest, PartialFinalBlockIsFlushed) {
  BroadcastChannel<int> channel(10);
  {
    auto writer = channel.writer(4);  // 4+4+2: final partial block
    for (int i = 0; i < 10; ++i) writer.publish(i);
  }
  auto reader = channel.reader(1);
  EXPECT_EQ(reader.get(9), 9);  // would hang if the tail were lost
}

TEST(BroadcastChannelTest, AbandonedWriterFlushesOnDestruction) {
  BroadcastChannel<int> channel(10);
  {
    auto writer = channel.writer(8);
    writer.publish(11);
    writer.publish(22);  // mid-block; destructor must announce them
  }
  auto reader = channel.reader(1);
  EXPECT_EQ(reader.get(0), 11);
  EXPECT_EQ(reader.get(1), 22);
}

TEST(BroadcastChannelTest, SingleCounterRegardlessOfReaders) {
  // The structural §5.3 claim: one sync object total, versus one per
  // item for the Condition-array baseline.
  ConditionPerItemBroadcast<int> baseline(500);
  EXPECT_EQ(baseline.sync_object_count(), 500u);
  // BroadcastChannel has exactly one counter by construction; its type
  // system enforces it — nothing to count at runtime.
}

TEST(ConditionPerItemBroadcastTest, PublishThenGet) {
  ConditionPerItemBroadcast<std::string> b(3);
  b.publish(0, "a");
  b.publish(2, "c");
  EXPECT_EQ(b.get(0), "a");
  EXPECT_EQ(b.get(2), "c");
}

TEST(ConditionPerItemBroadcastTest, GetBlocksUntilPublished) {
  ConditionPerItemBroadcast<int> b(2);
  multithreaded_block(
      [&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        b.publish(1, 77);
      },
      [&] { EXPECT_EQ(b.get(1), 77); });
}

// ------------------------------------------------------------ wavefront

TEST(WavefrontTest, VisitsEveryCellOnce) {
  constexpr std::size_t kRows = 8, kCols = 9;
  std::vector<std::atomic<int>> visits(kRows * kCols);
  wavefront_rows(kRows, kCols, 3, [&](std::size_t r, std::size_t c) {
    visits[r * kCols + c].fetch_add(1);
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(WavefrontTest, DependenciesAreHonoured) {
  // value(r, c) = value(r-1, c) + value(r, c-1) with borders 1: a
  // Pascal-like recurrence whose result is wrong under any dependency
  // violation.
  constexpr std::size_t kRows = 10, kCols = 10;
  std::vector<std::vector<std::uint64_t>> grid(
      kRows, std::vector<std::uint64_t>(kCols, 0));
  wavefront_rows(kRows, kCols, 4, [&](std::size_t r, std::size_t c) {
    const std::uint64_t up = r > 0 ? grid[r - 1][c] : 1;
    const std::uint64_t left = c > 0 ? grid[r][c - 1] : 1;
    grid[r][c] = up + left;
  });
  // Reference computed sequentially.
  std::vector<std::vector<std::uint64_t>> ref(
      kRows, std::vector<std::uint64_t>(kCols, 0));
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < kCols; ++c) {
      const std::uint64_t up = r > 0 ? ref[r - 1][c] : 1;
      const std::uint64_t left = c > 0 ? ref[r][c - 1] : 1;
      ref[r][c] = up + left;
    }
  }
  EXPECT_EQ(grid, ref);
}

TEST(WavefrontTest, MoreThreadsThanRows) {
  std::atomic<int> cells{0};
  wavefront_rows(2, 3, 8, [&](std::size_t, std::size_t) { cells += 1; });
  EXPECT_EQ(cells.load(), 6);
}

TEST(WavefrontTest, SingleThreadStillCorrect) {
  std::atomic<int> cells{0};
  wavefront_rows(4, 4, 1, [&](std::size_t, std::size_t) { cells += 1; });
  EXPECT_EQ(cells.load(), 16);
}

// ------------------------------------------------------------- pipeline

TEST(PipelineTest, StagesStreamInOrder) {
  Pipeline<int> pipeline;
  pipeline.add_stage(5, [](Pipeline<int>::Context& ctx) {
    for (int i = 0; i < 5; ++i) ctx.emit(i);
  });
  pipeline.add_stage(5, [](Pipeline<int>::Context& ctx) {
    for (std::size_t i = 0; i < ctx.count(0); ++i) {
      ctx.emit(ctx.read(0, i) * 10);
    }
  });
  pipeline.run(Execution::kMultithreaded);
  EXPECT_EQ(pipeline.output(0), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pipeline.output(1), (std::vector<int>{0, 10, 20, 30, 40}));
}

TEST(PipelineTest, DiamondDependencies) {
  // Stage 2 reads both stage 0 and stage 1.
  Pipeline<int> pipeline;
  pipeline.add_stage(3, [](Pipeline<int>::Context& ctx) {
    for (int i = 0; i < 3; ++i) ctx.emit(i + 1);  // 1 2 3
  });
  pipeline.add_stage(3, [](Pipeline<int>::Context& ctx) {
    for (std::size_t i = 0; i < 3; ++i) ctx.emit(ctx.read(0, i) * 2);  // 2 4 6
  });
  pipeline.add_stage(3, [](Pipeline<int>::Context& ctx) {
    for (std::size_t i = 0; i < 3; ++i) {
      ctx.emit(ctx.read(0, i) + ctx.read(1, i));  // 3 6 9
    }
  });
  pipeline.run(Execution::kMultithreaded);
  EXPECT_EQ(pipeline.output(2), (std::vector<int>{3, 6, 9}));
}

TEST(PipelineTest, ReadingLaterStageIsRejected) {
  Pipeline<int> pipeline;
  pipeline.add_stage(1, [](Pipeline<int>::Context& ctx) {
    EXPECT_THROW(ctx.read(0, 0), std::invalid_argument);  // self-read
    ctx.emit(1);
  });
  pipeline.run(Execution::kMultithreaded);
}

TEST(PipelineTest, SequentialPolicyMatchesMultithreaded) {
  auto build_and_run = [](Execution policy) {
    Pipeline<int> pipeline;
    pipeline.add_stage(4, [](Pipeline<int>::Context& ctx) {
      for (int i = 0; i < 4; ++i) ctx.emit(i * i);
    });
    pipeline.add_stage(4, [](Pipeline<int>::Context& ctx) {
      for (std::size_t i = 0; i < 4; ++i) ctx.emit(ctx.read(0, i) + 1);
    });
    pipeline.run(policy);
    return pipeline.output(1);
  };
  EXPECT_EQ(build_and_run(Execution::kSequential),
            build_and_run(Execution::kMultithreaded));
}

}  // namespace
}  // namespace monotonic
