// Deterministic-schedule simulation: scenario sweeps, determinism,
// shrinking, and the harness's own self-validation models.
//
// Seed budgets here are deliberately modest (the TSan job runs the
// full ctest suite at 5-15x slowdown); the broad 2000-seed sweeps run
// in the dedicated CI `sim` job through the sim_explorer CLI.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "monotonic/core/batching_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/engine_env.hpp"
#include "monotonic/sim/sim_explorer.hpp"
#include "monotonic/sim/sim_scenarios.hpp"

// A failed simulation run intentionally LEAKS its counters: every
// virtual thread was unwound mid-operation, so destructors would fire
// the "destroyed with suspended waiters" abort.  The expect_failure
// model scenarios below make such runs on purpose; teach LeakSanitizer
// (the CI asan job runs this binary) that those leaks are the design.
extern "C" const char* __lsan_default_suppressions() {
  return "leak:monotonic::sim::\nleak:monotonic::BasicCounter\n";
}

namespace {

using namespace monotonic;
using namespace monotonic::sim;

constexpr std::uint64_t kBaseSeed = 1;
constexpr std::size_t kSweepSeeds = 60;    // per invariant scenario
constexpr std::size_t kModelSeeds = 300;   // budget to find a model's bug

// ---------------------------------------------------------------------------
// Every registered scenario, swept: invariant scenarios must survive
// all seeds; model scenarios must fail within the budget.
// ---------------------------------------------------------------------------

class ScenarioSweep : public ::testing::TestWithParam<const SimScenario*> {};

TEST_P(ScenarioSweep, HoldsOrFindsItsBug) {
  const SimScenario& s = *GetParam();
  if (s.expect_failure) {
    ExploreResult r = explore(s, kBaseSeed, kModelSeeds);
    ASSERT_TRUE(r.found_failure)
        << "model scenario '" << s.name << "' survived " << kModelSeeds
        << " seeds: the harness has lost the ability to find this "
           "known bug";
    // The found failure must replay deterministically from its seed.
    SimOutcome replay = run_once(s, r.failing_seed);
    EXPECT_TRUE(replay.failed) << replay_command(s, r.failing_seed);
    EXPECT_EQ(replay.message, r.outcome.message);
    EXPECT_EQ(replay.trace, r.outcome.trace);
    // And the shrunk trace must still reproduce it.
    SimOutcome forced = run_once(s, r.failing_seed, &r.shrunk_trace);
    EXPECT_TRUE(forced.failed) << "shrunk trace no longer fails";
  } else {
    ExploreResult r = explore(s, kBaseSeed, kSweepSeeds);
    EXPECT_FALSE(r.found_failure) << describe_failure(s, r);
  }
}

std::vector<const SimScenario*> all_scenarios() {
  std::vector<const SimScenario*> out;
  for (const auto& s : sim_scenarios()) out.push_back(&s);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sim, ScenarioSweep,
                         ::testing::ValuesIn(all_scenarios()),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

// ---------------------------------------------------------------------------
// Simulator properties
// ---------------------------------------------------------------------------

TEST(SimDeterminism, SameSeedSameRun) {
  const SimScenario* s = find_scenario("boundary_blocking");
  ASSERT_NE(s, nullptr);
  for (std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    SimOutcome a = run_once(*s, seed);
    SimOutcome b = run_once(*s, seed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.end_ns, b.end_ns);
  }
}

TEST(SimDeterminism, DifferentSeedsExploreDifferentSchedules) {
  const SimScenario* s = find_scenario("boundary_blocking");
  ASSERT_NE(s, nullptr);
  SimOutcome a = run_once(*s, 1);
  bool any_different = false;
  for (std::uint64_t seed = 2; seed <= 12; ++seed) {
    if (run_once(*s, seed).trace != a.trace) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different) << "11 seeds produced identical schedules";
}

TEST(SimDeterminism, ForcedTraceReplaysExactly) {
  const SimScenario* s = find_scenario("striped_two_waiters");
  ASSERT_NE(s, nullptr);
  SimOutcome free_run = run_once(*s, 42);
  ASSERT_FALSE(free_run.failed);
  SimOutcome forced = run_once(*s, 42, &free_run.trace);
  EXPECT_EQ(forced.trace, free_run.trace);
  EXPECT_EQ(forced.end_ns, free_run.end_ns);
}

TEST(SimVirtualTime, HourLongWaitsCostNothing) {
  const SimScenario* s = find_scenario("poison_timed_waiter_blocking");
  ASSERT_NE(s, nullptr);
  const auto wall_start = std::chrono::steady_clock::now();
  ExploreResult r = explore(*s, kBaseSeed, 20);
  const auto wall =
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - wall_start);
  EXPECT_FALSE(r.found_failure) << describe_failure(*s, r);
  // 20 runs, each containing a CheckFor(1h): virtual time is free.
  EXPECT_LT(wall.count(), 60) << "virtual time leaked into wall clock";
}

TEST(SimCorpus, ParserHandlesCommentsAndBlanks) {
  const std::vector<std::uint64_t> seeds = parse_seed_corpus(
      "# regression seeds\n"
      "34\n"
      "\n"
      "  8   # striped_two_waiters\n"
      "12345\n");
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{34, 8, 12345}));
}

// ---------------------------------------------------------------------------
// Satellite: the portable timed-wait fallback clamps its final sleep
// to the remaining time instead of oversleeping a full quantum.
// ---------------------------------------------------------------------------

TEST(PollWaitUntil, TimeoutDoesNotOvershootByAQuantum) {
  std::atomic<std::uint32_t> word{0};
  // 10ms deadline with a 50ms quantum: the pre-clamp code slept 50ms
  // minimum; the clamped loop must come back close to the deadline.
  const auto start = std::chrono::steady_clock::now();
  const bool changed = monotonic::detail::poll_wait_until(
      &word, 0, start + std::chrono::milliseconds(10),
      std::chrono::milliseconds(50));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(changed);
  EXPECT_GE(elapsed, std::chrono::milliseconds(10));
  // Generous CI margin, still far below the 50ms quantum.
  EXPECT_LT(elapsed, std::chrono::milliseconds(40))
      << "poll_wait_until overslept its deadline";
}

TEST(PollWaitUntil, ReturnsTrueWhenValueChanges) {
  std::atomic<std::uint32_t> word{0};
  std::thread flipper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    word.store(1, std::memory_order_release);
  });
  const bool changed = monotonic::detail::poll_wait_until(
      &word, 0, std::chrono::steady_clock::now() + std::chrono::seconds(10));
  flipper.join();
  EXPECT_TRUE(changed);
}

TEST(PollWaitUntil, ExpiredDeadlineReturnsImmediately) {
  std::atomic<std::uint32_t> word{0};
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(monotonic::detail::poll_wait_until(
      &word, 0, start - std::chrono::milliseconds(1)));
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(100));
}

// ---------------------------------------------------------------------------
// Satellite: BatchingIncrementer's destructor flush is noexcept-safe.
// ---------------------------------------------------------------------------

// A counter whose Increment always throws — the worst case a
// destructor-time flush can meet.
struct ThrowingCounter {
  void Increment(counter_value_t) { throw std::runtime_error("boom"); }
  void Check(counter_value_t) {}
  counter_value_t debug_value() const { return 0; }
};

TEST(BatchingIncrementer, DestructorSwallowsFlushFailure) {
  ThrowingCounter target;
  // Must not std::terminate; the loss must be observable via dropped().
  BatchingIncrementer<ThrowingCounter> inc(target, 100);
  inc.Increment(7);
  EXPECT_EQ(inc.pending(), 7u);
  EXPECT_EQ(inc.dropped(), 0u);
  // Destructor runs at scope exit: flush throws, gets swallowed.
}

TEST(BatchingIncrementer, LiveFlushStillPropagatesAndKeepsPending) {
  ThrowingCounter target;
  BatchingIncrementer<ThrowingCounter> inc(target, 1000);
  inc.Increment(5);
  EXPECT_THROW(inc.flush(), std::runtime_error);
  EXPECT_EQ(inc.pending(), 5u) << "failed flush must not lose the amount";
  EXPECT_EQ(inc.dropped(), 0u);
}

TEST(BatchingIncrementer, DropCountSurvivesUntilDestruction) {
  ThrowingCounter target;
  auto* inc = new BatchingIncrementer<ThrowingCounter>(target, 1000);
  inc->Increment(9);
  EXPECT_THROW(inc->flush(), std::runtime_error);
  delete inc;  // swallows, drops 9 — verified not to terminate
}

TEST(BatchingIncrementer, OrderlyDestructionFlushesEverything) {
  Counter c;
  {
    BatchingIncrementer<Counter> inc(c, 10);
    inc.Increment(3);  // below batch: stays pending
    EXPECT_EQ(c.debug_value(), 0u);
  }
  EXPECT_EQ(c.debug_value(), 3u) << "orderly destruction must flush";
}

}  // namespace
