// patterns_extra_test.cpp — the counter-built barrier, increment
// batching, and the 2-D ragged strips protocol in isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "monotonic/core/batching_counter.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/patterns/counter_barrier.hpp"
#include "monotonic/patterns/ragged_grid.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

// Same harness shape as barrier_test: nobody may pass round r before
// all parties arrived at round r.
TEST(CounterBarrierTest, SynchronizesEveryRound) {
  constexpr std::size_t kParties = 4;
  constexpr std::size_t kRounds = 25;
  CounterBarrier<> barrier(kParties);
  std::vector<std::atomic<std::size_t>> arrivals(kRounds);

  multithreaded_for(
      std::size_t{0}, kParties, std::size_t{1},
      [&](std::size_t) {
        auto participant = barrier.participant();
        for (std::size_t r = 0; r < kRounds; ++r) {
          arrivals[r].fetch_add(1, std::memory_order_relaxed);
          participant.Pass();
          EXPECT_EQ(arrivals[r].load(std::memory_order_relaxed), kParties);
        }
        EXPECT_EQ(participant.rounds(), kRounds);
      },
      Execution::kMultithreaded);

  // One counter carries the whole history: N*rounds arrivals.
  barrier.counter().Check(kParties * kRounds);
}

TEST(CounterBarrierTest, SinglePartyNeverBlocks) {
  CounterBarrier<> barrier(1);
  auto participant = barrier.participant();
  for (int i = 0; i < 1000; ++i) participant.Pass();
  EXPECT_EQ(participant.rounds(), 1000u);
}

TEST(CounterBarrierTest, ManyRoundsOneSyncObject) {
  // The §8 pitch: a sense-reversing barrier resets per round; the
  // counter barrier's value monotonically encodes every round, so the
  // structure after 100 rounds is just "value == parties*100".
  constexpr std::size_t kParties = 3;
  CounterBarrier<> barrier(kParties);
  multithreaded_for(
      std::size_t{0}, kParties, std::size_t{1},
      [&](std::size_t) {
        auto p = barrier.participant();
        for (int r = 0; r < 100; ++r) p.Pass();
      },
      Execution::kMultithreaded);
  auto snap = barrier.counter().debug_snapshot();
  EXPECT_EQ(snap.value, 300u);
  EXPECT_TRUE(snap.wait_levels.empty());
}

TEST(CounterBarrierTest, WorksWithAnyCounterImplementation) {
  CounterBarrier<SingleCvCounter> barrier(2);
  multithreaded_block(
      [&] {
        auto p = barrier.participant();
        p.Pass();
        p.Pass();
      },
      [&] {
        auto p = barrier.participant();
        p.Pass();
        p.Pass();
      });
}

TEST(CounterBarrierTest, ZeroPartiesRejected) {
  EXPECT_THROW(CounterBarrier<> b(0), std::invalid_argument);
}

// ------------------------------------------------------------ batching

TEST(BatchingIncrementerTest, PushesInBatches) {
  Counter counter;
  {
    BatchingIncrementer<> inc(counter, 10);
    for (int i = 0; i < 25; ++i) inc.Increment(1);
    EXPECT_EQ(counter.debug_snapshot().value, 20u);  // two full batches
    EXPECT_EQ(inc.pending(), 5u);
  }  // destructor flushes the remainder
  EXPECT_EQ(counter.debug_snapshot().value, 25u);
  EXPECT_EQ(counter.stats().increments, 3u);  // 10 + 10 + 5
}

TEST(BatchingIncrementerTest, LargeAmountsFlushImmediately) {
  Counter counter;
  BatchingIncrementer<> inc(counter, 8);
  inc.Increment(100);  // >= batch: flushed at once
  EXPECT_EQ(counter.debug_snapshot().value, 100u);
  EXPECT_EQ(inc.pending(), 0u);
}

TEST(BatchingIncrementerTest, ManualFlush) {
  Counter counter;
  BatchingIncrementer<> inc(counter, 1000);
  inc.Increment(3);
  EXPECT_EQ(counter.debug_snapshot().value, 0u);
  inc.flush();
  EXPECT_EQ(counter.debug_snapshot().value, 3u);
}

TEST(BatchingIncrementerTest, WakesWaitersOnFlush) {
  Counter counter;
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    counter.Check(5);
    passed.store(true);
  });
  BatchingIncrementer<> inc(counter, 5);
  for (int i = 0; i < 4; ++i) inc.Increment(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(passed.load());
  inc.Increment(1);  // completes the batch -> flush -> wake
  waiter.join();
  EXPECT_TRUE(passed.load());
}

TEST(BatchingIncrementerTest, PerProducerBatching) {
  // Two producers, each with its own incrementer and batch size; the
  // shared counter sees the exact total.
  Counter counter;
  multithreaded_block(
      [&] {
        BatchingIncrementer<> inc(counter, 7);
        for (int i = 0; i < 100; ++i) inc.Increment(1);
      },
      [&] {
        BatchingIncrementer<> inc(counter, 31);
        for (int i = 0; i < 100; ++i) inc.Increment(1);
      });
  counter.Check(200);  // hangs if anything was lost
  EXPECT_EQ(counter.debug_snapshot().value, 200u);
}

// --------------------------------------------------------- RaggedStrips

TEST(RaggedStripsTest, ProtocolLevelsAreCorrect) {
  RaggedStrips<> sync(3);
  // Strip 1's neighbours are 0 and 2.  Drive strip 0 and 2 through a
  // full step so strip 1's waits at t=1 are satisfied.
  sync.done_reading(0);   // c[0] = 1
  sync.done_writing(0);   // c[0] = 2
  sync.done_reading(2);   // c[2] = 1
  sync.done_writing(2);   // c[2] = 2
  sync.wait_neighbours_written(1, 2);  // needs c >= 2: passes
  sync.wait_neighbours_read(1, 1);     // needs c >= 1: passes
}

TEST(RaggedStripsTest, EdgeStripsSkipMissingNeighbours) {
  RaggedStrips<> sync(2);
  // Strip 0 has no left neighbour; only strip 1's counter matters.
  sync.done_reading(1);
  sync.done_writing(1);
  sync.wait_neighbours_written(0, 2);  // would hang if it waited on -1
}

TEST(RaggedStripsTest, PreloadConstantCoversAllSteps) {
  RaggedStrips<> sync(3);
  sync.preload_constant(0, 50);
  sync.preload_constant(2, 50);
  for (std::size_t t = 1; t <= 50; ++t) {
    sync.wait_neighbours_written(1, t);
    sync.done_reading(1);
    sync.wait_neighbours_read(1, t);
    sync.done_writing(1);
  }
}

}  // namespace
}  // namespace monotonic
