// trace_test.cpp — the tracing subsystem: recording, rings, merge
// ordering, Chrome JSON shape, and the TracedCounter wrapper.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "monotonic/core/traced_counter.hpp"
#include "monotonic/support/trace.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.record(TraceEventKind::kInstant, "x", 1);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, RecordsEventsWhenEnabled) {
  Tracer tracer;
  tracer.enable();
  tracer.record(TraceEventKind::kInstant, "alpha", 7);
  tracer.record(TraceEventKind::kIncrement, "beta", 3);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "alpha");
  EXPECT_EQ(events[0].arg, 7u);
  EXPECT_EQ(events[1].kind, TraceEventKind::kIncrement);
}

TEST(TracerTest, EventsAreTimestampSorted) {
  Tracer tracer;
  tracer.enable();
  multithreaded_for(0, 4, 1, [&](int i) {
    for (int k = 0; k < 20; ++k) {
      tracer.record(TraceEventKind::kInstant, "tick",
                    static_cast<std::uint64_t>(i));
    }
  });
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 80u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].timestamp_ns, events[i].timestamp_ns);
  }
}

TEST(TracerTest, PerThreadRingsGetDistinctIds) {
  Tracer tracer;
  tracer.enable();
  multithreaded_block(
      [&] { tracer.record(TraceEventKind::kInstant, "a", 0); },
      [&] { tracer.record(TraceEventKind::kInstant, "b", 0); });
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread, events[1].thread);
}

TEST(TracerTest, RingOverwritesOldest) {
  Tracer tracer(/*ring_capacity=*/8);
  tracer.enable();
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.record(TraceEventKind::kInstant, "x", i);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().arg, 12u);  // oldest retained
  EXPECT_EQ(events.back().arg, 19u);
}

TEST(TracerTest, ClearDropsEverything) {
  Tracer tracer;
  tracer.enable();
  tracer.record(TraceEventKind::kInstant, "x", 0);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, SpanEmitsBeginEnd) {
  Tracer tracer;
  tracer.enable();
  {
    Tracer::Span span(tracer, "phase-1");
    tracer.record(TraceEventKind::kInstant, "inside", 0);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kSpanBegin);
  EXPECT_EQ(events[2].kind, TraceEventKind::kSpanEnd);
}

TEST(TracerTest, ChromeJsonShape) {
  Tracer tracer;
  tracer.enable();
  {
    Tracer::Span span(tracer, "work");
    tracer.record(TraceEventKind::kInstant, "mark", 5);
  }
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TracedCounterTest, RecordsIncrementAndFastCheck) {
  Tracer tracer;
  tracer.enable();
  TracedCounter<> counter("jobs", tracer);
  counter.Increment(2);
  counter.Check(1);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kIncrement);
  EXPECT_EQ(events[0].arg, 2u);
  EXPECT_EQ(events[1].kind, TraceEventKind::kCheckFast);
  EXPECT_STREQ(events[1].name, "jobs");
}

TEST(TracedCounterTest, RecordsResumeAfterParking) {
  Tracer tracer;
  tracer.enable();
  TracedCounter<> counter("gate", tracer);
  multithreaded_block(
      [&] { counter.Check(1); },
      [&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        counter.Increment(1);
      });
  bool saw_resume = false;
  for (const auto& e : tracer.events()) {
    if (e.kind == TraceEventKind::kResume) saw_resume = true;
  }
  EXPECT_TRUE(saw_resume);
}

TEST(TracedCounterTest, GlobalTracerDefaultsOff) {
  // Using the global tracer while disabled must cost nothing visible.
  TracedCounter<> counter("quiet");
  counter.Increment(1);
  counter.Check(1);
  // No assertion on global state (other tests may use it); the real
  // check is that nothing crashed and nothing leaked (ASan/TSan runs).
  SUCCEED();
}

}  // namespace
}  // namespace monotonic
