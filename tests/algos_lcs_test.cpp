// algos_lcs_test.cpp — the LCS wavefront workload (counter-driven 2-D
// dataflow, extension of §4's pattern).

#include <gtest/gtest.h>

#include <string>

#include "monotonic/algos/lcs.hpp"

namespace monotonic {
namespace {

TEST(LcsSequential, HandComputedCases) {
  EXPECT_EQ(lcs_sequential("abcde", "ace"), 3u);
  EXPECT_EQ(lcs_sequential("abc", "abc"), 3u);
  EXPECT_EQ(lcs_sequential("abc", "def"), 0u);
  EXPECT_EQ(lcs_sequential("", "abc"), 0u);
  EXPECT_EQ(lcs_sequential("abc", ""), 0u);
  EXPECT_EQ(lcs_sequential("aggtab", "gxtxayb"), 4u);  // "gtab"
}

TEST(LcsSequential, SubsequenceOfItself) {
  const auto s = random_string(200, 4, 1);
  EXPECT_EQ(lcs_sequential(s, s), s.size());
}

TEST(RandomString, DeterministicAndInAlphabet) {
  const auto a = random_string(100, 3, 7);
  const auto b = random_string(100, 3, 7);
  EXPECT_EQ(a, b);
  for (char c : a) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'c');
  }
}

struct LcsParam {
  std::size_t len_a;
  std::size_t len_b;
  std::size_t threads;
  std::size_t block_rows;
  std::size_t block_cols;
};

class LcsWavefront : public ::testing::TestWithParam<LcsParam> {};

TEST_P(LcsWavefront, MatchesSequential) {
  const auto p = GetParam();
  const auto a = random_string(p.len_a, 4, 11);
  const auto b = random_string(p.len_b, 4, 22);
  EXPECT_EQ(lcs_wavefront(a, b, p.threads, p.block_rows, p.block_cols),
            lcs_sequential(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LcsWavefront,
    ::testing::Values(LcsParam{1, 1, 1, 1, 1}, LcsParam{10, 10, 2, 3, 3},
                      LcsParam{100, 80, 4, 16, 16},
                      LcsParam{200, 200, 2, 64, 32},
                      LcsParam{128, 256, 8, 32, 64},
                      LcsParam{257, 129, 3, 50, 50}),
    [](const ::testing::TestParamInfo<LcsParam>& info) {
      return "a" + std::to_string(info.param.len_a) + "b" +
             std::to_string(info.param.len_b) + "_t" +
             std::to_string(info.param.threads) + "_r" +
             std::to_string(info.param.block_rows) + "c" +
             std::to_string(info.param.block_cols);
    });

TEST(LcsWavefrontExtra, EmptyInputsShortCircuit) {
  EXPECT_EQ(lcs_wavefront("", "abc", 4), 0u);
  EXPECT_EQ(lcs_wavefront("abc", "", 4), 0u);
}

TEST(LcsWavefrontExtra, DeterministicAcrossRuns) {
  const auto a = random_string(150, 4, 33);
  const auto b = random_string(150, 4, 44);
  const auto first = lcs_wavefront(a, b, 4, 20, 20);
  for (int run = 0; run < 5; ++run) {
    ASSERT_EQ(lcs_wavefront(a, b, 4, 20, 20), first);
  }
}

}  // namespace
}  // namespace monotonic
