// bounded_broadcast_test.cpp — streaming broadcast through a ring:
// forward (published) and backward (consumed) counter flow control.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <memory>

#include "monotonic/determinacy/checked.hpp"
#include "monotonic/determinacy/checked_array.hpp"
#include "monotonic/determinacy/tracked_condition.hpp"
#include "monotonic/patterns/bounded_broadcast.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

TEST(BoundedBroadcastTest, StreamLongerThanRing) {
  // 10k items through an 8-slot ring: impossible unless slots are
  // recycled, so data integrity proves both flow directions work.
  constexpr std::size_t kItems = 10000;
  BoundedBroadcast<std::uint64_t> ring(8, 2);
  std::atomic<std::uint64_t> sums[2] = {{0}, {0}};

  multithreaded_block(
      [&] {
        auto writer = ring.writer();
        for (std::size_t i = 0; i < kItems; ++i) writer.publish(i * 7);
      },
      [&] {
        auto reader = ring.reader(0);
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < kItems; ++i) {
          const auto v = reader.consume();
          ASSERT_EQ(v, i * 7);
          sum += v;
        }
        sums[0] = sum;
      },
      [&] {
        auto reader = ring.reader(1);
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < kItems; ++i) sum += reader.consume();
        sums[1] = sum;
      });

  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kItems; ++i) expected += i * 7;
  EXPECT_EQ(sums[0].load(), expected);
  EXPECT_EQ(sums[1].load(), expected);
}

TEST(BoundedBroadcastTest, WriterBlocksOnSlowestReader) {
  BoundedBroadcast<int> ring(4, 1);
  std::atomic<std::size_t> published{0};
  std::jthread writer_thread([&] {
    auto writer = ring.writer();
    for (int i = 0; i < 10; ++i) {
      writer.publish(i);
      published.store(writer.published());
    }
  });
  // No reader yet: the writer can fill the ring (4) but not overwrite
  // slot 0 for item 4.
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(published.load(), 4u);
  auto reader = ring.reader(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(reader.consume(), i);
  writer_thread.join();
  EXPECT_EQ(published.load(), 10u);
}

TEST(BoundedBroadcastTest, FastReaderWaitsForWriter) {
  BoundedBroadcast<int> ring(4, 1);
  std::atomic<int> got{-1};
  std::jthread reader_thread([&] {
    auto reader = ring.reader(0);
    got.store(reader.consume());
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(got.load(), -1);
  auto writer = ring.writer();
  writer.publish(99);
  reader_thread.join();
  EXPECT_EQ(got.load(), 99);
}

TEST(BoundedBroadcastTest, ReadersAtDifferentSpeeds) {
  constexpr std::size_t kItems = 500;
  BoundedBroadcast<std::size_t> ring(16, 3);
  std::atomic<int> ok{0};
  std::vector<std::function<void()>> bodies;
  bodies.emplace_back([&] {
    auto writer = ring.writer();
    for (std::size_t i = 0; i < kItems; ++i) writer.publish(i);
  });
  for (std::size_t r = 0; r < 3; ++r) {
    bodies.emplace_back([&, r] {
      auto reader = ring.reader(r);
      for (std::size_t i = 0; i < kItems; ++i) {
        if (reader.consume() != i) return;
        if (i % (10 + r * 7) == 0) std::this_thread::yield();
      }
      ok.fetch_add(1);
    });
  }
  multithreaded(std::move(bodies), Execution::kMultithreaded);
  EXPECT_EQ(ok.load(), 3);
}

TEST(BoundedBroadcastTest, SingleSlotRingFullySerializes) {
  BoundedBroadcast<int> ring(1, 1);
  multithreaded_block(
      [&] {
        auto writer = ring.writer();
        for (int i = 0; i < 100; ++i) writer.publish(i);
      },
      [&] {
        auto reader = ring.reader(0);
        for (int i = 0; i < 100; ++i) ASSERT_EQ(reader.consume(), i);
      });
}

TEST(BoundedBroadcastTest, InvalidConstructionRejected) {
  EXPECT_THROW((BoundedBroadcast<int>(0, 1)), std::invalid_argument);
  EXPECT_THROW((BoundedBroadcast<int>(4, 0)), std::invalid_argument);
  BoundedBroadcast<int> ring(4, 2);
  EXPECT_THROW(ring.reader(2), std::invalid_argument);
}

// --------------------------------------------------- TrackedCondition

TEST(TrackedConditionTest, SetThenCheckOrdersAccesses) {
  RaceDetector detector;
  TrackedCondition cond(detector);
  Checked<int> data(detector, "data");
  multithreaded_block(
      [&] {
        data.write(5);
        cond.Set();
      },
      [&] {
        cond.Check();
        EXPECT_EQ(data.read(), 5);
      });
  EXPECT_EQ(detector.race_count(), 0u);
}

TEST(TrackedConditionTest, UnsynchronizedAccessStillFlagged) {
  RaceDetector detector;
  TrackedCondition cond(detector);
  Checked<int> data(detector, "data");
  multithreaded_block(
      [&] {
        cond.Set();
        data.write(5);  // BUG: write after Set
      },
      [&] {
        cond.Check();
        (void)data.read();
      });
  EXPECT_GT(detector.race_count(), 0u);
}

// The §4.4 condition-array program, certified (companion to the §4.5
// certification in determinacy_programs_test.cpp).
TEST(TrackedConditionTest, ConditionArrayFloydWarshallIsClean) {
  RaceDetector detector;
  constexpr std::size_t kN = 5;
  constexpr std::size_t kThreads = 2;
  CheckedArray<long long> path(detector, "path", kN * kN);
  CheckedArray<long long> k_row(detector, "kRow", kN * kN);
  std::vector<std::unique_ptr<TrackedCondition>> k_done;
  for (std::size_t k = 0; k < kN; ++k) {
    k_done.push_back(std::make_unique<TrackedCondition>(detector));
  }

  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      path.write(i * kN + j,
                 i == j ? 0
                        : static_cast<long long>((i * 13 + j * 7) % 9 + 1));
    }
  }
  for (std::size_t j = 0; j < kN; ++j) {
    k_row.write(j, path.read(j));
  }
  k_done[0]->Set();
  const VectorClock fork_clock = detector.thread_clock();

  multithreaded_for(
      std::size_t{0}, kThreads, std::size_t{1},
      [&](std::size_t t) {
        detector.acquire(fork_clock);
        const std::size_t begin = t * kN / kThreads;
        const std::size_t end = (t + 1) * kN / kThreads;
        for (std::size_t k = 0; k < kN; ++k) {
          k_done[k]->Check();
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t j = 0; j < kN; ++j) {
              const long long candidate =
                  path.read(i * kN + k) + k_row.read(k * kN + j);
              if (candidate < path.read(i * kN + j)) {
                path.write(i * kN + j, candidate);
              }
            }
            if (i == k + 1) {
              for (std::size_t j = 0; j < kN; ++j) {
                k_row.write((k + 1) * kN + j, path.read((k + 1) * kN + j));
              }
              k_done[k + 1]->Set();
            }
          }
        }
      },
      Execution::kMultithreaded);

  EXPECT_EQ(detector.race_count(), 0u)
      << "§4.4's condition-array program also satisfies §6's conditions";
}

}  // namespace
}  // namespace monotonic
