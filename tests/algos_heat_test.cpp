// algos_heat_test.cpp — §5.1's heat simulation: barrier and ragged
// variants must match the sequential reference bit-for-bit (E2).

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "monotonic/algos/heat1d.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {
namespace {

HeatOptions steps_only(std::size_t steps) {
  HeatOptions options;
  options.steps = steps;
  return options;
}

std::vector<double> random_rod(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> state(n);
  for (auto& s : state) s = rng.uniform01() * 100.0;
  return state;
}

TEST(HeatSequential, UniformRodStaysUniform) {
  std::vector<double> state(8, 25.0);
  const auto result = heat_sequential(state, steps_only(50));
  for (double s : result) EXPECT_DOUBLE_EQ(s, 25.0);
}

TEST(HeatSequential, BoundariesNeverChange) {
  auto state = random_rod(16, 1);
  state[0] = -5.0;
  state[15] = 99.0;
  const auto result = heat_sequential(state, steps_only(200));
  EXPECT_DOUBLE_EQ(result[0], -5.0);
  EXPECT_DOUBLE_EQ(result[15], 99.0);
}

TEST(HeatSequential, ConvergesTowardLinearProfile) {
  // Heat equation steady state on a rod with fixed ends is linear.
  std::vector<double> state(9, 0.0);
  state[8] = 80.0;
  const auto result = heat_sequential(state, steps_only(5000));
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(result[i], 10.0 * static_cast<double>(i), 0.01);
  }
}

TEST(HeatSequential, ZeroStepsIsIdentity) {
  const auto state = random_rod(10, 2);
  EXPECT_EQ(heat_sequential(state, steps_only(0)), state);
}

struct HeatParam {
  std::size_t cells;
  std::size_t steps;
};

class HeatEquivalence : public ::testing::TestWithParam<HeatParam> {};

TEST_P(HeatEquivalence, BarrierMatchesSequentialExactly) {
  const auto p = GetParam();
  const auto initial = random_rod(p.cells, 100 + p.cells);
  const HeatOptions options = steps_only(p.steps);
  EXPECT_EQ(heat_barrier(initial, options), heat_sequential(initial, options));
}

TEST_P(HeatEquivalence, RaggedMatchesSequentialExactly) {
  const auto p = GetParam();
  const auto initial = random_rod(p.cells, 200 + p.cells);
  const HeatOptions options = steps_only(p.steps);
  EXPECT_EQ(heat_ragged(initial, options), heat_sequential(initial, options));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeatEquivalence,
    ::testing::Values(HeatParam{3, 10}, HeatParam{4, 50}, HeatParam{8, 100},
                      HeatParam{16, 50}, HeatParam{24, 25}),
    [](const ::testing::TestParamInfo<HeatParam>& info) {
      return "n" + std::to_string(info.param.cells) + "_s" +
             std::to_string(info.param.steps);
    });

TEST(HeatEquivalenceExtra, ImbalancedCellsStillExact) {
  // One pathological cell stalls every step; results must not change
  // (only timing does — that is E2's point).
  const auto initial = random_rod(10, 3);
  HeatOptions skewed = steps_only(30);
  skewed.cell_hook = [](std::size_t i, std::size_t) {
    if (i == 5) std::this_thread::yield();
  };
  const HeatOptions plain = steps_only(30);
  EXPECT_EQ(heat_ragged(initial, skewed), heat_sequential(initial, plain));
}

TEST(HeatEquivalenceExtra, DeterministicAcrossRuns) {
  const auto initial = random_rod(12, 4);
  const HeatOptions options = steps_only(40);
  const auto first = heat_ragged(initial, options);
  for (int run = 0; run < 5; ++run) {
    ASSERT_EQ(heat_ragged(initial, options), first);
  }
}

TEST(HeatEquivalenceExtra, OtherCounterImplementations) {
  const auto initial = random_rod(8, 5);
  const HeatOptions options = steps_only(25);
  const auto expected = heat_sequential(initial, options);
  EXPECT_EQ(heat_ragged_with<SingleCvCounter>(initial, options), expected);
  EXPECT_EQ(heat_ragged_with<SpinCounter>(initial, options), expected);
}

TEST(HeatValidation, TooFewCellsRejected) {
  EXPECT_THROW(heat_sequential({1.0, 2.0}, steps_only(1)),
               std::invalid_argument);
  EXPECT_THROW(heat_ragged({1.0}, steps_only(1)), std::invalid_argument);
}

}  // namespace
}  // namespace monotonic
