// hybrid_counter_test.cpp — targeted tests for HybridCounter's tricky
// paths: the lock-free fast paths, the waiters-flag protocol, stack
// wait-node lifetime with co-waiters, and missed-wakeup hammering.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

TEST(HybridCounter_, FastPathsNeverSuspend) {
  HybridCounter c;
  for (int i = 0; i < 1000; ++i) c.Increment(1);
  for (counter_value_t l = 0; l <= 1000; l += 100) c.Check(l);
  const auto s = c.stats();
  EXPECT_EQ(s.suspensions, 0u);
  EXPECT_EQ(s.fast_checks, 11u);
  EXPECT_EQ(c.debug_value(), 1000u);
}

TEST(HybridCounter_, SlowPathWakesWaiter) {
  HybridCounter c;
  std::atomic<bool> passed{false};
  std::jthread waiter([&] {
    c.Check(10);
    passed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(passed.load());
  c.Increment(10);
  waiter.join();
  EXPECT_TRUE(passed.load());
  EXPECT_EQ(c.stats().suspensions, 1u);
}

TEST(HybridCounter_, CoWaitersOnOneStackNode) {
  // Several threads wait at the SAME level: they share the first
  // arriver's stack node; the owner must outlive every co-waiter.
  HybridCounter c;
  constexpr int kWaiters = 8;
  std::atomic<int> released{0};
  {
    std::vector<std::jthread> waiters;
    for (int i = 0; i < kWaiters; ++i) {
      waiters.emplace_back([&] {
        c.Check(5);
        released.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(30ms);  // let them pile onto one node
    EXPECT_EQ(released.load(), 0);
    c.Increment(5);
  }
  EXPECT_EQ(released.load(), kWaiters);
}

TEST(HybridCounter_, DistinctLevelsDistinctNodes) {
  HybridCounter c;
  std::atomic<int> released{0};
  {
    std::vector<std::jthread> waiters;
    for (counter_value_t level : {3u, 1u, 4u, 1u, 5u, 9u, 2u, 6u}) {
      waiters.emplace_back([&c, &released, level] {
        c.Check(level);
        released.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(30ms);
    c.Increment(9);  // one wave covers all levels
  }
  EXPECT_EQ(released.load(), 8);
}

TEST(HybridCounter_, FlagClearsAfterDrain) {
  // After all waiters drain, increments must return to the fast path:
  // notifies stop growing.
  HybridCounter c;
  {
    std::jthread waiter([&] { c.Check(1); });
    std::this_thread::sleep_for(10ms);
    c.Increment(1);
  }
  const auto notifies_after_drain = c.stats().notifies;
  for (int i = 0; i < 100; ++i) c.Increment(1);
  EXPECT_EQ(c.stats().notifies, notifies_after_drain)
      << "post-drain increments must not take the slow path";
}

TEST(HybridCounter_, MissedWakeupHammer) {
  // Tight races between Check's park decision and Increment's fast
  // path: any missed wakeup hangs this test (gtest timeout).
  for (int round = 0; round < 200; ++round) {
    HybridCounter c;
    multithreaded_block(
        [&] { c.Check(1); },
        [&] { c.Increment(1); });
  }
}

TEST(HybridCounter_, StaggeredProducersAndLevels) {
  for (int round = 0; round < 20; ++round) {
    HybridCounter c;
    constexpr counter_value_t kTotal = 300;
    std::atomic<int> done{0};
    multithreaded(
        {[&] {
           for (counter_value_t i = 0; i < kTotal / 2; ++i) c.Increment(1);
         },
         [&] {
           for (counter_value_t i = 0; i < kTotal / 2; ++i) c.Increment(1);
         },
         [&] {
           for (counter_value_t l = 10; l <= kTotal; l += 10) c.Check(l);
           done.fetch_add(1);
         },
         [&] {
           for (counter_value_t l = 7; l <= kTotal; l += 13) c.Check(l);
           done.fetch_add(1);
         }},
        Execution::kMultithreaded);
    ASSERT_EQ(done.load(), 2);
    ASSERT_EQ(c.debug_value(), kTotal);
  }
}

TEST(HybridCounter_, RangeChecks) {
  HybridCounter c;
  EXPECT_THROW(c.Increment(HybridCounter::kMaxValue + 1),
               std::invalid_argument);
  EXPECT_THROW(c.Check(HybridCounter::kMaxValue + 1), std::invalid_argument);
  c.Increment(HybridCounter::kMaxValue);
  EXPECT_THROW(c.Increment(1), std::invalid_argument);
  c.Check(HybridCounter::kMaxValue);
}

TEST(HybridCounter_, ResetForPhaseReuse) {
  HybridCounter c;
  c.Increment(42);
  c.Reset();
  EXPECT_EQ(c.debug_value(), 0u);
  std::jthread waiter([&] { c.Check(2); });
  std::this_thread::sleep_for(5ms);
  c.Increment(2);
}

}  // namespace
}  // namespace monotonic
