// reduction_test.cpp — deterministic parallel tree reduction: fixed
// parenthesization, schedule invariance, non-associative payloads.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "monotonic/algos/accumulate.hpp"
#include "monotonic/patterns/reduction.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {
namespace {

TEST(TreeReduceSequential, KnownParenthesization) {
  // String concatenation makes the tree shape visible:
  // ((a b)(c d))((e f) g)
  const std::vector<std::string> v = {"a", "b", "c", "d", "e", "f", "g"};
  const auto out = tree_reduce_sequential(
      v, [](const std::string& a, const std::string& b) {
        return "(" + a + b + ")";
      });
  EXPECT_EQ(out, "(((ab)(cd))((ef)g))");
}

TEST(TreeReduceSequential, SingleElement) {
  EXPECT_EQ(tree_reduce_sequential(std::vector<int>{42}, std::plus<>{}), 42);
}

TEST(TreeReduceSequential, IntegerSumMatchesFold) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  EXPECT_EQ(tree_reduce_sequential(v, std::plus<>{}), 4950);
}

TEST(TreeReduce, MatchesSequentialTreeExactly) {
  const auto values = order_sensitive_values(97);  // odd length: tail paths
  const double expected =
      tree_reduce_sequential(values, std::plus<double>{});
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(tree_reduce(values, std::plus<double>{}, threads), expected)
        << threads << " threads";
  }
}

TEST(TreeReduce, DeterministicAcrossRuns) {
  const auto values = order_sensitive_values(64);
  const double first = tree_reduce(values, std::plus<double>{}, 4);
  for (int run = 0; run < 10; ++run) {
    ASSERT_EQ(tree_reduce(values, std::plus<double>{}, 4), first);
  }
}

TEST(TreeReduce, TreeOrderDiffersFromLeftFoldButIsFixed) {
  // For order-sensitive doubles the tree sum generally differs from the
  // left fold — that is fine; determinism is about being FIXED, not
  // about matching a particular order.
  const auto values = order_sensitive_values(128);
  const double tree = tree_reduce(values, std::plus<double>{}, 4);
  const double fold = sum_sequential(values);
  // They may coincide; what must hold is tree == tree on every config.
  EXPECT_EQ(tree, tree_reduce(values, std::plus<double>{}, 1));
  (void)fold;
}

TEST(TreeReduce, NonCommutativeOperationKeepsArgumentOrder) {
  const std::vector<std::string> v = {"x", "y", "z"};
  const auto combine = [](const std::string& a, const std::string& b) {
    return a + b;
  };
  EXPECT_EQ(tree_reduce(v, combine, 3), "xyz");
  EXPECT_EQ(tree_reduce(v, combine, 3),
            tree_reduce_sequential(v, combine));
}

TEST(TreeReduce, PowerOfTwoAndOddSizes) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 64u, 100u}) {
    std::vector<long long> v(n);
    long long expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<long long>(i * i);
      expected += v[i];
    }
    EXPECT_EQ(tree_reduce(v, std::plus<long long>{}, 4), expected)
        << "n=" << n;
  }
}

TEST(TreeReduce, EmptyRejected) {
  EXPECT_THROW(tree_reduce(std::vector<int>{}, std::plus<>{}, 2),
               std::invalid_argument);
  EXPECT_THROW(tree_reduce_sequential(std::vector<int>{}, std::plus<>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace monotonic
