// counter_resource_test.cpp — resource exhaustion and overload, over
// real threads.
//
// The resource-model claims under test (see basic_counter.hpp
// "Resource model" and wait_list.hpp):
//
//   * every allocation point inside Check/CheckFor/OnReach gives the
//     STRONG guarantee: an injected bad_alloc surfaces as
//     CounterResourceError and the counter is immediately usable —
//     proven by sweeping the failure across every allocation ordinal
//     until no allocation remains (the satellite-1 regression);
//   * "pooled[:N]" preallocation makes the steady state
//     allocation-free (pool_hits / pool_misses tell the story);
//   * bounded admission (max_waiters / max_levels) turns an overload
//     storm into the configured outcome — CounterOverloadedError,
//     the degraded relock-poll wait, or the admission gate — with no
//     thread ever left parked;
//   * the spec grammar round-trips all of the above.
//
// Fault injection comes from FaultEnvT<RealEngineEnv> (fault_env.hpp):
// the same injection code the deterministic sim scenarios use, here
// composed over real threads and the real clock.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/basic_counter.hpp"
#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/core/wait_policy.hpp"
#include "monotonic/sim/fault_env.hpp"

namespace {

using namespace monotonic;
using monotonic::sim::FaultPlan;
using monotonic::sim::FaultScope;
using monotonic::sim::RealFaultEnv;
using monotonic::sim::fault_state;

using FaultBlockingCounter = BasicCounter<BlockingWaitT<RealFaultEnv>>;
using FaultFutexCounter = BasicCounter<FutexWaitT<RealFaultEnv>>;
using FaultHybridCounter = BasicCounter<HybridWaitT<RealFaultEnv>>;

// Heap wait plane (waitplane=heap — wait_index.hpp) over the fault
// env: the allocation sweeps must also cover the index's extra sites
// (the level hash entry and the heap slot, beyond the node itself).
inline WaitListOptions heap_plane_options(std::size_t shards) {
  WaitListOptions o;
  o.wait_plane = WaitPlaneKind::kHeap;
  o.wait_shards = shards;
  return o;
}

template <typename C>
struct HeapPlane : C {
  HeapPlane() : C(heap_plane_options(2)) {}
};

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

TEST(CounterResource, ErrorHierarchy) {
  // Resource and overload failures must be catchable at every level a
  // caller might reasonably hold: exact type, CounterError, runtime.
  try {
    throw CounterResourceError("node allocation failed");
  } catch (const CounterError& e) {
    EXPECT_STREQ(e.what(), "node allocation failed");
  }
  try {
    throw CounterOverloadedError("admission rejected");
  } catch (const CounterError& e) {
    EXPECT_STREQ(e.what(), "admission rejected");
  }
  EXPECT_THROW(throw CounterResourceError("x"), std::runtime_error);
  EXPECT_THROW(throw CounterOverloadedError("x"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Pool stats: "pooled[:N]" means an allocation-free steady state
// ---------------------------------------------------------------------------

// One park-and-release round: a waiter parks at `level`, the main
// thread tops the counter up to it.
void park_release_round(AnyCounter& c, counter_value_t level) {
  std::thread waiter([&] { c.Check(level); });
  while (c.stats().live_nodes == 0) std::this_thread::yield();
  c.Increment(level - c.debug_value());
  waiter.join();
}

TEST(CounterResource, PooledSpecNeverTouchesTheHeap) {
  auto c = make_counter("pooled:8+list");
  for (counter_value_t level = 1; level <= 4; ++level) {
    park_release_round(*c, level);
  }
  const auto s = c->stats();
  EXPECT_EQ(s.pool_hits, 4u) << "preallocated nodes not used";
  EXPECT_EQ(s.pool_misses, 0u) << "pooled spec still hit the allocator";
  EXPECT_EQ(s.live_nodes, 0u);
}

TEST(CounterResource, PooledHeapPlaneSpecReusesPooledNodes) {
  // The pool covers wait NODES on the heap plane too — the index's own
  // bookkeeping (hash entry, heap slot) is separate, but a hot level's
  // node must keep coming from the free list.
  auto c = make_counter("pooled:8+list,waitplane=heap:2");
  for (counter_value_t level = 1; level <= 4; ++level) {
    park_release_round(*c, level);
  }
  const auto s = c->stats();
  EXPECT_EQ(s.pool_hits, 4u) << "preallocated nodes not used";
  EXPECT_EQ(s.pool_misses, 0u) << "pooled heap-plane spec hit the allocator";
  EXPECT_EQ(s.live_nodes, 0u);
  EXPECT_EQ(s.wait_shard_count, 2u);
}

TEST(CounterResource, UnpooledSpecPaysTheAllocatorEveryTime) {
  auto c = make_counter("list,pool=0");
  for (counter_value_t level = 1; level <= 3; ++level) {
    park_release_round(*c, level);
  }
  const auto s = c->stats();
  EXPECT_EQ(s.pool_hits, 0u);
  EXPECT_EQ(s.pool_misses, 3u);
  EXPECT_EQ(s.live_nodes, 0u);
}

// ---------------------------------------------------------------------------
// The allocation-failure sweep (satellite-1 regression): inject
// bad_alloc at allocation ordinal k = 1, 2, ... until the operation
// performs no k-th allocation at all.  Every faulted round must throw
// CounterResourceError (never raw bad_alloc) and leave the counter
// fully usable; the final round proves the sweep covered every
// allocation point the operation has.
// ---------------------------------------------------------------------------

template <typename C, typename Op>
void sweep_parked_op(Op&& op, std::uint64_t min_alloc_points) {
  for (std::uint64_t k = 1;; ++k) {
    C c;
    std::atomic<bool> done{false};
    bool threw = false;
    std::uint64_t failed = 0;
    {
      FaultPlan plan;
      plan.fail_alloc_at = k;
      FaultScope scope(plan);
      // The releaser waits for the park (live_nodes > 0) — or for the
      // faulted operation to give up — so the operation cannot be
      // satisfied before it reaches its allocations.
      std::thread releaser([&] {
        while (!done.load(std::memory_order_acquire) &&
               c.stats().live_nodes == 0) {
          std::this_thread::yield();
        }
        c.Increment(1);
      });
      try {
        op(c);
      } catch (const CounterResourceError&) {
        threw = true;
      }
      done.store(true, std::memory_order_release);
      releaser.join();
      failed = fault_state().allocs_failed.load(std::memory_order_relaxed);
    }
    // Strong guarantee: the same counter works either way (the
    // releaser's increment landed, so this is a fast-path probe plus
    // structural checks).
    c.Check(1);
    EXPECT_EQ(c.stats().live_nodes, 0u) << "node leaked at ordinal " << k;
    if (failed == 0) {
      // The operation never reached a k-th allocation: sweep complete.
      EXPECT_FALSE(threw);
      EXPECT_GE(k, min_alloc_points + 1) << "sweep ended before covering "
                                         << "the expected allocation points";
      break;
    }
    EXPECT_TRUE(threw) << "allocation " << k
                       << " failed but the operation succeeded";
    ASSERT_LT(k, 64u) << "sweep did not terminate";
  }
}

TEST(CounterResource, AllocFailureSweepCheckBlocking) {
  sweep_parked_op<FaultBlockingCounter>(
      [](FaultBlockingCounter& c) { c.Check(1); }, 1);
}

TEST(CounterResource, AllocFailureSweepCheckHybrid) {
  sweep_parked_op<FaultHybridCounter>(
      [](FaultHybridCounter& c) { c.Check(1); }, 1);
}

TEST(CounterResource, AllocFailureSweepCheckFutex) {
  sweep_parked_op<FaultFutexCounter>(
      [](FaultFutexCounter& c) { c.Check(1); }, 1);
}

TEST(CounterResource, AllocFailureSweepCheckFor) {
  sweep_parked_op<FaultBlockingCounter>(
      [](FaultBlockingCounter& c) {
        EXPECT_TRUE(c.CheckFor(1, std::chrono::seconds(60)));
      },
      1);
}

TEST(CounterResource, AllocFailureSweepCheckHeapPlane) {
  // waitplane=heap: a fresh park allocates the node, the level hash
  // entry, and the heap slot — three distinct failure sites, each of
  // which must unwind to the pre-call state.
  sweep_parked_op<HeapPlane<FaultHybridCounter>>(
      [](HeapPlane<FaultHybridCounter>& c) { c.Check(1); }, 3);
}

template <typename C>
void sweep_onreach_fresh(std::uint64_t min_alloc_points) {
  // Fresh-level registrations take the node-allocation branch of
  // CallbackListT::insert.
  for (std::uint64_t k = 1;; ++k) {
    C c;
    std::atomic<int> fired{0};
    bool threw = false;
    std::uint64_t failed = 0;
    {
      FaultPlan plan;
      plan.fail_alloc_at = k;
      FaultScope scope(plan);
      try {
        c.OnReach(1, [&] { fired.fetch_add(1, std::memory_order_relaxed); });
      } catch (const CounterResourceError&) {
        threw = true;
      }
      failed = fault_state().allocs_failed.load(std::memory_order_relaxed);
    }
    if (threw) {
      // Strong guarantee: the rejected registration left nothing
      // behind — a healthy retry is the one and only callback.
      EXPECT_EQ(fired.load(), 0);
      c.OnReach(1, [&] { fired.fetch_add(1, std::memory_order_relaxed); });
    }
    c.Increment(1);
    EXPECT_EQ(fired.load(), 1) << "ordinal " << k;
    if (failed == 0) {
      EXPECT_FALSE(threw);
      EXPECT_GE(k, min_alloc_points + 1)
          << "sweep ended before covering the expected allocation points";
      break;
    }
    EXPECT_TRUE(threw) << "allocation " << k
                       << " failed but OnReach registered";
    ASSERT_LT(k, 64u) << "sweep did not terminate";
  }
}

TEST(CounterResource, AllocFailureSweepOnReachFreshLevel) {
  sweep_onreach_fresh<FaultHybridCounter>(1);
}

TEST(CounterResource, AllocFailureSweepOnReachFreshLevelHeapPlane) {
  // The heap index adds the hash-entry and heap-slot sites to the
  // fresh-callback-node path.
  sweep_onreach_fresh<HeapPlane<FaultHybridCounter>>(3);
}

TEST(CounterResource, AllocFailureSweepOnReachJoinedLevel) {
  // A second registration on the SAME level takes the other branch —
  // growing the existing node's entry vector.
  for (std::uint64_t k = 1;; ++k) {
    FaultHybridCounter c;
    std::atomic<int> fired{0};
    c.OnReach(2, [&] { fired.fetch_add(1, std::memory_order_relaxed); });
    bool threw = false;
    std::uint64_t failed = 0;
    {
      FaultPlan plan;
      plan.fail_alloc_at = k;
      FaultScope scope(plan);
      try {
        c.OnReach(2, [&] { fired.fetch_add(10, std::memory_order_relaxed); });
      } catch (const CounterResourceError&) {
        threw = true;
      }
      failed = fault_state().allocs_failed.load(std::memory_order_relaxed);
    }
    if (threw) {
      // The first registration must have survived untouched.
      EXPECT_EQ(fired.load(), 0);
      c.OnReach(2, [&] { fired.fetch_add(10, std::memory_order_relaxed); });
    }
    c.Increment(2);
    EXPECT_EQ(fired.load(), 11) << "ordinal " << k;
    if (failed == 0) {
      EXPECT_FALSE(threw);
      EXPECT_GE(k, 2u);
      break;
    }
    EXPECT_TRUE(threw) << "allocation " << k
                       << " failed but OnReach registered";
    ASSERT_LT(k, 64u) << "sweep did not terminate";
  }
}

// ---------------------------------------------------------------------------
// FaultEnv over real threads: spurious wakes and futex interrupts
// ---------------------------------------------------------------------------

TEST(CounterResource, SpuriousWakesDoNotDoubleCountTimeouts) {
  FaultBlockingCounter c;
  FaultPlan plan;
  plan.spurious_every = 1;
  plan.spurious_budget = 3;
  FaultScope scope(plan);
  EXPECT_FALSE(c.CheckFor(5, std::chrono::milliseconds(50)));
  const auto s = c.stats();
  EXPECT_EQ(s.timed_out_checks, 1u);
  EXPECT_GE(s.spurious_wakeups, 1u);
  EXPECT_EQ(s.live_nodes, 0u);
}

TEST(CounterResource, FutexInterruptsDoNotLoseTheWake) {
  FaultFutexCounter c;
  FaultPlan plan;
  plan.futex_every = 1;
  plan.futex_budget = 3;
  FaultScope scope(plan);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    c.Increment(2);
  });
  c.Check(2);
  releaser.join();
  EXPECT_EQ(c.debug_value(), 2u);
  EXPECT_EQ(c.stats().live_nodes, 0u);
}

// ---------------------------------------------------------------------------
// Bounded admission, policy by policy (spec-string surface)
// ---------------------------------------------------------------------------

TEST(CounterResource, AdmissionThrowRejectsTheOverCapWaiter) {
  auto c = make_counter("hybrid,max_waiters=2");
  std::thread w1([&] { c->Check(5); });
  std::thread w2([&] { c->Check(5); });
  while (c->stats().suspensions < 2) std::this_thread::yield();
  EXPECT_THROW(c->Check(5), CounterOverloadedError);
  EXPECT_THROW((void)c->CheckFor(5, std::chrono::seconds(1)),
               CounterOverloadedError);
  c->Increment(5);
  w1.join();
  w2.join();
  EXPECT_EQ(c->stats().overload_rejections, 2u);
  EXPECT_EQ(c->stats().live_nodes, 0u);
  c->Check(5);  // still healthy
}

TEST(CounterResource, AdmissionMaxLevelsCountsNodesNotWaiters) {
  // Two waiters on the SAME level share a node — only a new level
  // trips max_levels.
  auto c = make_counter("list,max_levels=1");
  std::thread w1([&] { c->Check(3); });
  std::thread w2([&] { c->Check(3); });  // joins w1's node: admitted
  while (c->stats().suspensions < 2) std::this_thread::yield();
  EXPECT_THROW(c->Check(4), CounterOverloadedError);  // needs a 2nd node
  c->Increment(3);
  w1.join();
  w2.join();
  EXPECT_EQ(c->stats().live_nodes, 0u);
}

TEST(CounterResource, AdmissionMaxLevelsSpansHeapPlaneShards) {
  // max_levels is a global bound: levels 3 and 4 hash to different
  // shards of the heap index, but the second fresh level must still be
  // rejected.
  auto c = make_counter("list,max_levels=1,waitplane=heap:2");
  std::thread w1([&] { c->Check(3); });
  std::thread w2([&] { c->Check(3); });  // joins w1's node: admitted
  while (c->stats().suspensions < 2) std::this_thread::yield();
  EXPECT_THROW(c->Check(4), CounterOverloadedError);  // needs a 2nd node
  c->Increment(3);
  w1.join();
  w2.join();
  EXPECT_EQ(c->stats().live_nodes, 0u);
}

TEST(CounterResource, AdmissionSpinDegradesAndStillSucceeds) {
  auto c = make_counter("hybrid,max_waiters=1,overload=spin");
  std::thread w1([&] { c->Check(5); });
  while (c->stats().suspensions < 1) std::this_thread::yield();
  std::thread w2([&] {
    // Over cap: demoted to the allocation-free relock-poll wait, which
    // must still observe the release.
    EXPECT_TRUE(c->CheckFor(5, std::chrono::seconds(60)));
  });
  while (c->stats().degraded_waits < 1) std::this_thread::yield();
  c->Increment(5);
  w1.join();
  w2.join();
  EXPECT_EQ(c->stats().degraded_waits, 1u);
  EXPECT_EQ(c->stats().overload_rejections, 1u);
  EXPECT_EQ(c->stats().live_nodes, 0u);
}

TEST(CounterResource, AdmissionSpinHonoursTheDeadline) {
  auto c = make_counter("list,max_waiters=1,overload=spin");
  std::thread w1([&] { c->Check(5); });
  while (c->stats().suspensions < 1) std::this_thread::yield();
  // Over cap AND never released: the degraded wait must time out.
  EXPECT_FALSE(c->CheckFor(9, std::chrono::milliseconds(50)));
  EXPECT_GE(c->stats().timed_out_checks, 1u);
  c->Increment(5);
  w1.join();
  EXPECT_EQ(c->stats().live_nodes, 0u);
}

TEST(CounterResource, AdmissionGateAdmitsWhenCapacityFrees) {
  auto c = make_counter("list,max_waiters=1,overload=block");
  std::atomic<bool> gated_done{false};
  std::thread w1([&] { c->Check(5); });
  while (c->stats().suspensions < 1) std::this_thread::yield();
  std::thread w2([&] {
    c->Check(5);  // naps on the admission gate until capacity frees
    gated_done.store(true, std::memory_order_release);
  });
  while (c->stats().overload_rejections < 1) std::this_thread::yield();
  EXPECT_FALSE(gated_done.load(std::memory_order_acquire));
  c->Increment(5);
  w1.join();
  w2.join();
  EXPECT_TRUE(gated_done.load());
  EXPECT_EQ(c->stats().live_nodes, 0u);
}

// ---------------------------------------------------------------------------
// The overload storm (acceptance criterion): hundreds of waiters
// against a 64-slot wait list, one release.  Under every policy all
// threads must return and none may be left parked.
// ---------------------------------------------------------------------------

void overload_storm(const std::string& spec, bool rejections_expected) {
  auto c = make_counter(spec);
  constexpr int kThreads = 384;
  std::atomic<int> reached{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      try {
        c->Check(1000);
        reached.fetch_add(1, std::memory_order_relaxed);
      } catch (const CounterOverloadedError&) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  c->Increment(1000);
  for (auto& t : threads) t.join();  // nobody left parked, ever
  EXPECT_EQ(reached.load() + rejected.load(), kThreads);
  if (!rejections_expected) {
    EXPECT_EQ(rejected.load(), 0) << "non-throwing policy threw";
    EXPECT_EQ(reached.load(), kThreads);
  }
  const auto s = c->stats();
  EXPECT_LE(s.max_live_waiters, 64u) << "admission cap breached";
  EXPECT_EQ(s.live_nodes, 0u) << "storm left the wait list dirty";
  c->Check(1000);  // the counter survived the storm
}

TEST(CounterResource, OverloadStormThrow) {
  overload_storm("pooled:64+hybrid,max_waiters=64", true);
}

TEST(CounterResource, OverloadStormSpin) {
  overload_storm("hybrid,max_waiters=64,overload=spin", false);
}

TEST(CounterResource, OverloadStormBlock) {
  overload_storm("list,max_waiters=64,overload=block", false);
}

TEST(CounterResource, OverloadStormHeapPlane) {
  overload_storm("pooled:64+hybrid,max_waiters=64,waitplane=heap:4", true);
}

// ---------------------------------------------------------------------------
// Spec grammar: the resource model round-trips through make_counter
// ---------------------------------------------------------------------------

TEST(CounterResource, SpecRoundTripsResourceOptions) {
  const std::string canonical =
      "sharded:4+pooled:64+hybrid,max_waiters=256,overload=spin";
  auto c = make_counter(canonical);
  EXPECT_EQ(c->spec(), canonical);
  EXPECT_EQ(make_counter(c->spec())->spec(), canonical);

  EXPECT_EQ(make_counter("pooled")->spec(), "pooled:64+hybrid");
  EXPECT_EQ(make_counter("pooled:16")->spec(), "pooled:16+hybrid");
  EXPECT_EQ(make_counter("pooled:16+list,max_levels=8")->spec(),
            "pooled:16+list,max_levels=8");
  // kThrow is the default and is never printed.
  EXPECT_EQ(make_counter("list,overload=throw")->spec(), "list");
}

TEST(CounterResource, SpecRejectsContradictionsAndMisplacedTokens) {
  // pooled demands a pool to put the nodes in.
  EXPECT_THROW(make_counter("pooled:8+list,pool=0"), std::invalid_argument);
  // pooled is a prefix, not a decorator.
  EXPECT_THROW(make_counter("hybrid+pooled"), std::invalid_argument);
  // and needs at least one node.
  EXPECT_THROW(make_counter("pooled:0+list"), std::invalid_argument);
  // unknown overload mode.
  EXPECT_THROW(make_counter("list,overload=panic"), std::invalid_argument);
}

}  // namespace
