// sequential_equivalence_test.cpp — experiment E8: §6's claim that
// (for the patterns where sequential execution does not deadlock)
// "multithreaded execution ... will always be equivalent to sequential
// execution".
//
// The paper scopes the guarantee precisely: "the programs for mutual
// exclusion with sequential ordering in section 5.2 and single-writer
// [multiple]-reader broadcast in section 5.3 have equivalent
// multithreaded and sequential execution."  The §4.5/§5.1 programs are
// deterministic but *not* sequentially executable (a thread can wait on
// data owned by a not-yet-run thread); those are covered by the
// determinism tests instead, and a canary here documents why.

#include <gtest/gtest.h>

#include <vector>

#include "monotonic/algos/accumulate.hpp"
#include "monotonic/algos/compositions.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/patterns/broadcast.hpp"
#include "monotonic/patterns/sequencer.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

// §5.2 mutual exclusion with sequential ordering.
TEST(SequentialEquivalence, OrderedSumMatchesUnderBothPolicies) {
  const auto values = order_sensitive_values(64);

  AccumulateOptions options;
  options.num_threads = 4;
  const double multithreaded = sum_ordered(values, options);

  // Sequential execution of the same program text (§3: ignore the
  // multithreaded keyword): iterations in order, counter ops inline.
  double sequential_result = 0.0;
  {
    Sequencer<> seq;
    multithreaded_for(
        std::size_t{0}, values.size(), std::size_t{1},
        [&](std::size_t i) {
          seq.run_in_order(i, [&] { sequential_result += values[i]; });
        },
        Execution::kSequential);
  }
  EXPECT_EQ(multithreaded, sequential_result);
  EXPECT_EQ(sequential_result, sum_sequential(values));
}

// §6's two-statement program under both policies.
TEST(SequentialEquivalence, Section6ProgramBothPolicies) {
  auto run = [](Execution policy) {
    Counter c;
    int x = 3;
    multithreaded(
        {[&] {
           c.Check(0);
           x = x + 1;
           c.Increment(1);
         },
         [&] {
           c.Check(1);
           x = x * 2;
           c.Increment(1);
         }},
        policy);
    return x;
  };
  EXPECT_EQ(run(Execution::kSequential), 8);
  EXPECT_EQ(run(Execution::kMultithreaded), 8);
}

// §5.3 single-writer multiple-reader broadcast: with the writer listed
// first, sequential execution publishes everything and the readers'
// Checks all pass immediately — same results as multithreaded.
TEST(SequentialEquivalence, BroadcastBothPolicies) {
  auto run = [](Execution policy) {
    constexpr std::size_t kItems = 100;
    BroadcastChannel<int> channel(kItems);
    std::vector<long long> sums(3, 0);
    std::vector<std::function<void()>> bodies;
    bodies.emplace_back([&] {
      auto writer = channel.writer(8);
      for (std::size_t i = 0; i < kItems; ++i) {
        writer.publish(static_cast<int>(i * 3));
      }
    });
    for (int r = 0; r < 3; ++r) {
      bodies.emplace_back([&, r] {
        auto reader = channel.reader(r + 1);
        reader.for_each(
            [&](std::size_t, const int& item) { sums[r] += item; });
      });
    }
    multithreaded(std::move(bodies), policy);
    return sums;
  };
  const auto seq = run(Execution::kSequential);
  const auto par = run(Execution::kMultithreaded);
  EXPECT_EQ(seq, par);
  EXPECT_EQ(seq[0], seq[1]);
  EXPECT_EQ(seq[1], seq[2]);
}

// The composition pipeline reads strictly earlier stages, so it is
// sequentially executable too.
TEST(SequentialEquivalence, PipelineBothPolicies) {
  const auto seq = compositions_pipeline(10, 3, 4, Execution::kSequential);
  const auto par = compositions_pipeline(10, 3, 4, Execution::kMultithreaded);
  EXPECT_EQ(seq, par);
  EXPECT_EQ(seq, compositions_sequential(10, 3));
}

// Canary: §4.5-style programs are NOT sequentially executable — the
// first thread would wait for a row owned by a later thread.  Document
// the boundary with a timed check instead of a deadlock.
TEST(SequentialEquivalence, DataflowAcrossThreadsNeedsConcurrency) {
  Counter c;
  bool second_ran = false;
  // Sequential order runs statement 0 first; statement 0 needs
  // statement 1's increment.  With CheckFor instead of Check this
  // documents the §6 scoping without hanging the suite.
  multithreaded(
      {[&] {
         EXPECT_FALSE(c.CheckFor(1, std::chrono::milliseconds(50)))
             << "sequential execution cannot satisfy a forward dependency";
       },
       [&] {
         c.Increment(1);
         second_ran = true;
       }},
      Execution::kSequential);
  EXPECT_TRUE(second_ran);
  // Multithreaded execution of the same program completes normally.
  Counter c2;
  multithreaded(
      {[&] { c2.Check(1); }, [&] { c2.Increment(1); }},
      Execution::kMultithreaded);
}

}  // namespace
}  // namespace monotonic
