// counter_failure_test.cpp — the failure model, run against every
// implementation and every decorated composition.
//
// The engine's failure model (poison, cancellation, stall watchdog —
// see counter_error.hpp) is policy-independent machinery, so like the
// conformance suite it is typed over all five BasicCounter
// instantiations plus Traced/Batching/Broadcasting compositions: a
// policy or decorator cannot silently strand a waiter.  The scenarios
// matching the §6 caveat: poison-then-check, poison-while-parked,
// poison racing increments, cooperative cancellation, zero-deadline
// probes, OnReach error delivery, and the FailureDomain scope wiring.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <stop_token>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/awaitable.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/counter_decorator.hpp"
#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/core/wait_policy.hpp"
#include "monotonic/patterns/broadcast.hpp"
#include "monotonic/sim/fault_env.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using namespace std::chrono_literals;

using monotonic::sim::FaultPlan;
using monotonic::sim::FaultScope;

// Every policy over the fault-injecting environment (fault_env.hpp).
// Disarmed, they must pass the whole failure suite unchanged; the
// FaultRounds suite below arms allocation failures and seed-derived
// spurious-wake/futex-interrupt plans against them.
using FaultListCounter =
    BasicCounter<BlockingWaitT<monotonic::sim::RealFaultEnv>>;
using FaultSingleCvCounter =
    BasicCounter<SingleCvWaitT<monotonic::sim::RealFaultEnv>>;
using FaultFutexCounter =
    BasicCounter<FutexWaitT<monotonic::sim::RealFaultEnv>>;
using FaultSpinCounter = BasicCounter<SpinWaitT<monotonic::sim::RealFaultEnv>>;
using FaultHybridCounter =
    BasicCounter<HybridWaitT<monotonic::sim::RealFaultEnv>>;

// The failure model is part of the uniform surface: every
// implementation, every decorator, and the type-erased handle.
static_assert(FailureAwareCounter<Counter>);
static_assert(FailureAwareCounter<SingleCvCounter>);
static_assert(FailureAwareCounter<FutexCounter>);
static_assert(FailureAwareCounter<SpinCounter>);
static_assert(FailureAwareCounter<HybridCounter>);
static_assert(FailureAwareCounter<Traced<Counter>>);
static_assert(FailureAwareCounter<Batching<HybridCounter>>);
static_assert(FailureAwareCounter<Broadcasting<Counter>>);
static_assert(FailureAwareCounter<ShardedCounter>);
static_assert(FailureAwareCounter<ShardedHybridCounter>);
static_assert(FailureAwareCounter<Traced<ShardedHybridCounter>>);
static_assert(FailureAwareCounter<AnyHandle>);

// Heap wait plane wrappers (waitplane=heap — wait_index.hpp): the
// failure model must hold over both WaitIndex representations, and the
// fault-env variant arms allocation failures against the heap's extra
// allocation points (hash slot + heap slot per fresh level).
inline WaitListOptions heap_plane_options(std::size_t shards,
                                          std::size_t preallocated = 0) {
  WaitListOptions o;
  o.wait_plane = WaitPlaneKind::kHeap;
  o.wait_shards = shards;
  o.preallocated_nodes = preallocated;
  return o;
}

template <typename C>
struct HeapPlane : C {
  HeapPlane() : C(heap_plane_options(3)) {}
};

template <typename C>
struct PooledHeapPlane : C {
  PooledHeapPlane() : C(heap_plane_options(2, 8)) {}
};

template <typename C>
class FailureModel : public ::testing::Test {
 protected:
  C counter_;
};

using AllCounterTypes =
    ::testing::Types<Counter, SingleCvCounter, FutexCounter, SpinCounter,
                     HybridCounter, Traced<Counter>, Batching<HybridCounter>,
                     Broadcasting<Counter>, ShardedCounter,
                     ShardedHybridCounter, Traced<ShardedHybridCounter>,
                     FaultListCounter, FaultSingleCvCounter,
                     FaultFutexCounter, FaultSpinCounter, FaultHybridCounter,
                     HeapPlane<Counter>, HeapPlane<ShardedHybridCounter>,
                     PooledHeapPlane<HybridCounter>,
                     HeapPlane<FaultHybridCounter>>;

struct CounterTypeNames {
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, Counter>) return "list";
    if constexpr (std::is_same_v<T, SingleCvCounter>) return "single_cv";
    if constexpr (std::is_same_v<T, FutexCounter>) return "futex";
    if constexpr (std::is_same_v<T, SpinCounter>) return "spin";
    if constexpr (std::is_same_v<T, HybridCounter>) return "hybrid";
    if constexpr (std::is_same_v<T, Traced<Counter>>) return "list_traced";
    if constexpr (std::is_same_v<T, Batching<HybridCounter>>)
      return "hybrid_batching";
    if constexpr (std::is_same_v<T, Broadcasting<Counter>>)
      return "list_broadcast";
    if constexpr (std::is_same_v<T, ShardedCounter>) return "sharded_list";
    if constexpr (std::is_same_v<T, ShardedHybridCounter>)
      return "sharded_hybrid";
    if constexpr (std::is_same_v<T, Traced<ShardedHybridCounter>>)
      return "sharded_hybrid_traced";
    if constexpr (std::is_same_v<T, FaultListCounter>) return "fault_list";
    if constexpr (std::is_same_v<T, FaultSingleCvCounter>)
      return "fault_single_cv";
    if constexpr (std::is_same_v<T, FaultFutexCounter>) return "fault_futex";
    if constexpr (std::is_same_v<T, FaultSpinCounter>) return "fault_spin";
    if constexpr (std::is_same_v<T, FaultHybridCounter>) return "fault_hybrid";
    if constexpr (std::is_same_v<T, HeapPlane<Counter>>) return "heap_list";
    if constexpr (std::is_same_v<T, HeapPlane<ShardedHybridCounter>>)
      return "heap_sharded_hybrid";
    if constexpr (std::is_same_v<T, PooledHeapPlane<HybridCounter>>)
      return "heap_pooled_hybrid";
    if constexpr (std::is_same_v<T, HeapPlane<FaultHybridCounter>>)
      return "heap_fault_hybrid";
  }
};

TYPED_TEST_SUITE(FailureModel, AllCounterTypes, CounterTypeNames);

TYPED_TEST(FailureModel, PoisonFreezesValueAndSplitsChecks) {
  this->counter_.Increment(3);
  this->counter_.Poison(
      std::make_exception_ptr(std::runtime_error("producer died")));
  EXPECT_TRUE(this->counter_.poisoned());
  // At or below the frozen value: that work WAS done, Check succeeds.
  this->counter_.Check(0);
  this->counter_.Check(3);
  // Above it: the Increment is never coming — fail fast.
  EXPECT_THROW(this->counter_.Check(4), CounterPoisonedError);
  EXPECT_THROW((void)this->counter_.CheckFor(4, 10ms), CounterPoisonedError);
  EXPECT_THROW(
      (void)this->counter_.CheckUntil(
          4, std::chrono::steady_clock::now() + 10ms),
      CounterPoisonedError);
}

TYPED_TEST(FailureModel, PoisonCarriesTheProducersException) {
  this->counter_.Poison(
      std::make_exception_ptr(std::runtime_error("original failure")));
  try {
    this->counter_.Check(1);
    FAIL() << "Check on a poisoned counter must throw";
  } catch (const CounterPoisonedError& e) {
    ASSERT_TRUE(e.cause());
    EXPECT_THROW(std::rethrow_exception(e.cause()), std::runtime_error);
  }
}

TYPED_TEST(FailureModel, PoisonWhileParkedWakesEveryWaiter) {
  // Park waiters at several distinct levels, then poison: every one
  // must resume (no thread left parked) and unwind with the poison
  // error — across all five wake mechanisms.
  constexpr int kWaiters = 8;
  std::atomic<int> threw{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kWaiters);
    for (int i = 0; i < kWaiters; ++i) {
      threads.emplace_back([this, i, &threw] {
        try {
          this->counter_.Check(static_cast<counter_value_t>(10 + i % 3));
        } catch (const CounterPoisonedError&) {
          threw.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::this_thread::sleep_for(20ms);  // let (most) waiters park
    this->counter_.Poison(
        std::make_exception_ptr(std::runtime_error("mid-park failure")));
  }  // join: completes only if every waiter actually woke
  EXPECT_EQ(threw.load(), kWaiters);
}

TYPED_TEST(FailureModel, PoisonWhileParkedInTimedCheckThrows) {
  std::atomic<bool> threw{false};
  {
    std::jthread waiter([this, &threw] {
      try {
        (void)this->counter_.CheckFor(100, 10s);
      } catch (const CounterPoisonedError&) {
        threw.store(true, std::memory_order_relaxed);
      }
    });
    std::this_thread::sleep_for(20ms);
    this->counter_.Poison(
        std::make_exception_ptr(std::runtime_error("timed waiter's bane")));
  }
  EXPECT_TRUE(threw.load());
}

TYPED_TEST(FailureModel, PoisonRacingIncrementsLeavesConsistentState) {
  // Hammer Increment from several threads while poisoning mid-storm.
  // Whatever interleaving happens: no hang, no crash, and afterwards
  // the frozen value answers Checks consistently (at-or-below
  // succeeds; above throws).  Increment on the poisoned counter is a
  // silent drop, so the incrementers never observe an error.
  constexpr int kIncrementers = 4;
  constexpr int kPerThread = 5000;
  {
    std::vector<std::jthread> threads;
    threads.reserve(kIncrementers);
    for (int t = 0; t < kIncrementers; ++t) {
      threads.emplace_back([this] {
        for (int i = 0; i < kPerThread; ++i) this->counter_.Increment();
      });
    }
    std::this_thread::sleep_for(1ms);
    this->counter_.Poison(
        std::make_exception_ptr(std::runtime_error("mid-storm")));
  }
  ASSERT_TRUE(this->counter_.poisoned());
  const counter_value_t frozen = this->counter_.debug_value();
  EXPECT_LE(frozen,
            static_cast<counter_value_t>(kIncrementers) * kPerThread);
  // Broadcasting's shards can freeze at slightly different values when
  // the poison fan-out races increments (each shard's freeze is
  // individually consistent); the single-freeze assertions below are
  // for the single-wait-list types.
  if constexpr (!std::is_same_v<TypeParam, Broadcasting<Counter>>) {
    this->counter_.Check(frozen);  // at the freeze: must not block or throw
    EXPECT_THROW(this->counter_.Check(frozen + 1), CounterPoisonedError);
  }
  // Late increments are drops: the freeze holds.
  this->counter_.Increment(100);
  EXPECT_EQ(this->counter_.debug_value(), frozen);
}

TYPED_TEST(FailureModel, CancellationUnparksWaiter) {
  std::stop_source source;
  std::atomic<int> result{-1};
  {
    std::jthread waiter([this, &result, token = source.get_token()]() mutable {
      result.store(this->counter_.Check(100, token) ? 1 : 0,
                   std::memory_order_relaxed);
    });
    std::this_thread::sleep_for(20ms);  // let the waiter park
    source.request_stop();
  }  // join: completes only if the cancellation actually woke the waiter
  EXPECT_EQ(result.load(), 0);
}

TYPED_TEST(FailureModel, PreCancelledCheckReturnsImmediately) {
  std::stop_source source;
  source.request_stop();
  EXPECT_FALSE(this->counter_.Check(100, source.get_token()));
}

TYPED_TEST(FailureModel, CancellableCheckStillSucceedsNormally) {
  std::stop_source source;
  this->counter_.Increment(5);
  EXPECT_TRUE(this->counter_.Check(5, source.get_token()));
  // And a parked cancellable waiter released by Increment reports
  // success, not cancellation.
  std::atomic<int> result{-1};
  {
    std::jthread waiter([this, &result, token = source.get_token()]() mutable {
      result.store(this->counter_.Check(6, token) ? 1 : 0,
                   std::memory_order_relaxed);
    });
    std::this_thread::sleep_for(20ms);
    this->counter_.Increment();
  }
  EXPECT_EQ(result.load(), 1);
}

TYPED_TEST(FailureModel, CancellableCheckThrowsOnPoison) {
  std::stop_source source;  // never triggered
  std::atomic<bool> threw{false};
  {
    std::jthread waiter([this, &threw, token = source.get_token()]() mutable {
      try {
        (void)this->counter_.Check(100, token);
      } catch (const CounterPoisonedError&) {
        threw.store(true, std::memory_order_relaxed);
      }
    });
    std::this_thread::sleep_for(20ms);
    this->counter_.Poison(
        std::make_exception_ptr(std::runtime_error("poisoned, not cancelled")));
  }
  EXPECT_TRUE(threw.load());
}

TYPED_TEST(FailureModel, ZeroDeadlineProbeAcquiresNoWaitNode) {
  // Satellite contract: an unreached CheckFor with a zero (or expired)
  // deadline is a pure probe — it must return false without touching
  // the wait list, on every policy.
  this->counter_.Increment(1);
  const auto before = this->counter_.stats().nodes_allocated;
  EXPECT_FALSE(this->counter_.CheckFor(10, 0ms));
  EXPECT_FALSE(this->counter_.CheckFor(10, -5ms));
  EXPECT_FALSE(this->counter_.CheckUntil(
      10, std::chrono::steady_clock::now() - 1ms));
  EXPECT_EQ(this->counter_.stats().nodes_allocated, before);
  // Reached levels still succeed through the same entry.
  EXPECT_TRUE(this->counter_.CheckFor(1, 0ms));
}

TYPED_TEST(FailureModel, OnReachErrorCallbackDeliversPoisonCause) {
  std::atomic<bool> fn_ran{false};
  std::atomic<bool> error_ran{false};
  this->counter_.OnReach(
      10, [&] { fn_ran.store(true); },
      [&](std::exception_ptr cause) {
        EXPECT_THROW(std::rethrow_exception(cause), std::runtime_error);
        error_ran.store(true);
      });
  this->counter_.Poison(
      std::make_exception_ptr(std::runtime_error("callback's bane")));
  EXPECT_FALSE(fn_ran.load());
  EXPECT_TRUE(error_ran.load());
}

TYPED_TEST(FailureModel, OnReachOnPoisonedCounterBelowFrozenRuns) {
  this->counter_.Increment(5);
  this->counter_.Poison(
      std::make_exception_ptr(std::runtime_error("late registration")));
  bool ran = false;
  this->counter_.OnReach(3, [&] { ran = true; });  // 3 <= frozen 5
  EXPECT_TRUE(ran);
}

TYPED_TEST(FailureModel, OnReachOnPoisonedCounterAboveFrozen) {
  this->counter_.Poison(
      std::make_exception_ptr(std::runtime_error("never reaching 10")));
  // Without an error callback the registration throws, mirroring Check.
  EXPECT_THROW(this->counter_.OnReach(10, [] {}), CounterPoisonedError);
  // With one, the failure is delivered through it instead.
  bool delivered = false;
  this->counter_.OnReach(
      10, [] { FAIL() << "fn must not run"; },
      [&](std::exception_ptr) { delivered = true; });
  EXPECT_TRUE(delivered);
}

// --- Predicate waits and the awaitable surface under poison ---------------
//
// Check(pred) reduces to an exact threshold before parking, so the
// poison semantics must match Check(level): a predicate already
// satisfied by the frozen value succeeds, one that needs more throws.
// Awaiting coroutines are logical waiters on the same OnReach index —
// poison must resume them with the error, and a stop request must
// cancel a suspended frame without firing it.

// state: 0 = pending, 1 = reached, 2 = poisoned, 3 = cancelled.
template <typename C>
DetachedTask await_outcome(C& counter, counter_value_t level,
                           std::atomic<int>& state) {
  try {
    co_await reach(counter, level);
    state.store(1);
  } catch (const CounterPoisonedError&) {
    state.store(2);
  }
}

template <typename C>
DetachedTask await_cancellable(C& counter, counter_value_t level,
                               std::stop_token stop,
                               std::atomic<int>& state) {
  try {
    const bool reached = co_await reach(counter, level, stop);
    state.store(reached ? 1 : 3);
  } catch (const CounterPoisonedError&) {
    state.store(2);
  }
}

// Poll until the coroutine publishes an outcome (bounded; the suites
// run under sanitizers where wakeups can be slow).
inline int await_state(std::atomic<int>& state) {
  for (int spin = 0; spin < 2000 && state.load() == 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  return state.load();
}

TYPED_TEST(FailureModel, PredicateCheckThrowsOnPoisonedBelowThreshold) {
  this->counter_.Increment(3);
  this->counter_.Poison(
      std::make_exception_ptr(std::runtime_error("predicate bane")));
  // Frozen value 3 already satisfies v >= 3: succeeds like Check(3).
  this->counter_.Check([](counter_value_t v) { return v >= 3; });
  // v >= 5 can never be satisfied once frozen at 3.
  EXPECT_THROW(
      this->counter_.Check([](counter_value_t v) { return v >= 5; }),
      CounterPoisonedError);
}

TYPED_TEST(FailureModel, PredicateCheckWhileParkedThrowsOnPoison) {
  std::atomic<bool> threw{false};
  std::jthread waiter([&] {
    try {
      this->counter_.Check([](counter_value_t v) { return v >= 10; });
    } catch (const CounterPoisonedError&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(20ms);
  this->counter_.Poison(
      std::make_exception_ptr(std::runtime_error("parked predicate")));
  waiter.join();
  EXPECT_TRUE(threw.load());
}

TYPED_TEST(FailureModel, AwaitingCoroutineResumesWithPoisonError) {
  std::atomic<int> state{0};
  await_outcome(this->counter_, 10, state);
  this->counter_.Increment(4);  // below the awaited level: stays suspended
  this->counter_.Poison(
      std::make_exception_ptr(std::runtime_error("awaited bane")));
  EXPECT_EQ(await_state(state), 2);
}

TYPED_TEST(FailureModel, StopTokenCancelsSuspendedCoroutine) {
  std::atomic<int> state{0};
  std::stop_source source;
  await_cancellable(this->counter_, 100, source.get_token(), state);
  EXPECT_EQ(state.load(), 0);  // level 100 never reached: suspended
  source.request_stop();
  EXPECT_EQ(await_state(state), 3);
  // The counter still works after the cancelled wait.
  this->counter_.Increment(1);
  this->counter_.Check(1);
}

TYPED_TEST(FailureModel, ReasonPoisonHasNullCause) {
  this->counter_.Poison(std::string_view("orderly shutdown"));
  try {
    this->counter_.Check(1);
    FAIL() << "Check on a poisoned counter must throw";
  } catch (const CounterPoisonedError& e) {
    EXPECT_TRUE(std::string(e.what()).find("orderly shutdown") !=
                std::string::npos)
        << e.what();
  }
}

TYPED_TEST(FailureModel, FirstPoisonWins) {
  this->counter_.Increment(2);
  this->counter_.Poison(std::string_view("first"));
  this->counter_.Increment(7);  // dropped — must not move the freeze
  this->counter_.Poison(std::string_view("second"));
  try {
    this->counter_.Check(3);
    FAIL() << "Check on a poisoned counter must throw";
  } catch (const CounterPoisonedError& e) {
    EXPECT_TRUE(std::string(e.what()).find("first") != std::string::npos)
        << e.what();
  }
  EXPECT_EQ(this->counter_.debug_value(), 2u);
}

TYPED_TEST(FailureModel, ResetClearsPoisonForPhaseReuse) {
  this->counter_.Increment(2);
  this->counter_.Poison(std::string_view("phase one failed"));
  EXPECT_TRUE(this->counter_.poisoned());
  this->counter_.Reset();
  EXPECT_FALSE(this->counter_.poisoned());
  EXPECT_EQ(this->counter_.debug_value(), 0u);
  this->counter_.Increment(4);
  this->counter_.Check(4);  // fully back in service
}

TYPED_TEST(FailureModel, PoisonStatsAreCounted) {
  this->counter_.Increment(1);
  this->counter_.Poison(std::string_view("stats check"));
  this->counter_.Increment(1);  // dropped
  const auto s = this->counter_.stats();
  EXPECT_EQ(s.poisons, 1u);
  EXPECT_GE(s.dropped_increments, 1u);
}

// ---------------------------------------------------------------------------
// Engine-level scenarios that need counter Options (watchdog) or the
// type-erased surface — not templated.

TEST(StallWatchdog, ReportsParkedWaiterAndItsWaitList) {
  WaitListOptions options;
  options.stall_report_after = 20ms;
  std::atomic<int> reports{0};
  CounterStallReport last{};
  std::mutex report_m;
  options.on_stall = [&](const CounterStallReport& r) {
    std::scoped_lock lock(report_m);
    last = r;
    reports.fetch_add(1, std::memory_order_relaxed);
  };
  Counter counter(options);
  counter.Increment(2);
  {
    std::jthread waiter([&] { counter.Check(10); });
    while (reports.load(std::memory_order_relaxed) == 0) {
      std::this_thread::sleep_for(5ms);
    }
    counter.Increment(8);  // release the waiter; the stall was transient
  }
  std::scoped_lock lock(report_m);
  EXPECT_GE(reports.load(), 1);
  EXPECT_EQ(last.level, 10u);
  EXPECT_EQ(last.value, 2u);
  EXPECT_GE(last.waited.count(), 20);
  ASSERT_EQ(last.wait_levels.size(), 1u);
  EXPECT_EQ(last.wait_levels[0].level, 10u);
  EXPECT_EQ(last.wait_levels[0].waiters, 1u);
  // The report says WHICH wait plane the waiter is parked on — a heap
  // stall and a list stall point at different suspects.
  EXPECT_EQ(last.wait_plane, WaitPlaneKind::kList);
  EXPECT_EQ(last.wait_shards, 1u);
  EXPECT_STREQ(to_string(last.wait_plane), "list");
  EXPECT_GE(counter.stats().stall_reports, 1u);
}

TEST(StallWatchdog, ReportNamesTheHeapPlaneAndItsShardCount) {
  WaitListOptions options;
  options.stall_report_after = 20ms;
  options.wait_plane = WaitPlaneKind::kHeap;
  options.wait_shards = 4;
  std::atomic<int> reports{0};
  CounterStallReport last{};
  std::mutex report_m;
  options.on_stall = [&](const CounterStallReport& r) {
    std::scoped_lock lock(report_m);
    last = r;
    reports.fetch_add(1, std::memory_order_relaxed);
  };
  Counter counter(options);
  {
    std::jthread waiter([&] { counter.Check(10); });
    while (reports.load(std::memory_order_relaxed) == 0) {
      std::this_thread::sleep_for(5ms);
    }
    counter.Increment(10);
  }
  std::scoped_lock lock(report_m);
  EXPECT_EQ(last.wait_plane, WaitPlaneKind::kHeap);
  EXPECT_EQ(last.wait_shards, 4u);
  EXPECT_STREQ(to_string(last.wait_plane), "heap");
}

TEST(StallWatchdog, QuietWhenIncrementsArriveInTime) {
  WaitListOptions options;
  options.stall_report_after = 250ms;
  std::atomic<int> reports{0};
  options.on_stall = [&](const CounterStallReport&) {
    reports.fetch_add(1, std::memory_order_relaxed);
  };
  Counter counter(options);
  {
    std::jthread waiter([&] { counter.Check(1); });
    std::this_thread::sleep_for(10ms);
    counter.Increment();
  }
  EXPECT_EQ(reports.load(), 0);
}

TEST(AnyCounterFailure, ErasedSurfaceCarriesTheFailureModel) {
  for (const CounterKind kind : all_counter_kinds()) {
    auto counter = make_counter(kind);
    counter->Increment(2);
    std::stop_source source;
    source.request_stop();
    EXPECT_FALSE(counter->Check(5, source.get_token())) << to_string(kind);
    counter->Poison(
        std::make_exception_ptr(std::runtime_error("erased failure")));
    EXPECT_TRUE(counter->poisoned()) << to_string(kind);
    EXPECT_THROW(counter->Check(3), CounterPoisonedError) << to_string(kind);
    counter->Check(2);  // frozen value still answers
  }
}

TEST(AnyCounterFailure, DecoratedSpecStacksForwardPoison) {
  for (const char* spec :
       {"hybrid+traced", "list+batching,batch=8", "futex+broadcast,shards=2",
        "spin+batching,batch=4+traced"}) {
    auto counter = make_counter(std::string_view(spec));
    counter->Increment(1);
    counter->Poison(
        std::make_exception_ptr(std::runtime_error("through the stack")));
    EXPECT_TRUE(counter->poisoned()) << spec;
    EXPECT_THROW(counter->Check(2), CounterPoisonedError) << spec;
    counter->Check(1);
  }
}

TEST(FailureDomainTest, SiblingFailurePoisonsWatchedCounters) {
  // The acceptance scenario: statement 0 throws before producing;
  // statement 1 is parked on a counter only statement 0 would have
  // incremented.  Without the domain the join would never complete.
  Counter produced;
  FailureDomain domain;
  domain.watch(produced);
  try {
    multithreaded(
        {
            [] { throw std::runtime_error("producer exploded"); },
            [&] { produced.Check(1); },  // unwinds via poison
        },
        domain);
    FAIL() << "multithreaded must rethrow";
  } catch (const MultiError& e) {
    EXPECT_EQ(e.errors().size(), 2u);
    EXPECT_TRUE(std::string(e.what()).find("producer exploded") !=
                std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(domain.failed());
  EXPECT_TRUE(produced.poisoned());
}

TEST(FailureDomainTest, CleanBlockLeavesCountersHealthy) {
  Counter produced;
  FailureDomain domain;
  domain.watch(produced);
  multithreaded(
      {
          [&] { produced.Increment(); },
          [&] { produced.Check(1); },
      },
      domain);
  EXPECT_FALSE(domain.failed());
  EXPECT_FALSE(produced.poisoned());
}

TEST(FailureDomainTest, SequentialPolicyAlsoPoisons) {
  Counter produced;
  FailureDomain domain;
  domain.watch(produced);
  EXPECT_THROW(multithreaded(
                   {
                       [] { throw std::runtime_error("sequential failure"); },
                       [&] { produced.Check(1); },  // never runs
                   },
                   domain, Execution::kSequential),
               std::runtime_error);
  EXPECT_TRUE(produced.poisoned());
}

TEST(BroadcastFailure, PoisonCauseReachesReaders) {
  BroadcastChannel<int, HybridCounter> channel(8);
  auto writer = channel.writer(1);
  writer.publish(7);
  writer.publish(8);
  writer.poison(std::make_exception_ptr(std::runtime_error("disk on fire")));
  auto reader = channel.reader(4);  // reader block larger than published
  EXPECT_EQ(reader.get(0), 7);     // published items stay readable
  EXPECT_EQ(reader.get(1), 8);
  try {
    (void)reader.get(2);
    FAIL() << "reading past the failure must throw";
  } catch (const BrokenChannelError& e) {
    ASSERT_TRUE(e.cause());
    try {
      std::rethrow_exception(e.cause());
    } catch (const std::runtime_error& inner) {
      EXPECT_STREQ(inner.what(), "disk on fire");
    }
  }
  EXPECT_TRUE(channel.poisoned());
}

TEST(BroadcastFailure, BrokenChannelErrorIsACounterPoisonedError) {
  // Callers may catch at either vocabulary level.
  static_assert(std::is_base_of_v<CounterPoisonedError, BrokenChannelError>);
  BroadcastChannel<int> channel(4);
  auto writer = channel.writer();
  writer.poison();
  auto reader = channel.reader();
  EXPECT_THROW((void)reader.get(0), CounterPoisonedError);
}

TEST(BroadcastFailure, ParkedReaderIsWokenByPoison) {
  BroadcastChannel<int, SpinCounter> channel(4);
  std::atomic<bool> threw{false};
  {
    std::jthread consumer([&] {
      auto reader = channel.reader(1);
      try {
        (void)reader.get(0);
      } catch (const BrokenChannelError&) {
        threw.store(true, std::memory_order_relaxed);
      }
    });
    std::this_thread::sleep_for(20ms);
    auto writer = channel.writer();
    writer.poison(std::make_exception_ptr(std::runtime_error("late poison")));
  }
  EXPECT_TRUE(threw.load());
}

// ---------------------------------------------------------------------------
// Armed fault rounds: every policy over FaultEnvT<RealEngineEnv> with
// the faults switched ON.  (The deterministic-schedule versions live
// in sim_scenarios.hpp; these run the same machinery over real
// threads, real clock.)
// ---------------------------------------------------------------------------

template <typename C>
class FaultRounds : public ::testing::Test {};

using FaultEnvCounterTypes =
    ::testing::Types<FaultListCounter, FaultSingleCvCounter,
                     FaultFutexCounter, FaultSpinCounter, FaultHybridCounter,
                     HeapPlane<FaultListCounter>,
                     HeapPlane<FaultHybridCounter>>;

struct FaultTypeNames {
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, FaultListCounter>) return "list";
    if constexpr (std::is_same_v<T, FaultSingleCvCounter>) return "single_cv";
    if constexpr (std::is_same_v<T, FaultFutexCounter>) return "futex";
    if constexpr (std::is_same_v<T, FaultSpinCounter>) return "spin";
    if constexpr (std::is_same_v<T, FaultHybridCounter>) return "hybrid";
    if constexpr (std::is_same_v<T, HeapPlane<FaultListCounter>>)
      return "heap_list";
    if constexpr (std::is_same_v<T, HeapPlane<FaultHybridCounter>>)
      return "heap_hybrid";
  }
};

TYPED_TEST_SUITE(FaultRounds, FaultEnvCounterTypes, FaultTypeNames);

TYPED_TEST(FaultRounds, AllocationFailureLeavesTheCounterUsable) {
  TypeParam c;
  {
    FaultPlan plan;
    plan.fail_alloc_at = 1;  // the park's wait-node allocation
    FaultScope scope(plan);
    EXPECT_THROW(c.Check(1), CounterResourceError);
  }
  // Strong guarantee: the very same counter parks and releases.
  std::thread releaser([&] {
    while (c.stats().live_nodes == 0) std::this_thread::yield();
    c.Increment(1);
  });
  c.Check(1);
  releaser.join();
  EXPECT_EQ(c.debug_value(), 1u);
  EXPECT_EQ(c.stats().live_nodes, 0u);
}

TYPED_TEST(FaultRounds, SeededFaultRoundKeepsTimedAccountingExact) {
  TypeParam c;
  {
    // Seed-derived spurious-wake + futex-interrupt cadences (policies
    // that use neither primitive simply never consult them).  The
    // timeout must be reported exactly once, by the engine.
    FaultScope scope(FaultPlan::from_seed(0x5eed0001ull));
    EXPECT_FALSE(c.CheckFor(3, 40ms));
  }
  EXPECT_EQ(c.stats().timed_out_checks, 1u);
  EXPECT_EQ(c.stats().cancelled_checks, 0u);
  {
    // And a released round under the same fault pressure must succeed
    // without growing the timeout count.
    FaultScope scope(FaultPlan::from_seed(0x5eed0002ull));
    std::thread releaser([&] {
      std::this_thread::sleep_for(10ms);
      c.Increment(3);
    });
    EXPECT_TRUE(c.CheckFor(3, std::chrono::seconds(60)));
    releaser.join();
  }
  EXPECT_EQ(c.stats().timed_out_checks, 1u);
  EXPECT_EQ(c.stats().live_nodes, 0u);
}

// The heap wait plane has two allocation sites the list does not: the
// level-to-node hash entry and the heap array growth (wait_index.hpp's
// link hook).  Fail each in turn — the strong guarantee must hold at
// every site, and the same counter must then park and release.
TEST(HeapPlaneFaultRounds, EveryIndexAllocationSiteUnwindsCleanly) {
  WaitListOptions options;
  options.wait_plane = WaitPlaneKind::kHeap;
  options.wait_shards = 2;
  options.pool_nodes = false;  // every round re-runs the full sequence
  BasicCounter<HybridWaitT<monotonic::sim::RealFaultEnv>> c(options);
  // Fresh-level link: alloc #1 = the node, #2 = the hash entry,
  // #3 = the heap slot.
  for (std::size_t site = 1; site <= 3; ++site) {
    FaultPlan plan;
    plan.fail_alloc_at = site;
    FaultScope scope(plan);
    EXPECT_THROW(c.Check(1), CounterResourceError) << "site " << site;
    EXPECT_EQ(c.stats().live_nodes, 0u) << "site " << site;
  }
  std::thread releaser([&] {
    while (c.stats().live_nodes == 0) std::this_thread::yield();
    c.Increment(1);
  });
  c.Check(1);
  releaser.join();
  EXPECT_EQ(c.debug_value(), 1u);
  EXPECT_EQ(c.stats().live_nodes, 0u);
}

}  // namespace
}  // namespace monotonic
