// bench_counter_ops — experiment E5 (§7 complexity claims), using
// google-benchmark for the micro-operations.
//
//   * Increment / fast-path Check latency per implementation.
//   * Increment cost as a function of the number of *distinct levels*
//     released (the §7 bound) — contrast with the single-CV broadcast
//     implementation, whose cost tracks the number of *waiters*.

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_decorator.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/sync/latch.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

template <typename C>
void BM_IncrementUncontended(benchmark::State& state) {
  C counter;
  for (auto _ : state) {
    counter.Increment(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_IncrementUncontended, Counter);
BENCHMARK_TEMPLATE(BM_IncrementUncontended, SingleCvCounter);
BENCHMARK_TEMPLATE(BM_IncrementUncontended, FutexCounter);
BENCHMARK_TEMPLATE(BM_IncrementUncontended, SpinCounter);
BENCHMARK_TEMPLATE(BM_IncrementUncontended, HybridCounter);
// Decorated compositions ride the same template matrix: the overhead of
// a layer is directly readable against its base row.
BENCHMARK_TEMPLATE(BM_IncrementUncontended, Traced<Counter>);
BENCHMARK_TEMPLATE(BM_IncrementUncontended, Batching<HybridCounter>);
BENCHMARK_TEMPLATE(BM_IncrementUncontended, Broadcasting<Counter>);
// Striped value plane: with no armed waiter the whole Increment is one
// fetch_add on a private stripe plus a watermark load.
BENCHMARK_TEMPLATE(BM_IncrementUncontended, ShardedCounter);
BENCHMARK_TEMPLATE(BM_IncrementUncontended, ShardedHybridCounter);
BENCHMARK_TEMPLATE(BM_IncrementUncontended, Traced<ShardedHybridCounter>);

template <typename C>
void BM_CheckFastPath(benchmark::State& state) {
  C counter;
  counter.Increment(1u << 30);
  counter_value_t level = 0;
  for (auto _ : state) {
    counter.Check(level++ & 1023);  // always below the value
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_CheckFastPath, Counter);
BENCHMARK_TEMPLATE(BM_CheckFastPath, SingleCvCounter);
BENCHMARK_TEMPLATE(BM_CheckFastPath, FutexCounter);
BENCHMARK_TEMPLATE(BM_CheckFastPath, SpinCounter);
BENCHMARK_TEMPLATE(BM_CheckFastPath, HybridCounter);
BENCHMARK_TEMPLATE(BM_CheckFastPath, Traced<Counter>);
BENCHMARK_TEMPLATE(BM_CheckFastPath, Batching<HybridCounter>);
BENCHMARK_TEMPLATE(BM_CheckFastPath, Broadcasting<Counter>);
// Striped check pays a sum over the stripes instead of one load.
BENCHMARK_TEMPLATE(BM_CheckFastPath, ShardedCounter);
BENCHMARK_TEMPLATE(BM_CheckFastPath, ShardedHybridCounter);

// Timed probe latency through the shared engine (CheckFor is now
// uniform across implementations, so one template serves all).
template <typename C>
void BM_CheckForFastPath(benchmark::State& state) {
  C counter;
  counter.Increment(1u << 20);
  counter_value_t level = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter.CheckFor(level++ & 1023, std::chrono::nanoseconds(0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_CheckForFastPath, Counter);
BENCHMARK_TEMPLATE(BM_CheckForFastPath, FutexCounter);
BENCHMARK_TEMPLATE(BM_CheckForFastPath, HybridCounter);

// §7's bound: Increment wakes W waiters spread over L levels with L
// notify_all calls (one per released node).  counters.wakeups / notifies
// are reported so the O(levels)-not-O(waiters) claim is visible.
void BM_ReleaseWaveList(benchmark::State& state) {
  const auto waiters = static_cast<std::size_t>(state.range(0));
  const auto levels = static_cast<std::size_t>(state.range(1));
  std::uint64_t total_notifies = 0;
  std::uint64_t total_wakeups = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Counter counter;
    CountdownLatch suspended(waiters);
    std::vector<std::jthread> threads;
    threads.reserve(waiters);
    for (std::size_t w = 0; w < waiters; ++w) {
      threads.emplace_back([&, w] {
        suspended.count_down();
        counter.Check((w % levels) + 1);
      });
    }
    suspended.wait();
    // Best-effort: give waiters time to actually suspend.
    while (counter.stats().suspensions < waiters &&
           counter.stats().fast_checks == 0) {
      std::this_thread::yield();
    }
    state.ResumeTiming();
    counter.Increment(levels);  // one release wave
    state.PauseTiming();
    threads.clear();
    const auto s = counter.stats();
    total_notifies += s.notifies;
    total_wakeups += s.wakeups;
    state.ResumeTiming();
  }
  state.counters["notifies/wave"] =
      benchmark::Counter(static_cast<double>(total_notifies) /
                         static_cast<double>(state.iterations()));
  state.counters["wakeups/wave"] =
      benchmark::Counter(static_cast<double>(total_wakeups) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ReleaseWaveList)
    ->ArgsProduct({{8, 16, 32}, {1, 4, 16}})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20);

// Same shape on the single-CV implementation: every waiter eats a
// spurious wakeup for increments below its level.
void BM_ReleaseWaveSingleCv(benchmark::State& state) {
  const auto waiters = static_cast<std::size_t>(state.range(0));
  const auto levels = static_cast<std::size_t>(state.range(1));
  std::uint64_t total_spurious = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SingleCvCounter counter;
    CountdownLatch suspended(waiters);
    std::vector<std::jthread> threads;
    threads.reserve(waiters);
    for (std::size_t w = 0; w < waiters; ++w) {
      threads.emplace_back([&, w] {
        suspended.count_down();
        counter.Check((w % levels) + 1);
      });
    }
    suspended.wait();
    while (counter.stats().suspensions < waiters &&
           counter.stats().fast_checks == 0) {
      std::this_thread::yield();
    }
    state.ResumeTiming();
    // Release level by level: each notify_all hits ALL waiters.
    for (std::size_t l = 0; l < levels; ++l) counter.Increment(1);
    state.PauseTiming();
    threads.clear();
    total_spurious += counter.stats().spurious_wakeups;
    state.ResumeTiming();
  }
  state.counters["spurious/wave"] =
      benchmark::Counter(static_cast<double>(total_spurious) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ReleaseWaveSingleCv)
    ->ArgsProduct({{8, 16, 32}, {1, 4, 16}})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20);

// OnReach dispatch: cost of firing N async callbacks in one Increment,
// versus waking N parked threads (the BM_ReleaseWave shapes above).
void BM_OnReachDispatch(benchmark::State& state) {
  const auto callbacks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Counter counter;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < callbacks; ++i) {
      counter.OnReach(i + 1, [&sink, i] { sink += i; });
    }
    state.ResumeTiming();
    counter.Increment(callbacks);  // one wave fires everything
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(callbacks));
}
BENCHMARK(BM_OnReachDispatch)->Arg(8)->Arg(64)->Arg(512)->Unit(
    benchmark::kMicrosecond);

// Node pool ablation: repeated suspend/release cycles with and without
// the free-list.
void BM_NodeChurn(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  Counter::Options opts;
  opts.pool_nodes = pooled;
  for (auto _ : state) {
    state.PauseTiming();
    Counter counter(opts);
    state.ResumeTiming();
    for (int round = 0; round < 64; ++round) {
      std::jthread waiter([&, round] {
        counter.Check(static_cast<counter_value_t>(round) + 1);
      });
      while (counter.stats().suspensions <=
             static_cast<std::uint64_t>(round)) {
        std::this_thread::yield();
      }
      counter.Increment(1);
    }
  }
}
BENCHMARK(BM_NodeChurn)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

// The tentpole's headline measurement: multi-producer Increment
// throughput, striped value plane vs the single fetch_add word, across
// producer counts.  This is the table the acceptance criterion reads
// (sharded vs unsharded hybrid at 8 threads), and the rows land in
// BENCH_counter.json via --json.
void producer_scaling(const bench::JsonlWriter& json, bool quick) {
  bench::banner("E11", "multi-producer Increment: striped vs single word");
  bench::note(
      "No waiters are armed, so every Increment is eligible for the\n"
      "fast path; the unsharded hybrid still serializes producers on\n"
      "one cache line while the sharded plane gives each thread a\n"
      "private stripe.  On a single-core host the threads time-slice\n"
      "instead of colliding, which flattens the separation — read the\n"
      "stripe effect from multi-core runs.");
  TextTable table({"spec", "threads", "ns/op", "stripes"});
  // These rows feed the CI perf gate (tools/check_bench.py), so quick
  // mode shrinks NOTHING here: the whole matrix is under a second, and
  // both the 10x-shorter workload (fixed thread-spawn overhead leaks
  // into ns/op) and single reps (one sample of a contended run) made
  // the gate noise-fail on oversubscribed runners.
  const counter_value_t per_thread = 200000;
  const int reps = 3;
  (void)quick;
  for (const std::string spec :
       {std::string("hybrid"), std::string("sharded:8+hybrid")}) {
    for (const int threads : {1, 2, 4, 8}) {
      const auto probe = make_counter(spec);
      const double ms = bench::median_ms(reps, [&] {
        auto c = make_counter(spec);
        std::vector<std::function<void()>> bodies;
        bodies.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t) {
          bodies.emplace_back([&c, per_thread] {
            for (counter_value_t i = 0; i < per_thread; ++i) {
              c->Increment(1);
            }
          });
        }
        multithreaded(std::move(bodies), Execution::kMultithreaded);
      });
      const double ns_per_op =
          ms * 1e6 /
          static_cast<double>(per_thread * static_cast<counter_value_t>(
                                               threads));
      table.add_row({spec, cell(threads), cell(ns_per_op, 1),
                     cell(probe->stripe_count())});
      json.record("increment_mt", spec, threads, ns_per_op,
                  probe->stripe_count());
    }
  }
  bench::print(table);
}

}  // namespace monotonic

// Custom main instead of BENCHMARK_MAIN(): peels off --json/--quick
// before google-benchmark sees the argument list, then appends the
// producer-scaling study.  --quick skips the microbenchmark matrix so
// CI's bench-smoke job stays fast while still exercising the JSON
// path.
int main(int argc, char** argv) {
  const auto cli = monotonic::bench::consume_common_flags(&argc, argv);
  const monotonic::bench::JsonlWriter json(cli.json_path);
  if (!cli.quick) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  monotonic::producer_scaling(json, cli.quick);
  return 0;
}
