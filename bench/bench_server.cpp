// bench_server — experiment E16 (counter-as-a-service shard server).
//
// A YCSB-style OPEN-LOOP workload against an in-process CounterServer
// over a unix-domain socket:
//
//   E16.a server_rpc   C client connections drive a fixed-rate arrival
//                      schedule of small RPCs — 80% acked Increments,
//                      20% level-0 Checks (a fast-path read) — spread
//                      over N logical counters (N >= 100k, exercising
//                      the name->shard->engine fan-in).  Arrivals are
//                      timestamped by the SCHEDULE, not by the send,
//                      so server-side queueing shows up as latency
//                      instead of silently slowing the generator
//                      (no coordinated omission).  Reported rows:
//                        server_rpc   aggregate ns/op (gated)
//                        server_p50   p50 request latency ns (trend)
//                        server_p99   p99 request latency ns (trend)
//
// The arrival rate is calibrated: a short closed-loop burst estimates
// the service rate, and the open loop then runs at ~40% of it — busy
// enough to batch increments per event-loop tick, below saturation so
// p99 measures the server, not an unbounded queue.
//
// Shapes to look for: ns/op far below one core's context-switch-pair
// cost times two (batching amortizes the write side); p50 within a
// small multiple of a UDS round trip; p99 bounded by the event-loop
// tick cadence, not the counter count.
//
// Experiment E17 (fault tolerance, this PR) rides in the same binary:
//
//   E17.a server_recovery     wall time to Start() a server that must
//                             restore N named counters, divided by N —
//                             measured twice: from a journal alone (the
//                             crash-shaped worst case: every op
//                             replayed) and from a snapshot (the
//                             drained best case: one sequential read).
//                             Reported ns are per restored counter so
//                             the row is scale-free.
//   E17.b server_retry_storm  C reconnecting clients are mid-workload
//                             when the server is crash-stopped; after a
//                             fixed downtime the server restarts and
//                             the row reports the worst client's time
//                             from listener-up to its increment acked —
//                             reconnect, re-Hello, id remap, and the
//                             jittered backoff spread, end to end.

#include <cstdio>

#include "bench_util.hpp"

#if defined(_WIN32)

int main(int argc, char** argv) {
  (void)monotonic::bench::consume_common_flags(&argc, argv);
  std::printf("bench_server: POSIX-only (sockets/fork); skipped\n");
  return 0;
}

#else  // POSIX

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "monotonic/server/client.hpp"
#include "monotonic/server/protocol.hpp"
#include "monotonic/server/server.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::note;
namespace ms = monotonic::server;
using Clock = std::chrono::steady_clock;

bool g_quick = false;
bench::JsonlWriter g_json;

constexpr int kConnections = 4;
constexpr std::size_t kCounters = 100'000;

// Bench-issued req_ids start far above anything the client's own
// sequence will reach, so manual send_frame pipelining can never
// collide with ServerClient-internal requests.
constexpr std::uint64_t kReqBase = std::uint64_t{1} << 32;

std::string sock_path() {
  return "/tmp/mc-e16-" + std::to_string(::getpid()) + ".sock";
}

/// Pipelined opens: window of in-flight kOpen frames per connection.
/// Returns the ids for names [first, first+count).
std::vector<std::uint64_t> open_range(ms::ServerClient& c, std::size_t first,
                                      std::size_t count) {
  constexpr std::size_t kWindow = 512;
  std::vector<std::uint64_t> ids(count, 0);
  std::size_t sent = 0, received = 0;
  while (received < count) {
    while (sent < count && sent - received < kWindow) {
      std::string body;
      ms::put_str16(body, "e16/c" + std::to_string(first + sent));
      ms::put_str16(body, "");  // server default spec
      c.send_frame(ms::Op::kOpen, kReqBase + sent, body);
      ++sent;
    }
    const ms::ServerClient::Response resp = c.read_response();
    if (resp.status != ms::Status::kOk) {
      throw std::runtime_error("E16 open failed: " +
                               std::string(ms::to_string(resp.status)));
    }
    ms::Reader r(resp.body);
    std::uint64_t id = 0;
    r.get_u64(id);
    ids[resp.req_id - kReqBase] = id;
    ++received;
  }
  return ids;
}

std::string increment_frame(std::uint64_t req_id, std::uint64_t id) {
  std::string body;
  ms::put_u64(body, id);
  ms::put_u64(body, 1);
  ms::put_u8(body, 0);  // acked
  return ms::make_frame(static_cast<std::uint8_t>(ms::Op::kIncrement), req_id,
                        body);
}

std::string check0_frame(std::uint64_t req_id, std::uint64_t id) {
  std::string body;
  ms::put_u64(body, id);
  ms::put_u64(body, 0);  // level 0: always reached — a fast-path read
  return ms::make_frame(static_cast<std::uint8_t>(ms::Op::kCheck), req_id,
                        body);
}

/// Closed-loop calibration burst: `ops` acked increments with a fixed
/// in-flight window.  Returns achieved ops/sec on this connection.
double calibrate(ms::ServerClient& c, const std::vector<std::uint64_t>& ids,
                 std::size_t ops) {
  constexpr std::size_t kWindow = 64;
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::size_t> pick(0, ids.size() - 1);
  const auto t0 = Clock::now();
  std::size_t sent = 0, received = 0;
  while (received < ops) {
    while (sent < ops && sent - received < kWindow) {
      c.send_raw(increment_frame(kReqBase + sent, ids[pick(rng)]));
      ++sent;
    }
    (void)c.read_response();
    ++received;
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(ops) / secs;
}

struct LoadResult {
  std::vector<double> latencies_ns;  // one per completed request
  double first_sched_ns = 0;         // against a shared epoch
  double last_resp_ns = 0;
  std::size_t completed = 0;
};

/// One connection's open-loop run: `ops` arrivals at `rate` ops/sec,
/// latency measured from the SCHEDULED arrival to the response.
LoadResult open_loop(ms::ServerClient& c, const std::vector<std::uint64_t>& ids,
                     std::size_t ops, double rate, Clock::time_point epoch,
                     unsigned seed) {
  constexpr std::size_t kMaxInFlight = 4096;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, ids.size() - 1);
  std::uniform_int_distribution<int> mix(0, 99);

  const double gap_ns = 1e9 / rate;
  const auto start = Clock::now();
  LoadResult out;
  out.latencies_ns.reserve(ops);
  out.first_sched_ns =
      std::chrono::duration<double, std::nano>(start - epoch).count();

  std::unordered_map<std::uint64_t, Clock::time_point> sched;
  sched.reserve(kMaxInFlight * 2);
  pollfd pfd{c.fd(), POLLIN, 0};

  std::size_t sent = 0;
  while (out.completed < ops) {
    // Drain every response already waiting; timestamp on arrival.
    while (sched.size() > 0 && ::poll(&pfd, 1, 0) == 1) {
      const ms::ServerClient::Response resp = c.read_response();
      const auto now = Clock::now();
      auto it = sched.find(resp.req_id);
      if (it != sched.end()) {
        out.latencies_ns.push_back(
            std::chrono::duration<double, std::nano>(now - it->second)
                .count());
        sched.erase(it);
        ++out.completed;
        out.last_resp_ns =
            std::chrono::duration<double, std::nano>(now - epoch).count();
      }
    }
    // Microburst pacing: send every arrival whose scheduled time has
    // passed, then BLOCK until the next one is due (>= 1ms — finer
    // sleeps would busy-spin the generator threads and starve the
    // server on small hosts).  Latency still anchors to each op's
    // scheduled `due`, so bursts don't flatter the numbers.
    const auto now = Clock::now();
    while (sent < ops && sched.size() < kMaxInFlight) {
      const auto due =
          start + std::chrono::nanoseconds(
                      static_cast<std::int64_t>(gap_ns * sent));
      if (due > now) break;
      const std::uint64_t rid = kReqBase + sent;
      const std::uint64_t id = ids[pick(rng)];
      c.send_raw(mix(rng) < 80 ? increment_frame(rid, id)
                               : check0_frame(rid, id));
      sched.emplace(rid, due);
      ++sent;
    }
    if (sent < ops && sched.size() < kMaxInFlight) {
      const auto due =
          start + std::chrono::nanoseconds(
                      static_cast<std::int64_t>(gap_ns * sent));
      const auto wait_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              due - Clock::now())
              .count();
      ::poll(&pfd, 1, std::max<int>(1, static_cast<int>(wait_ms)));
    } else {
      // All sent (or window full): block for the next response.
      ::poll(&pfd, 1, 100);
    }
  }
  return out;
}

void run_e16() {
  banner("E16", "counter-as-a-service shard server (open-loop RPC)");

  ms::ServerOptions opts;
  opts.uds_path = sock_path();
  opts.shards = 4;
  opts.default_spec = "hybrid";  // lean per-counter engine at 100k names
  opts.executor_threads = 2;
  opts.batch_size = 64;
  ms::CounterServer server(opts);
  server.Start();

  const std::size_t per_conn_counters = kCounters / kConnections;
  const std::size_t measure_ops = g_quick ? 10'000 : 100'000;  // per conn
  const std::size_t calib_ops = g_quick ? 2'000 : 5'000;

  // Setup: each connection opens its slice of the name space.
  std::vector<ms::ServerClient> conns;
  std::vector<std::vector<std::uint64_t>> ids(kConnections);
  for (int i = 0; i < kConnections; ++i) {
    conns.push_back(ms::ServerClient::connect_uds(opts.uds_path));
  }
  {
    std::vector<std::thread> ts;
    for (int i = 0; i < kConnections; ++i) {
      ts.emplace_back([&, i] {
        ids[i] = open_range(conns[i], i * per_conn_counters,
                            per_conn_counters);
      });
    }
    for (auto& t : ts) t.join();
  }
  note("opened " + std::to_string(kCounters) + " logical counters over " +
       std::to_string(kConnections) + " connections");

  // Calibrate the aggregate service rate with all connections running
  // closed-loop bursts CONCURRENTLY — they contend for the same cores
  // during the measurement too, so a per-connection solo rate would
  // overestimate and push the open loop into saturation.
  std::vector<double> calib(kConnections, 0);
  {
    std::vector<std::thread> ts;
    for (int i = 0; i < kConnections; ++i) {
      ts.emplace_back(
          [&, i] { calib[i] = calibrate(conns[i], ids[i], calib_ops); });
    }
    for (auto& t : ts) t.join();
  }
  double aggregate_rate = 0;
  for (const double r : calib) aggregate_rate += r;
  const double target_rate = 0.4 * aggregate_rate;
  note("calibration: ~" + std::to_string(static_cast<long>(aggregate_rate)) +
       " ops/s aggregate closed-loop; open-loop target " +
       std::to_string(static_cast<long>(target_rate)) + " ops/s");

  // Measure: all connections run their schedules concurrently.
  const auto epoch = Clock::now();
  std::vector<LoadResult> results(kConnections);
  {
    std::vector<std::thread> ts;
    for (int i = 0; i < kConnections; ++i) {
      ts.emplace_back([&, i] {
        results[i] = open_loop(conns[i], ids[i], measure_ops,
                               target_rate / kConnections, epoch,
                               static_cast<unsigned>(1000 + i));
      });
    }
    for (auto& t : ts) t.join();
  }

  std::vector<double> lat;
  double first_ns = 1e300, last_ns = 0;
  std::size_t total = 0;
  for (const auto& r : results) {
    lat.insert(lat.end(), r.latencies_ns.begin(), r.latencies_ns.end());
    first_ns = std::min(first_ns, r.first_sched_ns);
    last_ns = std::max(last_ns, r.last_resp_ns);
    total += r.completed;
  }
  std::sort(lat.begin(), lat.end());
  const double p50 = lat[lat.size() / 2];
  const double p99 = lat[(lat.size() * 99) / 100];
  const double span_s = (last_ns - first_ns) / 1e9;
  const double thr = static_cast<double>(total) / span_s;
  const double ns_per_op = 1e9 / thr;

  char p50s[32], p99s[32];
  std::snprintf(p50s, sizeof p50s, "%.1f", p50 / 1000.0);
  std::snprintf(p99s, sizeof p99s, "%.1f", p99 / 1000.0);
  TextTable table({"counters", "conns", "mix", "ops", "thr ops/s", "ns/op",
                   "p50 us", "p99 us"});
  table.add_row({std::to_string(kCounters), std::to_string(kConnections),
                 "80%inc/20%chk", std::to_string(total),
                 std::to_string(static_cast<long>(thr)),
                 std::to_string(static_cast<long>(ns_per_op)), p50s, p99s});
  bench::print(table);

  const auto st = server.stats();
  note("server: " + std::to_string(st.batched_increments) +
       " increments in " + std::to_string(st.flushes) +
       " flushes (batching " +
       std::to_string(st.flushes == 0
                          ? 0.0
                          : static_cast<double>(st.batched_increments) /
                                static_cast<double>(st.flushes)) +
       " per tick)");

  g_json.record_levels("server_rpc", opts.default_spec, kConnections,
                       ns_per_op, 1, kCounters);
  g_json.record_levels("server_p50", opts.default_spec, kConnections, p50, 1,
                       kCounters);
  g_json.record_levels("server_p99", opts.default_spec, kConnections, p99, 1,
                       kCounters);

  conns.clear();
  server.Stop();
}

std::string state_path() {
  return "/tmp/mc-e17-" + std::to_string(::getpid()) + ".state";
}

ms::ServerOptions e17_options() {
  ms::ServerOptions opts;
  opts.uds_path = sock_path();
  opts.state_file = state_path();
  opts.default_spec = "hybrid";
  // The bench measures restore cost, not disk sync cost: fsync per
  // tick would time the device, and the recovery suite already proves
  // the acked-implies-durable ordering with it on.
  opts.journal_fsync = false;
  return opts;
}

void run_e17() {
  banner("E17", "fault tolerance: crash recovery and retry storm");

  const std::size_t n_counters = g_quick ? 2'000 : 10'000;

  // Populate: N named counters, one acked increment each, through a
  // pipelined window — all of it lands in the journal (no snapshot is
  // ever written on this path), so the first restart below replays
  // every record.
  {
    ms::CounterServer server(e17_options());
    server.Start();
    ms::ServerClient c = ms::ServerClient::connect_uds(sock_path());
    const std::vector<std::uint64_t> ids = open_range(c, 0, n_counters);
    constexpr std::size_t kWindow = 512;
    std::size_t sent = 0, received = 0;
    while (received < n_counters) {
      while (sent < n_counters && sent - received < kWindow) {
        c.send_raw(increment_frame(kReqBase + sent, ids[sent]));
        ++sent;
      }
      (void)c.read_response();
      ++received;
    }
    server.Stop();  // crash-shaped: journal only, worst-case replay
  }

  // E17.a, journal path: restore = parse + re-open + re-apply N ops.
  double journal_ns = 0;
  {
    const auto t0 = Clock::now();
    ms::CounterServer server(e17_options());
    server.Start();
    journal_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    if (server.stats().restored_counters != n_counters) {
      throw std::runtime_error("E17: journal restore lost counters");
    }
    server.Drain();  // writes the compacted snapshot the next leg reads
  }

  // E17.a, snapshot path: restore = one sequential file read.
  double snapshot_ns = 0;
  {
    const auto t0 = Clock::now();
    ms::CounterServer server(e17_options());
    server.Start();
    snapshot_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    if (server.stats().restored_counters != n_counters) {
      throw std::runtime_error("E17: snapshot restore lost counters");
    }
    server.Stop();
  }

  const double journal_per = journal_ns / static_cast<double>(n_counters);
  const double snapshot_per = snapshot_ns / static_cast<double>(n_counters);
  TextTable recovery({"restore from", "counters", "total ms", "ns/counter"});
  char jms[32], sms[32];
  std::snprintf(jms, sizeof jms, "%.2f", journal_ns / 1e6);
  std::snprintf(sms, sizeof sms, "%.2f", snapshot_ns / 1e6);
  recovery.add_row({"journal replay", std::to_string(n_counters), jms,
                    std::to_string(static_cast<long>(journal_per))});
  recovery.add_row({"snapshot", std::to_string(n_counters), sms,
                    std::to_string(static_cast<long>(snapshot_per))});
  bench::print(recovery);
  g_json.record_levels("server_recovery", "journal-replay", 1, journal_per, 1,
                       n_counters);
  g_json.record_levels("server_recovery", "snapshot", 1, snapshot_per, 1,
                       n_counters);

  // E17.b: the retry storm.  Clients with retry enabled are cut off by
  // a crash-stop, spin their capped jittered backoff against a dead
  // socket path through a fixed downtime, then race to reconnect when
  // the restarted listener appears.  The row is the WORST client's
  // listener-up -> increment-acked time: the tail a fleet feels.
  const int kClients = 8;
  std::vector<ms::ServerClient> clients;
  std::vector<std::uint64_t> client_ids(kClients, 0);
  {
    ms::CounterServer server(e17_options());
    server.Start();
    ms::ClientOptions copts;
    copts.retry.enabled = true;
    copts.retry.backoff_initial = std::chrono::milliseconds(5);
    copts.retry.backoff_max = std::chrono::milliseconds(100);
    for (int i = 0; i < kClients; ++i) {
      clients.push_back(ms::ServerClient::connect_uds(sock_path(), copts));
      client_ids[i] =
          clients[i].open("e17/storm" + std::to_string(i)).id;
      clients[i].increment(client_ids[i]);
    }
    server.Stop();  // the crash
  }
  std::vector<double> done_ns(kClients, 0);
  std::atomic<bool> listener_up{false};
  Clock::time_point up_at{};
  std::vector<std::thread> storm;
  for (int i = 0; i < kClients; ++i) {
    storm.emplace_back([&, i] {
      clients[i].increment(client_ids[i]);  // blocks in recover()
      const auto now = Clock::now();
      if (!listener_up.load(std::memory_order_acquire)) {
        done_ns[i] = -1;  // acked before the restart?!
        return;
      }
      done_ns[i] =
          std::chrono::duration<double, std::nano>(now - up_at).count();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // downtime
  ms::CounterServer revived(e17_options());
  up_at = Clock::now();
  listener_up.store(true, std::memory_order_release);
  revived.Start();
  for (auto& t : storm) t.join();
  double worst = 0;
  for (const double d : done_ns) {
    if (d < 0) throw std::runtime_error("E17: increment acked with no server");
    worst = std::max(worst, d);
  }
  char wms[32];
  std::snprintf(wms, sizeof wms, "%.2f", worst / 1e6);
  TextTable stormt({"clients", "downtime ms", "worst reconnect ms"});
  stormt.add_row({std::to_string(kClients), "50", wms});
  bench::print(stormt);
  g_json.record_levels("server_retry_storm", "kill-restart", kClients, worst,
                       1, 0);
  clients.clear();
  revived.Stop();
  ::unlink(state_path().c_str());
  ::unlink((state_path() + ".journal").c_str());
}

}  // namespace
}  // namespace monotonic

int main(int argc, char** argv) {
  const auto opts = monotonic::bench::consume_common_flags(&argc, argv);
  monotonic::g_quick = opts.quick;
  monotonic::g_json = monotonic::bench::JsonlWriter(opts.json_path);
  monotonic::run_e16();
  monotonic::run_e17();
  return 0;
}

#endif  // _WIN32
