// bench_ordered_mutex — experiment E3 (§5.2).
//
// Mutual exclusion with sequential ordering: the counter buys
// determinism with concurrency.  The tables quantify both halves —
// (a) the lock version's results genuinely vary across runs while the
// counter version's never do, and (b) the counter's cost relative to a
// plain lock and to a FIFO ticket lock as the per-item work grows.

#include <chrono>
#include <set>
#include <thread>

#include "bench_util.hpp"
#include "monotonic/algos/accumulate.hpp"
#include "monotonic/support/rng.hpp"
#include "monotonic/sync/ticket_lock.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::median_ms;
using bench::note;

constexpr int kReps = 3;

void determinism_table() {
  banner("E3.a", "determinacy: distinct results over 30 runs");
  note("Summing order-sensitive doubles (§5.2's non-associative\n"
       "Accumulate).  The lock version's result set measures real\n"
       "schedule nondeterminism; the counter version must read 1.");
  const auto values = order_sensitive_values(256);
  AccumulateOptions options;
  options.num_threads = 4;
  options.compute_hook = [](std::size_t i) {
    if (i % 7 == 0) std::this_thread::yield();
  };

  std::set<double> lock_results, ordered_results;
  for (int run = 0; run < 30; ++run) {
    lock_results.insert(sum_lock(values, options));
    ordered_results.insert(sum_ordered(values, options));
  }
  TextTable table({"variant", "distinct results", "== sequential"});
  const double expected = sum_sequential(values);
  table.add_row({"lock (unordered)", cell(lock_results.size()),
                 lock_results == std::set<double>{expected} ? "yes" : "no"});
  table.add_row({"counter (ordered)", cell(ordered_results.size()),
                 ordered_results == std::set<double>{expected} ? "yes" : "no"});
  bench::print(table);
}

void cost_table() {
  banner("E3.b", "cost of ordering vs per-item work");
  note("\"The counter program has greater determinacy at the cost of\n"
       "less concurrency\" (§5.2).  As per-item compute grows, the\n"
       "serialization overhead washes out.");
  TextTable table({"items", "threads", "work us/item", "lock ms",
                   "ordered ms", "ordered/lock"});
  for (std::size_t work_us : {0u, 20u, 100u}) {
    for (std::size_t threads : {2u, 4u}) {
      const std::size_t items = 512;
      const auto values = order_sensitive_values(items);
      AccumulateOptions options;
      options.num_threads = threads;
      if (work_us > 0) {
        options.compute_hook = [work_us](std::size_t) {
          const auto end = std::chrono::steady_clock::now() +
                           std::chrono::microseconds(work_us);
          while (std::chrono::steady_clock::now() < end) {
          }
        };
      }
      const double lock_ms =
          median_ms(kReps, [&] { (void)sum_lock(values, options); });
      const double ordered_ms =
          median_ms(kReps, [&] { (void)sum_ordered(values, options); });
      table.add_row({cell(items), cell(threads), cell(work_us),
                     cell(lock_ms), cell(ordered_ms),
                     cell(ordered_ms / lock_ms, 2)});
    }
  }
  bench::print(table);
}

void ticket_comparison() {
  banner("E3.c", "FIFO fairness is not sequential ordering");
  note("A ticket lock grants in *arrival* order — itself a race — so\n"
       "its result still varies; the counter orders by index i.");
  const auto values = order_sensitive_values(256);
  std::set<double> ticket_results;
  Xoshiro256 salt_rng(99);
  for (int run = 0; run < 30; ++run) {
    double result = 0.0;
    TicketLock lock;
    const std::uint64_t salt = salt_rng();
    multithreaded_for(
        std::size_t{0}, std::size_t{4}, std::size_t{1},
        [&](std::size_t t) {
          for (std::size_t i = t * 64; i < (t + 1) * 64; ++i) {
            // Run-dependent jitter so arrival order actually varies.
            std::this_thread::sleep_for(
                std::chrono::microseconds(hash_index(salt, i) % 50));
            lock.lock();
            result += values[i];
            lock.unlock();
          }
        });
    ticket_results.insert(result);
  }
  TextTable table({"variant", "distinct results over 30 runs"});
  table.add_row({"ticket lock (FIFO)", cell(ticket_results.size())});
  bench::print(table);
}

}  // namespace
}  // namespace monotonic

int main() {
  monotonic::determinism_table();
  monotonic::cost_table();
  monotonic::ticket_comparison();
  return 0;
}
