// bench_broadcast — experiment E4 (§5.3).
//
// Single-writer multiple-reader broadcast: one counter vs one Condition
// per item, across reader counts and block sizes.  The §5.3 claims:
// (a) a single counter serves any number of readers at mixed
// granularities; (b) counter operations scale with blocks, not items;
// (c) the Condition-array baseline needs O(items) sync objects.

#include <atomic>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "monotonic/patterns/broadcast.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::median_ms;
using bench::note;

constexpr int kReps = 3;

double run_counter_channel(std::size_t items, std::size_t readers,
                           std::size_t writer_block, std::size_t reader_block,
                           CounterStatsSnapshot* stats_out = nullptr) {
  return median_ms(kReps, [&] {
    BroadcastChannel<std::uint64_t> channel(items);
    std::vector<std::function<void()>> bodies;
    bodies.emplace_back([&] {
      auto writer = channel.writer(writer_block);
      for (std::size_t i = 0; i < items; ++i) {
        writer.publish(i * 2654435761u);
      }
    });
    std::atomic<std::uint64_t> sink{0};
    for (std::size_t r = 0; r < readers; ++r) {
      bodies.emplace_back([&] {
        auto reader = channel.reader(reader_block);
        std::uint64_t sum = 0;
        reader.for_each(
            [&](std::size_t, const std::uint64_t& item) { sum += item; });
        sink += sum;
      });
    }
    multithreaded(std::move(bodies), Execution::kMultithreaded);
    if (stats_out != nullptr) *stats_out = channel.counter().stats();
  });
}

double run_condition_array(std::size_t items, std::size_t readers) {
  return median_ms(kReps, [&] {
    ConditionPerItemBroadcast<std::uint64_t> channel(items);
    std::vector<std::function<void()>> bodies;
    bodies.emplace_back([&] {
      for (std::size_t i = 0; i < items; ++i) {
        channel.publish(i, i * 2654435761u);
      }
    });
    std::atomic<std::uint64_t> sink{0};
    for (std::size_t r = 0; r < readers; ++r) {
      bodies.emplace_back([&] {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < items; ++i) sum += channel.get(i);
        sink += sum;
      });
    }
    multithreaded(std::move(bodies), Execution::kMultithreaded);
  });
}

void readers_table() {
  banner("E4.a", "counter channel vs Condition-per-item baseline");
  TextTable table({"items", "readers", "cond-array ms", "counter ms",
                   "counter/cond", "cond objects", "counter objects"});
  for (std::size_t items : {4096u, 16384u}) {
    for (std::size_t readers : {1u, 2u, 4u}) {
      const double cond_ms = run_condition_array(items, readers);
      const double counter_ms =
          run_counter_channel(items, readers, 1, 1);
      table.add_row({cell(items), cell(readers), cell(cond_ms),
                     cell(counter_ms), cell(counter_ms / cond_ms, 2),
                     cell(items), cell(1)});
    }
  }
  bench::print(table);
}

void block_size_table() {
  banner("E4.b", "blocked synchronization: ops scale with blocks (§5.3)");
  note("Counter operations drop as blockSize grows; wall time follows.\n"
       "\"There is no requirement that blockSize be the same in all\n"
       "threads\" — the last row mixes granularities.");
  TextTable table({"items", "block size", "counter ms", "increments",
                   "checks", "suspensions"});
  const std::size_t items = 16384;
  for (std::size_t block : {1u, 8u, 64u, 512u}) {
    CounterStatsSnapshot stats;
    const double ms = run_counter_channel(items, 2, block, block, &stats);
    table.add_row({cell(items), cell(block), cell(ms), cell(stats.increments),
                   cell(stats.checks), cell(stats.suspensions)});
  }
  // Mixed granularity: writer 64, readers 1 and 512.
  {
    const double ms = median_ms(kReps, [&] {
      BroadcastChannel<std::uint64_t> channel(items);
      std::atomic<std::uint64_t> sink{0};
      multithreaded_block(
          [&] {
            auto writer = channel.writer(64);
            for (std::size_t i = 0; i < items; ++i) writer.publish(i);
          },
          [&] {
            auto reader = channel.reader(1);
            std::uint64_t sum = 0;
            reader.for_each(
                [&](std::size_t, const std::uint64_t& v) { sum += v; });
            sink += sum;
          },
          [&] {
            auto reader = channel.reader(512);
            std::uint64_t sum = 0;
            reader.for_each(
                [&](std::size_t, const std::uint64_t& v) { sum += v; });
            sink += sum;
          });
    });
    table.add_row({cell(items), "mixed 64/1/512", cell(ms), "", "", ""});
  }
  bench::print(table);
}

}  // namespace
}  // namespace monotonic

int main() {
  monotonic::readers_table();
  monotonic::block_size_table();
  return 0;
}
