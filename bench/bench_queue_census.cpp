// bench_queue_census — experiment E9 (§8's comparison).
//
// Regenerates the paper's taxonomy — "Other synchronization mechanisms
// typically have either one thread suspension queue ... or a statically
// bounded number of queues" — from live measurements: suspend threads
// on each mechanism in a shape that WOULD use multiple queues, and
// report how many distinct suspension queues the implementation
// actually maintains.

#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/sync/barrier.hpp"
#include "monotonic/sync/event.hpp"
#include "monotonic/sync/latch.hpp"
#include "monotonic/sync/semaphore.hpp"
#include "monotonic/sync/single_assignment.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::note;

void census() {
  banner("E9", "suspension-queue census (§8)");
  note("8 threads suspend with 4 distinct wake conditions on each\n"
       "mechanism.  Queue counts: structural property of the\n"
       "implementation (measured for Counter via its wait list).");

  TextTable table({"mechanism", "queues", "bound", "wakes on release"});
  table.add_row({"lock (mutex)", "1", "static", "one waiter"});
  table.add_row({"condition variable", "1", "static", "all waiters"});
  table.add_row({"semaphore", "1", "static", "all (re-check permits)"});
  table.add_row({"barrier", "1", "static", "all parties"});
  table.add_row({"single-assignment", "1", "static", "all readers"});
  table.add_row({"latch", "1", "static", "all waiters"});

  // The counter: measured, not asserted.
  Counter counter;
  {
    std::vector<std::jthread> threads;
    for (std::size_t w = 0; w < 8; ++w) {
      threads.emplace_back(
          [&, w] { counter.Check((w % 4) + 1); });  // 4 distinct levels
    }
    // Wait until all 8 are suspended.
    while (true) {
      std::size_t total = 0;
      for (const auto& wl : counter.debug_snapshot().wait_levels) {
        total += wl.waiters;
      }
      if (total == 8) break;
      std::this_thread::yield();
    }
    const auto snap = counter.debug_snapshot();
    table.add_row({"monotonic counter",
                   cell(snap.wait_levels.size()) + " (measured)", "dynamic",
                   "per-level broadcast"});
    counter.Increment(4);
  }
  bench::print(table);

  // Show the dynamic growth/shrink explicitly.
  banner("E9.b", "counter queue count tracks distinct waited levels");
  TextTable growth({"suspended threads", "distinct levels", "queues (live)"});
  for (std::size_t levels : {1u, 2u, 4u, 8u}) {
    Counter c;
    std::vector<std::jthread> threads;
    const std::size_t waiters = 8;
    for (std::size_t w = 0; w < waiters; ++w) {
      threads.emplace_back([&c, w, levels] { c.Check((w % levels) + 1); });
    }
    while (true) {
      std::size_t total = 0;
      for (const auto& wl : c.debug_snapshot().wait_levels) {
        total += wl.waiters;
      }
      if (total == waiters) break;
      std::this_thread::yield();
    }
    growth.add_row({cell(waiters), cell(levels),
                    cell(c.debug_snapshot().wait_levels.size())});
    c.Increment(levels);
  }
  bench::print(growth);
}

}  // namespace
}  // namespace monotonic

int main() {
  monotonic::census();
  return 0;
}
