// bench_shared — experiment E14 (cross-process counters).
//
// Two workloads over a real shm_open segment with forked children:
//
//   E14.a shared_handoff     the E10.c 1:1 handoff chain, but the
//                            partner is a PROCESS, not a thread — every
//                            handoff pays a cross-process futex wake
//                            plus a context switch, so the per-handoff
//                            cost upper-bounds the in-process rows.
//   E14.b shared_kill_storm  W waiters parked at an unreachable level;
//                            a child registers, increments, and SIGKILLs
//                            itself mid-protocol.  The clock runs from
//                            the reaped death to the LAST waiter
//                            unwinding with CounterPoisonedError — the
//                            acceptance bound of the death detector
//                            (≤ one detect-period slice + sweep cost).
//
// Shapes to look for: handoff cost dominated by scheduling, not the
// protocol (compare E10.c futex rows); kill-storm latency pinned to
// the detect_period knob, flat in W (one sweep poisons everyone; the
// wake is a single FUTEX_WAKE broadcast).

#include <cstdio>

#include "bench_util.hpp"

#if defined(_WIN32)

int main(int argc, char** argv) {
  (void)monotonic::bench::consume_common_flags(&argc, argv);
  std::printf("bench_shared: POSIX-only (shm_open/fork); skipped\n");
  return 0;
}

#else  // POSIX

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/shared_counter.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::note;

constexpr int kReps = 3;
constexpr counter_value_t kNever = 1'000'000'000;

bool g_quick = false;
bench::JsonlWriter g_json;

// Fixed names keyed into BENCH_counter.json rows; unlinked before each
// use so a crashed earlier run can never leak a stale epoch in.
constexpr const char* kHandoffPing = "/mc-e14-ping";
constexpr const char* kHandoffPong = "/mc-e14-pong";
constexpr const char* kStormName = "/mc-e14-storm";

pid_t spawn_child(const std::function<int()>& body) {
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    int rc = 99;
    try {
      rc = body();
    } catch (...) {
    }
    ::_exit(rc);
  }
  return pid;
}

int wait_child(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

// E14.a — 1:1 handoff chain across a process boundary.  The parent
// increments ping and waits on pong; the child mirrors it.  Same shape
// as E10.c so the per-handoff numbers are directly comparable.
void shared_handoff() {
  const counter_value_t handoffs = g_quick ? 500 : 5000;
  banner("E14.a", "cross-process 1:1 handoff chain (" +
                      std::to_string(handoffs) + " handoffs)");
  note("The partner is a forked process on a real shm segment; each\n"
       "handoff is a cross-process futex wake + context switch.\n"
       "Compare the in-process futex row of E10.c for the floor.");
  TextTable table({"impl", "ms", "us/handoff"});
  const double ms = bench::median_ms(kReps, [&] {
    SharedCounter::Unlink(kHandoffPing);
    SharedCounter::Unlink(kHandoffPong);
    auto ping = SharedCounter::Create(kHandoffPing);
    auto pong = SharedCounter::Create(kHandoffPong);
    const pid_t child = spawn_child([&]() -> int {
      auto p1 = SharedCounter::Open(kHandoffPing);
      auto p2 = SharedCounter::Open(kHandoffPong);
      for (counter_value_t i = 1; i <= handoffs; ++i) {
        p1.Check(i);
        p2.Increment(1);
      }
      return 0;
    });
    for (counter_value_t i = 1; i <= handoffs; ++i) {
      ping.Increment(1);
      pong.Check(i);
    }
    const int status = wait_child(child);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      throw std::runtime_error("handoff child failed");
    }
  });
  table.add_row({"shared:/mc-e14", cell(ms),
                 cell(ms * 1000.0 / static_cast<double>(handoffs), 2)});
  g_json.record("shared_handoff", "shared:/mc-e14", 2,
                ms * 1e6 / static_cast<double>(handoffs), 1);
  bench::print(table);
  SharedCounter::Unlink(kHandoffPing);
  SharedCounter::Unlink(kHandoffPong);
}

// E14.b — kill storm: time from the reaped SIGKILL to the last parked
// waiter unwinding with CounterPoisonedError.
void shared_kill_storm() {
  banner("E14.b", "kill storm: SIGKILLed child -> last waiter poisoned");
  note("W parent threads park at an unreachable level (detect=25ms);\n"
       "the child registers, increments, and SIGKILLs itself mid-loop.\n"
       "t0 = waitpid() reaping the corpse; t1 = last waiter unwound.\n"
       "The detector bound is one detect-period slice + one sweep, so\n"
       "the column should sit near 25ms and stay flat in W.");
  TextTable table({"waiters", "ms to last wake", "ms/waiter"});
  SharedCounterOptions fast;
  fast.detect_period = std::chrono::milliseconds(25);
  const std::vector<int> waiter_counts =
      g_quick ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16};
  for (const int waiters : waiter_counts) {
    std::vector<double> samples;
    samples.reserve(kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      SharedCounter::Unlink(kStormName);
      auto parent = SharedCounter::Create(kStormName, fast);
      std::atomic<int> unwound{0};
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(waiters));
      for (int w = 0; w < waiters; ++w) {
        threads.emplace_back([&] {
          try {
            parent.Check(kNever);
          } catch (const CounterPoisonedError&) {
            unwound.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      // Park everyone before the death, so the clock measures the
      // detector, not thread spawn.
      while (parent.stats().suspensions <
             static_cast<std::uint64_t>(waiters)) {
        std::this_thread::yield();
      }
      const pid_t child = spawn_child([&]() -> int {
        auto c = SharedCounter::Open(kStormName, fast);
        for (int i = 0; i < 8; ++i) c.Increment(1);
        ::kill(::getpid(), SIGKILL);  // unclean: slot stays registered
        return 1;                     // unreachable
      });
      const int status = wait_child(child);
      if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
        throw std::runtime_error("storm child did not die by SIGKILL");
      }
      const auto t0 = std::chrono::steady_clock::now();
      while (unwound.load(std::memory_order_relaxed) < waiters) {
        std::this_thread::yield();
      }
      const auto t1 = std::chrono::steady_clock::now();
      for (auto& t : threads) t.join();
      samples.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    std::sort(samples.begin(), samples.end());
    const double ms = samples[samples.size() / 2];
    table.add_row({cell(waiters), cell(ms),
                   cell(ms / static_cast<double>(waiters), 3)});
    g_json.record("shared_kill_storm", "shared:/mc-e14,detect=25", waiters,
                  ms * 1e6 / static_cast<double>(waiters), 1);
  }
  bench::print(table);
  SharedCounter::Unlink(kStormName);
}

}  // namespace
}  // namespace monotonic

int main(int argc, char** argv) {
  const auto cli = monotonic::bench::consume_common_flags(&argc, argv);
  monotonic::g_quick = cli.quick;
  monotonic::g_json = monotonic::bench::JsonlWriter(cli.json_path);
  monotonic::shared_handoff();
  monotonic::shared_kill_storm();
  return 0;
}

#endif  // _WIN32
