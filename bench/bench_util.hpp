// bench_util.hpp — shared harness helpers for the experiment benches.
//
// Each bench binary regenerates one DESIGN.md experiment as a
// paper-style text table: run with no arguments, moderate default
// sizes, deterministic seeds.  Wall times are medians over several
// repetitions; structural counters (wakeups, nodes, suspensions) are
// exact and schedule-independent, which is what the shape claims rest
// on for a single-core host (DESIGN.md §3).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "monotonic/support/stats.hpp"
#include "monotonic/support/stopwatch.hpp"
#include "monotonic/support/table.hpp"

namespace monotonic::bench {

/// Median wall time (milliseconds) of `reps` runs of fn().
template <typename Fn>
double median_ms(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.elapsed_ms());
  }
  return summarize(samples).p50;
}

/// Prints an experiment banner matching EXPERIMENTS.md's headings.
inline void banner(const std::string& experiment_id,
                   const std::string& title) {
  std::printf("\n=== %s: %s ===\n\n", experiment_id.c_str(), title.c_str());
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

inline void print(const TextTable& table) {
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace monotonic::bench
