// bench_util.hpp — shared harness helpers for the experiment benches.
//
// Each bench binary regenerates one DESIGN.md experiment as a
// paper-style text table: run with no arguments, moderate default
// sizes, deterministic seeds.  Wall times are medians over several
// repetitions; structural counters (wakeups, nodes, suspensions) are
// exact and schedule-independent, which is what the shape claims rest
// on for a single-core host (DESIGN.md §3).
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "monotonic/support/stats.hpp"
#include "monotonic/support/stopwatch.hpp"
#include "monotonic/support/table.hpp"

namespace monotonic::bench {

/// Machine-readable bench output: one JSON object per line (JSONL),
/// appended to the path given via --json.  tools/run_bench.sh merges
/// the lines from all bench binaries into one BENCH_counter.json
/// array.  With an empty path every call is a no-op, so benches can
/// record unconditionally.
class JsonlWriter {
 public:
  JsonlWriter() = default;
  explicit JsonlWriter(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  /// Records one measurement row.  `op` is the workload name, `impl`
  /// the counter spec, `threads` the producer thread count, and
  /// `stripes` the value-plane stripe count (1 for unsharded).
  void record(const std::string& op, const std::string& impl, int threads,
              double ns_per_op, std::size_t stripes) const {
    record_levels(op, impl, threads, ns_per_op, stripes, 0);
  }

  /// Like record(), with the live-level count the row was measured at
  /// (the E13 wait-plane scaling axis).  `levels` == 0 means the axis
  /// does not apply and the field is omitted, so existing consumers
  /// (tools/check_bench.py key matching) see unchanged rows.
  void record_levels(const std::string& op, const std::string& impl,
                     int threads, double ns_per_op, std::size_t stripes,
                     std::size_t levels) const {
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) return;
    if (levels == 0) {
      std::fprintf(f,
                   "{\"op\":\"%s\",\"impl\":\"%s\",\"threads\":%d,"
                   "\"ns_per_op\":%.2f,\"stripes\":%zu}\n",
                   op.c_str(), impl.c_str(), threads, ns_per_op, stripes);
    } else {
      std::fprintf(f,
                   "{\"op\":\"%s\",\"impl\":\"%s\",\"threads\":%d,"
                   "\"ns_per_op\":%.2f,\"stripes\":%zu,\"levels\":%zu}\n",
                   op.c_str(), impl.c_str(), threads, ns_per_op, stripes,
                   levels);
    }
    std::fclose(f);
  }

 private:
  std::string path_;
};

/// Pulls `--json <path>` / `--json=<path>` and `--quick` out of argv
/// (compacting it in place) so bench mains can hand the remainder to
/// their own flag parsing (e.g. google-benchmark's Initialize).
struct BenchCliOptions {
  std::string json_path;
  bool quick = false;
};

inline BenchCliOptions consume_common_flags(int* argc, char** argv) {
  BenchCliOptions out;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      out.quick = true;
    } else if (arg == "--json" && i + 1 < *argc) {
      out.json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      out.json_path = arg.substr(7);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return out;
}

/// Median wall time (milliseconds) of `reps` runs of fn().
template <typename Fn>
double median_ms(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.elapsed_ms());
  }
  return summarize(samples).p50;
}

/// Prints an experiment banner matching EXPERIMENTS.md's headings.
inline void banner(const std::string& experiment_id,
                   const std::string& title) {
  std::printf("\n=== %s: %s ===\n\n", experiment_id.c_str(), title.c_str());
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

inline void print(const TextTable& table) {
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace monotonic::bench
