// bench_wavefront — extension experiment E11: 2-D dataflow on counters.
//
// (a) LCS wavefront: tile-size sweep — counter granularity tuned like
//     §5.3's blockSize; too-fine tiles drown in sync, too-coarse tiles
//     serialize the wavefront.
// (b) heat2d: global barrier vs per-strip counters under heterogeneous
//     strip stalls (the 2-D version of E2.b).

#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "monotonic/algos/heat2d.hpp"
#include "monotonic/algos/lcs.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::median_ms;
using bench::note;

constexpr int kReps = 3;

void lcs_tile_sweep() {
  banner("E11.a", "LCS wavefront: counter granularity (tile) sweep");
  note("One counter per tile-row; a Check/Increment pair per tile.\n"
       "Granularity trades sync ops against exposed concurrency, the\n"
       "same dial as §5.3's blockSize.");
  const auto a = random_string(1500, 4, 7);
  const auto b = random_string(1500, 4, 8);
  const double seq_ms =
      median_ms(kReps, [&] { (void)lcs_sequential(a, b); });

  TextTable table({"tile", "threads", "wavefront ms", "vs seq", "tiles"});
  for (std::size_t tile : {8u, 32u, 128u, 512u}) {
    for (std::size_t threads : {2u, 4u}) {
      const double ms = median_ms(
          kReps, [&] { (void)lcs_wavefront(a, b, threads, tile, tile); });
      const std::size_t tiles_per_side = (1500 + tile - 1) / tile;
      table.add_row({cell(tile), cell(threads), cell(ms),
                     cell(ms / seq_ms, 2),
                     cell(tiles_per_side * tiles_per_side)});
    }
  }
  std::printf("sequential: %.2f ms\n\n", seq_ms);
  bench::print(table);
}

void heat2d_comparison() {
  banner("E11.b", "heat2d: strip counters vs global barrier, skewed strips");
  note("Strip s stalls hash(s,t) mod 300us per step.  The barrier charges\n"
       "every step the max stall; strip counters overlap them.");
  TextTable table({"grid", "threads", "steps", "barrier ms", "ragged ms",
                   "barrier/ragged"});
  for (std::size_t size : {16u, 32u}) {
    Grid2D grid(size, size, 0.0);
    for (std::size_t c = 0; c < size; ++c) grid.at(0, c) = 100.0;
    Heat2dOptions options;
    options.steps = 40;
    options.num_threads = 4;
    options.strip_hook = [](std::size_t s, std::size_t t) {
      const auto stall = hash_index(s * 40503u + 11, t) % 300;
      std::this_thread::sleep_for(std::chrono::microseconds(stall));
    };
    const double barrier_ms =
        median_ms(kReps, [&] { (void)heat2d_barrier(grid, options); });
    const double ragged_ms =
        median_ms(kReps, [&] { (void)heat2d_ragged(grid, options); });
    table.add_row({cell(size) + "x" + cell(size), cell(4), cell(40),
                   cell(barrier_ms), cell(ragged_ms),
                   cell(barrier_ms / ragged_ms, 2)});
  }
  bench::print(table);
}

}  // namespace
}  // namespace monotonic

int main() {
  monotonic::lcs_tile_sweep();
  monotonic::heat2d_comparison();
  return 0;
}
