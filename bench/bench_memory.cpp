// bench_memory — experiment E6 (§7 storage claim + Figure 2 shape).
//
// "Although the number of different levels on which threads wait over
// the lifetime of the counter may be high, the number of levels at
// which threads are waiting at any given time is likely to be much
// lower."  The tables measure exactly that: lifetime distinct levels vs
// the live-node high-water mark, on synthetic shapes and on the real
// Floyd-Warshall run.

#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "monotonic/algos/floyd_warshall.hpp"
#include "monotonic/algos/graph.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/sync/latch.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::note;

void synthetic_table() {
  banner("E6.a", "lifetime levels vs live levels (synthetic walkers)");
  note("L rounds; in round s, W walkers suspend on W distinct levels and\n"
       "the producer releases the round only once all W are parked.\n"
       "Lifetime distinct levels = W*L; the wait list never exceeds W\n"
       "nodes, and the pool makes total allocations ~W, not W*L.");
  TextTable table({"walkers", "rounds", "lifetime levels", "max live nodes",
                   "fresh allocations", "pool reuses"});
  for (std::size_t walkers : {2u, 4u, 8u}) {
    for (std::size_t rounds : {64u, 256u}) {
      Counter counter;
      {
        std::vector<std::jthread> threads;
        for (std::size_t w = 0; w < walkers; ++w) {
          threads.emplace_back([&, w] {
            // In round s, walker w waits on level s*W + w + 1.
            for (std::size_t s = 0; s < rounds; ++s) {
              counter.Check(s * walkers + w + 1);
            }
          });
        }
        for (std::size_t s = 0; s < rounds; ++s) {
          // Release the round only when all W walkers are suspended
          // (or have raced past: count their checks instead).
          while (counter.stats().checks < (s + 1) * walkers) {
            std::this_thread::yield();
          }
          counter.Increment(walkers);
        }
      }
      const auto st = counter.stats();
      table.add_row({cell(walkers), cell(rounds), cell(walkers * rounds),
                     cell(st.max_live_nodes),
                     cell(st.nodes_allocated - st.nodes_pooled),
                     cell(st.nodes_pooled)});
    }
  }
  bench::print(table);
}

void fw_table() {
  banner("E6.b", "Floyd-Warshall: N lifetime levels, <=threads live");
  TextTable table({"N", "threads", "lifetime levels", "max live nodes",
                   "max live waiters", "pool hits"});
  for (std::size_t n : {64u, 128u, 256u}) {
    for (std::size_t threads : {2u, 4u, 8u}) {
      const auto edges = random_graph(n, {.seed = 40 + n});
      FwOptions options;
      options.num_threads = threads;
      Counter counter;
      (void)fw_counter_with(edges, options, counter);
      const auto s = counter.stats();
      table.add_row({cell(n), cell(threads), cell(n - 1),
                     cell(s.max_live_nodes), cell(s.max_live_waiters),
                     cell(s.nodes_pooled)});
    }
  }
  bench::print(table);
}

void figure2_table() {
  banner("E6.c", "Figure 2 trace (value, [level:waiters])");
  Counter c;
  TextTable table({"step", "operation", "value", "wait list"});
  auto snapshot_cell = [&] {
    std::string s;
    for (const auto& wl : c.debug_snapshot().wait_levels) {
      if (!s.empty()) s += " -> ";
      s += std::to_string(wl.level) + ":" + std::to_string(wl.waiters);
    }
    return s.empty() ? std::string("(empty)") : s;
  };
  auto wait_for_waiters = [&](std::size_t n) {
    for (;;) {
      std::size_t total = 0;
      for (const auto& wl : c.debug_snapshot().wait_levels) {
        total += wl.waiters;
      }
      if (total == n) return;
      std::this_thread::yield();
    }
  };

  table.add_row({"a", "construction", cell(c.debug_snapshot().value),
                 snapshot_cell()});
  std::jthread t1([&] { c.Check(5); });
  wait_for_waiters(1);
  table.add_row({"b", "T1: Check(5)", cell(c.debug_snapshot().value),
                 snapshot_cell()});
  std::jthread t2([&] { c.Check(9); });
  wait_for_waiters(2);
  table.add_row({"c", "T2: Check(9)", cell(c.debug_snapshot().value),
                 snapshot_cell()});
  std::jthread t3([&] { c.Check(5); });
  wait_for_waiters(3);
  table.add_row({"d", "T3: Check(5)", cell(c.debug_snapshot().value),
                 snapshot_cell()});
  c.Increment(7);
  t1.join();
  t3.join();
  table.add_row({"e-g", "T0: Increment(7); T1,T3 resume",
                 cell(c.debug_snapshot().value), snapshot_cell()});
  c.Increment(2);
  t2.join();
  table.add_row({"end", "T0: Increment(2); T2 resumes",
                 cell(c.debug_snapshot().value), snapshot_cell()});
  bench::print(table);
}

}  // namespace
}  // namespace monotonic

int main() {
  monotonic::synthetic_table();
  monotonic::fw_table();
  monotonic::figure2_table();
  return 0;
}
