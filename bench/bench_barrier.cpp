// bench_barrier — substrate validation for the §4.3/§5.1 baselines.
//
// The three barrier implementations (central condvar, atomic spin,
// combining tree) across party counts and round counts.  On one core
// the condvar barrier should dominate the spin barrier as soon as
// parties > 1 (every spin round burns the quantum of the thread that
// could make progress).

#include <benchmark/benchmark.h>

#include "monotonic/patterns/counter_barrier.hpp"
#include "monotonic/sync/barrier.hpp"
#include "monotonic/threads/pool.hpp"

namespace monotonic {
namespace {

constexpr int kRounds = 50;

void BM_CentralBarrier(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  ThreadTeam team(parties);
  for (auto _ : state) {
    CentralBarrier barrier(parties);
    team.run([&](std::size_t) {
      for (int r = 0; r < kRounds; ++r) barrier.Pass();
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_CentralBarrier)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_AtomicBarrier(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  ThreadTeam team(parties);
  for (auto _ : state) {
    AtomicBarrier barrier(parties);
    team.run([&](std::size_t) {
      for (int r = 0; r < kRounds; ++r) barrier.Pass();
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_AtomicBarrier)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

// The barrier built from one monotonic counter (patterns/counter_barrier):
// how does encoding rounds in a monotone value compare with
// sense-reversal?
void BM_CounterBarrier(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  ThreadTeam team(parties);
  for (auto _ : state) {
    CounterBarrier<> barrier(parties);
    team.run([&](std::size_t) {
      auto participant = barrier.participant();
      for (int r = 0; r < kRounds; ++r) participant.Pass();
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_CounterBarrier)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_TreeBarrier(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  ThreadTeam team(parties);
  for (auto _ : state) {
    TreeBarrier barrier(parties);
    team.run([&](std::size_t slot) {
      for (int r = 0; r < kRounds; ++r) barrier.Pass(slot);
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_TreeBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace monotonic

BENCHMARK_MAIN();
