// bench_determinism — experiment E7 (§6).
//
// Empirical determinism census: run each workload R times under
// scheduling perturbation and count distinct results.  Counter-
// synchronized programs must read 1; the lock-based §5.2 baseline
// exhibits genuine schedule dependence.  Also reports checker verdicts
// for the three §6 example programs.

#include <set>
#include <thread>

#include "bench_util.hpp"
#include "monotonic/algos/accumulate.hpp"
#include "monotonic/algos/compositions.hpp"
#include "monotonic/algos/floyd_warshall.hpp"
#include "monotonic/algos/graph.hpp"
#include "monotonic/algos/heat1d.hpp"
#include "monotonic/algos/heat2d.hpp"
#include "monotonic/algos/lcs.hpp"
#include "monotonic/algos/paraffins.hpp"
#include "monotonic/algos/sor.hpp"
#include "monotonic/determinacy/checked.hpp"
#include "monotonic/determinacy/recorder.hpp"
#include "monotonic/determinacy/tracked_counter.hpp"
#include "monotonic/sync/lock.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::note;

constexpr int kRuns = 20;

void workload_census() {
  banner("E7.a", "distinct results over 20 perturbed runs per workload");
  TextTable table({"workload", "sync", "distinct results", "deterministic"});

  auto row = [&](const std::string& name, const std::string& sync,
                 std::size_t distinct) {
    table.add_row({name, sync, cell(distinct), distinct == 1 ? "yes" : "no"});
  };

  {  // Floyd-Warshall, counter (§4.5)
    const auto edges = random_graph(32, {.seed = 1});
    std::set<std::string> results;
    for (int run = 0; run < kRuns; ++run) {
      FwOptions options;
      options.num_threads = 4;
      options.iteration_hook = [run](std::size_t t, std::size_t k) {
        if ((t + k + static_cast<std::size_t>(run)) % 3 == 0) {
          std::this_thread::yield();
        }
      };
      const auto paths = fw_counter(edges, options);
      std::string key;
      for (std::size_t i = 0; i < paths.size(); ++i) {
        for (std::size_t j = 0; j < paths.size(); ++j) {
          key += std::to_string(paths.at(i, j)) + ",";
        }
      }
      results.insert(key);
    }
    row("floyd-warshall 32x32", "counter", results.size());
  }

  {  // Heat simulation, ragged counter (§5.1)
    std::vector<double> rod(12, 0.0);
    rod.back() = 100.0;
    std::set<std::string> results;
    for (int run = 0; run < kRuns; ++run) {
      HeatOptions options{
          .steps = 50,
          .cell_hook =
              [run](std::size_t i, std::size_t t) {
                if ((i + t + static_cast<std::size_t>(run)) % 5 == 0) {
                  std::this_thread::yield();
                }
              },
          .telemetry = nullptr};
      const auto out = heat_ragged(rod, options);
      std::string key;
      for (double v : out) key += std::to_string(v) + ",";
      results.insert(key);
    }
    row("heat 12 cells x 50 steps", "ragged counter", results.size());
  }

  {  // Ordered vs lock sum (§5.2)
    const auto values = order_sensitive_values(128);
    AccumulateOptions options;
    options.num_threads = 4;
    options.compute_hook = [](std::size_t i) {
      if (i % 3 == 0) std::this_thread::yield();
    };
    std::set<double> ordered, locked;
    for (int run = 0; run < kRuns; ++run) {
      ordered.insert(sum_ordered(values, options));
      locked.insert(sum_lock(values, options));
    }
    row("fp sum 128 values", "counter sequencer", ordered.size());
    row("fp sum 128 values", "lock (baseline)", locked.size());
  }

  {  // Composition pipeline (§5.3 shape)
    std::set<std::uint64_t> results;
    for (int run = 0; run < kRuns; ++run) {
      const auto r =
          compositions_pipeline(10, 3, 2, Execution::kMultithreaded);
      results.insert(r.checksums.back());
    }
    row("compositions k<=10", "broadcast pipeline", results.size());
  }

  {  // LCS wavefront
    const auto a = random_string(120, 4, 2);
    const auto b = random_string(120, 4, 3);
    std::set<std::size_t> results;
    for (int run = 0; run < kRuns; ++run) {
      results.insert(lcs_wavefront(a, b, 4, 16, 16));
    }
    row("lcs 120x120", "wavefront counters", results.size());
  }

  {  // 2-D heat, strip counters
    Grid2D grid(10, 10, 0.0);
    for (std::size_t c = 0; c < 10; ++c) grid.at(0, c) = 50.0;
    std::set<std::string> results;
    for (int run = 0; run < kRuns; ++run) {
      Heat2dOptions options;
      options.steps = 20;
      options.num_threads = 4;
      options.strip_hook = [run](std::size_t s, std::size_t t) {
        if ((s + t + static_cast<std::size_t>(run)) % 3 == 0) {
          std::this_thread::yield();
        }
      };
      const auto out = heat2d_ragged(grid, options);
      std::string key;
      for (std::size_t r = 0; r < 10; ++r) {
        for (std::size_t c = 0; c < 10; ++c) {
          key += std::to_string(out.at(r, c)) + ",";
        }
      }
      results.insert(key);
    }
    row("heat2d 10x10 x 20 steps", "strip counters", results.size());
  }

  {  // red-black SOR, strip counters
    Grid2D grid(10, 10, 0.0);
    for (std::size_t c = 0; c < 10; ++c) grid.at(9, c) = 80.0;
    std::set<std::string> results;
    for (int run = 0; run < kRuns; ++run) {
      SorOptions options;
      options.iterations = 15;
      options.num_threads = 4;
      options.strip_hook = [run](std::size_t s, std::size_t h) {
        if ((s + h + static_cast<std::size_t>(run)) % 2 == 0) {
          std::this_thread::yield();
        }
      };
      const auto out = sor_ragged(grid, options);
      std::string key;
      for (std::size_t r = 0; r < 10; ++r) {
        for (std::size_t c = 0; c < 10; ++c) {
          key += std::to_string(out.at(r, c)) + ",";
        }
      }
      results.insert(key);
    }
    row("sor 10x10 x 15 iters", "strip counters", results.size());
  }

  {  // paraffins pipeline
    std::set<std::uint64_t> results;
    for (int run = 0; run < kRuns; ++run) {
      results.insert(
          paraffins_pipeline(9, 2, Execution::kMultithreaded)
              .radical_checksums.back());
    }
    row("paraffins C<=9", "broadcast pipeline", results.size());
  }

  bench::print(table);
}

void checker_verdicts() {
  banner("E7.b", "§6 example programs under the determinacy checker");
  TextTable table({"program", "races flagged", "verdict"});

  {  // §6 program 2: sequenced.
    RaceDetector detector;
    TrackedCounter<> c(detector);
    Checked<int> x(detector, "x", 3);
    multithreaded_block(
        [&] {
          c.Check(0);
          x.update([](int v) { return v + 1; });
          c.Increment(1);
        },
        [&] {
          c.Check(1);
          x.update([](int v) { return v * 2; });
          c.Increment(1);
        });
    table.add_row({"Check(0)/Check(1) sequenced", cell(detector.race_count()),
                   detector.race_count() == 0 ? "deterministic (certified)"
                                              : "UNEXPECTED"});
  }
  {  // §6 program 3: both Check(0).
    RaceDetector detector;
    TrackedCounter<> c(detector);
    Checked<int> x(detector, "x", 3);
    multithreaded_block(
        [&] {
          c.Check(0);
          x.update([](int v) { return v + 1; });
          c.Increment(1);
        },
        [&] {
          c.Check(0);
          x.update([](int v) { return v * 2; });
          c.Increment(1);
        });
    table.add_row({"both Check(0) (racy §6 ex.)", cell(detector.race_count()),
                   detector.race_count() > 0 ? "race detected (correct)"
                                             : "MISSED"});
  }
  {  // §6 program 1: lock only.
    RaceDetector detector;
    Checked<int> x(detector, "x", 3);
    Lock lock;
    multithreaded_block(
        [&] {
          std::scoped_lock hold(lock);
          x.update([](int v) { return v + 1; });
        },
        [&] {
          std::scoped_lock hold(lock);
          x.update([](int v) { return v * 2; });
        });
    table.add_row({"lock-guarded (no ordering)", cell(detector.race_count()),
                   detector.race_count() > 0
                       ? "unordered accesses flagged (correct)"
                       : "MISSED"});
  }
  bench::print(table);
  note("One clean checked execution certifies every execution for\n"
       "counter-only programs (§6 / Thornley [21]).");
}

}  // namespace
}  // namespace monotonic

int main() {
  monotonic::workload_census();
  monotonic::checker_verdicts();
  return 0;
}
