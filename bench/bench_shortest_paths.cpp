// bench_shortest_paths — experiment E1 (§4, programs 4.2-4.5).
//
// Regenerates the paper's Floyd-Warshall comparison: sequential,
// barrier, condition-variable-array, and counter variants over a sweep
// of graph sizes and thread counts, plus a load-imbalance column where
// one thread stalls per iteration (where §4.4/§4.5's ability to run
// ahead pays off).  Also reports the structural costs: number of
// synchronization objects and counter wait-list high-water mark.

#include <functional>
#include <thread>

#include "bench_util.hpp"
#include "monotonic/algos/floyd_warshall.hpp"
#include "monotonic/algos/graph.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::median_ms;
using bench::note;

constexpr int kReps = 3;

void time_table() {
  banner("E1.a", "Floyd-Warshall wall time by variant (§4.2-§4.5)");
  TextTable table({"N", "threads", "seq ms", "barrier ms", "cond-array ms",
                   "counter ms", "counter/barrier"});
  for (std::size_t n : {64u, 128u, 256u}) {
    const auto edges = random_graph(n, {.seed = 7 + n});
    const double seq_ms =
        median_ms(kReps, [&] { (void)fw_sequential(edges); });
    for (std::size_t threads : {2u, 4u, 8u}) {
      FwOptions options;
      options.num_threads = threads;
      const double barrier_ms =
          median_ms(kReps, [&] { (void)fw_barrier(edges, options); });
      const double cond_ms =
          median_ms(kReps, [&] { (void)fw_condition_array(edges, options); });
      const double counter_ms =
          median_ms(kReps, [&] { (void)fw_counter(edges, options); });
      table.add_row({cell(n), cell(threads), cell(seq_ms), cell(barrier_ms),
                     cell(cond_ms), cell(counter_ms),
                     cell(counter_ms / barrier_ms, 3)});
    }
  }
  bench::print(table);
}

void imbalance_table() {
  banner("E1.b", "heterogeneous stalls: 0-400us per (thread, iteration)");
  note("With a barrier, every iteration costs the MAX stall over the\n"
       "threads (they re-synchronize N times); with the counter or the\n"
       "condition array each thread pays only its OWN stalls and they\n"
       "overlap (§4.3's bottleneck vs §4.4's running ahead).");
  TextTable table({"N", "threads", "barrier ms", "cond-array ms",
                   "counter ms", "counter speedup"});
  for (std::size_t n : {64u, 128u}) {
    const auto edges = random_graph(n, {.seed = 21 + n});
    for (std::size_t threads : {2u, 4u}) {
      FwOptions options;
      options.num_threads = threads;
      options.iteration_hook = [](std::size_t t, std::size_t k) {
        // Deterministic pseudo-random stall in [0, 400) microseconds.
        const auto stall = hash_index(t * 1315423911u + 17, k) % 400;
        std::this_thread::sleep_for(std::chrono::microseconds(stall));
      };
      const double barrier_ms =
          median_ms(kReps, [&] { (void)fw_barrier(edges, options); });
      const double cond_ms =
          median_ms(kReps, [&] { (void)fw_condition_array(edges, options); });
      const double counter_ms =
          median_ms(kReps, [&] { (void)fw_counter(edges, options); });
      table.add_row({cell(n), cell(threads), cell(barrier_ms), cell(cond_ms),
                     cell(counter_ms), cell(barrier_ms / counter_ms, 2)});
    }
  }
  bench::print(table);
}

void structure_table() {
  banner("E1.c", "structural cost: sync objects and live wait levels");
  note("§4.4 allocates N Condition objects; §4.5 allocates ONE counter\n"
       "whose live wait-list is bounded by the thread count, not N.");
  TextTable table({"N", "threads", "cond objects", "counter objects",
                   "counter max live levels", "counter increments"});
  for (std::size_t n : {64u, 256u, 512u}) {
    const auto edges = random_graph(n, {.seed = 3 + n});
    for (std::size_t threads : {4u}) {
      FwOptions options;
      options.num_threads = threads;
      Counter counter;
      (void)fw_counter_with(edges, options, counter);
      const auto s = counter.stats();
      table.add_row({cell(n), cell(threads), cell(n), cell(1),
                     cell(s.max_live_nodes), cell(s.increments)});
    }
  }
  bench::print(table);
}

}  // namespace
}  // namespace monotonic

int main() {
  monotonic::time_table();
  monotonic::imbalance_table();
  monotonic::structure_table();
  return 0;
}
