// bench_ragged_barrier — experiment E2 (§5.1).
//
// The heat simulation under full barriers vs the counter ragged
// barrier.  On one core the headline is structural: the barrier makes
// 2*steps N-way rendezvous (suspension storms), while the ragged
// barrier only ever couples neighbours, and a slow cell delays its
// neighbourhood, not the world.

#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "monotonic/algos/heat1d.hpp"
#include "monotonic/support/rng.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::median_ms;
using bench::note;

constexpr int kReps = 3;

void time_table() {
  banner("E2.a", "1-D heat simulation: barrier vs ragged counter (§5.1)");
  TextTable table({"cells", "steps", "seq ms", "barrier ms", "ragged ms",
                   "ragged/barrier"});
  for (std::size_t cells : {8u, 16u, 32u}) {
    for (std::size_t steps : {100u, 400u}) {
      std::vector<double> rod(cells, 0.0);
      rod.front() = 100.0;
      const HeatOptions options{.steps = steps, .cell_hook = {}, .telemetry = nullptr};
      const double seq_ms =
          median_ms(kReps, [&] { (void)heat_sequential(rod, options); });
      const double barrier_ms =
          median_ms(kReps, [&] { (void)heat_barrier(rod, options); });
      const double ragged_ms =
          median_ms(kReps, [&] { (void)heat_ragged(rod, options); });
      table.add_row({cell(cells), cell(steps), cell(seq_ms), cell(barrier_ms),
                     cell(ragged_ms), cell(ragged_ms / barrier_ms, 3)});
    }
  }
  bench::print(table);
}

void imbalance_table() {
  banner("E2.b", "heterogeneous stalls: 0-400us per (cell, step)");
  note("With a barrier, every step costs the MAX stall over all cells\n"
       "(2 global rendezvous per step); with the ragged barrier a slow\n"
       "cell only delays its neighbourhood, so stalls overlap and the\n"
       "makespan tracks the per-cell MEAN instead of the global max.");
  TextTable table(
      {"cells", "steps", "barrier ms", "ragged ms", "barrier/ragged"});
  for (std::size_t cells : {8u, 16u}) {
    const std::size_t steps = 50;
    std::vector<double> rod(cells, 10.0);
    HeatOptions options{
        .steps = steps,
        .cell_hook =
            [](std::size_t i, std::size_t t) {
              const auto stall = hash_index(i * 2654435761u + 3, t) % 400;
              std::this_thread::sleep_for(std::chrono::microseconds(stall));
            },
        .telemetry = nullptr};
    const double barrier_ms =
        median_ms(kReps, [&] { (void)heat_barrier(rod, options); });
    const double ragged_ms =
        median_ms(kReps, [&] { (void)heat_ragged(rod, options); });
    table.add_row({cell(cells), cell(steps), cell(barrier_ms),
                   cell(ragged_ms), cell(barrier_ms / ragged_ms, 2)});
  }
  bench::print(table);
}

void structure_table() {
  banner("E2.c", "structural census: suspensions, broadcasts, queue shape");
  note("§5.1: \"the number of counters needed is proportional to the\n"
       "number of threads, not to the problem size\" — and each ragged\n"
       "counter's wait list never exceeds its two neighbours.");
  TextTable table({"cells", "steps", "variant", "sync objects",
                   "suspensions", "broadcasts", "max live levels/counter"});
  for (std::size_t cells : {8u, 16u, 32u}) {
    const std::size_t steps = 200;
    std::vector<double> rod(cells, 1.0);
    rod.back() = 50.0;

    HeatTelemetry barrier_t;
    (void)heat_barrier(rod, HeatOptions{.steps = steps,
                                        .cell_hook = {},
                                        .telemetry = &barrier_t});
    table.add_row({cell(cells), cell(steps), "barrier",
                   cell(barrier_t.sync_objects), cell(barrier_t.suspensions),
                   cell(barrier_t.wakeup_broadcasts), "n/a (one queue)"});

    HeatTelemetry ragged_t;
    (void)heat_ragged(rod, HeatOptions{.steps = steps,
                                       .cell_hook = {},
                                       .telemetry = &ragged_t});
    table.add_row({cell(cells), cell(steps), "ragged",
                   cell(ragged_t.sync_objects), cell(ragged_t.suspensions),
                   cell(ragged_t.wakeup_broadcasts),
                   cell(ragged_t.max_live_levels)});
  }
  bench::print(table);
}

}  // namespace
}  // namespace monotonic

int main() {
  monotonic::time_table();
  monotonic::imbalance_table();
  monotonic::structure_table();
  return 0;
}
