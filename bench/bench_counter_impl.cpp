// bench_counter_impl — experiment E10 (implementation ablation).
//
// The same workloads driven through every counter implementation:
// the §7 wait-list Counter (with and without node pooling), the
// single-CV broadcast baseline, the futex implementation, and the
// busy-wait implementation.  Shapes to look for: the wait-list wins on
// spurious wakeups as levels spread out; spin is hopeless when
// oversubscribed (threads >> cores); futex tracks single-CV but with
// cheaper uncontended ops.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "monotonic/algos/floyd_warshall.hpp"
#include "monotonic/algos/graph.hpp"
#include "monotonic/algos/heat1d.hpp"
#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/awaitable.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::median_ms;
using bench::note;

constexpr int kReps = 3;

// --quick (CI's bench-smoke job) shrinks workloads and skips the
// slowest ablations; --json records machine-readable rows.
bool g_quick = false;
bench::JsonlWriter g_json;

template <typename C>
void fw_row(TextTable& table, const std::string& name,
            const SquareMatrix& edges, const FwOptions& options,
            const std::function<C*()>& make) {
  const double ms = median_ms(kReps, [&] {
    std::unique_ptr<C> c(make());
    (void)fw_counter_with(edges, options, *c);
  });
  std::unique_ptr<C> c(make());
  (void)fw_counter_with(edges, options, *c);
  const auto s = c->stats();
  table.add_row({name, cell(ms), cell(s.suspensions),
                 cell(s.spurious_wakeups), cell(s.notifies)});
}

void fw_ablation() {
  banner("E10.a", "Floyd-Warshall (N=128, t=4) per implementation");
  TextTable table(
      {"impl", "ms", "suspensions", "spurious wakeups", "notifies"});
  const auto edges = random_graph(128, {.seed = 50});
  FwOptions options;
  options.num_threads = 4;

  fw_row<Counter>(table, "list", edges, options, [] { return new Counter(); });
  fw_row<Counter>(table, "list-nopool", edges, options, [] {
    Counter::Options o;
    o.pool_nodes = false;
    return new Counter(o);
  });
  fw_row<SingleCvCounter>(table, "single-cv", edges, options,
                          [] { return new SingleCvCounter(); });
  fw_row<FutexCounter>(table, "futex", edges, options,
                       [] { return new FutexCounter(); });
  fw_row<SpinCounter>(table, "spin", edges, options,
                      [] { return new SpinCounter(); });
  fw_row<HybridCounter>(table, "hybrid", edges, options,
                        [] { return new HybridCounter(); });
  fw_row<ShardedHybridCounter>(table, "sharded+hybrid", edges, options,
                               [] { return new ShardedHybridCounter(); });
  bench::print(table);
}

void heat_ablation() {
  banner("E10.b", "heat 16 cells x 200 steps per implementation");
  note("14 threads on one core: the busy-wait implementation pays for\n"
       "every spin; kernel-sleeping implementations schedule cleanly.");
  TextTable table({"impl", "ms"});
  std::vector<double> rod(16, 1.0);
  rod.front() = 100.0;
  const HeatOptions options{.steps = 200, .cell_hook = {}, .telemetry = {}};
  table.add_row({"list", cell(median_ms(kReps, [&] {
                   (void)heat_ragged_with<Counter>(rod, options);
                 }))});
  table.add_row({"single-cv", cell(median_ms(kReps, [&] {
                   (void)heat_ragged_with<SingleCvCounter>(rod, options);
                 }))});
  table.add_row({"futex", cell(median_ms(kReps, [&] {
                   (void)heat_ragged_with<FutexCounter>(rod, options);
                 }))});
  table.add_row({"spin", cell(median_ms(1, [&] {
                   (void)heat_ragged_with<SpinCounter>(rod, options);
                 }))});
  table.add_row({"hybrid", cell(median_ms(kReps, [&] {
                   (void)heat_ragged_with<HybridCounter>(rod, options);
                 }))});
  bench::print(table);
}

void handoff_ablation() {
  const counter_value_t handoffs = g_quick ? 2000 : 10000;
  banner("E10.c", "1:1 handoff chain latency (" +
                      std::to_string(handoffs) + " handoffs)");
  TextTable table({"impl", "ms", "us/handoff"});
  std::vector<std::string> specs;
  for (CounterKind kind : all_counter_kinds()) {
    specs.emplace_back(to_string(kind));
  }
  specs.emplace_back("sharded+hybrid");
  // Pooled vs unpooled: the handoff chain acquires one wait node per
  // ping, so preallocation ("pooled:N") decides whether the steady
  // state ever touches the allocator (list-nopool above is the other
  // extreme: every acquire pays the heap).
  specs.emplace_back("pooled:64+list");
  specs.emplace_back("pooled:64+hybrid");
  for (const std::string& spec : specs) {
    // Gated rows (check_bench.py): keep the median-of-kReps even in
    // quick mode — one sample of a contended handoff is gate noise.
    const double ms = median_ms(kReps, [&] {
      auto ping = make_counter(std::string_view(spec));
      auto pong = make_counter(std::string_view(spec));
      multithreaded_block(
          [&] {
            for (counter_value_t i = 1; i <= handoffs; ++i) {
              ping->Increment(1);
              pong->Check(i);
            }
          },
          [&] {
            for (counter_value_t i = 1; i <= handoffs; ++i) {
              ping->Check(i);
              pong->Increment(1);
            }
          });
    });
    table.add_row({spec, cell(ms),
                   cell(ms * 1000.0 / static_cast<double>(handoffs), 2)});
    const auto probe = make_counter(std::string_view(spec));
    g_json.record("handoff", spec, 2,
                  ms * 1e6 / static_cast<double>(handoffs),
                  probe->stripe_count());
  }
  bench::print(table);
}

void decorator_sweep() {
  banner("E10.d", "composed decorators: 4 writers x 50k increments");
  note("Every row is built from its spec string via make_counter(spec);\n"
       "the reader drives the type-erased CheckFor until the total lands.");
  TextTable table({"spec", "ms", "increments", "notifies", "suspensions"});
  constexpr int kWriters = 4;
  const counter_value_t kPerWriter = g_quick ? 5000 : 50000;
  const counter_value_t kTotal = kWriters * kPerWriter;
  const std::vector<std::string> specs = {
      "list",
      "list+traced",
      "hybrid",
      "hybrid+batching,batch=64",
      "list+broadcast,shards=4",
      "hybrid+batching,batch=64+traced",
      "sharded+hybrid",
      "sharded:8+hybrid+traced",
  };
  for (const std::string& spec : specs) {
    auto probe = make_counter(spec);
    const double ms = median_ms(g_quick ? 1 : kReps, [&] {
      auto c = make_counter(spec);
      std::atomic<bool> reached{false};
      c->OnReach(kTotal, [&reached] {
        reached.store(true, std::memory_order_relaxed);
      });
      std::vector<std::function<void()>> bodies;
      for (int w = 0; w < kWriters; ++w) {
        bodies.emplace_back([&] {
          for (counter_value_t i = 0; i < kPerWriter; ++i) c->Increment(1);
        });
      }
      bodies.emplace_back([&] {
        while (!c->CheckFor(kTotal, std::chrono::milliseconds(50))) {
        }
      });
      multithreaded(std::move(bodies), Execution::kMultithreaded);
    });
    // One instrumented run for the structural columns.
    {
      std::vector<std::function<void()>> bodies;
      for (int w = 0; w < kWriters; ++w) {
        bodies.emplace_back([&] {
          for (counter_value_t i = 0; i < kPerWriter; ++i)
            probe->Increment(1);
        });
      }
      // CheckFor loop, not a bare Check: with a batching decorator the
      // writers can exit leaving a sub-batch remainder in the buffer,
      // and a checker that parked untimed before the last flush would
      // wait forever.  Each CheckFor re-flushes, draining stragglers.
      bodies.emplace_back([&] {
        while (!probe->CheckFor(kTotal, std::chrono::milliseconds(50))) {
        }
      });
      multithreaded(std::move(bodies), Execution::kMultithreaded);
    }
    const auto s = probe->stats();
    table.add_row({probe->spec(), cell(ms), cell(s.increments),
                   cell(s.notifies), cell(s.suspensions)});
    g_json.record("decorator_sweep", probe->spec(), kWriters + 1,
                  ms * 1e6 / static_cast<double>(kTotal),
                  probe->stripe_count());
  }
  bench::print(table);
}

void poison_wake_latency() {
  banner("E10.e", "poison wake latency: Poison() -> last waiter resumed");
  note("Waiters park at distinct levels the counter never reaches; the\n"
       "controller poisons and the clock stops when the last waiter has\n"
       "unwound with CounterPoisonedError.  The failure path inherits\n"
       "each implementation's wake mechanism, so the ordering should\n"
       "track E10.c: spin resumes by polling, futex/cv pay a syscall\n"
       "per released level, single-cv broadcasts once.");
  TextTable table({"impl", "waiters=1", "w=4", "w=16", "w=64"});
  constexpr int kWaiterCounts[] = {1, 4, 16, 64};
  for (CounterKind kind : all_counter_kinds()) {
    std::vector<std::string> row{std::string(to_string(kind))};
    for (const int waiters : kWaiterCounts) {
      // Unlike the other rows the interval of interest starts inside
      // the rep (after all waiters are parked), so each rep clocks
      // itself and we take the median of the returned samples.
      std::vector<double> samples;
      samples.reserve(kReps);
      for (int rep = 0; rep < kReps; ++rep) {
        auto c = make_counter(kind);
        std::atomic<int> parked{0};
        std::atomic<int> unwound{0};
        std::vector<std::thread> threads;
        threads.reserve(waiters);
        for (int w = 0; w < waiters; ++w) {
          threads.emplace_back([&, w] {
            parked.fetch_add(1, std::memory_order_relaxed);
            try {
              c->Check(static_cast<counter_value_t>(1 + w % 8));
            } catch (const CounterPoisonedError&) {
              unwound.fetch_add(1, std::memory_order_relaxed);
            }
          });
        }
        // Wait until every waiter is structurally suspended, so the
        // measurement is wake latency, not thread-spawn latency.
        while (c->stats().suspensions <
               static_cast<std::uint64_t>(waiters)) {
          std::this_thread::yield();
        }
        const auto t0 = std::chrono::steady_clock::now();
        c->Poison(std::make_exception_ptr(
            std::runtime_error("bench poison")));
        while (unwound.load(std::memory_order_relaxed) < waiters) {
          std::this_thread::yield();
        }
        const auto t1 = std::chrono::steady_clock::now();
        for (auto& t : threads) t.join();
        samples.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      std::sort(samples.begin(), samples.end());
      row.push_back(cell(samples[samples.size() / 2], 3));
    }
    table.add_row(std::move(row));
  }
  bench::print(table);
}

void overload_storm() {
  const int kWaiters = g_quick ? 512 : 10000;
  banner("E12", "overload storm: " + std::to_string(kWaiters) +
                    " waiters vs max_waiters=256, per overload policy");
  note("Every thread Check()s a level the counter only reaches after the\n"
       "storm has fully formed.  kThrow sheds the excess as\n"
       "CounterOverloadedError; kSpinFallback degrades it to bounded\n"
       "relock-polling; kBlockIncrementers parks it on the admission\n"
       "gate.  'max parked' is the sleeping-waiter high-water mark and\n"
       "must never exceed the cap.");
  TextTable table(
      {"spec", "ms", "rejected", "degraded", "max parked"});
  const std::vector<std::string> specs = {
      "pooled:256+hybrid,max_waiters=256",
      "pooled:256+hybrid,max_waiters=256,overload=spin",
      "pooled:256+list,max_waiters=256,overload=block",
  };
  for (const std::string& spec : specs) {
    auto c = make_counter(std::string_view(spec));
    std::atomic<int> rejected{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(kWaiters));
    for (int w = 0; w < kWaiters; ++w) {
      threads.emplace_back([&] {
        try {
          c->Check(1);
        } catch (const CounterOverloadedError&) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // Let the storm form before the release, so the admission path —
    // not thread-spawn jitter — decides each waiter's fate.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    c->Increment(1);
    for (auto& t : threads) t.join();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const auto s = c->stats();
    table.add_row({spec, cell(ms), cell(rejected.load()),
                   cell(s.degraded_waits), cell(s.max_live_waiters)});
    g_json.record("overload_storm", spec, kWaiters,
                  ms * 1e6 / static_cast<double>(kWaiters),
                  c->stripe_count());
  }
  bench::print(table);
}

void overload_storm_scaled() {
  const std::size_t kArmed = g_quick ? 10'000 : 1'000'000;
  banner("E12.b", "scaled storm: " + std::to_string(kArmed) +
                      " open-loop armed waiters, heap wait plane");
  note("Past ~10k the storm cannot be real threads; each armed waiter\n"
       "is an OnReach registration at its own level — the same wait-\n"
       "plane node a parked thread would hold.  The heap index arms in\n"
       "O(log L); the single Increment peels all L levels ascending in\n"
       "one bulk pass.  (The §7 list would pay O(L^2) to arm this\n"
       "ascending sequence — E13 charts that wall.)");
  TextTable table({"spec", "arm ms", "wake ms", "ns/wake"});
  for (const char* spec : {"hybrid,waitplane=heap:8"}) {
    auto c = make_counter(std::string_view(spec));
    std::atomic<std::size_t> fired{0};
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 1; i <= kArmed; ++i) {
      c->OnReach(static_cast<counter_value_t>(i),
                 [&fired] { fired.fetch_add(1, std::memory_order_relaxed); });
    }
    const auto t1 = std::chrono::steady_clock::now();
    c->Increment(static_cast<counter_value_t>(kArmed));
    const auto t2 = std::chrono::steady_clock::now();
    if (fired.load(std::memory_order_relaxed) != kArmed) {
      throw std::runtime_error("scaled storm lost a waiter");
    }
    const double arm_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double wake_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    const double ns_per_wake =
        wake_ms * 1e6 / static_cast<double>(kArmed);
    table.add_row({spec, cell(arm_ms), cell(wake_ms), cell(ns_per_wake, 1)});
    g_json.record_levels("overload_storm_scaled", spec, 1, ns_per_wake,
                         c->stripe_count(), kArmed);
  }
  bench::print(table);
}

void wait_plane_scaling() {
  banner("E13", "wait-plane scaling: marginal arm + bulk wake vs live levels");
  note("L live levels are built by open-loop OnReach arming (descending,\n"
       "so the §7 list pays O(1) per insert — ascending would be the\n"
       "O(L^2) wall).  'arm us' is the marginal cost of arming a fresh\n"
       "interior level: the list walks O(L) nodes to find its slot, the\n"
       "heap index sifts O(log L).  'wake ns' is the per-level cost of\n"
       "the one Increment that releases everything.");
  TextTable table({"impl", "levels", "build ms", "arm us", "wake ns"});
  const std::vector<std::size_t> sizes =
      g_quick ? std::vector<std::size_t>{1'000, 10'000}
              : std::vector<std::size_t>{1'000, 10'000, 100'000, 1'000'000};
  constexpr int kProbes = 16;
  // One wake is a single Increment, so a lone cycle is one sample of a
  // noisy clock; the committed rows are the median of kCycles fresh
  // build-probe-wake cycles per (size, spec) cell.
  constexpr int kCycles = 3;
  const auto median_of = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  for (const std::size_t levels : sizes) {
    for (const char* spec : {"hybrid", "hybrid,waitplane=heap:8"}) {
      std::vector<double> builds, arms, wakes;
      std::size_t stripes = 1;
      for (int cycle = 0; cycle < kCycles; ++cycle) {
        auto c = make_counter(std::string_view(spec));
        stripes = c->stripe_count();
        std::atomic<std::size_t> fired{0};
        const auto cb = [&fired] {
          fired.fetch_add(1, std::memory_order_relaxed);
        };
        // Live levels sit at even values; probes use odd values so
        // each lands at a fresh interior position.
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = levels; i >= 1; --i) {
          c->OnReach(static_cast<counter_value_t>(2 * i), cb);
        }
        const auto t1 = std::chrono::steady_clock::now();
        std::uint64_t rng = 0x9e3779b97f4a7c15ull;  // fixed-seed splitmix64
        const auto t2 = std::chrono::steady_clock::now();
        for (int p = 0; p < kProbes; ++p) {
          rng += 0x9e3779b97f4a7c15ull;
          std::uint64_t z = rng;
          z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
          z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
          z ^= z >> 31;
          const counter_value_t probe =
              static_cast<counter_value_t>(2 * (z % levels) + 1);
          c->OnReach(probe, cb);
        }
        const auto t3 = std::chrono::steady_clock::now();
        c->Increment(static_cast<counter_value_t>(2 * levels + 1));
        const auto t4 = std::chrono::steady_clock::now();
        if (fired.load(std::memory_order_relaxed) != levels + kProbes) {
          throw std::runtime_error("E13 lost a waiter");
        }
        builds.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        arms.push_back(
            std::chrono::duration<double, std::micro>(t3 - t2).count() /
            kProbes);
        wakes.push_back(
            std::chrono::duration<double, std::nano>(t4 - t3).count() /
            static_cast<double>(levels + kProbes));
      }
      const double build_ms = median_of(builds);
      const double arm_us = median_of(arms);
      const double wake_ns = median_of(wakes);
      table.add_row({spec, cell(levels), cell(build_ms), cell(arm_us, 2),
                     cell(wake_ns, 1)});
      g_json.record_levels("wait_arm", spec, 1, arm_us * 1000.0, stripes,
                           levels);
      g_json.record_levels("wait_wake", spec, 1, wake_ns, stripes, levels);
    }
  }
  bench::print(table);
}

// --- E15: the completion plane ---------------------------------------

// One logical waiter as a coroutine frame: suspends on the level,
// bumps the tally when resumed.  The frame plus its await state is the
// entire per-waiter footprint — no stack, no kernel object.
DetachedTask bench_await_one(AnyCounter& c, counter_value_t level,
                             std::atomic<std::size_t>& fired) {
  co_await reach(c, level);
  fired.fetch_add(1, std::memory_order_relaxed);
}

void completion_scaling() {
  banner("E15", "logical-waiter scaling: co_await / OnReach / parked threads");
  note("The same wait — N waiters at N distinct levels, one bulk\n"
       "release — expressed three ways.  co_await and OnReach arm heap-\n"
       "plane callback nodes (bytes per waiter), so they scale to 10^6;\n"
       "parked threads carry megabytes of stack each, so that row stops\n"
       "at 1000 and exists to show WHY the completion plane is the cheap\n"
       "way to be a million waiters.");
  TextTable table({"waiter", "count", "arm us", "wake ns"});
  const std::size_t big = g_quick ? 10'000 : 1'000'000;
  const char* spec = "hybrid,waitplane=heap:8";
  for (const char* mode : {"coawait", "onreach"}) {
    auto c = make_counter(std::string_view(spec));
    std::atomic<std::size_t> fired{0};
    const auto t0 = std::chrono::steady_clock::now();
    // Descending arming, matching E13's O(1)-insert discipline.
    for (std::size_t i = big; i >= 1; --i) {
      if (mode[0] == 'c') {
        bench_await_one(*c, static_cast<counter_value_t>(i), fired);
      } else {
        c->OnReach(static_cast<counter_value_t>(i),
                   [&fired] { fired.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    c->Increment(static_cast<counter_value_t>(big));
    const auto t2 = std::chrono::steady_clock::now();
    if (fired.load(std::memory_order_relaxed) != big) {
      throw std::runtime_error("E15 lost a waiter");
    }
    const double arm_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(big);
    const double wake_ns =
        std::chrono::duration<double, std::nano>(t2 - t1).count() /
        static_cast<double>(big);
    table.add_row({mode, cell(big), cell(arm_us, 2), cell(wake_ns, 1)});
    g_json.record_levels("complete_arm", mode, 1, arm_us * 1000.0, 1, big);
    g_json.record_levels("complete_wake", mode, 1, wake_ns, 1, big);
  }
  {
    const std::size_t nthreads = g_quick ? 128 : 1'000;
    auto c = make_counter(std::string_view("hybrid"));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (std::size_t i = 1; i <= nthreads; ++i) {
      threads.emplace_back(
          [&c, i] { c->Check(static_cast<counter_value_t>(i)); });
    }
    const auto t1 = std::chrono::steady_clock::now();
    c->Increment(static_cast<counter_value_t>(nthreads));
    for (auto& t : threads) t.join();
    const auto t2 = std::chrono::steady_clock::now();
    const double arm_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(nthreads);
    const double wake_ns =
        std::chrono::duration<double, std::nano>(t2 - t1).count() /
        static_cast<double>(nthreads);
    table.add_row({"thread", cell(nthreads), cell(arm_us, 2),
                   cell(wake_ns, 1)});
    g_json.record_levels("complete_arm", "thread", 1, arm_us * 1000.0, 1,
                         nthreads);
    g_json.record_levels("complete_wake", "thread", 1, wake_ns, 1, nthreads);
  }
  bench::print(table);
}

void slow_callback_interference() {
  banner("E15.b", "slow (1 ms) OnReach callback: incrementer interference");
  note("Every level 1..N carries a 1 ms callback.  Inline delivery bills\n"
       "the millisecond to the incrementing thread; executor=pool:1 hands\n"
       "the chain to a worker, so Increment's cost returns to the\n"
       "no-callback baseline (the 'none' row).");
  TextTable table({"delivery", "inc us"});
  const int kOps = g_quick ? 20 : 200;
  struct Leg {
    const char* label;
    const char* spec;
    bool arm;
  };
  for (const Leg leg : {Leg{"none", "hybrid", false},
                        Leg{"inline", "hybrid", true},
                        Leg{"pool:1", "hybrid,executor=pool:1", true}}) {
    auto c = make_counter(std::string_view(leg.spec));
    if (leg.arm) {
      for (int i = 1; i <= kOps; ++i) {
        c->OnReach(static_cast<counter_value_t>(i), [] {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        });
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) c->Increment(1);
    const auto t1 = std::chrono::steady_clock::now();
    const double inc_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kOps;
    table.add_row({leg.label, cell(inc_us, 2)});
    g_json.record("slow_cb_increment", leg.label, 1, inc_us * 1000.0, 1);
    // The pool leg's counter still owns ~kOps queued milliseconds of
    // callback; its destructor drains them before the next leg runs.
  }
  bench::print(table);
}

}  // namespace
}  // namespace monotonic

int main(int argc, char** argv) {
  const auto cli = monotonic::bench::consume_common_flags(&argc, argv);
  monotonic::g_quick = cli.quick;
  monotonic::g_json = monotonic::bench::JsonlWriter(cli.json_path);
  if (!monotonic::g_quick) {
    // The slowest ablations add nothing to the smoke signal.
    monotonic::fw_ablation();
    monotonic::heat_ablation();
  }
  monotonic::handoff_ablation();
  monotonic::decorator_sweep();
  if (!monotonic::g_quick) {
    monotonic::poison_wake_latency();
  }
  // Runs in quick mode too: --quick shrinks the storm to 512 waiters.
  monotonic::overload_storm();
  // E12.b scales the storm to 1M open-loop armed waiters (quick: 10k);
  // E13 charts arm/wake latency against the live-level count for both
  // wait planes (quick caps the axis at 10^4).
  monotonic::overload_storm_scaled();
  monotonic::wait_plane_scaling();
  // E15: the completion plane — logical-waiter scaling and the
  // slow-callback interference ablation (quick shrinks both axes).
  monotonic::completion_scaling();
  monotonic::slow_callback_interference();
  return 0;
}
