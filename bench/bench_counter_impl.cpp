// bench_counter_impl — experiment E10 (implementation ablation).
//
// The same workloads driven through every counter implementation:
// the §7 wait-list Counter (with and without node pooling), the
// single-CV broadcast baseline, the futex implementation, and the
// busy-wait implementation.  Shapes to look for: the wait-list wins on
// spurious wakeups as levels spread out; spin is hopeless when
// oversubscribed (threads >> cores); futex tracks single-CV but with
// cheaper uncontended ops.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "monotonic/algos/floyd_warshall.hpp"
#include "monotonic/algos/graph.hpp"
#include "monotonic/algos/heat1d.hpp"
#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/threads/structured.hpp"

namespace monotonic {
namespace {

using bench::banner;
using bench::median_ms;
using bench::note;

constexpr int kReps = 3;

// --quick (CI's bench-smoke job) shrinks workloads and skips the
// slowest ablations; --json records machine-readable rows.
bool g_quick = false;
bench::JsonlWriter g_json;

template <typename C>
void fw_row(TextTable& table, const std::string& name,
            const SquareMatrix& edges, const FwOptions& options,
            const std::function<C*()>& make) {
  const double ms = median_ms(kReps, [&] {
    std::unique_ptr<C> c(make());
    (void)fw_counter_with(edges, options, *c);
  });
  std::unique_ptr<C> c(make());
  (void)fw_counter_with(edges, options, *c);
  const auto s = c->stats();
  table.add_row({name, cell(ms), cell(s.suspensions),
                 cell(s.spurious_wakeups), cell(s.notifies)});
}

void fw_ablation() {
  banner("E10.a", "Floyd-Warshall (N=128, t=4) per implementation");
  TextTable table(
      {"impl", "ms", "suspensions", "spurious wakeups", "notifies"});
  const auto edges = random_graph(128, {.seed = 50});
  FwOptions options;
  options.num_threads = 4;

  fw_row<Counter>(table, "list", edges, options, [] { return new Counter(); });
  fw_row<Counter>(table, "list-nopool", edges, options, [] {
    Counter::Options o;
    o.pool_nodes = false;
    return new Counter(o);
  });
  fw_row<SingleCvCounter>(table, "single-cv", edges, options,
                          [] { return new SingleCvCounter(); });
  fw_row<FutexCounter>(table, "futex", edges, options,
                       [] { return new FutexCounter(); });
  fw_row<SpinCounter>(table, "spin", edges, options,
                      [] { return new SpinCounter(); });
  fw_row<HybridCounter>(table, "hybrid", edges, options,
                        [] { return new HybridCounter(); });
  fw_row<ShardedHybridCounter>(table, "sharded+hybrid", edges, options,
                               [] { return new ShardedHybridCounter(); });
  bench::print(table);
}

void heat_ablation() {
  banner("E10.b", "heat 16 cells x 200 steps per implementation");
  note("14 threads on one core: the busy-wait implementation pays for\n"
       "every spin; kernel-sleeping implementations schedule cleanly.");
  TextTable table({"impl", "ms"});
  std::vector<double> rod(16, 1.0);
  rod.front() = 100.0;
  const HeatOptions options{.steps = 200, .cell_hook = {}, .telemetry = {}};
  table.add_row({"list", cell(median_ms(kReps, [&] {
                   (void)heat_ragged_with<Counter>(rod, options);
                 }))});
  table.add_row({"single-cv", cell(median_ms(kReps, [&] {
                   (void)heat_ragged_with<SingleCvCounter>(rod, options);
                 }))});
  table.add_row({"futex", cell(median_ms(kReps, [&] {
                   (void)heat_ragged_with<FutexCounter>(rod, options);
                 }))});
  table.add_row({"spin", cell(median_ms(1, [&] {
                   (void)heat_ragged_with<SpinCounter>(rod, options);
                 }))});
  table.add_row({"hybrid", cell(median_ms(kReps, [&] {
                   (void)heat_ragged_with<HybridCounter>(rod, options);
                 }))});
  bench::print(table);
}

void handoff_ablation() {
  const counter_value_t handoffs = g_quick ? 2000 : 10000;
  banner("E10.c", "1:1 handoff chain latency (" +
                      std::to_string(handoffs) + " handoffs)");
  TextTable table({"impl", "ms", "us/handoff"});
  std::vector<std::string> specs;
  for (CounterKind kind : all_counter_kinds()) {
    specs.emplace_back(to_string(kind));
  }
  specs.emplace_back("sharded+hybrid");
  // Pooled vs unpooled: the handoff chain acquires one wait node per
  // ping, so preallocation ("pooled:N") decides whether the steady
  // state ever touches the allocator (list-nopool above is the other
  // extreme: every acquire pays the heap).
  specs.emplace_back("pooled:64+list");
  specs.emplace_back("pooled:64+hybrid");
  for (const std::string& spec : specs) {
    const double ms = median_ms(g_quick ? 1 : kReps, [&] {
      auto ping = make_counter(std::string_view(spec));
      auto pong = make_counter(std::string_view(spec));
      multithreaded_block(
          [&] {
            for (counter_value_t i = 1; i <= handoffs; ++i) {
              ping->Increment(1);
              pong->Check(i);
            }
          },
          [&] {
            for (counter_value_t i = 1; i <= handoffs; ++i) {
              ping->Check(i);
              pong->Increment(1);
            }
          });
    });
    table.add_row({spec, cell(ms),
                   cell(ms * 1000.0 / static_cast<double>(handoffs), 2)});
    const auto probe = make_counter(std::string_view(spec));
    g_json.record("handoff", spec, 2,
                  ms * 1e6 / static_cast<double>(handoffs),
                  probe->stripe_count());
  }
  bench::print(table);
}

void decorator_sweep() {
  banner("E10.d", "composed decorators: 4 writers x 50k increments");
  note("Every row is built from its spec string via make_counter(spec);\n"
       "the reader drives the type-erased CheckFor until the total lands.");
  TextTable table({"spec", "ms", "increments", "notifies", "suspensions"});
  constexpr int kWriters = 4;
  const counter_value_t kPerWriter = g_quick ? 5000 : 50000;
  const counter_value_t kTotal = kWriters * kPerWriter;
  const std::vector<std::string> specs = {
      "list",
      "list+traced",
      "hybrid",
      "hybrid+batching,batch=64",
      "list+broadcast,shards=4",
      "hybrid+batching,batch=64+traced",
      "sharded+hybrid",
      "sharded:8+hybrid+traced",
  };
  for (const std::string& spec : specs) {
    auto probe = make_counter(spec);
    const double ms = median_ms(g_quick ? 1 : kReps, [&] {
      auto c = make_counter(spec);
      std::atomic<bool> reached{false};
      c->OnReach(kTotal, [&reached] {
        reached.store(true, std::memory_order_relaxed);
      });
      std::vector<std::function<void()>> bodies;
      for (int w = 0; w < kWriters; ++w) {
        bodies.emplace_back([&] {
          for (counter_value_t i = 0; i < kPerWriter; ++i) c->Increment(1);
        });
      }
      bodies.emplace_back([&] {
        while (!c->CheckFor(kTotal, std::chrono::milliseconds(50))) {
        }
      });
      multithreaded(std::move(bodies), Execution::kMultithreaded);
    });
    // One instrumented run for the structural columns.
    {
      std::vector<std::function<void()>> bodies;
      for (int w = 0; w < kWriters; ++w) {
        bodies.emplace_back([&] {
          for (counter_value_t i = 0; i < kPerWriter; ++i)
            probe->Increment(1);
        });
      }
      // CheckFor loop, not a bare Check: with a batching decorator the
      // writers can exit leaving a sub-batch remainder in the buffer,
      // and a checker that parked untimed before the last flush would
      // wait forever.  Each CheckFor re-flushes, draining stragglers.
      bodies.emplace_back([&] {
        while (!probe->CheckFor(kTotal, std::chrono::milliseconds(50))) {
        }
      });
      multithreaded(std::move(bodies), Execution::kMultithreaded);
    }
    const auto s = probe->stats();
    table.add_row({probe->spec(), cell(ms), cell(s.increments),
                   cell(s.notifies), cell(s.suspensions)});
    g_json.record("decorator_sweep", probe->spec(), kWriters + 1,
                  ms * 1e6 / static_cast<double>(kTotal),
                  probe->stripe_count());
  }
  bench::print(table);
}

void poison_wake_latency() {
  banner("E10.e", "poison wake latency: Poison() -> last waiter resumed");
  note("Waiters park at distinct levels the counter never reaches; the\n"
       "controller poisons and the clock stops when the last waiter has\n"
       "unwound with CounterPoisonedError.  The failure path inherits\n"
       "each implementation's wake mechanism, so the ordering should\n"
       "track E10.c: spin resumes by polling, futex/cv pay a syscall\n"
       "per released level, single-cv broadcasts once.");
  TextTable table({"impl", "waiters=1", "w=4", "w=16", "w=64"});
  constexpr int kWaiterCounts[] = {1, 4, 16, 64};
  for (CounterKind kind : all_counter_kinds()) {
    std::vector<std::string> row{std::string(to_string(kind))};
    for (const int waiters : kWaiterCounts) {
      // Unlike the other rows the interval of interest starts inside
      // the rep (after all waiters are parked), so each rep clocks
      // itself and we take the median of the returned samples.
      std::vector<double> samples;
      samples.reserve(kReps);
      for (int rep = 0; rep < kReps; ++rep) {
        auto c = make_counter(kind);
        std::atomic<int> parked{0};
        std::atomic<int> unwound{0};
        std::vector<std::thread> threads;
        threads.reserve(waiters);
        for (int w = 0; w < waiters; ++w) {
          threads.emplace_back([&, w] {
            parked.fetch_add(1, std::memory_order_relaxed);
            try {
              c->Check(static_cast<counter_value_t>(1 + w % 8));
            } catch (const CounterPoisonedError&) {
              unwound.fetch_add(1, std::memory_order_relaxed);
            }
          });
        }
        // Wait until every waiter is structurally suspended, so the
        // measurement is wake latency, not thread-spawn latency.
        while (c->stats().suspensions <
               static_cast<std::uint64_t>(waiters)) {
          std::this_thread::yield();
        }
        const auto t0 = std::chrono::steady_clock::now();
        c->Poison(std::make_exception_ptr(
            std::runtime_error("bench poison")));
        while (unwound.load(std::memory_order_relaxed) < waiters) {
          std::this_thread::yield();
        }
        const auto t1 = std::chrono::steady_clock::now();
        for (auto& t : threads) t.join();
        samples.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      std::sort(samples.begin(), samples.end());
      row.push_back(cell(samples[samples.size() / 2], 3));
    }
    table.add_row(std::move(row));
  }
  bench::print(table);
}

void overload_storm() {
  const int kWaiters = g_quick ? 512 : 10000;
  banner("E12", "overload storm: " + std::to_string(kWaiters) +
                    " waiters vs max_waiters=256, per overload policy");
  note("Every thread Check()s a level the counter only reaches after the\n"
       "storm has fully formed.  kThrow sheds the excess as\n"
       "CounterOverloadedError; kSpinFallback degrades it to bounded\n"
       "relock-polling; kBlockIncrementers parks it on the admission\n"
       "gate.  'max parked' is the sleeping-waiter high-water mark and\n"
       "must never exceed the cap.");
  TextTable table(
      {"spec", "ms", "rejected", "degraded", "max parked"});
  const std::vector<std::string> specs = {
      "pooled:256+hybrid,max_waiters=256",
      "pooled:256+hybrid,max_waiters=256,overload=spin",
      "pooled:256+list,max_waiters=256,overload=block",
  };
  for (const std::string& spec : specs) {
    auto c = make_counter(std::string_view(spec));
    std::atomic<int> rejected{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(kWaiters));
    for (int w = 0; w < kWaiters; ++w) {
      threads.emplace_back([&] {
        try {
          c->Check(1);
        } catch (const CounterOverloadedError&) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // Let the storm form before the release, so the admission path —
    // not thread-spawn jitter — decides each waiter's fate.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    c->Increment(1);
    for (auto& t : threads) t.join();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const auto s = c->stats();
    table.add_row({spec, cell(ms), cell(rejected.load()),
                   cell(s.degraded_waits), cell(s.max_live_waiters)});
    g_json.record("overload_storm", spec, kWaiters,
                  ms * 1e6 / static_cast<double>(kWaiters),
                  c->stripe_count());
  }
  bench::print(table);
}

}  // namespace
}  // namespace monotonic

int main(int argc, char** argv) {
  const auto cli = monotonic::bench::consume_common_flags(&argc, argv);
  monotonic::g_quick = cli.quick;
  monotonic::g_json = monotonic::bench::JsonlWriter(cli.json_path);
  if (!monotonic::g_quick) {
    // The slowest ablations add nothing to the smoke signal.
    monotonic::fw_ablation();
    monotonic::heat_ablation();
  }
  monotonic::handoff_ablation();
  monotonic::decorator_sweep();
  if (!monotonic::g_quick) {
    monotonic::poison_wake_latency();
  }
  // Runs in quick mode too: --quick shrinks the storm to 512 waiters.
  monotonic::overload_storm();
  return 0;
}
