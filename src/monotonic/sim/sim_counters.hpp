// sim_counters.hpp — the wait engine instantiated over SimEngineEnv.
//
// One alias per production counter flavour, same policy/plane pairing,
// different environment: these are the EXACT engine templates the
// production aliases use (basic_counter.hpp is compiled once, as a
// template), so a schedule the simulator finds is a schedule the real
// counter can execute — no model/reality gap beyond the environment
// seam itself.
#pragma once

#include "monotonic/core/basic_counter.hpp"
#include "monotonic/core/striped_cells.hpp"
#include "monotonic/core/wait_policy.hpp"
#include "monotonic/sim/sim_env.hpp"

namespace monotonic::sim {

using SimBlockingWait = BlockingWaitT<SimEngineEnv>;
using SimSingleCvWait = SingleCvWaitT<SimEngineEnv>;
using SimFutexWait = FutexWaitT<SimEngineEnv>;
using SimSpinWait = SpinWaitT<SimEngineEnv>;
using SimHybridWait = HybridWaitT<SimEngineEnv>;

using SimStripedPlane = StripedPlaneT<SimEngineEnv>;

/// §7 reference counter (mutex + per-node condvar) under simulation.
using SimCounter = BasicCounter<SimBlockingWait>;
/// Broadcast-on-every-increment baseline under simulation.
using SimSingleCvCounter = BasicCounter<SimSingleCvWait>;
/// Futex-word policy (lock-free fast path) under simulation.
using SimFutexCounter = BasicCounter<SimFutexWait>;
/// Busy-wait policy under simulation.
using SimSpinCounter = BasicCounter<SimSpinWait>;
/// Lock-free fast path + condvar wait list under simulation.
using SimHybridCounter = BasicCounter<SimHybridWait>;
/// Striped value plane + §7 wait plane under simulation — the
/// watermark (store-buffering) protocol's home.
using SimShardedCounter = BasicCounter<SimBlockingWait, SimStripedPlane>;
/// Striped plane + hybrid policy under simulation.
using SimShardedHybridCounter = BasicCounter<SimHybridWait, SimStripedPlane>;

}  // namespace monotonic::sim
