// sim_harness.hpp — the scenario author's view of a simulation run.
//
// A SimHarness wraps the active SimRun with the few verbs a scenario
// needs: construct counters with tracked ownership, spawn named
// virtual threads, sleep in virtual time, assert.  Scenario functions
// take `SimHarness&` and nothing else, which keeps them trivially
// replayable — no real clocks, no real randomness, no globals.
//
// Ownership rule: objects made through make<T>() are destroyed (in
// reverse construction order) only when the run SUCCEEDS.  On a failed
// run every virtual thread was unwound mid-operation — waiters never
// left the wait list, invariants are mid-flight — and running
// ~BasicCounter would abort on the leftover waiters.  The harness
// leaks instead; sim test binaries suppress LeakSanitizer for
// monotonic::sim allocations (see tests/sim_explorer_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "monotonic/sim/sim_runtime.hpp"

namespace monotonic::sim {

class SimHarness {
 public:
  explicit SimHarness(SimRun& run) : run_(&run) {}
  SimHarness(const SimHarness&) = delete;
  SimHarness& operator=(const SimHarness&) = delete;

  ~SimHarness() {
    if (run_->aborted()) return;  // failed run: leak, see file header
    for (auto it = owned_.rbegin(); it != owned_.rend(); ++it) {
      it->destroy(it->ptr);
    }
  }

  /// Constructs a T on the heap with run-scoped ownership (destroyed on
  /// success, leaked on failure).
  template <typename T, typename... Args>
  T& make(Args&&... args) {
    T* p = new T(std::forward<Args>(args)...);
    owned_.push_back(Owned{p, [](void* q) { delete static_cast<T*>(q); }});
    return *p;
  }

  /// Spawns a named virtual thread running `body`.  The body runs under
  /// the scheduler; any SimAbortedError unwinds silently, any other
  /// exception fails the run.
  void thread(std::string name, std::function<void()> body) {
    run_->spawn(std::move(name), std::move(body));
  }

  /// Scenario assertion.  On failure the run aborts and the message
  /// (plus thread + virtual timestamp) becomes the outcome.
  void check(bool condition, const std::string& what) {
    if (!condition) run_->fail("SIM_CHECK failed: " + what);
  }

  [[noreturn]] void fail(const std::string& what) {
    run_->fail("SIM_CHECK failed: " + what);
  }

  /// Parks the calling (scenario main) thread until every spawned
  /// thread has finished — the scenario's post-race assertions run
  /// after this.
  void join() { run_->join_others(); }

  /// Virtual-time sleep (a scheduling point; other threads run).
  void sleep_ms(std::int64_t ms) { run_->sleep_ns(ms * 1000000); }
  void sleep_ns(std::int64_t ns) { run_->sleep_ns(ns); }

  std::int64_t now_ns() const noexcept { return run_->now_ns(); }
  std::int64_t now_ms() const noexcept { return run_->now_ns() / 1000000; }

  SimRun& run() noexcept { return *run_; }

 private:
  struct Owned {
    void* ptr;
    void (*destroy)(void* ptr);
  };

  SimRun* run_;
  std::vector<Owned> owned_;
};

/// A registered scenario: a deterministic program over SimHarness.
/// `expect_failure` marks self-validation models — scenarios with a
/// KNOWN bug deliberately (re)introduced, where the explorer must find
/// a failing seed within its budget or the harness itself has lost its
/// teeth.  They encode this PR's acceptance criterion in-tree.
struct SimScenario {
  const char* name;
  const char* description;
  bool expect_failure;
  void (*fn)(SimHarness&);
};

}  // namespace monotonic::sim
