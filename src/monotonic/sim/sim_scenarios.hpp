// sim_scenarios.hpp — the scenario corpus the explorer drives.
//
// Each scenario is a small deterministic program over SimHarness: it
// builds counters, spawns virtual threads that race through the wait
// engine, and asserts invariants that must hold under EVERY schedule.
// The interesting interleavings are not written down — the seeded
// scheduler finds them by permuting the engine's schedule points.
//
// Two kinds of entries:
//
//   * expect_failure == false — invariant scenarios.  Any failing seed
//     is an engine bug; the seed goes into tests/sim_seeds/ once fixed
//     so it replays forever.
//
//   * expect_failure == true — self-validation MODELS.  Each one
//     deliberately reintroduces a known historical bug (a relaxed
//     watermark store, a dropped notify, a poison sweep that skips
//     timed waiters) in a local copy of the relevant component, and
//     the explorer must find a failing seed within its budget.  They
//     are the harness's own regression tests: if a refactor of the
//     simulator stops finding these, the harness — not the engine —
//     has lost its teeth.
//
// Scenario rules (determinism):
//   * no real clocks, no real randomness, no thread_local state;
//   * spawn order is fixed (stripe slots come from vthread ids);
//   * striped scenarios pin options.stripes explicitly — the
//     hardware default would vary by machine;
//   * both outcomes of a race must be accepted unless the scenario
//     synchronizes them away (e.g. a cancelled Check may legitimately
//     return true if the release wins).
#pragma once

#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "monotonic/core/basic_counter.hpp"
#include "monotonic/core/completion.hpp"
#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/multi.hpp"
#include "monotonic/core/striped_cells.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/sim/fault_env.hpp"
#include "monotonic/sim/sim_counters.hpp"
#include "monotonic/sim/sim_harness.hpp"

namespace monotonic::sim {

// ---------------------------------------------------------------------------
// Invariant scenarios
// ---------------------------------------------------------------------------

/// Check-vs-increment at the release boundary: a waiter parks for 3
/// while two incrementers deliver 2 + 1.  Under every schedule the
/// waiter must wake (the sum crosses its level exactly once) and the
/// engine must end structurally clean.
template <typename C>
void boundary_scenario(SimHarness& h) {
  auto& c = h.make<C>();
  h.thread("waiter", [&] {
    c.Check(3);
    h.check(c.debug_value() >= 3, "woken below level");
  });
  h.thread("inc-a", [&] { c.Increment(2); });
  h.thread("inc-b", [&] { c.Increment(1); });
  h.join();
  h.check(c.debug_value() == 3, "final value != 3");
  h.check(c.stats().live_nodes == 0, "wait node leaked");
}

/// Timed check racing a too-late increment: the waiter asks for 3
/// within 10ms but the last unit arrives at t=20ms.  The wait must
/// time out, and — virtual time being exact — must not overshoot its
/// deadline (the satellite-2 clamp property, asserted end to end).
template <typename C>
void timed_check_boundary_scenario(SimHarness& h) {
  auto& c = h.make<C>();
  h.thread("waiter", [&] {
    const std::int64_t start = h.now_ns();
    const bool ok = c.CheckFor(3, std::chrono::milliseconds(10));
    const std::int64_t waited_ms = (h.now_ns() - start) / 1000000;
    h.check(!ok, "CheckFor(3, 10ms) reported success before the value");
    h.check(waited_ms >= 10, "timed out before the deadline");
    h.check(waited_ms <= 11, "overshot the deadline");
    h.check(c.debug_value() < 3, "timed out with the level reached");
  });
  h.thread("inc", [&] {
    c.Increment(2);
    h.sleep_ms(20);
    c.Increment(1);
  });
  h.join();
  h.check(c.debug_value() == 3, "final value != 3");
}

/// Cancellation nudge racing the real release: whichever wins, the
/// waiter must return (true iff released), and the wait list must be
/// structurally empty afterwards.
template <typename C>
void cancel_vs_wake_scenario(SimHarness& h) {
  auto& c = h.make<C>();
  auto& ss = h.make<std::stop_source>();
  h.thread("waiter", [&] {
    const bool ok = c.Check(2, ss.get_token());
    if (ok) h.check(c.debug_value() >= 2, "Check(2) true below level");
  });
  h.thread("inc", [&] { c.Increment(2); });
  h.thread("canceller", [&] { ss.request_stop(); });
  h.join();
  c.Check(2);  // value is 2: must return immediately, parked or not
  h.check(c.stats().live_nodes == 0, "cancelled node leaked");
}

/// Poison racing an untimed parked waiter: the Check must surface
/// CounterPoisonedError whether the poison lands before, during, or
/// after the park — never return normally, never hang.
template <typename C>
void poison_while_parked_scenario(SimHarness& h) {
  auto& c = h.make<C>();
  h.thread("waiter", [&] {
    try {
      c.Check(5);
      h.fail("Check(5) returned normally on a poisoned counter");
    } catch (const CounterPoisonedError&) {
    }
  });
  h.thread("poisoner", [&] {
    h.sleep_ms(1);  // usually (not always) lets the waiter park first
    c.Poison("sim: producer died");
  });
  h.join();
  h.check(c.poisoned(), "poison did not stick");
  c.Increment(7);  // post-poison increment: a counted drop, not a throw
  h.check(c.stats().dropped_increments >= 1, "drop not counted");
}

/// Poison racing a TIMED waiter with a huge deadline: abort_all must
/// wake it promptly.  A poison sweep that skips timed waiters would
/// leave it sleeping out the full hour of virtual time — which is
/// exactly what the elapsed-time bound catches (and what the
/// model_dropped_timed_wake model reintroduces).
template <typename C>
void poison_timed_waiter_scenario(SimHarness& h) {
  auto& c = h.make<C>();
  h.thread("waiter", [&] {
    const std::int64_t start = h.now_ns();
    try {
      (void)c.CheckFor(5, std::chrono::hours(1));
      h.fail("CheckFor(5) completed on a poisoned counter");
    } catch (const CounterPoisonedError&) {
    }
    const std::int64_t waited_ms = (h.now_ns() - start) / 1000000;
    h.check(waited_ms < 60000, "poisoned timed waiter overslept its wake");
  });
  h.thread("poisoner", [&] {
    h.sleep_ms(1);
    c.Poison("sim: producer died");
  });
  h.join();
}

/// Poison racing a lock-free increment: the frozen value is
/// authoritative.  Check(frozen) must pass instantly; Check(frozen+1)
/// must throw — even though a racing fetch_add may have inflated the
/// atomic word after the freeze.
template <typename C>
void poison_vs_increment_scenario(SimHarness& h) {
  auto& c = h.make<C>();
  h.thread("inc", [&] { c.Increment(1); });
  h.thread("poisoner", [&] { c.Poison("sim: frozen mid-increment"); });
  h.join();
  const counter_value_t frozen = c.debug_value();
  try {
    c.Check(frozen);  // at-or-below the freeze: must succeed
  } catch (const CounterPoisonedError&) {
    h.fail("Check(frozen) threw");
  }
  try {
    c.Check(frozen + 1);
    h.fail("Check(frozen+1) returned on a poisoned counter");
  } catch (const CounterPoisonedError&) {
  }
}

/// The striped plane's watermark protocol: a waiter arming its level
/// races an incrementer's lock-free fast path.  The seq_cst
/// store-buffering argument (striped_cells.hpp) is what makes this
/// pass under the simulator's TSO buffer; model_weak_watermark is the
/// same scenario with that argument deliberately broken.
inline void striped_arm_vs_increment_scenario(SimHarness& h) {
  typename SimShardedCounter::Options opt;
  opt.stripes = 2;  // pinned: the hardware default varies by machine
  auto& c = h.make<SimShardedCounter>(opt);
  h.thread("waiter", [&] {
    c.Check(3);
    h.check(c.debug_value() >= 3, "woken below level");
  });
  h.thread("inc", [&] { c.Increment(3); });
  h.join();
  h.check(c.debug_value() == 3, "final value != 3");
  h.check(c.stats().live_nodes == 0, "wait node leaked");
}

/// Two waiters at different levels over a striped plane: releases must
/// come in level order regardless of which stripes the increments land
/// on, and the watermark must re-arm correctly between them.
inline void striped_two_waiters_scenario(SimHarness& h) {
  typename SimShardedCounter::Options opt;
  opt.stripes = 2;
  auto& c = h.make<SimShardedCounter>(opt);
  h.thread("waiter-2", [&] {
    c.Check(2);
    h.check(c.debug_value() >= 2, "woken below level 2");
  });
  h.thread("waiter-4", [&] {
    c.Check(4);
    h.check(c.debug_value() >= 4, "woken below level 4");
  });
  h.thread("inc-a", [&] { c.Increment(2); });
  h.thread("inc-b", [&] { c.Increment(2); });
  h.join();
  h.check(c.debug_value() == 4, "final value != 4");
  h.check(c.stats().live_nodes == 0, "wait node leaked");
}

/// Stall-watchdog cadence (the satellite-3 fix, end to end): with a
/// 10ms report interval, a sink that itself burns 3ms of virtual time,
/// and the release landing at t=35ms, reports must fire at exactly
/// 10/20/30ms.  The pre-fix code re-derived each deadline from "now
/// AFTER the sink returned", drifting to 10/23/36 — and 36 > 35 means
/// the third report would be lost entirely.
inline void watchdog_cadence_scenario(SimHarness& h) {
  auto& reports = h.make<std::vector<std::int64_t>>();
  typename SimCounter::Options opt;
  opt.stall_report_after = std::chrono::milliseconds(10);
  opt.on_stall = [&h, &reports](const CounterStallReport& r) {
    reports.push_back(h.now_ms());
    h.check(r.level == 1, "report for the wrong level");
    h.run().advance_time(3 * 1000000);  // a slow sink: 3ms of logging
  };
  auto& c = h.make<SimCounter>(opt);
  h.thread("waiter", [&] { c.Check(1); });
  h.thread("releaser", [&] {
    h.sleep_ms(35);
    c.Increment(1);
  });
  h.join();
  h.check(reports.size() == 3,
          "expected 3 stall reports, got " + std::to_string(reports.size()));
  if (reports.size() == 3) {
    h.check(reports[0] == 10 && reports[1] == 20 && reports[2] == 30,
            "stall cadence drifted: [" + std::to_string(reports[0]) + "," +
                std::to_string(reports[1]) + "," + std::to_string(reports[2]) +
                "]ms, want [10,20,30]ms");
  }
  h.check(c.stats().stall_reports == 3, "stat/report mismatch");
}

// ---------------------------------------------------------------------------
// Fault-injection scenarios (FaultEnvT over SimEngineEnv)
// ---------------------------------------------------------------------------
//
// The sim instantiation of the fault environment (fault_env.hpp): the
// deterministic scheduler supplies the schedule, FaultScope supplies
// the platform's rare events — allocation failure, spurious wakeups,
// futex interrupts, clock jumps — on demand.  Every one of these is an
// invariant scenario: the engine must absorb the fault under EVERY
// schedule, so any failing seed is an engine bug.
using SimFaultEnv = FaultEnvT<SimEngineEnv>;
using SimFaultCounter = BasicCounter<BlockingWaitT<SimFaultEnv>>;
using SimFaultFutexCounter = BasicCounter<FutexWaitT<SimFaultEnv>>;
using SimFaultHybridCounter = BasicCounter<HybridWaitT<SimFaultEnv>>;

/// bad_alloc at the first engine allocation of Check: the caller must
/// see CounterResourceError (not raw bad_alloc), the engine must hold
/// the strong guarantee — the very same counter parks, releases, and
/// ends clean immediately afterwards.
template <typename C>
void fault_alloc_check_scenario(SimHarness& h) {
  auto& c = h.make<C>();
  h.thread("waiter", [&] {
    {
      FaultPlan plan;
      plan.fail_alloc_at = 1;  // the wait-node allocation
      FaultScope scope(plan);
      try {
        c.Check(3);
        h.fail("Check(3) completed with its allocation failing");
      } catch (const CounterResourceError&) {
      }
    }
    c.Check(3);  // strong guarantee: usable immediately after
    h.check(c.debug_value() >= 3, "woken below level");
  });
  h.thread("inc", [&] {
    h.sleep_ms(1);  // waiter is runnable, so this cannot pre-empt the
    c.Increment(3);  // faulted Check — it always sees value 0
  });
  h.join();
  h.check(c.debug_value() == 3, "final value != 3");
  h.check(c.stats().live_nodes == 0, "wait node leaked");
}

/// bad_alloc inside OnReach's callback-node insert: the registration
/// must be rejected whole (strong guarantee — the callback never runs,
/// the counter is unchanged) and a healthy retry must still fire.
inline void fault_alloc_onreach_scenario(SimHarness& h) {
  auto& c = h.make<SimFaultHybridCounter>();
  auto& fired = h.make<int>(0);
  {
    FaultPlan plan;
    plan.fail_alloc_at = 1;
    FaultScope scope(plan);
    try {
      c.OnReach(2, [&] { fired += 100; });
      h.fail("OnReach registered despite the failing allocation");
    } catch (const CounterResourceError&) {
    }
  }
  c.OnReach(2, [&] { fired += 1; });
  h.thread("inc", [&] { c.Increment(2); });
  h.join();
  h.check(fired == 1, "wrong callback set ran: " + std::to_string(fired));
  h.check(c.debug_value() == 2, "final value != 2");
}

/// THE satellite-2 pin: spurious wakes against a CheckFor that times
/// out.  Timed-out vs reached is decided once, in the engine, from the
/// policy's return — a second accounting site inside a policy would
/// double-count exactly this schedule.  timed_out_checks must be 1.
inline void fault_spurious_timed_stats_scenario(SimHarness& h) {
  auto& c = h.make<SimFaultCounter>();
  h.thread("waiter", [&] {
    FaultPlan plan;
    plan.spurious_every = 1;  // every cv wait returns without a notify
    plan.spurious_budget = 3;
    FaultScope scope(plan);
    const bool ok = c.CheckFor(3, std::chrono::milliseconds(5));
    h.check(!ok, "CheckFor(3) reported success before the value");
  });
  h.join();
  const auto s = c.stats();
  h.check(s.timed_out_checks == 1,
          "timed_out_checks double- or un-counted: " +
              std::to_string(s.timed_out_checks));
  h.check(s.spurious_wakeups >= 1, "no spurious wakeup reached the policy");
  h.check(s.cancelled_checks == 0, "timeout misfiled as cancellation");
  h.check(s.live_nodes == 0, "wait node leaked");
}

/// The success half of the same pin: spurious wakes plus a release
/// inside the deadline.  The wait must succeed and timed_out_checks
/// must stay 0 — a policy that reports timeout on the spurious path
/// would misfile this run.
inline void fault_spurious_timed_release_scenario(SimHarness& h) {
  auto& c = h.make<SimFaultCounter>();
  h.thread("waiter", [&] {
    FaultPlan plan;
    plan.spurious_every = 1;
    plan.spurious_budget = 2;
    FaultScope scope(plan);
    const bool ok = c.CheckFor(2, std::chrono::milliseconds(10));
    h.check(ok, "CheckFor(2) timed out despite an in-deadline release");
  });
  h.thread("inc", [&] {
    h.sleep_ms(1);
    c.Increment(2);
  });
  h.join();
  const auto s = c.stats();
  h.check(s.timed_out_checks == 0,
          "successful wait counted as timed out: " +
              std::to_string(s.timed_out_checks));
  h.check(c.debug_value() == 2, "final value != 2");
  h.check(s.live_nodes == 0, "wait node leaked");
}

/// Futex interrupts (the EINTR shape): every kernel wait returns
/// immediately for a bounded budget.  The waiter must re-check the
/// word, re-park, and still wake exactly on the release.
inline void fault_futex_eintr_scenario(SimHarness& h) {
  auto& c = h.make<SimFaultFutexCounter>();
  h.thread("waiter", [&] {
    FaultPlan plan;
    plan.futex_every = 1;
    plan.futex_budget = 3;
    FaultScope scope(plan);
    c.Check(2);
    h.check(c.debug_value() >= 2, "woken below level");
  });
  h.thread("inc", [&] {
    h.sleep_ms(1);
    c.Increment(2);
  });
  h.join();
  h.check(c.debug_value() == 2, "final value != 2");
  h.check(c.stats().live_nodes == 0, "wait node leaked");
}

/// Clock-jump hook for the sim instantiation: slam the virtual clock
/// one hour forward.  A plain function (FaultState stores a function
/// pointer) — fault_env.hpp itself stays sim-runtime-free.
inline void jump_virtual_clock_one_hour() {
  if (SimRun* run = active_run_ref()) {
    run->advance_time(3600ll * 1000000000ll);
  }
}

/// Clock jump between CheckFor's deadline capture and its first
/// schedule point: the deadline is already expired by the time the
/// engine looks.  Must take the pure-probe path — one timed_out_check,
/// no node churn, counter untouched and immediately usable.
inline void fault_clock_jump_probe_scenario(SimHarness& h) {
  auto& c = h.make<SimFaultCounter>();
  h.thread("waiter", [&] {
    FaultPlan plan;
    plan.jump_every = 1;  // the kCheck point, before the deadline test
    plan.jump_budget = 1;
    plan.jump_fn = &jump_virtual_clock_one_hour;
    FaultScope scope(plan);
    const bool ok = c.CheckFor(3, std::chrono::milliseconds(10));
    h.check(!ok, "CheckFor(3) succeeded across an expired deadline");
  });
  h.join();
  const auto s = c.stats();
  h.check(s.timed_out_checks == 1,
          "expired probe accounting wrong: " +
              std::to_string(s.timed_out_checks));
  h.check(s.nodes_allocated == 0, "expired probe acquired a wait node");
  h.check(s.live_nodes == 0, "wait node leaked");
  c.Increment(3);
  c.Check(3);  // still healthy after the jump
}

/// Clock jump racing a parked timed waiter against its releaser: the
/// jump lands inside the releaser's Increment, so the waiter's wake is
/// a genuine race between notify and (suddenly past) deadline.  Both
/// outcomes are legal; hangs, leaks, or a dead counter are not.
inline void fault_clock_jump_race_scenario(SimHarness& h) {
  auto& c = h.make<SimFaultCounter>();
  auto& scope = h.make<FaultScope>([] {
    FaultPlan plan;
    plan.jump_every = 2;  // point #1 is the waiter's kCheck; #2 is the
    plan.jump_budget = 1;  // releaser's kIncrementSlow
    plan.jump_fn = &jump_virtual_clock_one_hour;
    return plan;
  }());
  (void)scope;
  h.thread("waiter", [&] {
    const bool ok = c.CheckFor(3, std::chrono::milliseconds(10));
    if (ok) {
      h.check(c.debug_value() >= 3, "CheckFor true below level");
    } else {
      h.check(c.stats().timed_out_checks == 1, "timeout not counted once");
    }
  });
  h.thread("inc", [&] {
    h.sleep_ms(1);
    c.Increment(3);
  });
  h.join();
  h.check(c.debug_value() == 3, "final value != 3");
  h.check(c.stats().live_nodes == 0, "wait node leaked");
  h.check(c.CheckFor(3, std::chrono::nanoseconds(0)), "counter died");
}

/// Seed-derived fault plan (spurious wakes + futex interrupts, small
/// cadences and budgets) over the release-boundary scenario: random
/// fault timing composed with random scheduling, fully replayable from
/// the one seed.
template <typename C>
void fault_seeded_boundary_scenario(SimHarness& h) {
  auto& c = h.make<C>();
  h.thread("waiter", [&] {
    FaultScope scope(FaultPlan::from_seed(h.run().seed()));
    c.Check(3);
    h.check(c.debug_value() >= 3, "woken below level");
  });
  h.thread("inc-a", [&] { c.Increment(2); });
  h.thread("inc-b", [&] { c.Increment(1); });
  h.join();
  h.check(c.debug_value() == 3, "final value != 3");
  h.check(c.stats().live_nodes == 0, "wait node leaked");
}

// ---------------------------------------------------------------------------
// Overload (admission-bound) scenarios
// ---------------------------------------------------------------------------

/// kThrow storm: six waiters against max_waiters=3.  Virtual time only
/// advances once every thread is blocked, so exactly three park and
/// exactly three get CounterOverloadedError — deterministically, under
/// every schedule.  Nobody may be left parked at the end.
inline void overload_storm_throw_scenario(SimHarness& h) {
  typename SimCounter::Options opt;
  opt.max_waiters = 3;
  opt.overload_policy = OverloadPolicy::kThrow;
  auto& c = h.make<SimCounter>(opt);
  auto& reached = h.make<int>(0);
  auto& rejected = h.make<int>(0);
  for (int i = 0; i < 6; ++i) {
    h.thread("w" + std::to_string(i), [&] {
      try {
        c.Check(10);
        reached += 1;  // vthreads run one at a time: plain ints are safe
      } catch (const CounterOverloadedError&) {
        rejected += 1;
      }
    });
  }
  h.thread("inc", [&] {
    h.sleep_ms(1);
    c.Increment(10);
  });
  h.join();
  h.check(reached == 3 && rejected == 3,
          "admission split wrong: reached=" + std::to_string(reached) +
              " rejected=" + std::to_string(rejected) + ", want 3/3");
  h.check(c.stats().overload_rejections == 3, "rejections miscounted");
  h.check(c.stats().live_nodes == 0, "waiter left parked after the storm");
}

/// kSpinFallback storm: over-cap waiters degrade to the bounded
/// relock-poll wait instead of failing.  Every waiter must return with
/// the level reached; the spinners' virtual-time progress means the
/// exact degrade count is schedule-dependent, but degrades and
/// rejections must agree and the list must end empty.
inline void overload_storm_spin_scenario(SimHarness& h) {
  typename SimHybridCounter::Options opt;
  opt.max_waiters = 2;
  opt.overload_policy = OverloadPolicy::kSpinFallback;
  auto& c = h.make<SimHybridCounter>(opt);
  for (int i = 0; i < 6; ++i) {
    h.thread("w" + std::to_string(i), [&] {
      c.Check(10);
      h.check(c.debug_value() >= 10, "returned below level");
    });
  }
  h.thread("inc", [&] {
    h.sleep_ms(1);
    c.Increment(10);
  });
  h.join();
  const auto s = c.stats();
  h.check(s.degraded_waits == s.overload_rejections,
          "degrade/rejection mismatch: " + std::to_string(s.degraded_waits) +
              " vs " + std::to_string(s.overload_rejections));
  h.check(s.live_nodes == 0, "waiter left parked after the storm");
  h.check(c.debug_value() == 10, "final value != 10");
}

/// kBlockIncrementers storm: over-cap waiters nap on the admission
/// gate until capacity frees (or the level lands).  All four waiters
/// must complete — the two gated ones via the gate's re-check — and
/// the gate must not strand anyone once the parked pair leaves.
inline void overload_storm_block_scenario(SimHarness& h) {
  typename SimCounter::Options opt;
  opt.max_waiters = 2;
  opt.overload_policy = OverloadPolicy::kBlockIncrementers;
  auto& c = h.make<SimCounter>(opt);
  auto& completed = h.make<int>(0);
  for (int i = 0; i < 4; ++i) {
    h.thread("w" + std::to_string(i), [&] {
      c.Check(5);
      h.check(c.debug_value() >= 5, "returned below level");
      completed += 1;
    });
  }
  h.thread("inc", [&] {
    h.sleep_ms(1);
    c.Increment(5);
  });
  h.join();
  h.check(completed == 4, "waiter stranded on the admission gate: " +
                              std::to_string(completed) + "/4 completed");
  h.check(c.stats().overload_rejections == 2, "gate entries miscounted");
  h.check(c.stats().live_nodes == 0, "waiter left parked after the storm");
  h.check(c.debug_value() == 5, "final value != 5");
}

// ---------------------------------------------------------------------------
// Heap wait plane (waitplane=heap — wait_index.hpp)
// ---------------------------------------------------------------------------

/// A late arm races a bulk wake: three waiters at distinct levels are
/// peeled ascending by one big Increment (kIndexPeel points) while a
/// fourth waiter arms a middle level (kIndexLink).  Every interleaving
/// must release all four — the late arm either joins the wake pass or
/// parks and is released by the value it re-reads under the lock.
inline void heap_arm_vs_bulk_wake_scenario(SimHarness& h) {
  typename SimCounter::Options opt;
  opt.wait_plane = WaitPlaneKind::kHeap;
  opt.wait_shards = 1;
  auto& c = h.make<SimCounter>(opt);
  auto& released = h.make<int>(0);
  for (int i = 1; i <= 3; ++i) {
    h.thread("w" + std::to_string(i), [&, i] {
      c.Check(static_cast<counter_value_t>(i));
      h.check(c.debug_value() >= static_cast<counter_value_t>(i),
              "released below level");
      released += 1;
    });
  }
  h.thread("late", [&] {
    c.Check(2);  // arms while the bulk pass may be mid-peel
    released += 1;
  });
  h.thread("inc", [&] {
    // Wait (in virtual time) until levels 1..3 are all armed, so the
    // Increment is guaranteed to peel a multi-level prefix — the
    // bulk_wakes assertion below must hold on EVERY seed.  The late
    // waiter shares level 2's node, so it may still be mid-arm: that
    // race is the point of the scenario.
    while (c.stats().live_nodes < 3) h.sleep_ms(1);
    c.Increment(3);
  });
  h.join();
  h.check(released == 4, "waiter stranded across the bulk wake: " +
                             std::to_string(released) + "/4 released");
  h.check(c.stats().live_nodes == 0, "bulk wake left the index dirty");
#if MONOTONIC_ENABLE_STATS
  h.check(c.stats().bulk_wakes >= 1, "multi-level release not counted");
#endif
  h.check(c.debug_value() == 3, "final value != 3");
}

/// Cross-shard wake over the striped value plane: levels 2 and 3 hash
/// to different shards of the heap index, so the armed-level watermark
/// comes from the O(S) root scan.  The seq_cst publication argument
/// (striped_cells.hpp) must hold no matter which shard owns the
/// global minimum when the lock-free increment probes it.
inline void heap_cross_shard_wake_scenario(SimHarness& h) {
  typename SimShardedCounter::Options opt;
  opt.wait_plane = WaitPlaneKind::kHeap;
  opt.wait_shards = 2;
  opt.stripes = 2;
  auto& c = h.make<SimShardedCounter>(opt);
  auto& released = h.make<int>(0);
  h.thread("w2", [&] {
    c.Check(2);
    released += 1;
  });
  h.thread("w3", [&] {
    c.Check(3);
    released += 1;
  });
  h.thread("inc_a", [&] { c.Increment(2); });
  h.thread("inc_b", [&] { c.Increment(1); });
  h.join();
  h.check(released == 2, "cross-shard waiter stranded: " +
                             std::to_string(released) + "/2 released");
  h.check(c.stats().live_nodes == 0, "wake left a node linked");
  h.check(c.debug_value() == 3, "final value != 3");
}

// ---------------------------------------------------------------------------
// Self-validation models (expect_failure = true)
// ---------------------------------------------------------------------------

/// StripedPlaneT with the watermark store DOWNGRADED to relaxed — the
/// exact bug the ISSUE's acceptance criterion names.  A local copy
/// rather than a knob on the real plane: the production header must
/// not grow a "please be wrong" switch.  Everything except the one
/// memory_order in arm() matches striped_cells.hpp.
class WeakStripedPlane {
 public:
  using EngineEnv = SimEngineEnv;
  static constexpr bool kLockFreeFastPath = true;
  static constexpr bool kStriped = true;
  static constexpr counter_value_t kMaxValue =
      std::numeric_limits<counter_value_t>::max() >> 1;

  WeakStripedPlane(const WaitListOptions& options, CounterStats& stats)
      : cells_(options.stripes), stats_(stats) {
    stats_.set_stripe_count(cells_.stripe_count());
  }

  std::size_t stripe_count() const noexcept { return cells_.stripe_count(); }

  bool add_fast(counter_value_t amount) {
    const std::size_t home = cells_.home_stripe();
    MC_REQUIRE(amount <= kMaxValue && cells_.load(home) <= kMaxValue - amount,
               "counter value overflow");
    cells_.add(home, amount);
    const counter_value_t armed =
        lowest_armed_level_.load(std::memory_order_seq_cst);
    if (armed == kNoArmedLevel) return false;
    return cells_.sum_seq_cst() >= armed;
  }

  counter_value_t read_fast() const noexcept { return cells_.sum(); }
  counter_value_t collapse() noexcept {
    stats_.on_collapse();
    return cells_.sum_seq_cst();
  }
  counter_value_t read_locked() const noexcept {
    stats_.on_collapse();
    return cells_.sum_seq_cst();
  }

  counter_value_t arm(counter_value_t level) {
    if (level < lowest_armed_level_.load(std::memory_order_relaxed)) {
      // THE BUG: relaxed lets the store sit in the waiter's buffer
      // while its collapse() below reads the cells — the incrementer's
      // add-then-probe can slot into that window, miss the watermark,
      // and skip the slow pass.  Store buffering, straight from the
      // striped_cells.hpp header comment.
      lowest_armed_level_.store(level, std::memory_order_relaxed);
    }
    return collapse();
  }

  void rearm(counter_value_t lowest) {
    lowest_armed_level_.store(lowest, std::memory_order_seq_cst);
  }
  void pin() { lowest_armed_level_.store(0, std::memory_order_seq_cst); }
  void reset() {
    cells_.reset();
    lowest_armed_level_.store(kNoArmedLevel, std::memory_order_seq_cst);
  }

 private:
  StripedCellsT<SimEngineEnv> cells_;
  CounterStats& stats_;
  SimEngineEnv::Atomic<counter_value_t> lowest_armed_level_{kNoArmedLevel};
};

inline void model_weak_watermark_scenario(SimHarness& h) {
  using WeakCounter = BasicCounter<SimBlockingWait, WeakStripedPlane>;
  typename WeakCounter::Options opt;
  opt.stripes = 2;
  auto& c = h.make<WeakCounter>(opt);
  h.thread("waiter", [&] { c.Check(3); });
  h.thread("inc", [&] { c.Increment(3); });
  h.join();
  h.check(c.debug_value() == 3, "final value != 3");
}

/// BlockingWait whose on_release forgets the notify — the canonical
/// lost wakeup.  Seeds where the release lands while the waiter is
/// inside cv.wait deadlock; seeds where the waiter's fast check wins
/// pass.  The explorer must find the former.
struct LostNotifyWait : SimBlockingWait {
  void on_release(SimBlockingWait::Node& /*node*/, CounterStats& stats) {
    stats.on_notify();
    // THE BUG: node.signal.cv.notify_all() omitted.
  }
};

inline void model_lost_notify_scenario(SimHarness& h) {
  auto& c = h.make<BasicCounter<LostNotifyWait>>();
  h.thread("waiter", [&] { c.Check(1); });
  h.thread("inc", [&] { c.Increment(1); });
  h.join();
}

/// BlockingWait whose poison sweep skips timed waiters (on_release
/// drops the wake for aborted nodes).  The poisoned CheckFor then
/// sleeps out its FULL one-hour virtual deadline before noticing —
/// caught by the same elapsed-time bound poison_timed_waiter asserts.
struct DroppedTimedWakeWait : SimBlockingWait {
  void on_release(SimBlockingWait::Node& node, CounterStats& stats) {
    // THE BUG: aborted (poison-released) nodes are not notified.
    if (!node.aborted) SimBlockingWait::on_release(node, stats);
  }
};

inline void model_dropped_timed_wake_scenario(SimHarness& h) {
  auto& c = h.make<BasicCounter<DroppedTimedWakeWait>>();
  h.thread("waiter", [&] {
    const std::int64_t start = h.now_ns();
    try {
      (void)c.CheckFor(5, std::chrono::hours(1));
      h.fail("CheckFor(5) completed on a poisoned counter");
    } catch (const CounterPoisonedError&) {
    }
    const std::int64_t waited_ms = (h.now_ns() - start) / 1000000;
    h.check(waited_ms < 60000, "poisoned timed waiter overslept its wake");
  });
  h.thread("poisoner", [&] {
    h.sleep_ms(1);
    c.Poison("sim: producer died");
  });
  h.join();
}

// ---------------------------------------------------------------------------
// Predicate-wait and completion-plane scenarios
// ---------------------------------------------------------------------------

/// Predicate wait racing its increments: Check(v >= 3) reduces to the
/// exact threshold (kPredicateEval schedule point) and parks through
/// the ordinary engine, so under every schedule the waiter wakes at or
/// above the threshold and the engine ends structurally clean.
template <typename C>
void predicate_threshold_scenario(SimHarness& h) {
  auto& c = h.make<C>();
  h.thread("waiter", [&] {
    c.Check([](counter_value_t v) { return v >= 3; });
    h.check(c.debug_value() >= 3, "predicate wait woke below threshold");
  });
  h.thread("inc-a", [&] { c.Increment(2); });
  h.thread("inc-b", [&] { c.Increment(1); });
  h.join();
  h.check(c.stats().predicate_checks == 1, "predicate reduction not counted");
  h.check(c.stats().live_nodes == 0, "wait node leaked");
}

/// check_sum_at_least racing interleaved increments on two counters:
/// the pigeonhole triggers are recomputed from stale lower bounds on
/// every wake, and under no schedule may the waiter return early or
/// strand (the gate counter is a SimCounter, so its park is scheduled).
inline void predicate_sum_race_scenario(SimHarness& h) {
  auto& a = h.make<SimCounter>();
  auto& b = h.make<SimCounter>();
  h.thread("waiter", [&] {
    check_sum_at_least<SimCounter>({&a, &b}, 4);
    h.check(a.debug_value() + b.debug_value() >= 4,
            "sum wait returned below the threshold");
  });
  h.thread("inc-a", [&] {
    a.Increment(1);
    h.sleep_ms(1);
    a.Increment(1);
  });
  h.thread("inc-b", [&] {
    b.Increment(1);
    h.sleep_ms(1);
    b.Increment(1);
  });
  h.join();
  h.check(a.debug_value() + b.debug_value() == 4, "final sum != 4");
}

/// Predicate wait racing Poison: the increments stop at 3, below the
/// reduced threshold 5, so whichever order the schedule picks the wait
/// must surface CounterPoisonedError — never return, never hang.
template <typename C>
void predicate_poison_scenario(SimHarness& h) {
  auto& c = h.make<C>();
  h.thread("waiter", [&] {
    try {
      c.Check([](counter_value_t v) { return v >= 5; });
      h.fail("predicate wait completed below its threshold");
    } catch (const CounterPoisonedError&) {
    }
  });
  h.thread("inc", [&] { c.Increment(3); });
  h.thread("poisoner", [&] { c.Poison("sim: producer died"); });
  h.join();
}

/// check_any with both conditions racing to fire: either index is a
/// legal outcome (the disjunction is outside the deterministic core),
/// but the winner's own condition must hold at return, and the losing
/// OnReach residual must fire harmlessly before join.
inline void check_any_race_scenario(SimHarness& h) {
  auto& a = h.make<SimCounter>();
  auto& b = h.make<SimCounter>();
  h.thread("waiter", [&] {
    const std::size_t winner =
        check_any<SimCounter>({CounterCondition<SimCounter>{&a, 2},
                               CounterCondition<SimCounter>{&b, 2}});
    h.check(winner <= 1, "check_any returned a bogus index");
    SimCounter& won = winner == 0 ? a : b;
    h.check(won.debug_value() >= 2, "winner below its level");
  });
  h.thread("inc-a", [&] { a.Increment(2); });
  h.thread("inc-b", [&] { b.Increment(2); });
  h.join();
  h.check(a.debug_value() == 2 && b.debug_value() == 2, "final values != 2");
}

/// Completion-executor handoff: reached and poison-delivery chains are
/// enqueued (kCompletionEnqueue) to a ManualExecutor and run only when
/// a separate vthread drains — exactly once each, successes in level
/// order, the never-reached level delivered as an error, last.
inline void executor_handoff_scenario(SimHarness& h) {
  auto exec = std::make_shared<ManualExecutor>();
  WaitListOptions options;
  options.completion_executor = exec;
  auto& c = h.make<SimCounter>(options);
  // Only the drainer vthread executes callbacks, so the log needs no
  // lock; entry +L = level L reached, -L = poison delivered to L.
  auto& log = h.make<std::vector<int>>();
  h.thread("register", [&] {
    c.OnReach(1, [&] { log.push_back(1); },
              [&](std::exception_ptr) { log.push_back(-1); });
    c.OnReach(2, [&] { log.push_back(2); },
              [&](std::exception_ptr) { log.push_back(-2); });
    c.OnReach(9, [&] { log.push_back(9); },
              [&](std::exception_ptr) { log.push_back(-9); });
  });
  h.thread("inc", [&] {
    c.Increment(1);
    c.Increment(1);
  });
  h.thread("poisoner", [&] {
    h.sleep_ms(2);
    c.Poison("sim: producer died with callbacks pending");
  });
  h.thread("drainer", [&] {
    std::size_t ran = 0;
    for (int spins = 0; spins < 200 && ran < 3; ++spins) {
      ran += exec->drain();
      if (ran < 3) h.sleep_ms(1);
    }
    h.check(ran == 3, "completion queue did not deliver every callback");
  });
  h.join();
  h.check(log.size() == 3, "callback ran zero times or twice");
  // Level 9 is never reached: always an error, and always enqueued
  // after whatever happened to levels 1 and 2.
  h.check(log[2] == -9, "unreached level not delivered as trailing error");
  // FIFO queue + ascending-level detach: 1's entry precedes 2's, and
  // level 2 cannot succeed if level 1 was still unreached at poison.
  h.check(std::abs(log[0]) == 1 && std::abs(log[1]) == 2,
          "completion delivery out of level order");
  h.check(!(log[0] == -1 && log[1] == 2),
          "level 2 reached though level 1 was poisoned");
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

inline const std::vector<SimScenario>& sim_scenarios() {
  static const std::vector<SimScenario> scenarios = {
      {"boundary_blocking", "Check(3) vs Increment 2+1, BlockingWait", false,
       &boundary_scenario<SimCounter>},
      {"boundary_single_cv", "Check(3) vs Increment 2+1, SingleCvWait", false,
       &boundary_scenario<SimSingleCvCounter>},
      {"boundary_futex", "Check(3) vs Increment 2+1, FutexWait", false,
       &boundary_scenario<SimFutexCounter>},
      {"boundary_spin", "Check(3) vs Increment 2+1, SpinWait", false,
       &boundary_scenario<SimSpinCounter>},
      {"boundary_hybrid", "Check(3) vs Increment 2+1, HybridWait", false,
       &boundary_scenario<SimHybridCounter>},
      {"timed_check_boundary",
       "CheckFor deadline vs late increment: no overshoot, no false success",
       false, &timed_check_boundary_scenario<SimHybridCounter>},
      {"cancel_vs_wake_blocking",
       "stop_token nudge races the real release, BlockingWait", false,
       &cancel_vs_wake_scenario<SimCounter>},
      {"cancel_vs_wake_futex",
       "stop_token nudge races the real release, FutexWait (generation bits)",
       false, &cancel_vs_wake_scenario<SimFutexCounter>},
      {"cancel_vs_wake_spin",
       "stop_token nudge races the real release, SpinWait (token polling)",
       false, &cancel_vs_wake_scenario<SimSpinCounter>},
      {"poison_while_parked_blocking",
       "Poison vs parked untimed Check, BlockingWait", false,
       &poison_while_parked_scenario<SimCounter>},
      {"poison_while_parked_futex",
       "Poison vs parked untimed Check, FutexWait", false,
       &poison_while_parked_scenario<SimFutexCounter>},
      {"poison_while_parked_spin", "Poison vs parked untimed Check, SpinWait",
       false, &poison_while_parked_scenario<SimSpinCounter>},
      {"poison_timed_waiter_blocking",
       "Poison must promptly wake a CheckFor(1h) waiter, BlockingWait", false,
       &poison_timed_waiter_scenario<SimCounter>},
      {"poison_timed_waiter_futex",
       "Poison must promptly wake a CheckFor(1h) waiter, FutexWait", false,
       &poison_timed_waiter_scenario<SimFutexCounter>},
      {"poison_vs_increment",
       "frozen value is authoritative against racing lock-free increments",
       false, &poison_vs_increment_scenario<SimHybridCounter>},
      {"striped_arm_vs_increment",
       "watermark arm vs lock-free increment (the seq_cst SB protocol)",
       false, &striped_arm_vs_increment_scenario},
      {"striped_two_waiters",
       "two levels over two stripes: ordered release + correct rearm", false,
       &striped_two_waiters_scenario},
      {"watchdog_cadence",
       "stall reports hold a fixed cadence under a slow sink", false,
       &watchdog_cadence_scenario},
      {"fault_alloc_check_blocking",
       "bad_alloc at Check's node acquire -> CounterResourceError + strong "
       "guarantee, BlockingWait",
       false, &fault_alloc_check_scenario<SimFaultCounter>},
      {"fault_alloc_check_futex",
       "bad_alloc at Check's node acquire -> CounterResourceError + strong "
       "guarantee, FutexWait",
       false, &fault_alloc_check_scenario<SimFaultFutexCounter>},
      {"fault_alloc_check_hybrid",
       "bad_alloc at Check's node acquire: attention bit re-armed, counter "
       "usable, HybridWait",
       false, &fault_alloc_check_scenario<SimFaultHybridCounter>},
      {"fault_alloc_onreach",
       "bad_alloc inside OnReach's insert: registration rejected whole, "
       "retry fires",
       false, &fault_alloc_onreach_scenario},
      {"fault_spurious_timed_stats",
       "spurious wakes vs a timing-out CheckFor: timed_out_checks == 1, "
       "counted in the engine only",
       false, &fault_spurious_timed_stats_scenario},
      {"fault_spurious_timed_release",
       "spurious wakes vs an in-deadline release: success, timed_out_checks "
       "== 0",
       false, &fault_spurious_timed_release_scenario},
      {"fault_futex_eintr",
       "futex waits interrupted EINTR-style: waiter re-parks and still "
       "wakes on release",
       false, &fault_futex_eintr_scenario},
      {"fault_clock_jump_probe",
       "clock jumps past the deadline before the engine looks: pure probe, "
       "no node churn",
       false, &fault_clock_jump_probe_scenario},
      {"fault_clock_jump_race",
       "clock jumps mid-release: notify vs suddenly-past deadline, both "
       "outcomes legal",
       false, &fault_clock_jump_race_scenario},
      {"fault_seeded_blocking",
       "seed-derived spurious/futex fault plan over the release boundary, "
       "BlockingWait",
       false, &fault_seeded_boundary_scenario<SimFaultCounter>},
      {"fault_seeded_futex",
       "seed-derived spurious/futex fault plan over the release boundary, "
       "FutexWait",
       false, &fault_seeded_boundary_scenario<SimFaultFutexCounter>},
      {"overload_storm_throw",
       "6 waiters vs max_waiters=3 under kThrow: exactly 3 admitted, 3 "
       "rejected, none stranded",
       false, &overload_storm_throw_scenario},
      {"overload_storm_spin",
       "6 waiters vs max_waiters=2 under kSpinFallback: every waiter "
       "returns via the degraded wait",
       false, &overload_storm_spin_scenario},
      {"overload_storm_block",
       "4 waiters vs max_waiters=2 under kBlockIncrementers: gate re-check "
       "frees the over-cap pair",
       false, &overload_storm_block_scenario},
      {"heap_arm_vs_bulk_wake",
       "heap wait plane: a late arm races the ascending bulk-wake peel — "
       "no waiter stranded, bulk_wakes counted",
       false, &heap_arm_vs_bulk_wake_scenario},
      {"heap_cross_shard_wake",
       "sharded heap plane over striped cells: watermark from the O(S) root "
       "scan still satisfies the seq_cst publication protocol",
       false, &heap_cross_shard_wake_scenario},
      {"predicate_threshold_blocking",
       "Check(v>=3) vs Increment 2+1: threshold reduction + engine park, "
       "BlockingWait",
       false, &predicate_threshold_scenario<SimCounter>},
      {"predicate_threshold_hybrid",
       "Check(v>=3) vs Increment 2+1: reduction vs the lock-free fast "
       "path, HybridWait",
       false, &predicate_threshold_scenario<SimHybridCounter>},
      {"predicate_sum_race",
       "check_sum_at_least(a+b>=4) vs interleaved increments: pigeonhole "
       "triggers recomputed on wake, no early return, no strand",
       false, &predicate_sum_race_scenario},
      {"predicate_poison",
       "Check(v>=5) vs Poison at value 3: CounterPoisonedError under "
       "every order",
       false, &predicate_poison_scenario<SimHybridCounter>},
      {"check_any_race",
       "check_any over two racing counters: either index legal, winner's "
       "condition holds, loser residual harmless",
       false, &check_any_race_scenario},
      {"executor_handoff",
       "reached + poison chains through a drained ManualExecutor: "
       "exactly-once, level order, trailing error",
       false, &executor_handoff_scenario},
      {"model_weak_watermark",
       "MODEL: watermark store downgraded to relaxed — explorer must find "
       "the lost wakeup",
       true, &model_weak_watermark_scenario},
      {"model_lost_notify",
       "MODEL: on_release without notify — explorer must find the deadlock",
       true, &model_lost_notify_scenario},
      {"model_dropped_timed_wake",
       "MODEL: poison skips timed waiters — explorer must catch the "
       "oversleep",
       true, &model_dropped_timed_wake_scenario},
  };
  return scenarios;
}

inline const SimScenario* find_scenario(const std::string& name) {
  for (const auto& s : sim_scenarios()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

}  // namespace monotonic::sim
