// sim_runtime.hpp — the deterministic-schedule concurrency simulator
// underneath the wait-engine test harness (loom/CHESS style).
//
// The idea: run a scenario's threads as REAL OS threads, but serialize
// them so exactly one is ever executing, and let a seeded PRNG pick
// which runnable thread advances at every schedule point (engine
// SchedulePoints, mutex acquire/release, condvar/futex park and wake,
// spin iterations).  The whole interleaving of a run is then a pure
// function of the seed: a failing seed replays exactly, shrinks, and
// can be checked into a regression corpus.
//
// Three modelled dimensions:
//
//   * SCHEDULE — SimRun::choose() is called with the current set of
//     possible actions (resume thread T, or commit thread T's oldest
//     buffered store); the chosen index is recorded into a trace so a
//     run can also be replayed from a forced trace (used by the
//     shrinker, which greedily zeroes decisions).
//
//   * TIME — the clock is virtual (SimClock, sim_env.hpp).  Timed
//     waits and sleeps park with a virtual deadline; when no thread is
//     runnable the controller jumps time to the earliest deadline.  A
//     CheckFor(1h) costs nothing, and a waiter that oversleeps its
//     wake shows up as a huge virtual elapsed time — an assertable
//     signal (see the poison_timed_waiter scenarios).
//
//   * MEMORY — SimAtomic models a TSO store buffer: relaxed/release
//     stores go into a per-thread FIFO and commit either when the
//     scheduler picks a flush action, at every RMW / seq_cst store /
//     mutex boundary (x86-style drains), or at thread exit.  Loads
//     forward from the thread's own buffer.  This is exactly the
//     store-buffering (Dekker) relaxation that makes the striped
//     plane's watermark protocol need seq_cst — downgrade the
//     watermark store to relaxed and the simulator finds the lost
//     wakeup (see the model_weak_watermark scenario).
//
// Failure handling: a failed SIM_CHECK, an unexpected exception, a
// deadlock (all threads blocked, no deadline), or the step limit
// (livelock) aborts the run.  Every parked thread is then resumed and
// unwound with SimAbortedError, and the harness LEAKS the counters
// under test — their internal state is mid-flight by construction, so
// destructors must not run (sim tests suppress LeakSanitizer for
// these allocations).
//
// The primitives are deliberately non-reentrant outside a run: with no
// active SimRun (or after abort) every operation degrades to a trivial
// single-threaded implementation, so objects can still be constructed
// and torn down outside the scheduler.
#pragma once

#include <chrono>
#include <condition_variable>  // std::cv_status (SimCondVar's return type)
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <semaphore>
#include <stop_token>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace monotonic::sim {

class SimRun;
class SimMutex;
struct VThread;

/// Thrown through a virtual thread's stack to unwind it when the run
/// aborts.  Deliberately NOT derived from std::exception: scenario or
/// engine code catching std::exception must not swallow the teardown.
struct SimAbortedError {};

/// The run currently driving this process (one at a time; the explorer
/// runs seeds sequentially).  Plain pointer: all access is serialized
/// by the scheduler's semaphore handoff.
inline SimRun*& active_run_ref() noexcept {
  static SimRun* run = nullptr;
  return run;
}

/// The virtual thread hosted by the calling OS thread (null on the
/// controller and on threads outside any run).
inline VThread*& self_ref() noexcept {
  static thread_local VThread* self = nullptr;
  return self;
}

enum class VState : std::uint8_t { kRunnable, kBlocked, kFinished };
enum class BlockKind : std::uint8_t {
  kNone,
  kMutex,    ///< waiting for a SimMutex to unlock
  kCondVar,  ///< parked on a SimCondVar
  kFutex,    ///< parked on a futex word (SimEngineEnv::futex_wait)
  kSleep,    ///< virtual-time sleep, deadline only
  kJoin,     ///< join_others: waiting for every other thread to finish
};

/// One pending (not yet globally visible) store in a thread's modelled
/// store buffer.  Type-erased: `commit` writes `bits` back into the
/// owning SimAtomic.
struct BufferedStore {
  void* target;
  std::uint64_t bits;
  void (*commit)(void* target, std::uint64_t bits);
};

struct VThread {
  std::size_t id = 0;
  std::string name;
  VState state = VState::kRunnable;
  BlockKind block = BlockKind::kNone;
  const void* channel = nullptr;  ///< mutex / condvar / futex identity
  bool has_deadline = false;
  std::int64_t deadline_ns = 0;
  bool timed_out = false;  ///< wake cause of the last block: deadline?
  std::deque<BufferedStore> buffer;
  std::binary_semaphore resume{0};
  std::thread os;
  std::function<void()> body;
  bool errored = false;
  std::string error;
};

struct SimLimits {
  /// Scheduler actions before the run is declared livelocked.  Far
  /// above any healthy scenario (hundreds of steps); a lost wakeup on
  /// a spin policy hits it deterministically.
  std::size_t max_steps = 50000;
  /// Per-thread store-buffer capacity; the oldest entry auto-commits
  /// beyond this (TSO buffers are finite too).
  std::size_t max_store_buffer = 32;
};

struct SimOutcome {
  bool failed = false;
  std::string message;  ///< failure description; empty on success
  std::size_t steps = 0;
  std::int64_t end_ns = 0;                ///< final virtual time
  std::vector<std::uint32_t> trace;       ///< recorded scheduler choices
};

/// One seeded, deterministic execution of a scenario.  Construct, call
/// execute() once with the scenario's main body, read the outcome.
class SimRun {
 public:
  SimRun(std::uint64_t seed, const std::vector<std::uint32_t>* forced_trace,
         SimLimits limits = {})
      : seed_(seed), limits_(limits), rng_(seed), forced_(forced_trace) {}

  SimRun(const SimRun&) = delete;
  SimRun& operator=(const SimRun&) = delete;

  // ---- controller side ----

  SimOutcome execute(std::function<void()> main_body) {
    active_run_ref() = this;
    spawn("main", std::move(main_body));
    for (;;) {
      promote_wakeups();
      if (aborted_) break;
      actions_.clear();
      for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (threads_[i]->state == VState::kRunnable) {
          actions_.push_back(Action{false, threads_[i].get()});
        }
      }
      for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (!threads_[i]->buffer.empty()) {
          actions_.push_back(Action{true, threads_[i].get()});
        }
      }
      if (actions_.empty()) {
        if (all_finished()) break;  // success
        if (!advance_to_next_deadline()) {
          record_failure(deadlock_message());
          break;
        }
        continue;
      }
      if (++steps_ > limits_.max_steps) {
        record_failure("step limit (" + std::to_string(limits_.max_steps) +
                       ") exceeded: livelock or lost wakeup");
        break;
      }
      const Action a = actions_[choose(actions_.size())];
      if (a.flush) {
        commit_one(a.thread);
      } else {
        a.thread->resume.release();
        to_controller_.acquire();
      }
    }
    if (aborted_) drain();
    for (auto& t : threads_) {
      if (t->os.joinable()) t->os.join();
    }
    active_run_ref() = nullptr;
    SimOutcome out;
    out.failed = failed_;
    out.message = message_;
    out.steps = steps_;
    out.end_ns = now_ns_;
    out.trace = trace_;
    return out;
  }

  // ---- virtual-thread side ----

  /// Registers (and starts) a virtual thread.  Callable from the
  /// controller (the main body) or from a running vthread (scenario
  /// spawns); the new thread stays parked until scheduled.
  void spawn(std::string name, std::function<void()> body) {
    auto t = std::make_unique<VThread>();
    t->id = threads_.size();
    t->name = std::move(name);
    t->body = std::move(body);
    VThread* raw = t.get();
    threads_.push_back(std::move(t));
    raw->os = std::thread([this, raw] {
      self_ref() = raw;
      raw->resume.acquire();
      try {
        raw->body();
      } catch (const SimAbortedError&) {
        // the run is tearing down; nothing to record
      } catch (const std::exception& e) {
        raw->errored = true;
        raw->error = e.what();
      } catch (...) {
        raw->errored = true;
        raw->error = "unknown exception";
      }
      finish_thread(raw);
    });
  }

  /// A schedule point: hand control to the controller, which may run
  /// any other thread (or commit buffered stores) before resuming us.
  void yield(const char* /*why*/) {
    VThread* t = self();
    if (t == nullptr) return;
    if (aborted_) {
      abort_point();
      return;
    }
    switch_to_controller();
  }

  /// Parks the calling thread until wake_channel(channel) or (when
  /// `has_deadline`) virtual time reaches `deadline_ns`.  Returns true
  /// iff woken by the deadline.
  bool block_on(BlockKind kind, const void* channel, bool has_deadline,
                std::int64_t deadline_ns) {
    VThread* t = self();
    if (t == nullptr) return false;
    if (aborted_) {
      abort_point();
      return false;
    }
    t->state = VState::kBlocked;
    t->block = kind;
    t->channel = channel;
    t->has_deadline = has_deadline;
    t->deadline_ns = deadline_ns;
    t->timed_out = false;
    switch_to_controller();
    return t->timed_out;
  }

  /// block_on without the abort-unwind throw on resume: for waits that
  /// must run inside (implicitly noexcept) destructors.  The caller
  /// re-checks aborted() after every return.
  void block_quiet(const void* channel) {
    VThread* t = self();
    if (t == nullptr || aborted_) return;
    t->state = VState::kBlocked;
    t->block = BlockKind::kCondVar;
    t->channel = channel;
    t->has_deadline = false;
    t->timed_out = false;
    to_controller_.release();
    t->resume.acquire();
  }

  /// Condition-variable shape: atomically (w.r.t. the scheduler)
  /// register on `channel`, release `m`, park; reacquire `m` before
  /// returning.  Registering BEFORE the release is what makes a notify
  /// between release and park impossible to lose.
  bool wait_releasing(SimMutex& m, const void* channel, bool has_deadline,
                      std::int64_t deadline_ns);

  /// Makes every thread parked on `channel` runnable (they re-check
  /// their predicates / re-contend for the mutex when scheduled).
  void wake_channel(const void* channel) {
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      VThread* t = threads_[i].get();
      if (t->state == VState::kBlocked && t->channel == channel &&
          t->block != BlockKind::kMutex) {
        make_runnable(t, /*timed_out=*/false);
      }
    }
  }

  /// Mutex-release wake: runnable again, re-contend on schedule.
  void wake_mutex_waiters(const void* mutex) {
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      VThread* t = threads_[i].get();
      if (t->state == VState::kBlocked && t->block == BlockKind::kMutex &&
          t->channel == mutex) {
        make_runnable(t, /*timed_out=*/false);
      }
    }
  }

  /// Scenario assertion failure: record, abort the run, unwind.
  [[noreturn]] void fail(std::string message) {
    VThread* t = self();
    if (t != nullptr) {
      message += " [thread '" + t->name + "', t=" +
                 std::to_string(now_ns_ / 1000000) + "ms]";
    }
    record_failure(std::move(message));
    throw SimAbortedError{};
  }

  /// Virtual-time sleep.
  void sleep_ns(std::int64_t duration_ns) {
    block_on(BlockKind::kSleep, nullptr, true, now_ns_ + duration_ns);
  }

  /// Parks until every OTHER virtual thread has finished.
  void join_others() {
    VThread* me = self();
    for (;;) {
      bool all = true;
      for (std::size_t i = 0; i < threads_.size(); ++i) {
        VThread* t = threads_[i].get();
        if (t != me && t->state != VState::kFinished) {
          all = false;
          break;
        }
      }
      if (all) return;
      block_on(BlockKind::kJoin, nullptr, false, 0);
    }
  }

  /// Commits every buffered store of `t`, oldest first (TSO drain).
  void flush(VThread* t) {
    while (!t->buffer.empty()) {
      commit_one(t);
    }
  }

  void buffer_store(BufferedStore s) {
    VThread* t = self();
    if (t == nullptr) return;
    if (t->buffer.size() >= limits_.max_store_buffer) commit_one(t);
    t->buffer.push_back(s);
  }

  /// Spin iterations and stall sinks advance virtual time themselves.
  void advance_time(std::int64_t ns) noexcept { now_ns_ += ns; }

  /// Called at abort-sensitive entry points: throws SimAbortedError to
  /// unwind the thread, unless an exception is already in flight (a
  /// destructor-path primitive must not double-throw).
  void abort_point() {
    if (std::uncaught_exceptions() == 0) throw SimAbortedError{};
  }

  VThread* self() const noexcept { return self_ref(); }
  bool aborted() const noexcept { return aborted_; }
  std::int64_t now_ns() const noexcept { return now_ns_; }
  std::uint64_t seed() const noexcept { return seed_; }
  std::size_t steps() const noexcept { return steps_; }

 private:
  struct Action {
    bool flush;  ///< true: commit thread's oldest buffered store
    VThread* thread;
  };

  void switch_to_controller() {
    VThread* t = self();
    to_controller_.release();
    t->resume.acquire();
    if (aborted_) abort_point();
  }

  void finish_thread(VThread* t) {
    flush(t);
    t->state = VState::kFinished;
    if (t->errored && !aborted_) {
      record_failure("thread '" + t->name + "' threw: " + t->error);
    }
    to_controller_.release();
  }

  void make_runnable(VThread* t, bool timed_out) {
    t->state = VState::kRunnable;
    t->block = BlockKind::kNone;
    t->channel = nullptr;
    t->has_deadline = false;
    t->timed_out = timed_out;
  }

  /// Wakes deadline-expired sleepers/waiters and ready joiners.  Runs
  /// every loop iteration: spinners advance virtual time while other
  /// threads sleep, so expiry must be noticed even when runnables
  /// exist.
  void promote_wakeups() {
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      VThread* t = threads_[i].get();
      if (t->state != VState::kBlocked) continue;
      if (t->has_deadline && t->deadline_ns <= now_ns_) {
        make_runnable(t, /*timed_out=*/true);
      } else if (t->block == BlockKind::kJoin) {
        bool all = true;
        for (std::size_t j = 0; j < threads_.size(); ++j) {
          VThread* o = threads_[j].get();
          if (o != t && o->state != VState::kFinished) {
            all = false;
            break;
          }
        }
        if (all) make_runnable(t, /*timed_out=*/false);
      }
    }
  }

  /// No runnable thread: jump virtual time to the earliest deadline.
  /// Returns false when there is none — a deadlock.
  bool advance_to_next_deadline() {
    std::int64_t best = INT64_MAX;
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      VThread* t = threads_[i].get();
      if (t->state == VState::kBlocked && t->has_deadline) {
        best = std::min(best, t->deadline_ns);
      }
    }
    if (best == INT64_MAX) return false;
    now_ns_ = std::max(now_ns_, best);
    return true;
  }

  bool all_finished() const {
    for (const auto& t : threads_) {
      if (t->state != VState::kFinished) return false;
    }
    return true;
  }

  std::size_t choose(std::size_t n) {
    if (n <= 1) return 0;  // forced moves are not decisions
    std::uint32_t c;
    if (forced_ != nullptr && trace_.size() < forced_->size()) {
      c = (*forced_)[trace_.size()];
      if (c >= n) c = static_cast<std::uint32_t>(n - 1);
    } else {
      c = static_cast<std::uint32_t>(rng_() % n);
    }
    trace_.push_back(c);
    return c;
  }

  void commit_one(VThread* t) {
    if (t->buffer.empty()) return;
    BufferedStore s = t->buffer.front();
    t->buffer.pop_front();
    s.commit(s.target, s.bits);
  }

  void record_failure(std::string message) {
    if (!failed_) {
      failed_ = true;
      message_ = std::move(message);
    }
    aborted_ = true;
  }

  std::string deadlock_message() const {
    std::string msg = "deadlock at t=" + std::to_string(now_ns_ / 1000000) +
                      "ms: every live thread is blocked with no deadline:";
    static constexpr const char* kKindNames[] = {"none",  "mutex", "condvar",
                                                 "futex", "sleep", "join"};
    for (const auto& t : threads_) {
      if (t->state == VState::kFinished) continue;
      msg += " '" + t->name + "'(" +
             kKindNames[static_cast<std::size_t>(t->block)] + ")";
    }
    return msg;
  }

  /// Post-abort teardown: resume every unfinished thread until it
  /// unwinds (its next schedule point throws SimAbortedError).
  void drain() {
    while (!all_finished()) {
      for (std::size_t i = 0; i < threads_.size(); ++i) {
        VThread* t = threads_[i].get();
        if (t->state == VState::kFinished) continue;
        t->resume.release();
        to_controller_.acquire();
      }
    }
  }

  const std::uint64_t seed_;
  const SimLimits limits_;
  std::mt19937_64 rng_;
  const std::vector<std::uint32_t>* forced_;
  std::vector<std::unique_ptr<VThread>> threads_;
  std::vector<Action> actions_;
  std::vector<std::uint32_t> trace_;
  std::binary_semaphore to_controller_{0};
  std::int64_t now_ns_ = 0;
  std::size_t steps_ = 0;
  bool failed_ = false;
  bool aborted_ = false;
  std::string message_;
};

/// Scheduler-owned mutex.  Lock/unlock are schedule points; unlock
/// drains the holder's store buffer (a real mutex release publishes
/// everything before it) and wakes blocked acquirers to re-contend —
/// wake order is a scheduler decision, modelling real unfairness.
class SimMutex {
 public:
  SimMutex() = default;
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  void lock() {
    SimRun* run = usable_run();
    if (run == nullptr) {
      locked_ = true;
      return;
    }
    if (run->aborted()) {
      run->abort_point();
      locked_ = true;
      return;
    }
    run->yield("mutex.lock");
    acquire_raw(run);
  }

  bool try_lock() {
    SimRun* run = usable_run();
    if (run == nullptr || run->aborted()) {
      const bool was = locked_;
      locked_ = true;
      return !was;
    }
    run->yield("mutex.try_lock");
    if (locked_) return false;
    locked_ = true;
    run->flush(run->self());
    return true;
  }

  /// Never throws: runs inside lock-guard destructors.
  void unlock() {
    SimRun* run = usable_run();
    if (run == nullptr || run->aborted()) {
      locked_ = false;
      return;
    }
    release_raw(run);
    run->yield("mutex.unlock");
  }

  // -- internals shared with SimCondVar::wait (via SimRun) --

  void acquire_raw(SimRun* run) {
    while (locked_) {
      run->block_on(BlockKind::kMutex, this, false, 0);
    }
    locked_ = true;
    run->flush(run->self());  // acquire boundary: drain like an RMW
  }

  void release_raw(SimRun* run) {
    run->flush(run->self());  // release boundary: publish before unlock
    locked_ = false;
    run->wake_mutex_waiters(this);
  }

 private:
  static SimRun* usable_run() noexcept {
    SimRun* run = active_run_ref();
    return (run != nullptr && run->self() != nullptr) ? run : nullptr;
  }

  bool locked_ = false;
};

inline bool SimRun::wait_releasing(SimMutex& m, const void* channel,
                                   bool has_deadline,
                                   std::int64_t deadline_ns) {
  VThread* t = self();
  if (t == nullptr) return false;
  if (aborted_) {
    abort_point();
    return false;
  }
  // Register as a waiter FIRST, then release the mutex: a notifier
  // running in the release-to-park window finds us on the channel.
  t->state = VState::kBlocked;
  t->block = BlockKind::kCondVar;
  t->channel = channel;
  t->has_deadline = has_deadline;
  t->deadline_ns = deadline_ns;
  t->timed_out = false;
  m.release_raw(this);
  switch_to_controller();
  const bool timed = t->timed_out;
  m.acquire_raw(this);
  return timed;
}

/// Scheduler-owned condition variable over SimMutex.  notify_one is
/// modelled as notify_all (legal: condvars may wake spuriously; the
/// engine's predicates re-check) — broader wake, more interleavings.
class SimCondVar {
 public:
  SimCondVar() = default;
  SimCondVar(const SimCondVar&) = delete;
  SimCondVar& operator=(const SimCondVar&) = delete;

  void wait(std::unique_lock<SimMutex>& lk) {
    SimRun* run = active_run_ref();
    if (run == nullptr || run->self() == nullptr) return;
    run->wait_releasing(*lk.mutex(), this, false, 0);
  }

  template <typename Predicate>
  void wait(std::unique_lock<SimMutex>& lk, Predicate pred) {
    while (!pred()) wait(lk);
  }

  std::cv_status wait_until(std::unique_lock<SimMutex>& lk,
                            std::chrono::steady_clock::time_point deadline) {
    SimRun* run = active_run_ref();
    if (run == nullptr || run->self() == nullptr) {
      return std::cv_status::timeout;
    }
    const std::int64_t deadline_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count();
    if (deadline_ns <= run->now_ns()) {
      run->yield("cv.wait_until(expired)");
      return std::cv_status::timeout;
    }
    return run->wait_releasing(*lk.mutex(), this, true, deadline_ns)
               ? std::cv_status::timeout
               : std::cv_status::no_timeout;
  }

  void notify_all() {
    SimRun* run = active_run_ref();
    if (run == nullptr || run->self() == nullptr || run->aborted()) return;
    run->flush(run->self());
    run->wake_channel(this);
    run->yield("cv.notify");
  }

  void notify_one() { notify_all(); }
};

/// std::atomic stand-in with a modelled TSO store buffer.  Relaxed and
/// release stores buffer per-thread; seq_cst stores and all RMWs drain
/// and hit committed memory; loads forward from the thread's own
/// buffer (a thread always sees its own stores).  Atomic ops are NOT
/// schedule points — interleaving granularity comes from the explicit
/// SchedulePoints and primitive boundaries, which keeps traces short.
template <typename T>
class SimAtomic {
  static_assert(std::is_trivially_copyable_v<T> &&
                    sizeof(T) <= sizeof(std::uint64_t),
                "SimAtomic models small trivially-copyable payloads");

 public:
  constexpr SimAtomic() noexcept : value_{} {}
  constexpr SimAtomic(T v) noexcept : value_(v) {}  // NOLINT(runtime/explicit)
  SimAtomic(const SimAtomic&) = delete;
  SimAtomic& operator=(const SimAtomic&) = delete;

  T load(std::memory_order = std::memory_order_seq_cst) const noexcept {
    SimRun* run = active_run_ref();
    VThread* t = self_ref();
    if (run != nullptr && !run->aborted() && t != nullptr) {
      for (auto it = t->buffer.rbegin(); it != t->buffer.rend(); ++it) {
        if (it->target == this) return decode(it->bits);
      }
    }
    return value_;
  }

  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
    SimRun* run = active_run_ref();
    VThread* t = self_ref();
    if (run == nullptr || run->aborted() || t == nullptr) {
      value_ = v;
      return;
    }
    if (order == std::memory_order_seq_cst) {
      run->flush(t);  // seq_cst store: drain, then commit
      value_ = v;
      return;
    }
    run->buffer_store(BufferedStore{const_cast<SimAtomic*>(this), encode(v),
                                    &SimAtomic::commit_thunk});
  }

  T fetch_add(T v, std::memory_order = std::memory_order_seq_cst) {
    return rmw([v](T old) { return static_cast<T>(old + v); });
  }
  T fetch_or(T v, std::memory_order = std::memory_order_seq_cst) {
    return rmw([v](T old) { return static_cast<T>(old | v); });
  }
  T fetch_and(T v, std::memory_order = std::memory_order_seq_cst) {
    return rmw([v](T old) { return static_cast<T>(old & v); });
  }
  T exchange(T v, std::memory_order = std::memory_order_seq_cst) {
    return rmw([v](T) { return v; });
  }

 private:
  template <typename Fn>
  T rmw(Fn fn) {
    SimRun* run = active_run_ref();
    VThread* t = self_ref();
    if (run != nullptr && !run->aborted() && t != nullptr) {
      run->flush(t);  // every RMW drains the buffer (TSO)
    }
    const T old = value_;
    value_ = fn(old);
    return old;
  }

  static T decode(std::uint64_t bits) noexcept {
    T v;
    std::memcpy(&v, &bits, sizeof(T));
    return v;
  }
  static std::uint64_t encode(T v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(T));
    return bits;
  }
  static void commit_thunk(void* target, std::uint64_t bits) {
    static_cast<SimAtomic*>(target)->value_ = decode(bits);
  }

  T value_;
};

/// SpinBackoff stand-in: each iteration advances virtual time a hair
/// (so timed spin loops make progress against virtual deadlines) and
/// yields to the scheduler.  A genuinely lost wakeup turns into the
/// step-limit livelock failure.
class SimSpinWaiter {
 public:
  void once() {
    ++count_;
    SimRun* run = active_run_ref();
    if (run == nullptr || run->self() == nullptr) return;
    run->advance_time(2000);  // 2us of virtual spin
    run->yield("spin");
  }
  std::uint32_t spins() const noexcept { return count_; }
  void reset() noexcept { count_ = 0; }

 private:
  std::uint32_t count_ = 0;
};

/// std::stop_callback stand-in whose destructor waits for an in-flight
/// invocation THROUGH THE SCHEDULER.  The real ~stop_callback blocks at
/// the OS level until a concurrently-executing callback returns; under
/// the simulator that callback's thread may be parked at a schedule
/// point, so an OS-level wait would hang the whole harness (the
/// controller thinks the destroying thread is still running).  Instead
/// the destructor sim-blocks on a completion channel that the wrapper
/// signals when the callback finishes.
///
/// On an aborted run with the callback still in flight, the inner
/// std::stop_callback is deliberately LEAKED: the callback's thread is
/// unwinding through the invocation (never clearing `running`), and
/// destroying the registration would re-introduce the real OS block.
/// Failed runs leak their counters anyway (see file header).
template <typename F>
class SimStopCallback {
 public:
  SimStopCallback(const std::stop_token& token, F f)
      : state_(std::make_shared<State>()),
        cb_(std::make_unique<std::stop_callback<Wrap>>(
            token, Wrap{std::move(f), state_})) {}
  SimStopCallback(const SimStopCallback&) = delete;
  SimStopCallback& operator=(const SimStopCallback&) = delete;

  ~SimStopCallback() {
    SimRun* run = active_run_ref();
    if (run != nullptr && run->self() != nullptr) {
      // Serialization argument: request_stop() reaches `running = true`
      // with no schedule point in between, so whenever another thread
      // is parked anywhere inside the callback, running is already
      // true.  Conversely once the loop sees !running with the run not
      // aborted, no invocation can START before cb_.reset() below —
      // there is no schedule point between the check and the reset.
      while (!run->aborted() && state_->running) {
        run->block_quiet(state_.get());
      }
      if (run->aborted() && state_->running) {
        (void)cb_.release();  // leak: see class comment
        return;
      }
    }
    cb_.reset();
  }

 private:
  struct State {
    bool running = false;
  };
  struct Wrap {
    F f;
    std::shared_ptr<State> state;
    void operator()() {
      state->running = true;
      f();
      state->running = false;
      SimRun* run = active_run_ref();
      if (run != nullptr && run->self() != nullptr && !run->aborted()) {
        run->wake_channel(state.get());
      }
    }
  };

  std::shared_ptr<State> state_;
  std::unique_ptr<std::stop_callback<Wrap>> cb_;
};

}  // namespace monotonic::sim
