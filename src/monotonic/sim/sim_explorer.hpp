// sim_explorer.hpp — seed sweeps, trace shrinking, replay.
//
// The workflow this header implements (docs/simulation.md walks it):
//
//   explore:  run a scenario across seeds base, base+1, ... until one
//             fails or the budget (seed count / wall clock) runs out.
//   shrink:   greedily simplify the failing run's DECISION TRACE —
//             zeroing a choice biases the scheduler toward "let the
//             current thread keep running", i.e. fewer preemptions —
//             re-running under the forced trace after each change and
//             keeping it only if the run still fails.
//   replay:   a failure is reproduced by seed alone (the interleaving
//             is a pure function of it); the printed command feeds
//             tools/run_sim.sh or the sim_explorer CLI directly.
//
// Everything here is deterministic: same scenario + same seed (or
// same forced trace) => same outcome, bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "monotonic/sim/sim_harness.hpp"
#include "monotonic/sim/sim_runtime.hpp"

namespace monotonic::sim {

/// One scenario execution under one seed (optionally trace-forced).
inline SimOutcome run_once(const SimScenario& scenario, std::uint64_t seed,
                           const std::vector<std::uint32_t>* forced_trace =
                               nullptr,
                           SimLimits limits = {}) {
  SimRun run(seed, forced_trace, limits);
  SimHarness harness(run);
  return run.execute([&harness, &scenario] { scenario.fn(harness); });
}

/// The command a human (or CI log reader) runs to reproduce a failure.
inline std::string replay_command(const SimScenario& scenario,
                                  std::uint64_t seed) {
  return "tools/run_sim.sh --scenario " + std::string(scenario.name) +
         " --seed " + std::to_string(seed);
}

struct ExploreResult {
  bool found_failure = false;
  std::uint64_t failing_seed = 0;
  std::size_t seeds_run = 0;
  SimOutcome outcome;                       ///< the failing run (if any)
  std::vector<std::uint32_t> shrunk_trace;  ///< simplified decision trace
};

/// Greedy trace shrinking: try zeroing each decision (then dropping
/// the tail), keep any change under which the forced replay still
/// fails.  Bounded: at most one pass plus the tail probe, so shrinking
/// a few-hundred-step trace stays interactive.
inline std::vector<std::uint32_t> shrink_trace(
    const SimScenario& scenario, std::uint64_t seed,
    std::vector<std::uint32_t> trace, SimLimits limits = {}) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i] == 0) continue;
    const std::uint32_t saved = trace[i];
    trace[i] = 0;
    if (!run_once(scenario, seed, &trace, limits).failed) trace[i] = saved;
  }
  // Drop the longest still-failing suffix (decisions past the end of a
  // forced trace fall back to the seed's PRNG, so a shorter prefix
  // often reproduces the failure on its own).
  while (!trace.empty()) {
    std::vector<std::uint32_t> shorter(trace.begin(), trace.end() - 1);
    if (!run_once(scenario, seed, &shorter, limits).failed) break;
    trace.swap(shorter);
  }
  return trace;
}

/// Sweeps `seed_count` consecutive seeds starting at `base_seed`.
/// Stops at the first failure and shrinks its trace.  For
/// expect_failure scenarios the CALLER inverts the verdict (finding a
/// failure is the pass).
inline ExploreResult explore(const SimScenario& scenario,
                             std::uint64_t base_seed, std::size_t seed_count,
                             SimLimits limits = {}, bool shrink = true) {
  ExploreResult result;
  for (std::size_t i = 0; i < seed_count; ++i) {
    const std::uint64_t seed = base_seed + i;
    SimOutcome out = run_once(scenario, seed, nullptr, limits);
    ++result.seeds_run;
    if (out.failed) {
      result.found_failure = true;
      result.failing_seed = seed;
      result.outcome = std::move(out);
      result.shrunk_trace =
          shrink ? shrink_trace(scenario, seed, result.outcome.trace, limits)
                 : result.outcome.trace;
      return result;
    }
  }
  return result;
}

/// Human-readable failure block for logs: what failed, how to replay.
inline std::string describe_failure(const SimScenario& scenario,
                                    const ExploreResult& result) {
  std::string msg;
  msg += "scenario '" + std::string(scenario.name) + "' failed\n";
  msg += "  seed:    " + std::to_string(result.failing_seed) + "\n";
  msg += "  steps:   " + std::to_string(result.outcome.steps) + "\n";
  msg += "  message: " + result.outcome.message + "\n";
  msg += "  trace:   " + std::to_string(result.outcome.trace.size()) +
         " decisions (" + std::to_string(result.shrunk_trace.size()) +
         " after shrink)\n";
  msg += "  replay:  " + replay_command(scenario, result.failing_seed) + "\n";
  return msg;
}

/// Parses a regression-seed corpus file: one decimal seed per line,
/// '#' comments and blank lines ignored.
inline std::vector<std::uint64_t> parse_seed_corpus(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    seeds.push_back(std::stoull(line.substr(begin, end - begin + 1)));
  }
  return seeds;
}

}  // namespace monotonic::sim
