// sim_env.hpp — SimEngineEnv: the simulation instantiation of the
// engine-environment trait (core/engine_env.hpp).
//
// Plugging this Env into the wait-engine templates produces counters
// whose every blocking primitive, clock read, atomic and schedule
// point is owned by the active SimRun's seeded scheduler
// (sim_runtime.hpp).  Because the environment is a template parameter,
// sim counters are DISTINCT TYPES from the production aliases — both
// can live in one binary, and production code pays nothing.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "monotonic/core/engine_env.hpp"
#include "monotonic/sim/sim_runtime.hpp"

namespace monotonic::sim {

/// Virtual clock.  Reuses steady_clock's time_point type so engine and
/// policy deadline signatures (std::chrono::steady_clock::time_point)
/// need no templating — only the epoch meaning changes: time since the
/// start of the run, advanced exclusively by the scheduler.
struct SimClock {
  using duration = std::chrono::steady_clock::duration;
  using rep = duration::rep;
  using period = duration::period;
  using time_point = std::chrono::steady_clock::time_point;
  static constexpr bool is_steady = true;

  static time_point now() {
    SimRun* run = active_run_ref();
    if (run == nullptr) return std::chrono::steady_clock::now();
    return time_point(std::chrono::duration_cast<duration>(
        std::chrono::nanoseconds(run->now_ns())));
  }
};

inline const char* schedule_point_name(SchedulePoint p) noexcept {
  switch (p) {
    case SchedulePoint::kIncrementFast: return "increment.fast";
    case SchedulePoint::kIncrementSlow: return "increment.slow";
    case SchedulePoint::kCheck: return "check";
    case SchedulePoint::kArm: return "arm";
    case SchedulePoint::kRearm: return "rearm";
    case SchedulePoint::kCollapse: return "collapse";
    case SchedulePoint::kPark: return "park";
    case SchedulePoint::kWake: return "wake";
    case SchedulePoint::kPoison: return "poison";
    case SchedulePoint::kCancel: return "cancel";
    case SchedulePoint::kStall: return "stall";
    case SchedulePoint::kIndexLink: return "index.link";
    case SchedulePoint::kIndexPeel: return "index.peel";
    // Cross-process points: never reached under simulation (the shared
    // counter runs against real process boundaries only), named so the
    // switch stays exhaustive and kill-sweep logs can print them.
    case SchedulePoint::kSharedRegister: return "shared.register";
    case SchedulePoint::kSharedInflight: return "shared.inflight";
    case SchedulePoint::kSharedPublish: return "shared.publish";
    case SchedulePoint::kSharedWake: return "shared.wake";
    case SchedulePoint::kSharedSweep: return "shared.sweep";
    case SchedulePoint::kPredicateEval: return "predicate.eval";
    case SchedulePoint::kCompletionEnqueue: return "completion.enqueue";
  }
  return "?";
}

/// The simulation environment.  See RealEngineEnv for the contract.
struct SimEngineEnv {
  static constexpr bool kSimulated = true;

  using Mutex = SimMutex;
  using CondVar = SimCondVar;
  using Clock = SimClock;
  template <typename T>
  using Atomic = SimAtomic<T>;
  using SpinWaiter = SimSpinWaiter;
  template <typename F>
  using StopCallback = SimStopCallback<F>;

  /// Engine decision points become scheduler yields.
  static void point(SchedulePoint p) {
    SimRun* run = active_run_ref();
    if (run == nullptr || run->self() == nullptr) return;
    run->yield(schedule_point_name(p));
  }

  /// Allocation fault hook (see engine_env.hpp).  The plain sim env
  /// never fails an allocation; FaultEnvT<SimEngineEnv>
  /// (sim/fault_env.hpp) wraps this with seeded bad_alloc injection.
  static void alloc_point() {}

  /// Stripe slots come from the VIRTUAL thread id, not a process-wide
  /// ticket: the production round-robin ticket grows monotonically
  /// across runs, which would make stripe placement (and therefore
  /// traces) depend on how many runs came before — unreplayable.
  static std::size_t stripe_slot() noexcept {
    VThread* t = self_ref();
    return t != nullptr ? t->id : 0;
  }

  /// Futex channel keyed on the word's address.  The caller (FutexWait
  /// policy) snapshots the word under the engine mutex and unlocks
  /// before calling; the load-and-park below has no schedule point in
  /// between, mirroring the kernel's atomic compare-and-block.
  static void futex_wait(Atomic<std::uint32_t>* addr, std::uint32_t expected) {
    SimRun* run = active_run_ref();
    if (run == nullptr || run->self() == nullptr) return;
    run->yield("futex.wait");
    if (addr->load(std::memory_order_acquire) != expected) return;  // EAGAIN
    run->block_on(BlockKind::kFutex, addr, false, 0);
  }

  /// Returns false iff the wait gave up because the deadline passed.
  static bool futex_wait_until(Atomic<std::uint32_t>* addr,
                               std::uint32_t expected,
                               Clock::time_point deadline) {
    SimRun* run = active_run_ref();
    if (run == nullptr || run->self() == nullptr) return false;
    run->yield("futex.wait_until");
    if (addr->load(std::memory_order_acquire) != expected) return true;
    const std::int64_t deadline_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count();
    if (deadline_ns <= run->now_ns()) return false;
    return !run->block_on(BlockKind::kFutex, addr, true, deadline_ns);
  }

  static void futex_wake_all(Atomic<std::uint32_t>* addr) {
    SimRun* run = active_run_ref();
    if (run == nullptr || run->self() == nullptr || run->aborted()) return;
    run->flush(run->self());
    run->wake_channel(addr);
    run->yield("futex.wake");
  }
};

}  // namespace monotonic::sim
