// fault_env.hpp — FaultEnvT<Base>: a fault-injecting engine
// environment that wraps any other environment.
//
// The wait engine's failure-model claims (counter_error.hpp, the
// resource-model note in basic_counter.hpp) are only as good as the
// faults they were tested against.  This decorator environment turns
// the rare events real platforms produce on their own schedule into
// events a test can demand on a chosen schedule:
//
//   * std::bad_alloc at exactly the Nth engine allocation
//     (Env::alloc_point — wait nodes and OnReach callback nodes), to
//     prove every allocation point gives the strong guarantee;
//   * spurious condition-variable wakeups — every Nth wait returns
//     without a notification, up to a bounded budget (the bound keeps
//     a fault-heavy run from degenerating into a spin loop);
//   * futex interrupts — every Nth futex_wait returns immediately, the
//     EINTR/EAGAIN shape kernel waits really have;
//   * clock jumps — every Nth schedule point invokes an installed
//     hook, which a simulation scenario points at
//     SimRun::advance_time to slam the virtual clock past deadlines
//     mid-operation.
//
// Composability: FaultEnvT is a template over the base environment, so
// the same injection code runs over RealEngineEnv (real threads, real
// allocator pressure — the allocation-failure regression test) and
// over SimEngineEnv (deterministic schedules — the fault scenarios in
// sim_scenarios.hpp).  This header depends only on engine_env.hpp;
// the sim instantiation is aliased where the sim headers are already
// in scope.
//
// Injection state is process-global (one FaultState), armed and
// disarmed through the RAII FaultScope.  Global rather than
// per-counter because the environment is a *type* — stateless by
// contract — and because a test drives exactly one faulted counter at
// a time.  FaultScope clears every knob and counter on entry and
// exit, so scopes cannot leak faults into later tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <new>

#include "monotonic/core/engine_env.hpp"

namespace monotonic::sim {

/// Everything injectable, as relaxed atomics (multiple real threads hit
/// these concurrently; the counts are triggers, not synchronization).
struct FaultState {
  // bad_alloc: alloc_point() throws when its 1-based ordinal since
  // arming equals fail_alloc_at (0 = disabled).  allocs_observed keeps
  // counting either way, so a test can first measure how many
  // allocation points an operation has, then sweep them.
  std::atomic<std::uint64_t> allocs_observed{0};
  std::atomic<std::uint64_t> fail_alloc_at{0};
  std::atomic<std::uint64_t> allocs_failed{0};

  // spurious cv wakeups: every spurious_every-th wait (0 = disabled),
  // while spurious_budget lasts.
  std::atomic<std::uint64_t> waits_observed{0};
  std::atomic<std::uint32_t> spurious_every{0};
  std::atomic<std::uint32_t> spurious_budget{0};
  std::atomic<std::uint64_t> spurious_injected{0};

  // futex interrupts: every futex_every-th futex wait (0 = disabled),
  // while futex_budget lasts.
  std::atomic<std::uint64_t> futexes_observed{0};
  std::atomic<std::uint32_t> futex_every{0};
  std::atomic<std::uint32_t> futex_budget{0};
  std::atomic<std::uint64_t> futex_injected{0};

  // clock jumps: every jump_every-th schedule point (0 = disabled)
  // invokes jump_fn, while jump_budget lasts.  The hook is a plain
  // function pointer so this header needs no sim_runtime dependency;
  // sim scenarios install a function that advances the virtual clock.
  std::atomic<std::uint64_t> points_observed{0};
  std::atomic<std::uint32_t> jump_every{0};
  std::atomic<std::uint32_t> jump_budget{0};
  std::atomic<void (*)()> jump_fn{nullptr};

  void reset() noexcept {
    allocs_observed.store(0, std::memory_order_relaxed);
    fail_alloc_at.store(0, std::memory_order_relaxed);
    allocs_failed.store(0, std::memory_order_relaxed);
    waits_observed.store(0, std::memory_order_relaxed);
    spurious_every.store(0, std::memory_order_relaxed);
    spurious_budget.store(0, std::memory_order_relaxed);
    spurious_injected.store(0, std::memory_order_relaxed);
    futexes_observed.store(0, std::memory_order_relaxed);
    futex_every.store(0, std::memory_order_relaxed);
    futex_budget.store(0, std::memory_order_relaxed);
    futex_injected.store(0, std::memory_order_relaxed);
    points_observed.store(0, std::memory_order_relaxed);
    jump_every.store(0, std::memory_order_relaxed);
    jump_budget.store(0, std::memory_order_relaxed);
    jump_fn.store(nullptr, std::memory_order_relaxed);
  }
};

inline FaultState& fault_state() {
  static FaultState state;
  return state;
}

/// One round of injection knobs.  Plain values so plans are cheap to
/// derive, log and replay; FaultScope arms one.
struct FaultPlan {
  std::uint64_t fail_alloc_at = 0;    ///< 1-based ordinal; 0 = never
  std::uint32_t spurious_every = 0;   ///< 0 = no spurious wakeups
  std::uint32_t spurious_budget = 0;
  std::uint32_t futex_every = 0;      ///< 0 = no futex interrupts
  std::uint32_t futex_budget = 0;
  std::uint32_t jump_every = 0;       ///< 0 = no clock jumps
  std::uint32_t jump_budget = 0;
  void (*jump_fn)() = nullptr;

  /// Seed-derived plan for randomized fault rounds: small cadences and
  /// budgets (the interesting schedules have faults landing close to
  /// the operations under test), fully determined by the seed so a
  /// failing round is its seed.  Allocation failure is left to the
  /// dedicated sweep tests — a random ordinal usually lands past the
  /// operation's last allocation and tests nothing.
  static FaultPlan from_seed(std::uint64_t seed) {
    auto next = [state = seed]() mutable {
      // splitmix64 — the standard seed expander; good dispersion from
      // consecutive seeds, no external dependency.
      state += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    FaultPlan plan;
    plan.spurious_every = 1 + static_cast<std::uint32_t>(next() % 3);
    plan.spurious_budget = 1 + static_cast<std::uint32_t>(next() % 8);
    plan.futex_every = 1 + static_cast<std::uint32_t>(next() % 3);
    plan.futex_budget = 1 + static_cast<std::uint32_t>(next() % 8);
    return plan;
  }
};

/// Arms `plan` for its lifetime; both construction and destruction
/// fully reset the global state, so faults cannot leak across tests.
class FaultScope {
 public:
  explicit FaultScope(const FaultPlan& plan) {
    FaultState& s = fault_state();
    s.reset();
    s.fail_alloc_at.store(plan.fail_alloc_at, std::memory_order_relaxed);
    s.spurious_every.store(plan.spurious_every, std::memory_order_relaxed);
    s.spurious_budget.store(plan.spurious_budget, std::memory_order_relaxed);
    s.futex_every.store(plan.futex_every, std::memory_order_relaxed);
    s.futex_budget.store(plan.futex_budget, std::memory_order_relaxed);
    s.jump_every.store(plan.jump_every, std::memory_order_relaxed);
    s.jump_budget.store(plan.jump_budget, std::memory_order_relaxed);
    s.jump_fn.store(plan.jump_fn, std::memory_order_relaxed);
  }
  ~FaultScope() { fault_state().reset(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

namespace detail {

/// Cadence-with-budget trigger: fires on every `every`-th observation
/// while `budget` lasts.  The budget decrement is a CAS loop so two
/// threads cannot spend the same token — an overdrawn budget would
/// turn "bounded injection" into a livelock generator.
inline bool fault_fires(std::atomic<std::uint64_t>& observed,
                        const std::atomic<std::uint32_t>& every,
                        std::atomic<std::uint32_t>& budget) {
  const std::uint32_t n = every.load(std::memory_order_relaxed);
  if (n == 0) return false;
  if ((observed.fetch_add(1, std::memory_order_relaxed) + 1) % n != 0) {
    return false;
  }
  std::uint32_t b = budget.load(std::memory_order_relaxed);
  while (b != 0 && !budget.compare_exchange_weak(b, b - 1,
                                                 std::memory_order_relaxed)) {
  }
  return b != 0;
}

inline bool should_fail_alloc() {
  FaultState& s = fault_state();
  const std::uint64_t ordinal =
      s.allocs_observed.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t at = s.fail_alloc_at.load(std::memory_order_relaxed);
  if (at == 0 || ordinal != at) return false;
  s.allocs_failed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

inline bool should_wake_spuriously() {
  FaultState& s = fault_state();
  if (!fault_fires(s.waits_observed, s.spurious_every, s.spurious_budget)) {
    return false;
  }
  s.spurious_injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

inline bool should_interrupt_futex() {
  FaultState& s = fault_state();
  if (!fault_fires(s.futexes_observed, s.futex_every, s.futex_budget)) {
    return false;
  }
  s.futex_injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

inline void maybe_jump_clock() {
  FaultState& s = fault_state();
  if (!fault_fires(s.points_observed, s.jump_every, s.jump_budget)) return;
  if (void (*fn)() = s.jump_fn.load(std::memory_order_relaxed)) fn();
}

}  // namespace detail

/// The fault-injecting environment: forwards everything to `Base`,
/// inserting the armed faults at the contract's injection points.
template <typename Base = RealEngineEnv>
struct FaultEnvT {
  static constexpr bool kSimulated = Base::kSimulated;

  using Mutex = typename Base::Mutex;
  using Clock = typename Base::Clock;
  template <typename T>
  using Atomic = typename Base::template Atomic<T>;
  using SpinWaiter = typename Base::SpinWaiter;
  template <typename F>
  using StopCallback = typename Base::template StopCallback<F>;

  /// Base condvar plus injected spurious returns.  An injected wake
  /// releases and reacquires the lock instead of sleeping — exactly
  /// what the caller observes from a real spurious wakeup, minus the
  /// kernel round trip.
  class CondVar {
   public:
    void notify_all() { cv_.notify_all(); }

    void wait(std::unique_lock<Mutex>& lock) {
      if (detail::should_wake_spuriously()) {
        lock.unlock();
        lock.lock();
        return;
      }
      cv_.wait(lock);
    }

    std::cv_status wait_until(std::unique_lock<Mutex>& lock,
                              typename Clock::time_point deadline) {
      if (detail::should_wake_spuriously()) {
        lock.unlock();
        lock.lock();
        // no_timeout even if the deadline has passed: the engine/policy
        // must re-derive timeout from the clock, never trust the wake.
        return std::cv_status::no_timeout;
      }
      return cv_.wait_until(lock, deadline);
    }

   private:
    typename Base::CondVar cv_;
  };

  static void point(SchedulePoint p) {
    Base::point(p);
    detail::maybe_jump_clock();
  }

  static void alloc_point() {
    Base::alloc_point();
    if (detail::should_fail_alloc()) throw std::bad_alloc();
  }

  static std::size_t stripe_slot() noexcept { return Base::stripe_slot(); }

  static void futex_wait(Atomic<std::uint32_t>* addr, std::uint32_t expected) {
    if (detail::should_interrupt_futex()) return;  // EINTR: caller re-checks
    Base::futex_wait(addr, expected);
  }

  static bool futex_wait_until(Atomic<std::uint32_t>* addr,
                               std::uint32_t expected,
                               typename Clock::time_point deadline) {
    if (detail::should_interrupt_futex()) return true;  // woken, not timeout
    return Base::futex_wait_until(addr, expected, deadline);
  }

  static void futex_wake_all(Atomic<std::uint32_t>* addr) {
    Base::futex_wake_all(addr);
  }
};

/// Fault injection over real threads — what the allocation-failure
/// regression and FaultEnv conformance tests instantiate.
using RealFaultEnv = FaultEnvT<RealEngineEnv>;

}  // namespace monotonic::sim
