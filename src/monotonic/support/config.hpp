// config.hpp — library-wide configuration and version information.
//
// Part of libmonotonic, a reproduction of:
//   John Thornley and K. Mani Chandy,
//   "Monotonic Counters: A New Mechanism for Thread Synchronization",
//   IPPS 2000.
#pragma once

#include <cstdint>

namespace monotonic {

/// Library semantic version.
struct Version {
  int major;
  int minor;
  int patch;
};

/// Returns the version of libmonotonic this translation unit was built
/// against.
constexpr Version version() noexcept { return Version{1, 0, 0}; }

/// When nonzero, counters and barriers maintain structural statistics
/// (wakeups, broadcasts, live wait-node high-water marks).  The counters
/// are plain relaxed atomics, cheap enough to leave on; benches rely on
/// them to reproduce the paper's structural claims (DESIGN.md E5/E6/E9).
#ifndef MONOTONIC_ENABLE_STATS
#define MONOTONIC_ENABLE_STATS 1
#endif

/// Counter values are unsigned 64-bit throughout.  The paper uses
/// `unsigned int`; we widen it so overflow is a non-issue for any
/// realistic program (2^64 increments of 1 at 1ns each is ~580 years).
using counter_value_t = std::uint64_t;

}  // namespace monotonic
