#include "monotonic/support/cli.hpp"

#include <charconv>
#include <stdexcept>

#include "monotonic/support/assert.hpp"

namespace monotonic {

CliArgs::CliArgs(int argc, const char* const* argv) {
  MC_REQUIRE(argc >= 1, "argv must contain the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        options_.push_back(Option{std::string(arg.substr(2)), "", false});
      } else {
        options_.push_back(Option{std::string(arg.substr(2, eq - 2)),
                                  std::string(arg.substr(eq + 1)), true});
      }
    } else {
      positionals_.emplace_back(arg);
    }
  }
}

std::uint64_t CliArgs::parse_u64(const std::string& text) {
  std::uint64_t value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    throw std::invalid_argument("not a nonnegative integer: '" + text + "'");
  }
  return value;
}

std::uint64_t CliArgs::positional_u64(std::size_t i,
                                      std::uint64_t fallback) const {
  if (i >= positionals_.size()) return fallback;
  return parse_u64(positionals_[i]);
}

std::string CliArgs::positional_str(std::size_t i,
                                    std::string fallback) const {
  if (i >= positionals_.size()) return fallback;
  return positionals_[i];
}

std::optional<std::uint64_t> CliArgs::option_u64(std::string_view key) const {
  for (const auto& opt : options_) {
    if (opt.key == key && opt.has_value) return parse_u64(opt.value);
  }
  return std::nullopt;
}

std::optional<std::string> CliArgs::option_str(std::string_view key) const {
  for (const auto& opt : options_) {
    if (opt.key == key && opt.has_value) return opt.value;
  }
  return std::nullopt;
}

bool CliArgs::has_flag(std::string_view key) const {
  for (const auto& opt : options_) {
    if (opt.key == key) return true;
  }
  return false;
}

std::vector<std::string> CliArgs::option_keys() const {
  std::vector<std::string> keys;
  keys.reserve(options_.size());
  for (const auto& opt : options_) keys.push_back(opt.key);
  return keys;
}

}  // namespace monotonic
