// histogram.hpp — log2-bucketed histogram for latency distributions.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace monotonic {

/// Histogram over uint64 values with one bucket per power of two.
/// add() is lock-free relative to nothing — callers synchronize
/// externally or keep one histogram per thread and merge().
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(std::uint64_t value) noexcept {
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += value;
  }

  void merge(const Log2Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::uint64_t bucket(std::size_t i) const noexcept { return buckets_[i]; }

  /// Upper bound (inclusive) of the value whose cumulative frequency
  /// first reaches fraction q, at bucket resolution.
  std::uint64_t quantile_bound(double q) const noexcept {
    if (count_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > target) return upper_bound_of(i);
    }
    return upper_bound_of(kBuckets - 1);
  }

  /// Multi-line "bucket: count" rendering, skipping empty buckets.
  std::string to_string() const;

  static std::size_t bucket_of(std::uint64_t value) noexcept {
    if (value == 0) return 0;
    return static_cast<std::size_t>(64 - __builtin_clzll(value)) - 1;
  }

  static std::uint64_t upper_bound_of(std::size_t bucket) noexcept {
    return bucket >= 63 ? ~0ull : (2ull << bucket) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace monotonic
