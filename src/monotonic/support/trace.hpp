// trace.hpp — lightweight event tracing with Chrome-trace export.
//
// Answering "what did the synchronization actually do?" from timings
// alone is guesswork; the benches use aggregate stats, and this tracer
// covers the temporal dimension: per-thread ring buffers of timestamped
// events, merged on demand into the Chrome trace-event JSON format
// (load in chrome://tracing or https://ui.perfetto.dev).
//
// Design constraints:
//   * recording must be cheap and lock-free on the hot path — each
//     thread appends to its own fixed-size ring (oldest events are
//     overwritten; tracing is a lens, not a flight recorder);
//   * disabled tracing costs one relaxed atomic load;
//   * event names are `const char*` with static storage duration (no
//     ownership, no allocation on record).
//
// TracedCounter (trace_counter.hpp) hooks counter operations into a
// Tracer; Span records user phases.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "monotonic/support/config.hpp"

namespace monotonic {

enum class TraceEventKind : std::uint8_t {
  kIncrement,   ///< counter Increment (arg = amount)
  kCheckFast,   ///< Check satisfied without suspending (arg = level)
  kSuspend,     ///< Check parked (arg = level)
  kResume,      ///< parked Check woke (arg = level)
  kPoison,      ///< counter poisoned (arg unused)
  kCollapse,    ///< striped plane collapsed on an Increment (arg = amount)
  kCompletion,  ///< OnReach callback ran (arg = level)
  kSpanBegin,   ///< user phase begin
  kSpanEnd,     ///< user phase end
  kInstant,     ///< user marker
};

const char* to_string(TraceEventKind kind);

/// Collects events from any number of threads.  One instance per
/// tracing session; `Tracer::global()` is the conventional default.
class Tracer {
 public:
  /// Ring capacity per thread (events).
  explicit Tracer(std::size_t ring_capacity = 4096);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide default instance (starts disabled).
  static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_release); }
  void disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Records one event (no-op when disabled).  `name` must have static
  /// storage duration.
  void record(TraceEventKind kind, const char* name, std::uint64_t arg);

  /// RAII phase marker.
  class Span {
   public:
    Span(Tracer& tracer, const char* name)
        : tracer_(tracer), name_(name) {
      tracer_.record(TraceEventKind::kSpanBegin, name_, 0);
    }
    ~Span() { tracer_.record(TraceEventKind::kSpanEnd, name_, 0); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Tracer& tracer_;
    const char* name_;
  };

  /// One recorded event, with a stable thread index.
  struct Event {
    std::uint64_t timestamp_ns;  ///< steady-clock, process-relative
    std::uint32_t thread;
    TraceEventKind kind;
    const char* name;
    std::uint64_t arg;
  };

  /// All retained events, timestamp-sorted.  Takes the registry lock;
  /// call from quiescent points (end of run), not hot paths.
  std::vector<Event> events() const;

  /// Chrome trace-event JSON (the "traceEvents" array format).
  std::string to_chrome_json() const;

  /// Drops all retained events (threads keep their rings).
  void clear();

  std::size_t ring_capacity() const noexcept { return ring_capacity_; }

 private:
  struct Ring;
  Ring& ring_for_this_thread();
  static std::uint64_t next_tracer_id() noexcept;

  const std::size_t ring_capacity_;
  // Process-unique id: per-thread ring caches key on it, so a Tracer
  // constructed at a reused stack/heap address can never resolve to a
  // destroyed predecessor's ring.
  const std::uint64_t tracer_id_ = next_tracer_id();
  std::atomic<bool> enabled_{false};
  mutable std::mutex registry_m_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::uint64_t epoch_ns_;  // construction time; timestamps are relative
};

}  // namespace monotonic
