#include "monotonic/support/trace.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_map>

namespace monotonic {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kIncrement:
      return "increment";
    case TraceEventKind::kCheckFast:
      return "check-fast";
    case TraceEventKind::kSuspend:
      return "suspend";
    case TraceEventKind::kResume:
      return "resume";
    case TraceEventKind::kPoison:
      return "poison";
    case TraceEventKind::kCollapse:
      return "collapse";
    case TraceEventKind::kCompletion:
      return "completion";
    case TraceEventKind::kSpanBegin:
      return "span-begin";
    case TraceEventKind::kSpanEnd:
      return "span-end";
    case TraceEventKind::kInstant:
      return "instant";
  }
  return "?";
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// Fixed-capacity single-writer ring.  The owning thread appends with
// relaxed stores; readers (events()) snapshot under the registry lock
// at quiescent points, which the API contract requires.
struct Tracer::Ring {
  explicit Ring(std::uint32_t thread_index, std::size_t capacity)
      : thread(thread_index), slots(capacity) {}

  struct Slot {
    std::uint64_t timestamp_ns;
    TraceEventKind kind;
    const char* name;
    std::uint64_t arg;
  };

  const std::uint32_t thread;
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> next{0};  // total appended (mod capacity slot)

  void append(TraceEventKind kind, const char* name, std::uint64_t arg,
              std::uint64_t ts) {
    const std::uint64_t i = next.load(std::memory_order_relaxed);
    Slot& slot = slots[i % slots.size()];
    slot.timestamp_ns = ts;
    slot.kind = kind;
    slot.name = name;
    slot.arg = arg;
    next.store(i + 1, std::memory_order_release);
  }
};

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_ns_(now_ns()) {}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::next_tracer_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Tracer::Ring& Tracer::ring_for_this_thread() {
  // One ring per (tracer, thread).  The map is thread_local, so lookup
  // is uncontended; ring creation takes the registry lock once.  Keyed
  // on the process-unique tracer id, not the address: a new Tracer at
  // a reused address must not inherit a destroyed tracer's ring.
  static thread_local std::unordered_map<std::uint64_t, Ring*> my_rings;
  auto it = my_rings.find(tracer_id_);
  if (it != my_rings.end()) return *it->second;
  std::scoped_lock lock(registry_m_);
  rings_.push_back(std::make_unique<Ring>(
      static_cast<std::uint32_t>(rings_.size()), ring_capacity_));
  Ring* ring = rings_.back().get();
  my_rings[tracer_id_] = ring;
  return *ring;
}

void Tracer::record(TraceEventKind kind, const char* name,
                    std::uint64_t arg) {
  if (!enabled()) return;
  ring_for_this_thread().append(kind, name, arg, now_ns() - epoch_ns_);
}

std::vector<Tracer::Event> Tracer::events() const {
  std::vector<Event> out;
  {
    std::scoped_lock lock(registry_m_);
    for (const auto& ring : rings_) {
      const std::uint64_t total = ring->next.load(std::memory_order_acquire);
      const std::uint64_t kept =
          std::min<std::uint64_t>(total, ring->slots.size());
      for (std::uint64_t i = total - kept; i < total; ++i) {
        const auto& slot = ring->slots[i % ring->slots.size()];
        out.push_back(Event{slot.timestamp_ns,
                            ring->thread, slot.kind, slot.name, slot.arg});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.timestamp_ns < b.timestamp_ns;
  });
  return out;
}

std::string Tracer::to_chrome_json() const {
  const auto all = events();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : all) {
    if (!first) os << ",";
    first = false;
    // Chrome phases: B/E for spans, i for instants, X not used.
    char phase = 'i';
    if (e.kind == TraceEventKind::kSpanBegin) phase = 'B';
    if (e.kind == TraceEventKind::kSpanEnd) phase = 'E';
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"" << to_string(e.kind)
       << "\",\"ph\":\"" << phase << "\",\"ts\":" << e.timestamp_ns / 1000.0
       << ",\"pid\":1,\"tid\":" << e.thread << ",\"args\":{\"arg\":" << e.arg
       << "}}";
  }
  os << "]}";
  return os.str();
}

void Tracer::clear() {
  std::scoped_lock lock(registry_m_);
  for (auto& ring : rings_) ring->next.store(0, std::memory_order_release);
}

}  // namespace monotonic
