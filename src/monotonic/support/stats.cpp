#include "monotonic/support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace monotonic {

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

namespace {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

SampleSummary summarize(const std::vector<double>& samples) {
  SampleSummary s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double x : sorted) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile(sorted, 0.50);
  s.p90 = percentile(sorted, 0.90);
  s.p99 = percentile(sorted, 0.99);
  return s;
}

}  // namespace monotonic
