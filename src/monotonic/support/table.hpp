// table.hpp — aligned plain-text tables for bench harness output.
//
// Bench binaries print paper-style result tables with this helper rather
// than hand-aligned printf, so every experiment's output has the same
// shape (EXPERIMENTS.md embeds them verbatim).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace monotonic {

/// Minimal text table: set a header row, append data rows (any cell is a
/// string; use cell() helpers to format numbers), then stream it.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row.  Rows shorter than the header are right-padded
  /// with empty cells; longer rows are an error (MC_REQUIRE).
  void add_row(std::vector<std::string> row);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a separator line under the header, columns padded to
  /// the widest cell, numeric-looking cells right-aligned.
  std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string cell(double v, int precision = 2);

/// Formats any integer cell.
template <typename Int>
  requires std::is_integral_v<Int>
std::string cell(Int v) {
  return std::to_string(v);
}

}  // namespace monotonic
