#include "monotonic/support/histogram.hpp"

#include <sstream>

namespace monotonic {

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t lo = i == 0 ? 0 : (1ull << i);
    os << '[' << lo << ", " << upper_bound_of(i) << "]: " << buckets_[i]
       << '\n';
  }
  return os.str();
}

}  // namespace monotonic
