// assert.hpp — internal assertion macros.
//
// MC_ASSERT   — debug-only invariant check (compiled out in NDEBUG).
// MC_CHECK    — always-on check; aborts with a message on failure.
// MC_REQUIRE  — precondition check on public API entry points; throws
//               std::invalid_argument so callers can recover and tests
//               can assert on misuse.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace monotonic::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "monotonic: check failed: %s at %s:%d%s%s\n", expr,
               file, line, msg && *msg ? ": " : "", msg ? msg : "");
  std::abort();
}

[[noreturn]] inline void require_fail(const char* expr, const char* msg) {
  throw std::invalid_argument(std::string("monotonic: precondition failed: ") +
                              expr + (msg && *msg ? ": " : "") +
                              (msg ? msg : ""));
}

}  // namespace monotonic::detail

#define MC_CHECK(expr, msg)                                            \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::monotonic::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define MC_ASSERT(expr, msg) ((void)0)
#else
#define MC_ASSERT(expr, msg) MC_CHECK(expr, msg)
#endif

#define MC_REQUIRE(expr, msg)                                \
  do {                                                       \
    if (!(expr)) {                                           \
      ::monotonic::detail::require_fail(#expr, msg);         \
    }                                                        \
  } while (0)
