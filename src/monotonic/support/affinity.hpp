// affinity.hpp — CPU topology queries and thread pinning.
//
// Benches optionally pin worker threads so run-to-run variance comes
// from the synchronization under test rather than the scheduler.  On
// the single-core reproduction machine pinning is a no-op, but the API
// is kept so the harness is portable to real SMPs.
#pragma once

#include <cstddef>
#include <string>

namespace monotonic {

/// Number of logical CPUs usable by this process.
std::size_t num_cpus() noexcept;

/// Pins the calling thread to the given logical CPU (modulo num_cpus()).
/// Returns false (without throwing) if the platform call fails.
bool pin_this_thread(std::size_t cpu) noexcept;

/// Best-effort thread naming for debuggers/profilers (<=15 chars used).
void name_this_thread(const std::string& name) noexcept;

}  // namespace monotonic
