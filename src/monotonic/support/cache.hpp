// cache.hpp — cache-line geometry helpers.
//
// Synchronization-heavy data structures pad hot fields to distinct cache
// lines to avoid false sharing (C++ Core Guidelines CP; Herlihy & Shavit
// ch. 7).  libstdc++ does not always expose
// std::hardware_destructive_interference_size, so we provide a portable
// constant.
#pragma once

#include <cstddef>
#include <new>

namespace monotonic {

// A fixed 64 rather than std::hardware_destructive_interference_size:
// the library's ABI must not vary with -mtune (GCC's -Winterference-size
// rationale), and 64 is correct for every x86-64 and mainstream AArch64
// part this targets.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T so that distinct CacheAligned<T> objects in an array never
/// share a cache line.  Used for per-thread slots in barriers and the
/// ragged-barrier counter array.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}
  explicit CacheAligned(T&& v) : value(static_cast<T&&>(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace monotonic
