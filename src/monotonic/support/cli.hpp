// cli.hpp — minimal command-line parsing for the examples and benches.
//
// Positional-with-defaults plus --key=value flags; just enough that
// every example binary validates input the same way and prints a
// uniform usage line.  Not a general-purpose library — a shared
// harness utility.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace monotonic {

/// Parsed argv: positionals in order, --key=value / --flag options.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  const std::string& program() const noexcept { return program_; }
  std::size_t positional_count() const noexcept {
    return positionals_.size();
  }

  /// Positional i as u64, or `fallback` if absent.  Throws
  /// std::invalid_argument on malformed or out-of-range input.
  std::uint64_t positional_u64(std::size_t i, std::uint64_t fallback) const;

  /// Positional i as a string, or `fallback` if absent.
  std::string positional_str(std::size_t i, std::string fallback) const;

  /// --key=value as u64; nullopt when the option is absent.
  std::optional<std::uint64_t> option_u64(std::string_view key) const;

  /// --key=value as string; nullopt when absent.
  std::optional<std::string> option_str(std::string_view key) const;

  /// True iff --key appears (with or without a value).
  bool has_flag(std::string_view key) const;

  /// Unrecognized option keys, for strict binaries that reject typos.
  std::vector<std::string> option_keys() const;

 private:
  struct Option {
    std::string key;
    std::string value;  // empty for bare --flag
    bool has_value;
  };

  static std::uint64_t parse_u64(const std::string& text);

  std::string program_;
  std::vector<std::string> positionals_;
  std::vector<Option> options_;
};

}  // namespace monotonic
