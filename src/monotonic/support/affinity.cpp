#include "monotonic/support/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace monotonic {

std::size_t num_cpus() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_this_thread(std::size_t cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % num_cpus(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

void name_this_thread(const std::string& name) noexcept {
#if defined(__linux__)
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

}  // namespace monotonic
