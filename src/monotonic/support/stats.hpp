// stats.hpp — summary statistics for bench output.
#pragma once

#include <cstddef>
#include <vector>

namespace monotonic {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double variance() const noexcept;
  double stddev() const noexcept;

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile summary of a sample set.  Computed once over a copy;
/// intended for bench post-processing, not hot paths.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Builds a SampleSummary from raw samples.  The input is copied and
/// sorted internally; an empty input yields an all-zero summary.
SampleSummary summarize(const std::vector<double>& samples);

}  // namespace monotonic
