#include "monotonic/support/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "monotonic/support/assert.hpp"

namespace monotonic {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  MC_REQUIRE(row.size() <= header_.size(), "row wider than header");
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != 'x' && c != '%') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      const auto pad = width[c] - row[c].size();
      const bool right = align_right && looks_numeric(row[c]);
      if (right) out << std::string(pad, ' ');
      out << row[c];
      if (!right) out << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit_row(header_, /*align_right=*/false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, /*align_right=*/true);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

std::string cell(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace monotonic
