// stopwatch.hpp — steady-clock stopwatch for benches and tests.
#pragma once

#include <chrono>

namespace monotonic {

/// Monotonic stopwatch.  Starts running at construction.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed time before restart.
  std::chrono::nanoseconds lap() {
    auto now = clock::now();
    auto elapsed = now - start_;
    start_ = now;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed);
  }

  std::chrono::nanoseconds elapsed() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_);
  }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

  void reset() { start_ = clock::now(); }

 private:
  clock::time_point start_;
};

}  // namespace monotonic
