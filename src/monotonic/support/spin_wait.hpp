// spin_wait.hpp — adaptive busy-wait helper.
//
// SpinBackoff escalates from CPU pause instructions to
// std::this_thread::yield to a short sleep, so spin-based primitives
// (the SpinWait counter policy, AtomicBarrier, SpinLock) behave
// tolerably even when oversubscribed — which on the single-core
// reproduction machine is the common case.
//
// (Formerly named SpinWait; renamed so the busy-wait *counter policy*
// in core/wait_policy.hpp can carry the paper-facing name.)
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace monotonic {

/// Issues one architecture-appropriate pause/relax instruction.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("isb" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

/// Adaptive spinner.  Call once() in a polling loop:
///   - first kPauseIterations calls: exponentially more pause instructions;
///   - next kYieldIterations calls: sched yield;
///   - afterwards: 100us sleeps (the waiter is clearly long-term).
class SpinBackoff {
 public:
  static constexpr std::uint32_t kPauseIterations = 10;  // up to 2^10 pauses
  static constexpr std::uint32_t kYieldIterations = 20;

  void once() noexcept {
    if (count_ < kPauseIterations) {
      for (std::uint32_t i = 0; i < (1u << count_); ++i) cpu_relax();
    } else if (count_ < kPauseIterations + kYieldIterations) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    ++count_;
  }

  /// Number of times once() has been called since construction/reset.
  std::uint32_t spins() const noexcept { return count_; }

  void reset() noexcept { count_ = 0; }

 private:
  std::uint32_t count_ = 0;
};

}  // namespace monotonic
