// rng.hpp — small deterministic PRNGs for workload generation.
//
// Benchmarks and tests must be reproducible run-to-run, so all workload
// generators take an explicit seed and use these engines rather than
// std::random_device.  xoshiro256** is the general-purpose engine;
// SplitMix64 seeds it and serves as a cheap per-thread stream splitter.
#pragma once

#include <cstdint>
#include <limits>

namespace monotonic {

/// SplitMix64 (Steele, Lea, Flood 2014).  Used for seeding and for
/// cheap stateless hashing of indices into pseudo-random values.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna 2018).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [lo, hi] (inclusive), by 64x64->128 multiply-
  /// high (Lemire-style; the negligible bias is irrelevant for workload
  /// generation).  The multiply-high is done in 64-bit halves to stay
  /// within standard C++.
  constexpr std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return (*this)();  // full 64-bit range
    return lo + mulhi64((*this)(), range);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  /// High 64 bits of a 64x64 product, via four 32x32 partials.
  static constexpr std::uint64_t mulhi64(std::uint64_t a,
                                         std::uint64_t b) noexcept {
    const std::uint64_t a_lo = a & 0xffffffffull, a_hi = a >> 32;
    const std::uint64_t b_lo = b & 0xffffffffull, b_hi = b >> 32;
    const std::uint64_t lo_lo = a_lo * b_lo;
    const std::uint64_t hi_lo = a_hi * b_lo;
    const std::uint64_t lo_hi = a_lo * b_hi;
    const std::uint64_t hi_hi = a_hi * b_hi;
    const std::uint64_t carry =
        ((lo_lo >> 32) + (hi_lo & 0xffffffffull) + (lo_hi & 0xffffffffull)) >>
        32;
    return hi_hi + (hi_lo >> 32) + (lo_hi >> 32) + carry;
  }

  std::uint64_t s_[4];
};

/// Deterministically hashes (seed, index) to a 64-bit value.  Handy for
/// generating the i-th workload item without shared RNG state.
constexpr std::uint64_t hash_index(std::uint64_t seed,
                                   std::uint64_t index) noexcept {
  SplitMix64 sm(seed ^ (index * 0x9e3779b97f4a7c15ull + 0x7f4a7c15ull));
  return sm();
}

}  // namespace monotonic
