// client.hpp — blocking client for the counter shard server.
//
// One connection, one stream, pipelined: every request carries a
// req_id and the server may answer out of order (a parked Check
// answers whenever its level is reached, long after later requests).
// The client therefore reads responses into a stash keyed by req_id;
// a blocking call drains the socket until its own id surfaces, filing
// everything else for the callers that are still waiting.  That makes
// the async pattern natural:
//
//   ServerClient c = ServerClient::connect_uds("/tmp/mc.sock");
//   const auto opened = c.open("jobs/done");
//   std::uint64_t rid = c.on_reach_async(opened.id, 100);  // parks server-side
//   c.increment(opened.id, 100);
//   c.await_reach(rid);                                    // already fired
//
// Fault tolerance (docs/server.md, "Fault tolerance"):
//
//   * Deadlines.  connect_timeout bounds each connect;
//     io_timeout (0 = infinite) bounds how long any blocking await
//     tolerates SILENCE — a dead server surfaces as a typed
//     CounterTimeoutError instead of a read(2) that never returns.
//     The paper's monotonicity makes acting on a timeout safe: an
//     Increment that DID land only moved the value up, so re-sending
//     the same deduplicated Increment or re-arming the same Check can
//     neither double-count nor regress.
//
//   * Reconnect + replay (ClientOptions::retry.enabled).  Every
//     connection begins with a Hello binding the client's session UUID
//     and learning the server epoch.  When the connection dies
//     (crash = EOF/ECONNRESET; drain = a typed kShuttingDown first),
//     the client reconnects under capped exponential backoff with
//     jitter inside an overall deadline, re-Hellos, and — if the epoch
//     changed, i.e. the server restarted from its snapshot — re-opens
//     every name it ever resolved, remapping cached counter ids to the
//     new epoch's ids.  Then it replays every in-flight operation:
//     increments re-send with their original sequence number (the
//     server's per-session dedup window applies each at most once),
//     waits re-arm at the same level, and a CheckFor re-arms with the
//     time already waited deducted.  Callers see none of it.
//
//   * Typed opt-outs.  retry.transparent_reresolve = false surfaces a
//     restore as CounterEpochChangedError(old, new) instead of
//     remapping — for callers that index their own state by counter
//     id.  Without retry, a drain surfaces as CounterShutdownError
//     (orderly, back off) as distinct from a timeout or reset (crashy,
//     reconnect when ready) — the distinction that keeps a rolling
//     restart from becoming a retry storm.
//
// Wire errors surface typed, mirroring the engine taxonomy:
// kPoisoned → CounterPoisonedError, kOverloaded →
// CounterOverloadedError, kUnknownCounter / kBadRequest →
// std::invalid_argument, kShuttingDown → CounterShutdownError.
//
// Header-only and deliberately synchronous — the server parks
// connections, so one client thread with pipelining goes a long way;
// open a second connection when you need concurrent blocking waits
// from one process (or use on_reach_async and collect).
#pragma once

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <string_view>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "monotonic/core/counter_error.hpp"
#include "monotonic/server/protocol.hpp"

namespace monotonic::server {

/// Reconnect-and-replay policy.  Off by default: a plain client gets
/// deadlines but no transparency — connection loss surfaces as an
/// exception, like it always did.
struct RetryPolicy {
  bool enabled = false;
  /// First reconnect backoff; doubles per failed attempt (capped at
  /// backoff_max) with 50–100% jitter so a fleet of clients does not
  /// reconnect in lockstep.
  std::chrono::milliseconds backoff_initial{10};
  std::chrono::milliseconds backoff_max{1000};
  /// Total budget for one recovery episode (connect attempts +
  /// backoffs).  Exhausting it surfaces CounterTimeoutError.
  std::chrono::milliseconds overall_deadline{30000};
  /// After a server restore (epoch change), transparently re-open
  /// every known name and remap cached ids.  false = surface
  /// CounterEpochChangedError instead and let the caller re-open.
  bool transparent_reresolve = true;
};

struct ClientOptions {
  /// Per-connect deadline (also applies to each reconnect attempt).
  std::chrono::milliseconds connect_timeout{5000};
  /// Longest SILENCE any blocking await tolerates before raising
  /// CounterTimeoutError.  0 = infinite — the right default for a
  /// client that parks long Checks server-side.
  std::chrono::milliseconds io_timeout{0};
  RetryPolicy retry;
  /// Client session UUID for increment dedup; 0/0 = generate one.
  std::uint64_t session_hi = 0;
  std::uint64_t session_lo = 0;
};

class ServerClient {
 public:
  struct Response {
    Status status = Status::kOk;
    std::uint64_t req_id = 0;
    std::string body;
  };

  struct Opened {
    std::uint64_t id = 0;
    std::uint64_t value = 0;
  };

  static ServerClient connect_uds(const std::string& path,
                                  ClientOptions opts = {}) {
    ServerClient c(std::move(opts));
    c.kind_ = Endpoint::kUds;
    c.uds_path_ = path;
    c.fd_ = c.dial(c.opts_.connect_timeout);
    c.first_hello();
    return c;
  }

  static ServerClient connect_tcp(std::uint16_t port, ClientOptions opts = {}) {
    ServerClient c(std::move(opts));
    c.kind_ = Endpoint::kTcp;
    c.tcp_port_ = port;
    c.fd_ = c.dial(c.opts_.connect_timeout);
    c.first_hello();
    return c;
  }

  ServerClient(ServerClient&& o) noexcept
      : opts_(std::move(o.opts_)),
        kind_(o.kind_),
        uds_path_(std::move(o.uds_path_)),
        tcp_port_(o.tcp_port_),
        fd_(std::exchange(o.fd_, -1)),
        next_req_(o.next_req_),
        next_seq_(o.next_seq_),
        epoch_(o.epoch_),
        dedup_window_(o.dedup_window_),
        rng_(o.rng_),
        stash_(std::move(o.stash_)),
        outstanding_(std::move(o.outstanding_)),
        opens_(std::move(o.opens_)),
        id_to_name_(std::move(o.id_to_name_)) {}

  ServerClient& operator=(ServerClient&& o) noexcept {
    if (this != &o) {
      close();
      opts_ = std::move(o.opts_);
      kind_ = o.kind_;
      uds_path_ = std::move(o.uds_path_);
      tcp_port_ = o.tcp_port_;
      fd_ = std::exchange(o.fd_, -1);
      next_req_ = o.next_req_;
      next_seq_ = o.next_seq_;
      epoch_ = o.epoch_;
      dedup_window_ = o.dedup_window_;
      rng_ = o.rng_;
      stash_ = std::move(o.stash_);
      outstanding_ = std::move(o.outstanding_);
      opens_ = std::move(o.opens_);
      id_to_name_ = std::move(o.id_to_name_);
    }
    return *this;
  }
  ServerClient(const ServerClient&) = delete;
  ServerClient& operator=(const ServerClient&) = delete;
  ~ServerClient() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  int fd() const noexcept { return fd_; }

  /// Server epoch learned from the last Hello — bumps when the server
  /// restarted and restored its name table.
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// This client's session UUID (increment dedup scope).
  std::pair<std::uint64_t, std::uint64_t> session() const noexcept {
    return {opts_.session_hi, opts_.session_lo};
  }

  // ---- counter operations -----------------------------------------

  /// Opens (or reopens) a named logical counter.  Empty spec = the
  /// server default; the spec is ignored when the name already exists.
  /// The (name, spec) pair is remembered — it is what the reconnect
  /// path replays to remap this counter after a server restore.
  Opened open(std::string_view name, std::string_view spec = "") {
    Pending p;
    p.op = Op::kOpen;
    p.name = std::string(name);
    p.str = std::string(spec);
    const Response resp = tracked_request(std::move(p));
    raise_unless(resp, Status::kOk);
    const Opened opened = parse_opened(resp, "Open");
    remember_open(std::string(name), std::string(spec), opened.id);
    return opened;
  }

  /// Resolves an existing name WITHOUT creating it (kUnknownCounter →
  /// std::invalid_argument when absent).
  Opened resolve(std::string_view name) {
    Pending p;
    p.op = Op::kResolve;
    p.name = std::string(name);
    const Response resp = tracked_request(std::move(p));
    raise_unless(resp, Status::kOk);
    const Opened opened = parse_opened(resp, "Resolve");
    remember_open(std::string(name), "", opened.id);
    return opened;
  }

  /// Acked increment: waits for the server's kOk (or raises the typed
  /// error — incrementing a poisoned counter answers kPoisoned).
  /// Under retry the increment carries a session-scoped sequence
  /// number, so a replay after reconnect is applied at most once.
  void increment(std::uint64_t id, std::uint64_t amount = 1) {
    Pending p;
    p.op = Op::kIncrement;
    p.id = id;
    p.amount = amount;
    if (opts_.retry.enabled) p.seq = next_seq_++;
    const Response resp = tracked_request(std::move(p));
    raise_unless(resp, Status::kOk);
  }

  /// Fire-and-forget increment: no response, no confirmation, no
  /// replay — the open-loop bench's write side.  One lost on a crash
  /// stays lost; that is the contract of not asking for an ack.
  void increment_noack(std::uint64_t id, std::uint64_t amount = 1) {
    std::string body;
    put_u64(body, id);
    put_u64(body, amount);
    put_u8(body, kIncrementNoAck);
    try {
      send_frame(Op::kIncrement, next_req_++, body);
    } catch (const ConnectionLost&) {
      if (!opts_.retry.enabled) throw_lost();
      recover(/*graceful=*/false);  // replays acked work, not this
    }
  }

  /// Blocking wait: parks the CONNECTION server-side until `level` is
  /// reached.  Returns the server's value lower bound at fire time.
  std::uint64_t check(std::uint64_t id, std::uint64_t level) {
    Pending p;
    p.op = Op::kCheck;
    p.id = id;
    p.level = level;
    const Response resp = tracked_request(std::move(p));
    raise_unless(resp, Status::kReached);
    return read_value(resp);
  }

  /// Timed wait; true (and *value_out) iff reached before the timeout.
  /// Under retry the deadline is absolute: a reconnect re-arms the
  /// wait with the time already spent waiting deducted.
  bool check_for(std::uint64_t id, std::uint64_t level,
                 std::chrono::nanoseconds timeout,
                 std::uint64_t* value_out = nullptr) {
    Pending p;
    p.op = Op::kCheckFor;
    p.id = id;
    p.level = level;
    p.timed = true;
    p.deadline = std::chrono::steady_clock::now() +
                 (timeout.count() < 0 ? std::chrono::nanoseconds(0) : timeout);
    const Response resp = tracked_request(std::move(p));
    if (resp.status == Status::kTimedOut) return false;
    raise_unless(resp, Status::kReached);
    if (value_out != nullptr) *value_out = read_value(resp);
    return true;
  }

  /// Registers a wait without blocking; returns the req_id to pass to
  /// await_reach (or await_response) later.  The wait parks
  /// server-side immediately — thousands can ride one connection.
  std::uint64_t on_reach_async(std::uint64_t id, std::uint64_t level) {
    Pending p;
    p.op = Op::kOnReach;
    p.id = id;
    p.level = level;
    return tracked_send(std::move(p));
  }

  /// Blocks until the async wait `req_id` fires; returns the value.
  std::uint64_t await_reach(std::uint64_t req_id) {
    const Response resp = await_response(req_id);
    raise_unless(resp, Status::kReached);
    return read_value(resp);
  }

  void poison(std::uint64_t id, std::string_view reason) {
    Pending p;
    p.op = Op::kPoison;
    p.id = id;
    p.str = std::string(reason);
    const Response resp = tracked_request(std::move(p));
    raise_unless(resp, Status::kOk);
  }

  /// Stats pairs for one counter, or the server-wide gauges (id 0).
  std::map<std::string, std::uint64_t> stats(std::uint64_t id = 0) {
    Pending p;
    p.op = Op::kStats;
    p.id = id;
    const Response resp = tracked_request(std::move(p));
    raise_unless(resp, Status::kOk);
    Reader r(resp.body);
    std::uint32_t n = 0;
    if (!r.get_u32(n)) throw std::runtime_error("Stats: short response");
    std::map<std::string, std::uint64_t> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      std::string_view key;
      std::uint64_t value = 0;
      if (!r.get_str16(key) || !r.get_u64(value)) {
        throw std::runtime_error("Stats: truncated pair");
      }
      out.emplace(std::string(key), value);
    }
    return out;
  }

  // ---- low-level surface (robustness tests drive these) -----------
  // No replay tracking down here: a raw frame lost to a reconnect is
  // the caller's problem, by design.

  /// Sends one well-formed frame.
  void send_frame(Op op, std::uint64_t req_id, std::string_view body) {
    send_raw(make_frame(static_cast<std::uint8_t>(op), req_id, body));
  }

  /// Sends arbitrary bytes — corrupt frames, truncated frames, half a
  /// length prefix.  The robustness tests live on this.
  void send_raw(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      // MSG_NOSIGNAL: a dead peer is an EPIPE error, not a SIGPIPE.
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) throw ConnectionLost{};
        throw_errno("send");
      }
      off += static_cast<std::size_t>(n);
    }
  }

  /// Sends a request and blocks for ITS response (stashing others).
  Response request(Op op, std::string_view body) {
    const std::uint64_t req_id = next_req_++;
    try {
      send_frame(op, req_id, body);
    } catch (const ConnectionLost&) {
      throw_lost();
    }
    return await_response(req_id);
  }

  /// Blocks until the response for `req_id` arrives.  Out-of-order
  /// responses (pipelined requests, parked waits) are stashed for
  /// their own await calls.  Under retry, connection loss here is
  /// where transparent recovery happens: reconnect, re-Hello, remap,
  /// replay — then keep awaiting.
  Response await_response(std::uint64_t req_id) {
    for (;;) {
      if (auto it = stash_.find(req_id); it != stash_.end()) {
        Response resp = std::move(it->second);
        stash_.erase(it);
        return resp;
      }
      Response resp;
      try {
        resp = read_frame();
      } catch (const ConnectionLost&) {
        if (!opts_.retry.enabled) throw_lost();
        recover(/*graceful=*/false);
        continue;
      }
      if (opts_.retry.enabled && resp.status == Status::kShuttingDown &&
          outstanding_.count(resp.req_id) != 0) {
        // Orderly drain: the server answered our parked wait (or
        // deferred frame) kShuttingDown and will close.  Keep the op
        // outstanding, wait out the drain, recover on a grace backoff
        // — this is the no-retry-storm path.
        recover(/*graceful=*/true);
        continue;
      }
      outstanding_.erase(resp.req_id);
      if (resp.req_id == req_id) return resp;
      stash_.emplace(resp.req_id, std::move(resp));
    }
  }

  /// Reads the next response frame off the wire, whatever its req_id.
  /// (Raw surface: no retry, no io_timeout grace — EOF throws.)
  Response read_response() {
    try {
      return read_frame();
    } catch (const ConnectionLost&) {
      throw std::runtime_error("server closed the connection");
    }
  }

 private:
  enum class Endpoint { kUds, kTcp };

  /// Internal connection-loss signal (EOF, ECONNRESET, EPIPE).  Typed
  /// separately from the public taxonomy so retry logic can catch
  /// exactly it and nothing else.
  struct ConnectionLost {};

  /// One replayable in-flight operation, stored body-less: the body is
  /// rebuilt at (re)send time so a replay can remap counter ids to a
  /// new epoch and deduct waited time from a CheckFor.
  struct Pending {
    Op op = Op::kStats;
    std::uint64_t req_id = 0;
    std::string name;  // kOpen / kResolve
    std::string str;   // spec (kOpen) or reason (kPoison)
    std::uint64_t id = 0;
    std::uint64_t amount = 0;
    std::uint64_t seq = 0;  // nonzero: dedup-tagged increment
    std::uint64_t level = 0;
    bool timed = false;
    std::chrono::steady_clock::time_point deadline{};  // kCheckFor
  };

  explicit ServerClient(ClientOptions opts) : opts_(std::move(opts)) {
    if ((opts_.session_hi | opts_.session_lo) == 0) {
      std::random_device rd;
      auto word = [&rd] {
        return (static_cast<std::uint64_t>(rd()) << 32) |
               static_cast<std::uint64_t>(rd());
      };
      opts_.session_hi = word();
      opts_.session_lo = word() | 1;  // never all-zero
    }
    rng_.seed(static_cast<std::uint32_t>(opts_.session_lo ^
                                         (opts_.session_hi >> 32)));
  }

  [[noreturn]] static void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
  }

  [[noreturn]] static void throw_lost() {
    throw std::runtime_error("server closed the connection");
  }

  // ---- dialing ----------------------------------------------------

  /// Connects to the remembered endpoint with a deadline: nonblocking
  /// connect + poll(POLLOUT), then back to blocking.  Timeout is the
  /// typed CounterTimeoutError, not a hang.
  int dial(std::chrono::milliseconds timeout) const {
    int fd = -1;
    sockaddr_storage ss{};
    socklen_t slen = 0;
    if (kind_ == Endpoint::kUds) {
      fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd < 0) throw_errno("socket(AF_UNIX)");
      auto* addr = reinterpret_cast<sockaddr_un*>(&ss);
      addr->sun_family = AF_UNIX;
      if (uds_path_.size() >= sizeof(addr->sun_path)) {
        ::close(fd);
        throw std::invalid_argument("uds path too long: " + uds_path_);
      }
      std::memcpy(addr->sun_path, uds_path_.c_str(), uds_path_.size() + 1);
      slen = sizeof(sockaddr_un);
    } else {
      fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd < 0) throw_errno("socket(AF_INET)");
      auto* addr = reinterpret_cast<sockaddr_in*>(&ss);
      addr->sin_family = AF_INET;
      addr->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr->sin_port = htons(tcp_port_);
      slen = sizeof(sockaddr_in);
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&ss), slen);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                              1, timeout.count())));
      if (ready <= 0) {
        ::close(fd);
        throw CounterTimeoutError("connect: no answer within " +
                                  std::to_string(timeout.count()) + "ms");
      }
      int err = 0;
      socklen_t errlen = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen);
      rc = err == 0 ? 0 : -1;
      errno = err;
    }
    if (rc != 0) {
      const int err = errno;
      ::close(fd);
      throw std::system_error(err, std::generic_category(), "connect");
    }
    ::fcntl(fd, F_SETFL, flags);
    return fd;
  }

  /// hello() for the initial connect: the internal ConnectionLost
  /// signal must not escape the public constructors.
  void first_hello() {
    try {
      hello();
    } catch (const ConnectionLost&) {
      throw_lost();
    }
  }

  /// The connection preamble: bind the session, learn the epoch.  On a
  /// reconnect an epoch bump means the server restored from snapshot —
  /// every cached id is stale; re-open every known name and remap.
  void hello() {
    std::string body;
    put_u64(body, opts_.session_hi);
    put_u64(body, opts_.session_lo);
    const std::uint64_t req_id = next_req_++;
    send_frame(Op::kHello, req_id, body);
    const Response resp = await_raw(req_id);
    raise_unless(resp, Status::kOk);
    Reader r(resp.body);
    std::uint64_t new_epoch = 0;
    if (!r.get_u64(new_epoch) || !r.get_u64(dedup_window_)) {
      throw std::runtime_error("Hello: short response body");
    }
    const std::uint64_t old_epoch = epoch_;
    epoch_ = new_epoch;
    if (old_epoch != 0 && new_epoch != old_epoch) {
      if (!opts_.retry.transparent_reresolve) {
        throw CounterEpochChangedError(
            "server restarted: epoch " + std::to_string(old_epoch) + " → " +
                std::to_string(new_epoch) + "; cached counter ids are stale",
            old_epoch, new_epoch);
      }
      remap_ids();
    }
  }

  /// Epoch changed: re-open every name this client ever resolved (with
  /// its remembered spec, so a counter the restore could not revive is
  /// recreated) and rewrite cached + in-flight ids.
  void remap_ids() {
    std::unordered_map<std::uint64_t, std::uint64_t> remap;
    std::unordered_map<std::uint64_t, std::string> new_id_to_name;
    for (auto& [name, info] : opens_) {
      std::string body;
      put_str16(body, name);
      put_str16(body, info.spec);
      const std::uint64_t req_id = next_req_++;
      send_frame(Op::kOpen, req_id, body);
      const Response resp = await_raw(req_id);
      raise_unless(resp, Status::kOk);
      const Opened opened = parse_opened(resp, "reopen");
      remap[info.id] = opened.id;
      info.id = opened.id;
      new_id_to_name.emplace(opened.id, name);
    }
    id_to_name_ = std::move(new_id_to_name);
    for (auto& [req_id, p] : outstanding_) {
      if (auto it = remap.find(p.id); it != remap.end()) p.id = it->second;
    }
  }

  /// Minimal await used during connection setup — same stash
  /// discipline, but ConnectionLost propagates to the recovery loop
  /// instead of recursing into recover().
  Response await_raw(std::uint64_t req_id) {
    for (;;) {
      if (auto it = stash_.find(req_id); it != stash_.end()) {
        Response resp = std::move(it->second);
        stash_.erase(it);
        return resp;
      }
      Response resp = read_frame();
      if (resp.req_id == req_id) return resp;
      stash_.emplace(resp.req_id, std::move(resp));
    }
  }

  // ---- retry core -------------------------------------------------

  std::uint64_t tracked_send(Pending p) {
    p.req_id = next_req_++;
    const std::uint64_t req_id = p.req_id;
    const Op op = p.op;
    const std::string body = build_body(p);
    if (opts_.retry.enabled) outstanding_.emplace(req_id, std::move(p));
    try {
      send_frame(op, req_id, body);
    } catch (const ConnectionLost&) {
      if (!opts_.retry.enabled) throw_lost();
      recover(/*graceful=*/false);  // replay includes the op just filed
    }
    return req_id;
  }

  Response tracked_request(Pending p) {
    return await_response(tracked_send(std::move(p)));
  }

  std::string build_body(const Pending& p) const {
    std::string body;
    switch (p.op) {
      case Op::kOpen:
        put_str16(body, p.name);
        put_str16(body, p.str);
        break;
      case Op::kResolve:
        put_str16(body, p.name);
        break;
      case Op::kIncrement:
        put_u64(body, p.id);
        put_u64(body, p.amount);
        put_u8(body, p.seq != 0 ? kIncrementHasSeq : 0);
        if (p.seq != 0) put_u64(body, p.seq);
        break;
      case Op::kCheck:
      case Op::kOnReach:
        put_u64(body, p.id);
        put_u64(body, p.level);
        break;
      case Op::kCheckFor: {
        put_u64(body, p.id);
        put_u64(body, p.level);
        const auto now = std::chrono::steady_clock::now();
        const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
            p.deadline - now);
        put_u64(body, static_cast<std::uint64_t>(
                          left.count() < 0 ? 0 : left.count()));
        break;
      }
      case Op::kPoison:
        put_u64(body, p.id);
        put_str16(body, p.str);
        break;
      case Op::kStats:
        put_u64(body, p.id);
        break;
      case Op::kHello:
        break;  // never tracked
    }
    return body;
  }

  /// The recovery episode: reconnect under capped, jittered backoff
  /// within the overall deadline; re-Hello (remapping on an epoch
  /// bump); replay every outstanding operation under its ORIGINAL
  /// req_id and seq.  `graceful` = the loss followed a kShuttingDown,
  /// so start with a drain-grace backoff instead of retrying the
  /// instant the listener closed.
  void recover(bool graceful) {
    close();
    const auto deadline =
        std::chrono::steady_clock::now() +
        (opts_.retry.overall_deadline.count() > 0 ? opts_.retry.overall_deadline
                                                  : std::chrono::hours(24));
    auto backoff = opts_.retry.backoff_initial;
    if (backoff.count() <= 0) backoff = std::chrono::milliseconds(1);
    if (graceful) {
      std::this_thread::sleep_for(jittered(4 * backoff));
    }
    for (;;) {
      try {
        fd_ = dial(opts_.connect_timeout);
        hello();  // CounterEpochChangedError (opt-out mode) propagates
        replay_outstanding();
        return;
      } catch (const CounterEpochChangedError&) {
        throw;
      } catch (const ConnectionLost&) {
      } catch (const CounterTimeoutError&) {
      } catch (const std::system_error&) {
      }
      close();
      if (std::chrono::steady_clock::now() + backoff >= deadline) {
        throw CounterTimeoutError(
            "reconnect: server did not come back within the retry "
            "deadline (" +
            std::to_string(opts_.retry.overall_deadline.count()) + "ms)");
      }
      std::this_thread::sleep_for(jittered(backoff));
      backoff = std::min(backoff * 2, opts_.retry.backoff_max);
    }
  }

  void replay_outstanding() {
    if (outstanding_.empty()) return;
    // Replay in original submission order — req_ids are monotonic.
    std::vector<std::uint64_t> order;
    order.reserve(outstanding_.size());
    for (const auto& [req_id, p] : outstanding_) order.push_back(req_id);
    std::sort(order.begin(), order.end());
    for (const std::uint64_t req_id : order) {
      auto it = outstanding_.find(req_id);
      if (it == outstanding_.end()) continue;
      Pending& p = it->second;
      if (p.op == Op::kCheckFor &&
          p.deadline <= std::chrono::steady_clock::now()) {
        // The wait's clock ran out while we were reconnecting: settle
        // it locally, exactly as the server would have.
        Response timed_out;
        timed_out.status = Status::kTimedOut;
        timed_out.req_id = req_id;
        stash_.emplace(req_id, std::move(timed_out));
        outstanding_.erase(it);
        continue;
      }
      send_frame(p.op, req_id, build_body(p));  // ConnectionLost → recover's
    }                                           // caller loop retries
  }

  std::chrono::milliseconds jittered(std::chrono::milliseconds base) {
    // 50–100%: desynchronizes a fleet without ever under-waiting by
    // more than half a step.
    std::uniform_int_distribution<long long> half(base.count() / 2,
                                                  std::max<long long>(
                                                      1, base.count()));
    return std::chrono::milliseconds(half(rng_));
  }

  // ---- bookkeeping ------------------------------------------------

  struct OpenInfo {
    std::uint64_t id = 0;
    std::string spec;
  };

  void remember_open(std::string name, std::string spec, std::uint64_t id) {
    auto [it, inserted] = opens_.try_emplace(std::move(name));
    it->second.id = id;
    if (inserted || !spec.empty()) it->second.spec = std::move(spec);
    id_to_name_[id] = it->first;
  }

  static Opened parse_opened(const Response& resp, const char* what) {
    Reader r(resp.body);
    Opened opened;
    if (!r.get_u64(opened.id) || !r.get_u64(opened.value)) {
      throw std::runtime_error(std::string(what) + ": short response body");
    }
    return opened;
  }

  static std::uint64_t read_value(const Response& resp) {
    Reader r(resp.body);
    std::uint64_t value = 0;
    r.get_u64(value);
    return value;
  }

  static std::string body_message(const Response& resp) {
    Reader r(resp.body);
    std::string_view msg;
    if (r.get_str16(msg)) return std::string(msg);
    return std::string(to_string(resp.status));
  }

  /// Maps an unexpected wire status onto the engine's typed taxonomy.
  static void raise_unless(const Response& resp, Status want) {
    if (resp.status == want) return;
    switch (resp.status) {
      case Status::kPoisoned:
        throw CounterPoisonedError(body_message(resp));
      case Status::kOverloaded:
        throw CounterOverloadedError(body_message(resp));
      case Status::kUnknownCounter:
      case Status::kBadRequest:
        throw std::invalid_argument(body_message(resp));
      case Status::kShuttingDown:
        throw CounterShutdownError(
            "server is draining (orderly shutdown, not a crash): "
            "reconnect after the drain grace period");
      default:
        throw std::runtime_error("unexpected response status " +
                                 std::string(to_string(resp.status)));
    }
  }

  // ---- framing I/O ------------------------------------------------

  Response read_frame() {
    const auto deadline =
        opts_.io_timeout.count() > 0
            ? std::chrono::steady_clock::now() + opts_.io_timeout
            : std::chrono::steady_clock::time_point::max();
    std::uint8_t lenbuf[4];
    read_exact(lenbuf, 4, deadline);
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(lenbuf[i]) << (8 * i);
    }
    if (len < 9 || len > kMaxFramePayload) {
      throw std::runtime_error("response frame with bad length " +
                               std::to_string(len));
    }
    std::string payload(len, '\0');
    read_exact(payload.data(), len, deadline);
    Reader r(payload);
    std::uint8_t status = 0;
    Response resp;
    r.get_u8(status);
    r.get_u64(resp.req_id);
    resp.status = static_cast<Status>(status);
    resp.body.assign(payload, 9, std::string::npos);
    return resp;
  }

  /// Deadline-bounded blocking read: poll for readability up to the
  /// per-await silence budget, then read.  The deadline caps SILENCE,
  /// not total transfer — every arriving byte re-arms it in spirit
  /// (the budget is recomputed per frame, not per byte).
  void read_exact(void* dst, std::size_t n,
                  std::chrono::steady_clock::time_point deadline) {
    char* p = static_cast<char*>(dst);
    while (n > 0) {
      if (deadline != std::chrono::steady_clock::time_point::max()) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          throw CounterTimeoutError(
              "no response within io_timeout (" +
              std::to_string(opts_.io_timeout.count()) +
              "ms of silence) — server slow, hung, or gone");
        }
        pollfd pfd{fd_, POLLIN, 0};
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - now);
        const int ready = ::poll(
            &pfd, 1,
            static_cast<int>(std::clamp<long long>(left.count() + 1, 1,
                                                   60 * 1000)));
        if (ready == 0) continue;  // loop re-checks the deadline
        if (ready < 0) {
          if (errno == EINTR) continue;
          throw_errno("poll");
        }
      }
      const ssize_t got = ::read(fd_, p, n);
      if (got == 0) throw ConnectionLost{};
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) throw ConnectionLost{};
        throw_errno("read");
      }
      p += got;
      n -= static_cast<std::size_t>(got);
    }
  }

  ClientOptions opts_;
  Endpoint kind_ = Endpoint::kUds;
  std::string uds_path_;
  std::uint16_t tcp_port_ = 0;
  int fd_ = -1;
  std::uint64_t next_req_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t epoch_ = 0;
  std::uint64_t dedup_window_ = 0;
  std::minstd_rand rng_;
  std::unordered_map<std::uint64_t, Response> stash_;
  std::unordered_map<std::uint64_t, Pending> outstanding_;  ///< replay set
  std::unordered_map<std::string, OpenInfo> opens_;  ///< name → id+spec
  std::unordered_map<std::uint64_t, std::string> id_to_name_;
};

}  // namespace monotonic::server
