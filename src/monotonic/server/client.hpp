// client.hpp — blocking client for the counter shard server.
//
// One connection, one stream, pipelined: every request carries a
// req_id and the server may answer out of order (a parked Check
// answers whenever its level is reached, long after later requests).
// The client therefore reads responses into a stash keyed by req_id;
// a blocking call drains the socket until its own id surfaces, filing
// everything else for the callers that are still waiting.  That makes
// the async pattern natural:
//
//   ServerClient c = ServerClient::connect_uds("/tmp/mc.sock");
//   const auto opened = c.open("jobs/done");
//   std::uint64_t rid = c.on_reach_async(opened.id, 100);  // parks server-side
//   c.increment(opened.id, 100);
//   c.await_reach(rid);                                    // already fired
//
// Wire errors surface typed, mirroring the engine taxonomy:
// kPoisoned → CounterPoisonedError, kOverloaded →
// CounterOverloadedError, kUnknownCounter / kBadRequest →
// std::invalid_argument, kShuttingDown → CounterError.
//
// Header-only and deliberately synchronous — the server parks
// connections, so one client thread with pipelining goes a long way;
// open a second connection when you need concurrent blocking waits
// from one process (or use on_reach_async and collect).
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <system_error>
#include <unordered_map>
#include <utility>

#include "monotonic/core/counter_error.hpp"
#include "monotonic/server/protocol.hpp"

namespace monotonic::server {

class ServerClient {
 public:
  struct Response {
    Status status = Status::kOk;
    std::uint64_t req_id = 0;
    std::string body;
  };

  struct Opened {
    std::uint64_t id = 0;
    std::uint64_t value = 0;
  };

  static ServerClient connect_uds(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      throw std::invalid_argument("uds path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::system_error(err, std::generic_category(),
                              "connect(" + path + ")");
    }
    return ServerClient(fd);
  }

  static ServerClient connect_tcp(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(AF_INET)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::system_error(err, std::generic_category(), "connect(tcp)");
    }
    return ServerClient(fd);
  }

  ServerClient(ServerClient&& o) noexcept
      : fd_(o.fd_), next_req_(o.next_req_), stash_(std::move(o.stash_)) {
    o.fd_ = -1;
  }
  ServerClient& operator=(ServerClient&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      next_req_ = o.next_req_;
      stash_ = std::move(o.stash_);
      o.fd_ = -1;
    }
    return *this;
  }
  ServerClient(const ServerClient&) = delete;
  ServerClient& operator=(const ServerClient&) = delete;
  ~ServerClient() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  int fd() const noexcept { return fd_; }

  // ---- counter operations -----------------------------------------

  /// Opens (or reopens) a named logical counter.  Empty spec = the
  /// server default; the spec is ignored when the name already exists.
  Opened open(std::string_view name, std::string_view spec = "") {
    std::string body;
    put_str16(body, name);
    put_str16(body, spec);
    const Response resp = request(Op::kOpen, body);
    raise_unless(resp, Status::kOk);
    Reader r(resp.body);
    Opened opened;
    if (!r.get_u64(opened.id) || !r.get_u64(opened.value)) {
      throw std::runtime_error("Open: short response body");
    }
    return opened;
  }

  /// Acked increment: waits for the server's kOk (or raises the typed
  /// error — incrementing a poisoned counter answers kPoisoned).
  void increment(std::uint64_t id, std::uint64_t amount = 1) {
    const Response resp = request(Op::kIncrement, increment_body(id, amount,
                                                                /*ack=*/true));
    raise_unless(resp, Status::kOk);
  }

  /// Fire-and-forget increment: no response, no confirmation — the
  /// open-loop bench's write side.
  void increment_noack(std::uint64_t id, std::uint64_t amount = 1) {
    send_frame(Op::kIncrement, next_req_++,
               increment_body(id, amount, /*ack=*/false));
  }

  /// Blocking wait: parks the CONNECTION server-side until `level` is
  /// reached.  Returns the server's value lower bound at fire time.
  std::uint64_t check(std::uint64_t id, std::uint64_t level) {
    std::string body;
    put_u64(body, id);
    put_u64(body, level);
    const Response resp = request(Op::kCheck, body);
    raise_unless(resp, Status::kReached);
    return read_value(resp);
  }

  /// Timed wait; true (and *value_out) iff reached before the timeout.
  bool check_for(std::uint64_t id, std::uint64_t level,
                 std::chrono::nanoseconds timeout,
                 std::uint64_t* value_out = nullptr) {
    std::string body;
    put_u64(body, id);
    put_u64(body, level);
    put_u64(body, static_cast<std::uint64_t>(
                      timeout.count() < 0 ? 0 : timeout.count()));
    const Response resp = request(Op::kCheckFor, body);
    if (resp.status == Status::kTimedOut) return false;
    raise_unless(resp, Status::kReached);
    if (value_out != nullptr) *value_out = read_value(resp);
    return true;
  }

  /// Registers a wait without blocking; returns the req_id to pass to
  /// await_reach (or await_response) later.  The wait parks
  /// server-side immediately — thousands can ride one connection.
  std::uint64_t on_reach_async(std::uint64_t id, std::uint64_t level) {
    std::string body;
    put_u64(body, id);
    put_u64(body, level);
    const std::uint64_t req_id = next_req_++;
    send_frame(Op::kOnReach, req_id, body);
    return req_id;
  }

  /// Blocks until the async wait `req_id` fires; returns the value.
  std::uint64_t await_reach(std::uint64_t req_id) {
    const Response resp = await_response(req_id);
    raise_unless(resp, Status::kReached);
    return read_value(resp);
  }

  void poison(std::uint64_t id, std::string_view reason) {
    std::string body;
    put_u64(body, id);
    put_str16(body, reason);
    const Response resp = request(Op::kPoison, body);
    raise_unless(resp, Status::kOk);
  }

  /// Stats pairs for one counter, or the server-wide gauges (id 0).
  std::map<std::string, std::uint64_t> stats(std::uint64_t id = 0) {
    std::string body;
    put_u64(body, id);
    const Response resp = request(Op::kStats, body);
    raise_unless(resp, Status::kOk);
    Reader r(resp.body);
    std::uint32_t n = 0;
    if (!r.get_u32(n)) throw std::runtime_error("Stats: short response");
    std::map<std::string, std::uint64_t> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      std::string_view key;
      std::uint64_t value = 0;
      if (!r.get_str16(key) || !r.get_u64(value)) {
        throw std::runtime_error("Stats: truncated pair");
      }
      out.emplace(std::string(key), value);
    }
    return out;
  }

  // ---- low-level surface (robustness tests drive these) -----------

  /// Sends one well-formed frame.
  void send_frame(Op op, std::uint64_t req_id, std::string_view body) {
    send_raw(make_frame(static_cast<std::uint8_t>(op), req_id, body));
  }

  /// Sends arbitrary bytes — corrupt frames, truncated frames, half a
  /// length prefix.  The robustness tests live on this.
  void send_raw(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write");
      }
      off += static_cast<std::size_t>(n);
    }
  }

  /// Sends a request and blocks for ITS response (stashing others).
  Response request(Op op, std::string_view body) {
    const std::uint64_t req_id = next_req_++;
    send_frame(op, req_id, body);
    return await_response(req_id);
  }

  /// Blocks until the response for `req_id` arrives.  Out-of-order
  /// responses (pipelined requests, parked waits) are stashed for
  /// their own await calls.
  Response await_response(std::uint64_t req_id) {
    if (auto it = stash_.find(req_id); it != stash_.end()) {
      Response resp = std::move(it->second);
      stash_.erase(it);
      return resp;
    }
    for (;;) {
      Response resp = read_response();
      if (resp.req_id == req_id) return resp;
      stash_.emplace(resp.req_id, std::move(resp));
    }
  }

  /// Reads the next response frame off the wire, whatever its req_id.
  Response read_response() {
    std::uint8_t lenbuf[4];
    read_exact(lenbuf, 4);
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(lenbuf[i]) << (8 * i);
    }
    if (len < 9 || len > kMaxFramePayload) {
      throw std::runtime_error("response frame with bad length " +
                               std::to_string(len));
    }
    std::string payload(len, '\0');
    read_exact(payload.data(), len);
    Reader r(payload);
    std::uint8_t status = 0;
    Response resp;
    r.get_u8(status);
    r.get_u64(resp.req_id);
    resp.status = static_cast<Status>(status);
    resp.body.assign(payload, 9, std::string::npos);
    return resp;
  }

 private:
  explicit ServerClient(int fd) : fd_(fd) {}

  [[noreturn]] static void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
  }

  static std::string increment_body(std::uint64_t id, std::uint64_t amount,
                                    bool ack) {
    std::string body;
    put_u64(body, id);
    put_u64(body, amount);
    put_u8(body, ack ? 0 : kIncrementNoAck);
    return body;
  }

  static std::uint64_t read_value(const Response& resp) {
    Reader r(resp.body);
    std::uint64_t value = 0;
    r.get_u64(value);
    return value;
  }

  static std::string body_message(const Response& resp) {
    Reader r(resp.body);
    std::string_view msg;
    if (r.get_str16(msg)) return std::string(msg);
    return std::string(to_string(resp.status));
  }

  /// Maps an unexpected wire status onto the engine's typed taxonomy.
  static void raise_unless(const Response& resp, Status want) {
    if (resp.status == want) return;
    switch (resp.status) {
      case Status::kPoisoned:
        throw CounterPoisonedError(body_message(resp));
      case Status::kOverloaded:
        throw CounterOverloadedError(body_message(resp));
      case Status::kUnknownCounter:
      case Status::kBadRequest:
        throw std::invalid_argument(body_message(resp));
      case Status::kShuttingDown:
        throw CounterError("server shutting down");
      default:
        throw std::runtime_error("unexpected response status " +
                                 std::string(to_string(resp.status)));
    }
  }

  void read_exact(void* dst, std::size_t n) {
    char* p = static_cast<char*>(dst);
    while (n > 0) {
      const ssize_t got = ::read(fd_, p, n);
      if (got == 0) {
        throw std::runtime_error("server closed the connection");
      }
      if (got < 0) {
        if (errno == EINTR) continue;
        throw_errno("read");
      }
      p += got;
      n -= static_cast<std::size_t>(got);
    }
  }

  int fd_ = -1;
  std::uint64_t next_req_ = 1;
  std::unordered_map<std::uint64_t, Response> stash_;
};

}  // namespace monotonic::server
