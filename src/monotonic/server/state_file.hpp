// state_file.hpp — crash-safe persistence for the shard server's name
// table: an atomic, checksummed snapshot plus a group-committed
// increment journal.
//
// The durability argument leans entirely on the paper's monotonicity
// invariant.  A counter's value never decreases, so the only thing a
// restore must guarantee is EQUAL-OR-GREATER: every named counter
// comes back at a value at least as high as any value a client was
// ever shown.  That is achieved with two files:
//
//   <state>           the snapshot — a full serialization of
//                     {name → spec, value, poison, dedup sessions}
//                     written as temp + fsync + rename (+ directory
//                     fsync), so a crash mid-write leaves the OLD
//                     snapshot intact and a reader never sees a torn
//                     one.  A trailing FNV-1a checksum rejects
//                     corruption from outside the rename protocol.
//
//   <state>.journal   the write-ahead journal — every state mutation
//                     (open / increment / poison) appended as a
//                     self-checksummed record.  The server fsyncs the
//                     journal ONCE PER EVENT-LOOP TICK, before any
//                     response bytes of that tick leave the socket
//                     (group commit): an acked increment is on disk
//                     before the ack, so a kill -9 can lose only work
//                     nobody was told succeeded.  A torn tail (the
//                     crash hit mid-append) is detected by the record
//                     checksum and replay simply stops there.
//
// Snapshot and journal are glued by a GENERATION number: each snapshot
// writes gen+1 into itself and into the fresh (truncated) journal's
// header.  A crash between "snapshot renamed" and "journal truncated"
// would otherwise double-apply the old journal on top of a snapshot
// that already contains it; the generation mismatch makes restore
// ignore exactly that journal.
//
// Counter identity across a restore: records carry the counter id the
// server had assigned AT WRITE TIME.  Restore does not try to
// reproduce those ids (they depend on creation order and shard count);
// it builds an old-id → new-entry map while loading and replays
// through it.  Old ids die with the epoch — the epoch bump in the
// Hello exchange is what tells clients to re-resolve.
//
// Everything here is plain file I/O on the event-loop thread; the
// module is header-only so the recovery tests and tools can read and
// write state files without linking the server.
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "monotonic/server/protocol.hpp"

namespace monotonic::server {

// ---- checksums ------------------------------------------------------

/// FNV-1a 64 — the same cheap, dependency-free hash the wait index
/// uses for level hashing.  Not cryptographic; it guards against torn
/// writes and bit rot, not adversaries (the state file is as trusted
/// as the server binary next to it).
inline std::uint64_t fnv1a(std::string_view bytes,
                           std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---- snapshot model -------------------------------------------------

/// One named logical counter as persisted.  `id` is the id the server
/// had assigned when the snapshot was written — replay input, not
/// restore output.
struct CounterRecord {
  std::uint64_t id = 0;
  std::string name;
  std::string spec;
  std::uint64_t value = 0;
  bool poisoned = false;
  std::string poison_reason;
};

/// One client session's dedup window: seqs in (max_seq - window, max_seq]
/// are tracked individually in `bits` (ring-indexed by seq % window);
/// anything at or below the window floor is treated as already seen.
struct SessionRecord {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::uint64_t max_seq = 0;
  std::vector<std::uint64_t> bits;  // window/64 words
};

struct StateSnapshot {
  std::uint64_t epoch = 0;       ///< epoch the snapshot was taken under
  std::uint64_t generation = 0;  ///< journal glue (see header comment)
  std::uint64_t dedup_window = 0;
  std::vector<CounterRecord> counters;
  std::vector<SessionRecord> sessions;
};

inline constexpr std::uint32_t kSnapshotMagic = 0x5353434d;  // "MCSS"
inline constexpr std::uint32_t kJournalMagic = 0x4c4a434d;   // "MCJL"
inline constexpr std::uint32_t kStateVersion = 1;

// ---- snapshot serialization ----------------------------------------

inline std::string encode_snapshot(const StateSnapshot& snap) {
  std::string out;
  put_u32(out, kSnapshotMagic);
  put_u32(out, kStateVersion);
  put_u64(out, snap.epoch);
  put_u64(out, snap.generation);
  put_u64(out, snap.dedup_window);
  put_u32(out, static_cast<std::uint32_t>(snap.counters.size()));
  for (const CounterRecord& c : snap.counters) {
    put_u64(out, c.id);
    put_str16(out, c.name);
    put_str16(out, c.spec);
    put_u64(out, c.value);
    put_u8(out, c.poisoned ? 1 : 0);
    put_str16(out, c.poison_reason);
  }
  put_u32(out, static_cast<std::uint32_t>(snap.sessions.size()));
  for (const SessionRecord& s : snap.sessions) {
    put_u64(out, s.hi);
    put_u64(out, s.lo);
    put_u64(out, s.max_seq);
    put_u32(out, static_cast<std::uint32_t>(s.bits.size()));
    for (const std::uint64_t w : s.bits) put_u64(out, w);
  }
  put_u64(out, fnv1a(out));
  return out;
}

/// Strict decode: any truncation, magic/version mismatch or checksum
/// failure returns false and leaves `snap` unspecified.
inline bool decode_snapshot(std::string_view bytes, StateSnapshot& snap) {
  if (bytes.size() < 8) return false;
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  Reader tail(bytes.data() + bytes.size() - 8, 8);
  std::uint64_t want = 0;
  tail.get_u64(want);
  if (fnv1a(body) != want) return false;

  Reader r(body);
  std::uint32_t magic = 0, version = 0, n = 0;
  if (!r.get_u32(magic) || magic != kSnapshotMagic) return false;
  if (!r.get_u32(version) || version != kStateVersion) return false;
  if (!r.get_u64(snap.epoch) || !r.get_u64(snap.generation) ||
      !r.get_u64(snap.dedup_window)) {
    return false;
  }
  if (!r.get_u32(n)) return false;
  snap.counters.clear();
  snap.counters.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    CounterRecord c;
    std::string_view name, spec, reason;
    std::uint8_t poisoned = 0;
    if (!r.get_u64(c.id) || !r.get_str16(name) || !r.get_str16(spec) ||
        !r.get_u64(c.value) || !r.get_u8(poisoned) || !r.get_str16(reason)) {
      return false;
    }
    c.name = std::string(name);
    c.spec = std::string(spec);
    c.poisoned = poisoned != 0;
    c.poison_reason = std::string(reason);
    snap.counters.push_back(std::move(c));
  }
  if (!r.get_u32(n)) return false;
  snap.sessions.clear();
  snap.sessions.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SessionRecord s;
    std::uint32_t words = 0;
    if (!r.get_u64(s.hi) || !r.get_u64(s.lo) || !r.get_u64(s.max_seq) ||
        !r.get_u32(words)) {
      return false;
    }
    s.bits.resize(words);
    for (std::uint32_t w = 0; w < words; ++w) {
      if (!r.get_u64(s.bits[w])) return false;
    }
    snap.sessions.push_back(std::move(s));
  }
  return r.empty();
}

// ---- atomic file I/O ------------------------------------------------

namespace detail {

inline bool write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

inline void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace detail

/// Atomically replaces `path` with the encoded snapshot: write to
/// `path.tmp`, fsync, rename over, fsync the directory.  A crash at
/// any point leaves either the old snapshot or the new one — never a
/// prefix of either.
inline bool save_snapshot(const std::string& path, const StateSnapshot& snap) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const bool ok = detail::write_all(fd, encode_snapshot(snap)) &&
                  ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  detail::fsync_parent_dir(path);
  return true;
}

/// Loads and verifies `path`.  false = no file / torn / corrupt — the
/// caller starts fresh (a missing snapshot is the first-boot case, not
/// an error).
inline bool load_snapshot(const std::string& path, StateSnapshot& snap) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  std::string bytes;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return decode_snapshot(bytes, snap);
}

// ---- journal --------------------------------------------------------

enum class JournalOp : std::uint8_t {
  kOpen = 1,       ///< u64 id | str16 name | str16 spec
  kIncrement = 2,  ///< u64 id | u64 amount | u64 hi | u64 lo | u64 seq
  kPoison = 3,     ///< u64 id | str16 reason
};

/// Journal file header: magic, version, generation.
inline std::string encode_journal_header(std::uint64_t generation) {
  std::string out;
  put_u32(out, kJournalMagic);
  put_u32(out, kStateVersion);
  put_u64(out, generation);
  return out;
}

/// One self-checksummed record: u32 body_len | body | u64 fnv(body).
/// The body's first byte is the JournalOp.
inline void append_journal_record(std::string& out, std::string_view body) {
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.append(body.data(), body.size());
  put_u64(out, fnv1a(body));
}

inline std::string journal_open_body(std::uint64_t id, std::string_view name,
                                     std::string_view spec) {
  std::string body;
  put_u8(body, static_cast<std::uint8_t>(JournalOp::kOpen));
  put_u64(body, id);
  put_str16(body, name);
  put_str16(body, spec);
  return body;
}

inline std::string journal_increment_body(std::uint64_t id,
                                          std::uint64_t amount,
                                          std::uint64_t session_hi,
                                          std::uint64_t session_lo,
                                          std::uint64_t seq) {
  std::string body;
  put_u8(body, static_cast<std::uint8_t>(JournalOp::kIncrement));
  put_u64(body, id);
  put_u64(body, amount);
  put_u64(body, session_hi);
  put_u64(body, session_lo);
  put_u64(body, seq);
  return body;
}

inline std::string journal_poison_body(std::uint64_t id,
                                       std::string_view reason) {
  std::string body;
  put_u8(body, static_cast<std::uint8_t>(JournalOp::kPoison));
  put_u64(body, id);
  put_str16(body, reason);
  return body;
}

/// Parsed journal record, tagged by op.  Unused fields stay zero.
struct JournalRecord {
  JournalOp op = JournalOp::kOpen;
  std::uint64_t id = 0;
  std::string name;
  std::string spec;
  std::uint64_t amount = 0;
  std::uint64_t session_hi = 0;
  std::uint64_t session_lo = 0;
  std::uint64_t seq = 0;
  std::string reason;
};

/// Reads `path` and parses every intact record whose journal
/// generation matches `want_generation`.  Returns false only when the
/// file exists but its HEADER is unreadable or from another
/// generation (the double-apply guard); a torn or checksum-failing
/// record simply ends the replay — that is the crash-mid-append
/// contract, not corruption.
inline bool load_journal(const std::string& path,
                         std::uint64_t want_generation,
                         std::vector<JournalRecord>& records) {
  records.clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return true;  // no journal: nothing to replay
  std::string bytes;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  Reader header(bytes);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t generation = 0;
  if (!header.get_u32(magic) || magic != kJournalMagic ||
      !header.get_u32(version) || version != kStateVersion ||
      !header.get_u64(generation)) {
    return bytes.empty();  // empty file = fine; garbage header = not
  }
  if (generation != want_generation) return false;

  std::size_t off = 4 + 4 + 8;
  while (off + 4 <= bytes.size()) {
    Reader len_r(bytes.data() + off, 4);
    std::uint32_t len = 0;
    len_r.get_u32(len);
    if (off + 4 + len + 8 > bytes.size()) break;  // torn tail
    const std::string_view body(bytes.data() + off + 4, len);
    Reader sum_r(bytes.data() + off + 4 + len, 8);
    std::uint64_t want = 0;
    sum_r.get_u64(want);
    if (fnv1a(body) != want) break;  // torn or corrupt: stop here
    off += 4 + len + 8;

    Reader r(body);
    std::uint8_t op = 0;
    if (!r.get_u8(op)) break;
    JournalRecord rec;
    rec.op = static_cast<JournalOp>(op);
    bool ok = false;
    switch (rec.op) {
      case JournalOp::kOpen: {
        std::string_view name, spec;
        ok = r.get_u64(rec.id) && r.get_str16(name) && r.get_str16(spec);
        if (ok) {
          rec.name = std::string(name);
          rec.spec = std::string(spec);
        }
        break;
      }
      case JournalOp::kIncrement:
        ok = r.get_u64(rec.id) && r.get_u64(rec.amount) &&
             r.get_u64(rec.session_hi) && r.get_u64(rec.session_lo) &&
             r.get_u64(rec.seq);
        break;
      case JournalOp::kPoison: {
        std::string_view reason;
        ok = r.get_u64(rec.id) && r.get_str16(reason);
        if (ok) rec.reason = std::string(reason);
        break;
      }
    }
    if (!ok) break;
    records.push_back(std::move(rec));
  }
  return true;
}

// ---- dedup window ---------------------------------------------------

/// Anti-replay window over a client session's increment sequence
/// numbers (the IPsec sliding-window idiom): seqs above max_seq are
/// new; seqs within the trailing `window` are tracked bit-exactly;
/// seqs at or below the window floor are conservatively treated as
/// already applied — for an at-least-once retry protocol the safe
/// failure direction is dropping a duplicate, never double-applying.
class DedupWindow {
 public:
  explicit DedupWindow(std::uint64_t window = 4096) { reset(window); }

  void reset(std::uint64_t window) {
    window_ = std::max<std::uint64_t>(64, window);
    // Round up to a multiple of 64 so ring indexing stays word-exact.
    window_ = (window_ + 63) / 64 * 64;
    bits_.assign(window_ / 64, 0);
    max_seq_ = 0;
  }

  std::uint64_t window() const noexcept { return window_; }
  std::uint64_t max_seq() const noexcept { return max_seq_; }
  const std::vector<std::uint64_t>& bits() const noexcept { return bits_; }

  /// True iff (session, seq) was already applied — or is too old to
  /// know, which dedup treats as applied (see class comment).
  bool seen(std::uint64_t seq) const {
    if (seq == 0) return false;  // 0 = "no seq": never dedup
    if (seq + window_ <= max_seq_) return true;
    if (seq > max_seq_) return false;
    return (bits_[(seq % window_) / 64] >> (seq % 64)) & 1;
  }

  /// Marks seq applied.  Call only after seen(seq) returned false.
  void record(std::uint64_t seq) {
    if (seq == 0) return;
    if (seq > max_seq_) {
      if (seq >= max_seq_ + window_) {
        bits_.assign(bits_.size(), 0);
      } else {
        for (std::uint64_t s = max_seq_ + 1; s < seq; ++s) {
          bits_[(s % window_) / 64] &= ~(std::uint64_t{1} << (s % 64));
        }
      }
      max_seq_ = seq;
    }
    bits_[(seq % window_) / 64] |= std::uint64_t{1} << (seq % 64);
  }

  /// Restore from a snapshot's SessionRecord (word count must match
  /// the configured window; a mismatched record resets conservatively
  /// to "everything at or below max_seq is seen").
  void restore(const SessionRecord& rec) {
    max_seq_ = rec.max_seq;
    if (rec.bits.size() == bits_.size()) {
      bits_ = rec.bits;
    } else {
      bits_.assign(bits_.size(), 0);
    }
  }

 private:
  std::uint64_t window_ = 4096;
  std::uint64_t max_seq_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace monotonic::server
