// protocol.hpp — the counter-as-a-service wire protocol.
//
// The shard server (server.hpp) multiplexes millions of named logical
// counters onto a handful of sharded engines; clients speak a tiny
// length-prefixed binary protocol over a UNIX-domain or TCP stream.
// The protocol's one structural idea mirrors the engine's: a blocking
// Check parks a *connection*, not a thread.  A request that cannot be
// answered yet (Check/CheckFor/OnReach below the level) produces no
// response until the level is reached — the client correlates by
// req_id, so it can keep pipelining other requests on the same stream
// while thousands of its waits are parked server-side as heap nodes.
//
// Frame layout (everything little-endian, no padding):
//
//   request:   u32 payload_len | u8 opcode | u64 req_id | body
//   response:  u32 payload_len | u8 status | u64 req_id | body
//
// payload_len counts everything after the length word (opcode/status
// included) and is capped at kMaxFramePayload — an oversized length is
// a protocol error and the server closes the stream (there is no way
// to resync).  A malformed *body* inside a well-formed frame is
// recoverable: the server answers kBadRequest and keeps the stream.
//
// Request bodies:
//
//   kOpen       u16 name_len | name | u16 spec_len | spec
//               (empty spec = the server's default; reopening an
//               existing name returns the same id and ignores the spec)
//   kIncrement  u64 counter_id | u64 amount | u8 flags
//               (flags bit 0 = no_ack: fire-and-forget, no response;
//                flags bit 1 = the body carries a trailing u64 seq —
//                the server dedups (session, seq) in a bounded window,
//                making retried increments idempotent)
//   kCheck      u64 counter_id | u64 level
//   kCheckFor   u64 counter_id | u64 level | u64 timeout_ns
//   kOnReach    u64 counter_id | u64 level
//   kPoison     u64 counter_id | u16 reason_len | reason
//   kStats      u64 counter_id            (0 = server-wide stats)
//   kHello      u64 session_hi | u64 session_lo
//               (binds the connection to a client session UUID; the
//                reply carries the server epoch + dedup window, so a
//                reconnecting client learns whether its cached ids
//                survived — same epoch — or must be re-resolved)
//   kResolve    u16 name_len | name
//               (resolve WITHOUT creating: kOk + id + value when the
//                name exists, kUnknownCounter otherwise — the
//                reconnect path's id refresher)
//
// Response bodies by status:
//
//   kOk         op-specific: Open/Resolve → u64 counter_id | u64
//               value; Hello → u64 epoch | u64 dedup_window;
//               Increment/Poison → empty; Stats → u32 n | n × (u16
//               key_len | key | u64 value) — self-describing pairs, so
//               adding fields never breaks old clients
//   kReached    u64 value_lower_bound (Check/CheckFor/OnReach success)
//   kTimedOut   empty (CheckFor deadline expired)
//   kPoisoned   u16 msg_len | msg (typed: client raises
//               CounterPoisonedError carrying the producer's reason)
//   kOverloaded u16 msg_len | msg (admission control turned the wait
//               away; typed as CounterOverloadedError client-side)
//   kUnknownCounter / kBadRequest  u16 msg_len | msg
//   kShuttingDown  empty (server is draining; reconnect elsewhere)
//
// counter_id 0 is reserved (Stats: server-wide).  Ids encode their
// engine shard: shard = (id - 1) % shard_count — the server computes
// it, clients treat ids as opaque.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace monotonic::server {

enum class Op : std::uint8_t {
  kOpen = 1,
  kIncrement = 2,
  kCheck = 3,
  kCheckFor = 4,
  kOnReach = 5,
  kPoison = 6,
  kStats = 7,
  kHello = 8,
  kResolve = 9,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kReached = 1,
  kTimedOut = 2,
  kPoisoned = 3,
  kOverloaded = 4,
  kUnknownCounter = 5,
  kBadRequest = 6,
  kShuttingDown = 7,
};

constexpr std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kReached: return "reached";
    case Status::kTimedOut: return "timed-out";
    case Status::kPoisoned: return "poisoned";
    case Status::kOverloaded: return "overloaded";
    case Status::kUnknownCounter: return "unknown-counter";
    case Status::kBadRequest: return "bad-request";
    case Status::kShuttingDown: return "shutting-down";
  }
  return "?";
}

/// Hard cap on a frame's payload (after the u32 length word).  Names,
/// specs and poison reasons are short; anything bigger is a corrupt or
/// hostile stream.
inline constexpr std::size_t kMaxFramePayload = 64 * 1024;

/// Increment flags.
inline constexpr std::uint8_t kIncrementNoAck = 0x01;
/// The Increment body carries a trailing u64 sequence number scoped to
/// the connection's Hello session; the server applies each (session,
/// seq) at most once within its dedup window, so a client may re-send
/// an unacknowledged increment after a reconnect without risking a
/// double count.
inline constexpr std::uint8_t kIncrementHasSeq = 0x02;

// ---- encoding ------------------------------------------------------
// Append-to-string writers; explicit shifts, so the wire format is
// little-endian on every host.

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_str16(std::string& out, std::string_view s) {
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Builds `u32 len | u8 tag | u64 req_id | body` in one buffer.
/// `tag` is an opcode on the client side, a status on the server side.
inline std::string make_frame(std::uint8_t tag, std::uint64_t req_id,
                              std::string_view body) {
  std::string out;
  out.reserve(4 + 1 + 8 + body.size());
  put_u32(out, static_cast<std::uint32_t>(1 + 8 + body.size()));
  put_u8(out, tag);
  put_u64(out, req_id);
  out.append(body.data(), body.size());
  return out;
}

// ---- decoding ------------------------------------------------------

/// Bounds-checked cursor over one frame's payload.  Every getter
/// returns false on truncation instead of reading past the end, so a
/// corrupt body surfaces as kBadRequest, never as garbage state.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : p_(data), end_(data + size) {}
  explicit Reader(std::string_view s) : Reader(s.data(), s.size()) {}

  bool get_u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = static_cast<std::uint8_t>(*p_++);
    return true;
  }

  bool get_u16(std::uint16_t& v) {
    if (remaining() < 2) return false;
    v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | (static_cast<std::uint16_t>(static_cast<unsigned char>(*p_++))
               << (8 * i)));
    }
    return true;
  }

  bool get_u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(*p_++))
           << (8 * i);
    }
    return true;
  }

  bool get_u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(*p_++))
           << (8 * i);
    }
    return true;
  }

  bool get_str16(std::string_view& s) {
    std::uint16_t len = 0;
    if (!get_u16(len)) return false;
    if (remaining() < len) return false;
    s = std::string_view(p_, len);
    p_ += len;
    return true;
  }

  std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  bool empty() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace monotonic::server
