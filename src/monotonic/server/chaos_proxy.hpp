// chaos_proxy.hpp — a fault-injecting byte proxy for the shard server.
//
// The crash-recovery suite needs the failures that never happen on a
// loopback socket in a clean test run: connections that die mid-frame,
// frames that arrive one byte per read, bytes that dawdle, servers
// that vanish between the length prefix and the payload.  This proxy
// sits between a ServerClient and a CounterServer (both ends speak
// UNIX-domain sockets) and injects exactly those, on a SEEDED
// schedule — a failing run names its seed and replays bit-identically.
//
//   server ←—— upstream UDS ——— [ChaosProxy] ——— listen UDS ——→ client
//
// Fault repertoire (ChaosProxyOptions):
//
//   * max_chunk      — forward at most N bytes per event: a 21-byte
//                      frame crosses as 21 reads when N = 1, which is
//                      how the server's reassembly path gets exercised
//                      for real instead of by construction;
//   * chunk_delay    — sleep between chunks: trickling bytes, the
//                      slow-network shape;
//   * cut_after_*    — sever the connection (both sides, hard close)
//                      after a seeded number of forwarded bytes drawn
//                      from [min, max] — landing mid-frame more often
//                      than not, which is the point: the server must
//                      treat a half-frame plus EOF as a dead client,
//                      and a reconnecting client must treat it as a
//                      crash and replay;
//   * blackhole      — accept and read but never forward or answer:
//                      the pathological peer that is alive at the TCP
//                      level and dead at the protocol level, which is
//                      what io_timeout exists to bound.
//
// In-process and header-only on purpose: the recovery tests compose it
// with a forked (and SIGKILLed) server process, so the proxy being a
// seam inside the TEST process is what lets one test orchestrate both
// sides of the wire plus the failure schedule deterministically.
#pragma once

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace monotonic::server {

struct ChaosProxyOptions {
  std::string listen_path;    ///< where the client under test connects
  std::string upstream_path;  ///< the real server's UDS
  std::uint64_t seed = 1;     ///< fault schedule; same seed = same run
  /// Forward at most this many bytes per poll event (0 = unlimited).
  std::size_t max_chunk = 0;
  /// Sleep between forwarded chunks (trickle).
  std::chrono::microseconds chunk_delay{0};
  /// Hard-close a connection after a seeded byte count drawn uniformly
  /// from [cut_after_min, cut_after_max] (0/0 = never cut).  Counted
  /// over both directions, so cuts land mid-frame in either one.
  std::size_t cut_after_min = 0;
  std::size_t cut_after_max = 0;
  /// Accept but never forward a byte in either direction.
  bool blackhole = false;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions opts) : opts_(std::move(opts)) {}

  ~ChaosProxy() { Stop(); }
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  void Start() {
    if (running_) return;
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
    if (listen_fd_ < 0) throw std::runtime_error("chaos: socket failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opts_.listen_path.c_str(),
                opts_.listen_path.size() + 1);
    ::unlink(opts_.listen_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(listen_fd_, 64) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("chaos: bind/listen(" + opts_.listen_path +
                               ") failed");
    }
    rng_.seed(static_cast<std::uint32_t>(opts_.seed * 2654435761u + 1));
    running_ = true;
    stop_.store(false);
    loop_ = std::thread([this] { run(); });
  }

  void Stop() {
    if (!running_) return;
    stop_.store(true);
    if (loop_.joinable()) loop_.join();
    for (Pipe& p : pipes_) close_pipe(p);
    pipes_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.listen_path.c_str());
    running_ = false;
  }

  /// Severs every live proxied connection NOW (drop injection on
  /// demand, independent of the byte-count schedule).
  void kill_connections() { kill_all_.store(true); }

  std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_cut() const {
    return cut_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_forwarded() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// One proxied duplex connection and its remaining fault budget.
  struct Pipe {
    int client = -1;
    int upstream = -1;
    std::string to_upstream;  // client → server backlog
    std::string to_client;    // server → client backlog
    std::size_t cut_at = 0;   // 0 = never
    std::size_t forwarded = 0;
    bool dead = false;
  };

  void run() {
    std::vector<pollfd> pfds;
    while (!stop_.load(std::memory_order_relaxed)) {
      if (kill_all_.exchange(false)) {
        for (Pipe& p : pipes_) {
          if (!p.dead) {
            cut_.fetch_add(1, std::memory_order_relaxed);
            p.dead = true;
          }
        }
      }
      pfds.clear();
      pfds.push_back({listen_fd_, POLLIN, 0});
      for (Pipe& p : pipes_) {
        short ce = POLLIN, ue = POLLIN;
        if (!p.to_client.empty()) ce |= POLLOUT;
        if (!p.to_upstream.empty()) ue |= POLLOUT;
        pfds.push_back({p.client, ce, 0});
        pfds.push_back({p.upstream, ue, 0});
      }
      ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 10);
      if (pfds[0].revents & POLLIN) accept_all();
      for (Pipe& p : pipes_) {
        if (p.dead) continue;
        shuttle(p, p.client, p.upstream, p.to_upstream);
        if (!p.dead) shuttle(p, p.upstream, p.client, p.to_client);
      }
      reap();
    }
  }

  void accept_all() {
    for (;;) {
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd < 0) return;
      const int ufd =
          ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::memcpy(addr.sun_path, opts_.upstream_path.c_str(),
                  opts_.upstream_path.size() + 1);
      int rc = ::connect(ufd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr));
      if (rc != 0 && errno != EINPROGRESS) {
        ::close(cfd);
        ::close(ufd);
        continue;  // upstream gone: refuse by dropping
      }
      set_nonblocking(cfd);
      Pipe p;
      p.client = cfd;
      p.upstream = ufd;
      if (opts_.cut_after_max > 0) {
        std::uniform_int_distribution<std::size_t> dist(opts_.cut_after_min,
                                                        opts_.cut_after_max);
        p.cut_at = std::max<std::size_t>(1, dist(rng_));
      }
      pipes_.push_back(std::move(p));
      accepted_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Moves bytes src → dst through the pipe's backlog, honoring
  /// blackhole, max_chunk, chunk_delay and the cut budget.
  void shuttle(Pipe& p, int src, int dst, std::string& backlog) {
    char buf[16 * 1024];
    for (;;) {
      const ssize_t n = ::read(src, buf, sizeof(buf));
      if (n > 0) {
        if (!opts_.blackhole) backlog.append(buf, static_cast<std::size_t>(n));
        if (n == sizeof(buf)) continue;
        break;
      }
      if (n == 0) {
        p.dead = true;  // one side hung up: kill both (hard, like a crash)
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      p.dead = true;
      return;
    }
    while (!backlog.empty()) {
      std::size_t want = backlog.size();
      if (opts_.max_chunk > 0) want = std::min(want, opts_.max_chunk);
      if (p.cut_at > 0) {
        if (p.forwarded >= p.cut_at) {
          cut_.fetch_add(1, std::memory_order_relaxed);
          p.dead = true;  // budget spent: sever mid-stream
          return;
        }
        want = std::min(want, p.cut_at - p.forwarded);
      }
      const ssize_t n = ::send(dst, backlog.data(), want, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        p.dead = true;
        return;
      }
      backlog.erase(0, static_cast<std::size_t>(n));
      p.forwarded += static_cast<std::size_t>(n);
      bytes_.fetch_add(static_cast<std::uint64_t>(n),
                       std::memory_order_relaxed);
      if (p.cut_at > 0 && p.forwarded >= p.cut_at) {
        cut_.fetch_add(1, std::memory_order_relaxed);
        p.dead = true;
        return;
      }
      if (opts_.chunk_delay.count() > 0) {
        std::this_thread::sleep_for(opts_.chunk_delay);
      }
      if (opts_.max_chunk > 0 && opts_.max_chunk < backlog.size()) continue;
    }
  }

  void reap() {
    std::size_t kept = 0;
    for (Pipe& p : pipes_) {
      if (p.dead) {
        close_pipe(p);
      } else {
        pipes_[kept++] = std::move(p);
      }
    }
    pipes_.resize(kept);
  }

  static void close_pipe(Pipe& p) {
    if (p.client >= 0) ::close(p.client);
    if (p.upstream >= 0) ::close(p.upstream);
    p.client = p.upstream = -1;
  }

  static void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  ChaosProxyOptions opts_;
  int listen_fd_ = -1;
  std::thread loop_;
  std::vector<Pipe> pipes_;
  std::minstd_rand rng_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> kill_all_{false};
  std::atomic<std::uint64_t> accepted_{0}, cut_{0}, bytes_{0};
  bool running_ = false;
};

}  // namespace monotonic::server
