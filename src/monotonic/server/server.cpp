// server.cpp — event-loop implementation of the counter shard server.
//
// Single-threaded by construction: every map, buffer and timer below
// is owned by the event-loop thread.  The only cross-thread traffic is
// (a) the completion queue, fed by executor workers when a parked
// wait's OnReach fires, drained by the loop after a wakeup-pipe poke,
// and (b) the atomic stats gauges.  Wait registrations are shared
// with the engine through WaitReg tombstones: whoever settles a wait
// first — the completion firing, a CheckFor timer, a disconnect sweep
// — claims it with one atomic exchange, and every later party sees a
// settled reg and does nothing.  That claim is what makes "client died
// while parked" leak-free without an engine-side deregistration API.
//
// Lifetime note: the lambdas handed to OnReach capture a
// shared_ptr<LoopShared>, never the Impl — the engine's completion
// plane may run them on an executor worker at any point up to the
// executor's own destruction, and LoopShared (completion queue, wakeup
// fd, parked gauge) is the only state they may touch.  ~Impl tears
// down in the one safe order: stop the loop, destroy the counters
// (dropping their executor refs), then the executor (drains + joins),
// then the wakeup pipe.

#include "monotonic/server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <string_view>
#include <system_error>
#include <unordered_map>
#include <utility>
#include <vector>

#include "monotonic/core/any_counter.hpp"
#include "monotonic/core/batching_counter.hpp"
#include "monotonic/core/completion.hpp"
#include "monotonic/core/counter_error.hpp"
#include "monotonic/server/protocol.hpp"
#include "monotonic/server/state_file.hpp"

namespace monotonic::server {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::string exception_message(std::exception_ptr ep) {
  try {
    std::rethrow_exception(std::move(ep));
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "counter poisoned (non-std::exception cause)";
  }
}

// SIGTERM → graceful drain (ServerOptions::drain_on_sigterm).  The
// handler may only touch async-signal-safe state: a flag the event
// loop polls and a write() to the wakeup pipe that makes it poll NOW.
// Process-wide by necessity — one drain-on-signal server per process.
volatile std::sig_atomic_t g_sigterm_pending = 0;
std::atomic<int> g_sigterm_wake_fd{-1};

void sigterm_handler(int) {
  g_sigterm_pending = 1;
  const int fd = g_sigterm_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

struct CounterServer::Impl {
  // ---- wait registrations -----------------------------------------

  /// Shared between the loop, the engine's completion plane and the
  /// timer wheel.  `settled` starts false; the first settler (fire /
  /// timeout / disconnect) claims the reg, owns the response (or the
  /// silence, for disconnects), and decrements the matching gauge.
  struct WaitReg {
    std::atomic<bool> settled{false};
    int fd = -1;
    std::uint64_t gen = 0;  ///< connection generation, guards fd reuse
    std::uint64_t req_id = 0;
    std::uint64_t counter_id = 0;
    counter_value_t level = 0;
    bool degraded = false;  ///< on the tick poll list, not in the engine

    /// True for exactly one caller.
    bool claim() { return !settled.exchange(true, std::memory_order_acq_rel); }
  };

  /// Record posted by an executor worker when a parked wait fires;
  /// the loop turns it into a response frame.
  struct Completion {
    std::shared_ptr<WaitReg> reg;
    bool poisoned = false;
    std::string message;  // poison reason
  };

  /// The state an engine-fired completion may touch.  Owned jointly by
  /// the Impl and every registered OnReach lambda, so a fire that
  /// outraces (or outlives) the event loop still lands on live memory.
  struct LoopShared {
    std::mutex cq_mutex;
    std::vector<Completion> cq;
    std::atomic<int> wake_fd{-1};
    std::atomic<std::uint64_t> parked{0};  ///< live engine-parked waits

    void enqueue(Completion c) {
      {
        std::lock_guard<std::mutex> lk(cq_mutex);
        cq.push_back(std::move(c));
      }
      poke();
    }

    void poke() {
      const int fd = wake_fd.load(std::memory_order_acquire);
      if (fd >= 0) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
      }
    }
  };

  // ---- logical counters -------------------------------------------

  struct Entry {
    std::string name;
    std::string spec;           ///< as resolved at creation (snapshotted)
    std::string poison_reason;  ///< wire poison reason (snapshotted)
    std::unique_ptr<AnyCounter> counter;
    std::unique_ptr<BatchingIncrementer<AnyCounter>> batcher;
    bool dirty = false;  ///< has buffered increments this tick
  };

  struct Shard {
    std::unordered_map<std::string, std::uint64_t> names;  // name -> id
    std::vector<Entry> entries;                            // local index
  };

  // ---- connections ------------------------------------------------

  struct Connection {
    int fd = -1;
    std::uint64_t gen = 0;
    std::string rbuf;
    std::size_t roff = 0;  ///< parsed prefix of rbuf
    std::string wbuf;
    std::size_t woff = 0;  ///< written prefix of wbuf
    bool gated = false;    ///< kBlockIncrementers backpressure engaged
    std::deque<std::string> gated_frames;  ///< payloads deferred while gated
    std::vector<std::shared_ptr<WaitReg>> waits;  ///< for the death sweep
    bool dead = false;
    bool has_session = false;  ///< Hello received
    std::uint64_t session_hi = 0;
    std::uint64_t session_lo = 0;
  };

  // ---- client sessions (idempotent retries) -----------------------

  /// Dedup state for one Hello session UUID.  Sessions outlive
  /// connections — that is the point: the reconnected client re-sends
  /// its unacknowledged increments under the same session, and the
  /// window absorbs the ones that had already landed.
  struct Session {
    DedupWindow window;
    std::uint64_t last_used = 0;  ///< LRU clock value
  };

  struct SessionKeyHash {
    std::size_t operator()(
        const std::pair<std::uint64_t, std::uint64_t>& k) const noexcept {
      return static_cast<std::size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ULL));
    }
  };

  struct Timer {
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<WaitReg> reg;
    bool operator>(const Timer& o) const { return deadline > o.deadline; }
  };

  // ---- state ------------------------------------------------------

  ServerOptions opts;
  std::shared_ptr<LoopShared> shared = std::make_shared<LoopShared>();
  std::vector<Shard> shards;
  std::shared_ptr<CompletionExecutor> executor;
  std::unordered_map<int, Connection> conns;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers;
  std::vector<std::shared_ptr<WaitReg>> degraded;  ///< tick poll list
  std::vector<std::pair<std::size_t, std::size_t>> dirty;  ///< (shard, idx)

  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, Session,
                     SessionKeyHash>
      sessions;
  std::uint64_t lru_clock = 0;

  int uds_fd = -1;
  int tcp_fd = -1;
  int wake_r = -1;
  int wake_w = -1;
  std::uint16_t bound_tcp_port = 0;
  std::thread loop;
  std::atomic<bool> stopping{false};
  std::atomic<bool> drain_requested{false};
  std::atomic<bool> drained{false};
  bool started = false;

  // Durable state (opts.state_file).  All loop-thread-owned except the
  // atomics stats() reads.
  std::atomic<std::uint64_t> epoch{1};
  std::uint64_t generation = 1;  ///< snapshot/journal glue
  int journal_fd = -1;
  std::string journal_pending;        ///< this tick's records
  std::size_t journal_since_rotate = 0;
  bool journal_write_failed = false;  ///< warn-once latch

  // Loop-side counters; atomics only because stats() reads them from
  // other threads.
  std::atomic<std::uint64_t> s_accepted{0}, s_conns{0}, s_counters{0},
      s_requests{0}, s_responses{0}, s_degraded{0}, s_gated{0},
      s_rejections{0}, s_batched{0}, s_flushes{0}, s_proto_errors{0},
      s_bytes_in{0}, s_bytes_out{0}, s_restored{0}, s_snapshots{0},
      s_journal_records{0}, s_journal_bytes{0}, s_sessions{0}, s_dedup{0},
      s_slow_consumer{0}, s_shutdown_replies{0};

  explicit Impl(ServerOptions o) : opts(std::move(o)) {
    if (opts.shards == 0) opts.shards = 1;
    if (opts.batch_size == 0) opts.batch_size = 1;
    if (opts.max_sessions == 0) opts.max_sessions = 1;
    shards.resize(opts.shards);
    executor = std::make_shared<ThreadPoolExecutor>(
        opts.executor_threads == 0 ? 1 : opts.executor_threads);
  }

  ~Impl() {
    stop();
    // Counters drop their executor refs, then the (now sole) executor
    // ref drains and joins the workers, then the pipe the workers were
    // poking can close.  See the lifetime note atop this file.
    shards.clear();
    executor.reset();
    if (journal_fd >= 0) ::close(journal_fd);
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
  }

  bool persist() const { return !opts.state_file.empty(); }
  std::string journal_path() const { return opts.state_file + ".journal"; }

  // ---- id mapping -------------------------------------------------
  // id = local_index * nshards + shard + 1; 0 is reserved (Stats:
  // server-wide), so ids are opaque-but-stable handles.

  std::uint64_t id_of(std::size_t shard, std::size_t idx) const {
    return idx * shards.size() + shard + 1;
  }

  Entry* entry_of(std::uint64_t id) {
    if (id == 0) return nullptr;
    const std::size_t shard = (id - 1) % shards.size();
    const std::size_t idx = (id - 1) / shards.size();
    if (idx >= shards[shard].entries.size()) return nullptr;
    return &shards[shard].entries[idx];
  }

  std::size_t shard_of(std::string_view name) const {
    return std::hash<std::string_view>{}(name) % shards.size();
  }

  /// Current id of a named counter, 0 when unknown.
  std::uint64_t id_of_entry(std::string_view name) const {
    const Shard& sh = shards[shard_of(name)];
    const auto it = sh.names.find(std::string(name));
    return it == sh.names.end() ? 0 : it->second;
  }

  /// The shared open path (wire Open, snapshot restore, journal
  /// replay): returns the existing entry for `name` or creates one
  /// with `spec` (empty = default).  nullptr = the spec failed to
  /// parse — the caller decides whether that is kBadRequest (wire) or
  /// a skip (restore of a spec written by a newer binary).
  Entry* find_or_create(std::string_view name, std::string_view spec) {
    Shard& sh = shards[shard_of(name)];
    if (auto it = sh.names.find(std::string(name)); it != sh.names.end()) {
      return entry_of(it->second);
    }
    Entry entry;
    entry.name = std::string(name);
    entry.spec =
        spec.empty() ? opts.default_spec : std::string(spec);
    try {
      // The shared executor is ambient: every logical counter's
      // completions drain through one pool, so a million counters do
      // not mean a million threads.
      entry.counter = make_counter(entry.spec, executor);
    } catch (const std::invalid_argument&) {
      return nullptr;
    }
    entry.batcher = std::make_unique<BatchingIncrementer<AnyCounter>>(
        *entry.counter, opts.batch_size);
    sh.entries.push_back(std::move(entry));
    const std::uint64_t id =
        id_of(shard_of(name), sh.entries.size() - 1);
    sh.names.emplace(std::string(name), id);
    s_counters.fetch_add(1, std::memory_order_relaxed);
    return entry_of(id);
  }

  // ---- lifecycle --------------------------------------------------

  void start() {
    if (started) return;
    if (wake_r < 0) {
      int pipefd[2];
      if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) throw_errno("pipe2");
      wake_r = pipefd[0];
      wake_w = pipefd[1];
      shared->wake_fd.store(wake_w, std::memory_order_release);
    }
    // Restore BEFORE the listeners bind: no client can observe a
    // partially restored name table.
    if (persist()) restore_state();
    if (opts.drain_on_sigterm) {
      g_sigterm_pending = 0;
      g_sigterm_wake_fd.store(wake_w, std::memory_order_relaxed);
      struct sigaction sa{};
      sa.sa_handler = sigterm_handler;
      ::sigemptyset(&sa.sa_mask);
      ::sigaction(SIGTERM, &sa, nullptr);
    }
    if (!opts.uds_path.empty()) bind_uds();
    if (opts.tcp_port != 0 || opts.tcp_any_port) bind_tcp();
    started = true;
    stopping.store(false);
    drain_requested.store(false);
    drained.store(false);
    loop = std::thread([this] { run(); });
  }

  // ---- durable state: restore / journal / snapshot ----------------

  /// Start-time restore: snapshot, then journal replay, then an
  /// immediate compacting snapshot under a fresh generation.  Runs on
  /// the caller's thread before the loop exists, so it may touch
  /// everything freely.
  void restore_state() {
    StateSnapshot snap;
    std::unordered_map<std::uint64_t, std::uint64_t> id_map;  // old → new
    const bool have_snap = load_snapshot(opts.state_file, snap);
    if (have_snap) {
      epoch.store(snap.epoch + 1, std::memory_order_relaxed);
      generation = snap.generation;
      for (const CounterRecord& rec : snap.counters) {
        Entry* entry = find_or_create(rec.name, rec.spec);
        if (entry == nullptr) continue;  // spec no longer parses: skip
        id_map[rec.id] = id_of_entry(rec.name);
        if (rec.value > 0) entry->counter->Increment(rec.value);
        if (rec.poisoned) poison_entry(*entry, rec.poison_reason);
      }
      for (const SessionRecord& rec : snap.sessions) {
        Session& s = touch_session(rec.hi, rec.lo);
        s.window.restore(rec);
      }
    }
    std::vector<JournalRecord> records;
    if (load_journal(journal_path(), generation, records)) {
      for (const JournalRecord& rec : records) {
        switch (rec.op) {
          case JournalOp::kOpen: {
            Entry* entry = find_or_create(rec.name, rec.spec);
            if (entry != nullptr) id_map[rec.id] = id_of_entry(rec.name);
            break;
          }
          case JournalOp::kIncrement: {
            auto it = id_map.find(rec.id);
            if (it == id_map.end()) break;
            Entry* entry = entry_of(it->second);
            if (entry == nullptr || entry->counter->poisoned()) break;
            if ((rec.session_hi | rec.session_lo) != 0) {
              Session& s = touch_session(rec.session_hi, rec.session_lo);
              if (s.window.seen(rec.seq)) break;  // snapshot had it
              s.window.record(rec.seq);
            }
            entry->counter->Increment(rec.amount);
            break;
          }
          case JournalOp::kPoison: {
            auto it = id_map.find(rec.id);
            if (it == id_map.end()) break;
            Entry* entry = entry_of(it->second);
            if (entry != nullptr) poison_entry(*entry, rec.reason);
            break;
          }
        }
      }
    }
    s_restored.store(s_counters.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    // Compact: everything just replayed becomes the new snapshot; the
    // journal restarts empty under generation+1 (the old journal can
    // no longer be double-applied).
    write_snapshot();
  }

  /// Poisons an entry with a wire-style reason, recording the reason
  /// for the next snapshot.
  void poison_entry(Entry& entry, const std::string& reason) {
    entry.poison_reason = reason;
    entry.counter->Poison(std::make_exception_ptr(CounterPoisonedError(
        reason.empty() ? "poisoned via wire" : reason)));
  }

  /// Appends one record to this tick's journal buffer.  The buffer is
  /// written + fsynced by commit_journal() BEFORE flush_writes() — the
  /// group-commit ordering that makes "acked" imply "durable".
  void journal_append(std::string body) {
    if (!persist()) return;
    append_journal_record(journal_pending, body);
    s_journal_records.fetch_add(1, std::memory_order_relaxed);
  }

  void commit_journal() {
    if (journal_pending.empty()) return;
    if (journal_fd >= 0) {
      if (!detail::write_all(journal_fd, journal_pending)) {
        if (!journal_write_failed) {
          journal_write_failed = true;
          std::fprintf(stderr,
                       "monotonic-server: journal write to %s failed (%s); "
                       "durability degraded until the next snapshot\n",
                       journal_path().c_str(), std::strerror(errno));
        }
      } else if (opts.journal_fsync) {
        ::fsync(journal_fd);
      }
    }
    journal_since_rotate += journal_pending.size();
    s_journal_bytes.store(journal_since_rotate, std::memory_order_relaxed);
    journal_pending.clear();
  }

  /// Full snapshot + journal rotation.  The tick's un-committed
  /// journal records are superseded by the snapshot (their effects are
  /// already applied to the engines), so they are dropped, not synced.
  void write_snapshot() {
    if (!persist()) return;
    flush_dirty();
    StateSnapshot snap;
    snap.epoch = epoch.load(std::memory_order_relaxed);
    snap.generation = generation + 1;
    snap.dedup_window = DedupWindow(opts.dedup_window).window();
    for (std::size_t sh = 0; sh < shards.size(); ++sh) {
      for (std::size_t i = 0; i < shards[sh].entries.size(); ++i) {
        Entry& entry = shards[sh].entries[i];
        flush_entry(entry);
        CounterRecord rec;
        rec.id = id_of(sh, i);
        rec.name = entry.name;
        rec.spec = entry.spec;
        rec.value = entry.counter->value_lower_bound();
        rec.poisoned = entry.counter->poisoned();
        rec.poison_reason = entry.poison_reason;
        snap.counters.push_back(std::move(rec));
      }
    }
    for (const auto& [key, session] : sessions) {
      SessionRecord rec;
      rec.hi = key.first;
      rec.lo = key.second;
      rec.max_seq = session.window.max_seq();
      rec.bits = session.window.bits();
      snap.sessions.push_back(std::move(rec));
    }
    if (!save_snapshot(opts.state_file, snap)) {
      std::fprintf(stderr,
                   "monotonic-server: snapshot write to %s failed (%s)\n",
                   opts.state_file.c_str(), std::strerror(errno));
      return;
    }
    ++generation;
    journal_pending.clear();
    rotate_journal();
    s_snapshots.fetch_add(1, std::memory_order_relaxed);
  }

  void rotate_journal() {
    if (journal_fd >= 0) ::close(journal_fd);
    journal_fd = ::open(journal_path().c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC,
                        0644);
    if (journal_fd >= 0) {
      detail::write_all(journal_fd, encode_journal_header(generation));
      ::fsync(journal_fd);
      journal_write_failed = false;
    }
    journal_since_rotate = 0;
    s_journal_bytes.store(0, std::memory_order_relaxed);
  }

  // ---- sessions ---------------------------------------------------

  Session& touch_session(std::uint64_t hi, std::uint64_t lo) {
    const auto key = std::make_pair(hi, lo);
    auto it = sessions.find(key);
    if (it == sessions.end()) {
      if (sessions.size() >= opts.max_sessions) evict_lru_session();
      it = sessions.emplace(key, Session{DedupWindow(opts.dedup_window), 0})
               .first;
      s_sessions.store(sessions.size(), std::memory_order_relaxed);
    }
    it->second.last_used = ++lru_clock;
    return it->second;
  }

  void evict_lru_session() {
    auto victim = sessions.begin();
    for (auto it = sessions.begin(); it != sessions.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    if (victim != sessions.end()) sessions.erase(victim);
    s_sessions.store(sessions.size(), std::memory_order_relaxed);
  }

  void bind_uds() {
    uds_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (uds_fd < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.uds_path.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("uds_path too long: " + opts.uds_path);
    }
    std::memcpy(addr.sun_path, opts.uds_path.c_str(), opts.uds_path.size() + 1);
    ::unlink(opts.uds_path.c_str());
    if (::bind(uds_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw_errno("bind(AF_UNIX)");
    }
    if (::listen(uds_fd, 128) != 0) throw_errno("listen(AF_UNIX)");
  }

  void bind_tcp() {
    tcp_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (tcp_fd < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts.tcp_port);
    if (::bind(tcp_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw_errno("bind(127.0.0.1)");
    }
    if (::listen(tcp_fd, 128) != 0) throw_errno("listen(tcp)");
    socklen_t len = sizeof(addr);
    ::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_tcp_port = ntohs(addr.sin_port);
  }

  void stop() {
    if (!started) return;
    stopping.store(true);
    shared->poke();
    if (loop.joinable()) loop.join();
    for (auto& [fd, conn] : conns) ::close(fd);
    conns.clear();
    auto close_if = [](int& fd) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    };
    close_if(uds_fd);
    close_if(tcp_fd);
    if (!opts.uds_path.empty()) ::unlink(opts.uds_path.c_str());
    started = false;
  }

  // ---- event loop -------------------------------------------------

  void run() {
    std::vector<pollfd> pfds;
    std::vector<int> ready;
    while (!stopping.load(std::memory_order_relaxed)) {
      pfds.clear();
      pfds.push_back({wake_r, POLLIN, 0});
      if (uds_fd >= 0) pfds.push_back({uds_fd, POLLIN, 0});
      if (tcp_fd >= 0) pfds.push_back({tcp_fd, POLLIN, 0});
      for (auto& [fd, conn] : conns) {
        short events = 0;
        if (!conn.gated) events |= POLLIN;
        if (conn.woff < conn.wbuf.size()) events |= POLLOUT;
        pfds.push_back({fd, events, 0});
      }
      ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), poll_timeout_ms());
      if (stopping.load(std::memory_order_relaxed)) break;

      // Wakeup pipe: drain, then take the completion queue.
      if (pfds[0].revents & POLLIN) {
        char buf[256];
        while (::read(wake_r, buf, sizeof(buf)) > 0) {
        }
      }
      drain_completions();

      std::size_t i = 1;
      if (uds_fd >= 0 && (pfds[i++].revents & POLLIN)) accept_all(uds_fd);
      if (tcp_fd >= 0 && (pfds[i++].revents & POLLIN)) accept_all(tcp_fd);

      // Snapshot ready fds: dispatch may open/close connections, which
      // mutates `conns` under us otherwise.
      ready.clear();
      for (; i < pfds.size(); ++i) {
        if (pfds[i].revents != 0) ready.push_back(pfds[i].fd);
      }
      for (int fd : ready) {
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        handle_io(it->second);
      }

      poll_degraded();
      expire_timers();
      retry_gated();
      flush_dirty();
      // Group commit: this tick's journal records hit disk BEFORE any
      // of this tick's responses leave in flush_writes() — an acked
      // increment (or an observed kReached) is durable by the time the
      // client sees it.
      commit_journal();
      maybe_snapshot();
      flush_writes();
      reap_dead();

      if (drain_requested.load(std::memory_order_relaxed) ||
          (opts.drain_on_sigterm && g_sigterm_pending != 0)) {
        perform_drain();
        break;
      }
    }
  }

  /// Rewrite the snapshot once the journal outgrows its budget —
  /// bounds crash-replay time without fsync-per-request cost.
  void maybe_snapshot() {
    if (persist() && journal_since_rotate > opts.snapshot_journal_bytes) {
      write_snapshot();
    }
  }

  /// The orderly exit (Drain() / SIGTERM): everything a crash would
  /// lose or a client would have to discover the hard way is settled
  /// explicitly — waits answered kShuttingDown (typed, so retry-aware
  /// clients back off instead of storming the dead listener), state
  /// snapshotted, response buffers flushed best-effort.
  void perform_drain() {
    // Refuse new work first: close + unlink the listeners.
    auto close_if = [](int& fd) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    };
    close_if(uds_fd);
    close_if(tcp_fd);
    if (!opts.uds_path.empty()) ::unlink(opts.uds_path.c_str());

    drain_completions();  // settle anything already fired
    for (auto& [fd, conn] : conns) {
      for (const auto& reg : conn.waits) {
        if (!reg->claim()) continue;
        on_loop_claim(*reg);
        respond(conn, Status::kShuttingDown, reg->req_id);
        s_shutdown_replies.fetch_add(1, std::memory_order_relaxed);
      }
      // Frames deferred under backpressure get the same answer: their
      // req_id is at a fixed offset in the deferred payload.
      while (!conn.gated_frames.empty()) {
        const std::string frame = std::move(conn.gated_frames.front());
        conn.gated_frames.pop_front();
        Reader r(frame);
        std::uint8_t op = 0;
        std::uint64_t req_id = 0;
        if (r.get_u8(op) && r.get_u64(req_id)) {
          respond(conn, Status::kShuttingDown, req_id);
          s_shutdown_replies.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (conn.gated) {
        conn.gated = false;
        s_gated.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    degraded.clear();  // every reg above is claimed; drop the poll list

    flush_dirty();
    commit_journal();
    write_snapshot();

    // Best-effort flush of the kShuttingDown replies: bounded, so a
    // stuck client cannot hold the drain hostage.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    for (;;) {
      flush_writes();
      reap_dead();
      bool pending = false;
      for (auto& [fd, conn] : conns) {
        if (conn.woff < conn.wbuf.size()) pending = true;
      }
      if (!pending || std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    drained.store(true, std::memory_order_release);
    stopping.store(true, std::memory_order_relaxed);
  }

  int poll_timeout_ms() {
    using namespace std::chrono;
    // The degraded poll list needs a tick cadence even when the
    // sockets are quiet; 1ms mirrors the engine gate's bounded nap.
    if (!degraded.empty()) return 1;
    if (timers.empty()) return 1000;
    const auto now = steady_clock::now();
    if (timers.top().deadline <= now) return 0;
    const auto ms = duration_cast<milliseconds>(timers.top().deadline - now);
    return static_cast<int>(std::clamp<long long>(ms.count() + 1, 1, 1000));
  }

  void accept_all(int listen_fd) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      set_nonblocking(fd);
      Connection conn;
      conn.fd = fd;
      conn.gen = ++next_gen_;
      conns.emplace(fd, std::move(conn));
      s_accepted.fetch_add(1, std::memory_order_relaxed);
      s_conns.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::uint64_t next_gen_ = 0;

  // ---- per-connection I/O -----------------------------------------

  void handle_io(Connection& conn) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        s_bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                             std::memory_order_relaxed);
        conn.rbuf.append(buf, static_cast<std::size_t>(n));
        if (n < static_cast<ssize_t>(sizeof(buf))) break;
        continue;
      }
      if (n == 0) {
        conn.dead = true;
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.dead = true;
      return;
    }
    parse_frames(conn);
  }

  void parse_frames(Connection& conn) {
    while (!conn.dead) {
      const std::size_t avail = conn.rbuf.size() - conn.roff;
      if (avail < 4) break;
      Reader len_r(conn.rbuf.data() + conn.roff, 4);
      std::uint32_t len = 0;
      len_r.get_u32(len);
      // A frame must at least carry opcode + req_id; an oversized or
      // runt length word means the stream cannot be resynchronized —
      // name the offense in a final kBadRequest (req_id 0: the frame
      // header never parsed, so there is no id to echo), then drop the
      // connection.  The reply still flushes: the tick's flush_writes
      // runs before reap_dead closes the fd.
      if (len < 9 || len > kMaxFramePayload) {
        s_proto_errors.fetch_add(1, std::memory_order_relaxed);
        respond_message(
            conn, Status::kBadRequest, 0,
            "unframeable length " + std::to_string(len) + " (frames carry " +
                std::to_string(kMaxFramePayload) +
                " payload bytes at most, 9 at least); closing connection");
        conn.dead = true;
        return;
      }
      if (avail < 4 + len) break;
      const std::string_view payload(conn.rbuf.data() + conn.roff + 4, len);
      conn.roff += 4 + len;
      dispatch(conn, payload);
      if (conn.gated) break;  // backpressure: stop consuming input
    }
    if (conn.roff == conn.rbuf.size()) {
      conn.rbuf.clear();
      conn.roff = 0;
    } else if (conn.roff > 64 * 1024) {
      conn.rbuf.erase(0, conn.roff);
      conn.roff = 0;
    }
  }

  void respond(Connection& conn, Status status, std::uint64_t req_id,
               std::string_view body = {}) {
    conn.wbuf += make_frame(static_cast<std::uint8_t>(status), req_id, body);
    s_responses.fetch_add(1, std::memory_order_relaxed);
    // A consumer that stops reading does not get to grow wbuf without
    // bound: past the cap the connection is dropped, not the server.
    if (opts.max_outbound_bytes != 0 &&
        conn.wbuf.size() - conn.woff > opts.max_outbound_bytes && !conn.dead) {
      s_slow_consumer.fetch_add(1, std::memory_order_relaxed);
      conn.dead = true;
    }
  }

  void respond_message(Connection& conn, Status status, std::uint64_t req_id,
                       std::string_view message) {
    std::string body;
    put_str16(body, message);
    respond(conn, status, req_id, body);
  }

  // ---- request dispatch -------------------------------------------

  void dispatch(Connection& conn, std::string_view payload) {
    s_requests.fetch_add(1, std::memory_order_relaxed);
    Reader r(payload);
    std::uint8_t op = 0;
    std::uint64_t req_id = 0;
    r.get_u8(op);       // parse_frames guaranteed 9 bytes,
    r.get_u64(req_id);  // so these cannot fail
    switch (static_cast<Op>(op)) {
      case Op::kOpen:
        return do_open(conn, req_id, r);
      case Op::kIncrement:
        return do_increment(conn, req_id, r);
      case Op::kCheck:
      case Op::kOnReach:
        return do_wait(conn, req_id, r, /*timed=*/false, payload);
      case Op::kCheckFor:
        return do_wait(conn, req_id, r, /*timed=*/true, payload);
      case Op::kPoison:
        return do_poison(conn, req_id, r);
      case Op::kStats:
        return do_stats(conn, req_id, r);
      case Op::kHello:
        return do_hello(conn, req_id, r);
      case Op::kResolve:
        return do_resolve(conn, req_id, r);
    }
    bad_request(conn, req_id, "unknown opcode " + std::to_string(op));
  }

  void bad_request(Connection& conn, std::uint64_t req_id,
                   std::string_view what) {
    s_proto_errors.fetch_add(1, std::memory_order_relaxed);
    respond_message(conn, Status::kBadRequest, req_id, what);
  }

  void do_open(Connection& conn, std::uint64_t req_id, Reader& r) {
    std::string_view name, spec;
    if (!r.get_str16(name) || !r.get_str16(spec) || name.empty()) {
      return bad_request(conn, req_id, "Open: want name+spec, non-empty name");
    }
    std::uint64_t id = id_of_entry(name);
    if (id == 0) {
      // Fresh create (reopen returns the same id, spec ignored —
      // names are the identity).
      if (opts.max_counters != 0 &&
          s_counters.load(std::memory_order_relaxed) >= opts.max_counters) {
        s_rejections.fetch_add(1, std::memory_order_relaxed);
        return respond_message(conn, Status::kOverloaded, req_id,
                               "counter limit reached");
      }
      Entry* created = find_or_create(name, spec);
      if (created == nullptr) {
        return bad_request(conn, req_id,
                           "Open: unparseable spec '" + std::string(spec) +
                               "'");
      }
      id = id_of_entry(name);
      journal_append(journal_open_body(id, name, created->spec));
    }
    Entry* entry = entry_of(id);
    std::string body;
    put_u64(body, id);
    put_u64(body, entry->counter->value_lower_bound());
    respond(conn, Status::kOk, req_id, body);
  }

  void do_hello(Connection& conn, std::uint64_t req_id, Reader& r) {
    std::uint64_t hi = 0, lo = 0;
    if (!r.get_u64(hi) || !r.get_u64(lo)) {
      return bad_request(conn, req_id, "Hello: want session_hi+session_lo");
    }
    conn.has_session = (hi | lo) != 0;
    conn.session_hi = hi;
    conn.session_lo = lo;
    std::uint64_t window = 0;
    if (conn.has_session) window = touch_session(hi, lo).window.window();
    std::string body;
    put_u64(body, epoch.load(std::memory_order_relaxed));
    put_u64(body, window);
    respond(conn, Status::kOk, req_id, body);
  }

  void do_resolve(Connection& conn, std::uint64_t req_id, Reader& r) {
    std::string_view name;
    if (!r.get_str16(name) || name.empty()) {
      return bad_request(conn, req_id, "Resolve: want non-empty name");
    }
    const std::uint64_t id = id_of_entry(name);
    if (id == 0) {
      return respond_message(conn, Status::kUnknownCounter, req_id,
                             "no counter named '" + std::string(name) + "'");
    }
    Entry* entry = entry_of(id);
    flush_entry(*entry);
    std::string body;
    put_u64(body, id);
    put_u64(body, entry->counter->value_lower_bound());
    respond(conn, Status::kOk, req_id, body);
  }

  void do_increment(Connection& conn, std::uint64_t req_id, Reader& r) {
    std::uint64_t id = 0, amount = 0;
    std::uint8_t flags = 0;
    if (!r.get_u64(id) || !r.get_u64(amount) || !r.get_u8(flags)) {
      return bad_request(conn, req_id, "Increment: want id+amount+flags");
    }
    const bool ack = (flags & kIncrementNoAck) == 0;
    std::uint64_t seq = 0;
    if ((flags & kIncrementHasSeq) != 0 && !r.get_u64(seq)) {
      return bad_request(conn, req_id,
                         "Increment: has-seq flag set but no trailing seq");
    }
    Entry* entry = entry_of(id);
    if (entry == nullptr) {
      if (ack) {
        respond_message(conn, Status::kUnknownCounter, req_id,
                        "no counter with id " + std::to_string(id));
      }
      return;
    }
    if (entry->counter->poisoned()) {
      // The engine absorbs post-poison increments as counted drops;
      // an acked client gets the typed error instead of a silent ok.
      // Checked before dedup on purpose: the seq is NOT recorded, and
      // a retried pre-poison increment that did land answers through
      // the seen() branch below — the frozen value already counts it.
      if (ack) {
        respond_message(conn, Status::kPoisoned, req_id,
                        "counter '" + entry->name + "' is poisoned");
      }
      return;
    }
    if (seq != 0 && conn.has_session) {
      Session& session = touch_session(conn.session_hi, conn.session_lo);
      if (session.window.seen(seq)) {
        // A retry of an increment that already landed: ack as if it
        // just succeeded — at-least-once delivery, exactly-once apply.
        s_dedup.fetch_add(1, std::memory_order_relaxed);
        if (ack) respond(conn, Status::kOk, req_id);
        return;
      }
      session.window.record(seq);
    }
    if (persist()) {
      journal_append(journal_increment_body(id, amount, conn.session_hi,
                                            conn.session_lo, seq));
    }
    // Per-tick batching: the BatchingIncrementer flushes itself every
    // `batch_size` units (the decorator's sub-batch logic); whatever
    // remains flushes at tick end (flush_dirty) or on the next read.
    entry->batcher->Increment(amount);
    s_batched.fetch_add(1, std::memory_order_relaxed);
    if (!entry->dirty) {
      entry->dirty = true;
      dirty.emplace_back((id - 1) % shards.size(), (id - 1) / shards.size());
    }
    if (ack) respond(conn, Status::kOk, req_id);
  }

  /// Read-your-writes: any operation that observes a counter's value
  /// flushes its batch first.
  void flush_entry(Entry& entry) {
    if (entry.batcher->pending() > 0) {
      entry.batcher->flush();
      s_flushes.fetch_add(1, std::memory_order_relaxed);
    }
    entry.dirty = false;
  }

  void do_wait(Connection& conn, std::uint64_t req_id, Reader& r, bool timed,
               std::string_view payload) {
    std::uint64_t id = 0, level = 0, timeout_ns = 0;
    if (!r.get_u64(id) || !r.get_u64(level) ||
        (timed && !r.get_u64(timeout_ns))) {
      return bad_request(conn, req_id, "wait: want id+level[+timeout_ns]");
    }
    Entry* entry = entry_of(id);
    if (entry == nullptr) {
      return respond_message(conn, Status::kUnknownCounter, req_id,
                             "no counter with id " + std::to_string(id));
    }
    flush_entry(*entry);
    // Fast path: already reached — answer inline, no registration.
    const counter_value_t value = entry->counter->value_lower_bound();
    if (value >= level) {
      std::string body;
      put_u64(body, value);
      return respond(conn, Status::kReached, req_id, body);
    }
    if (entry->counter->poisoned()) {
      return respond_message(
          conn, Status::kPoisoned, req_id,
          "counter '" + entry->name + "' poisoned below level");
    }
    if (timed && timeout_ns == 0) {
      return respond(conn, Status::kTimedOut, req_id);
    }

    // Admission control over parked waits: PR 5's policy triple mapped
    // onto connections (see server.hpp).
    if (opts.max_parked_waits != 0 &&
        shared->parked.load(std::memory_order_relaxed) >=
            opts.max_parked_waits) {
      switch (opts.overload_policy) {
        case OverloadPolicy::kThrow:
          s_rejections.fetch_add(1, std::memory_order_relaxed);
          return respond_message(
              conn, Status::kOverloaded, req_id,
              "wait admission: " + std::to_string(opts.max_parked_waits) +
                  " waits already parked");
        case OverloadPolicy::kSpinFallback: {
          // Degraded wait: no engine registration; the tick loop polls
          // the value.  Timed degraded waits still get a timer.
          s_rejections.fetch_add(1, std::memory_order_relaxed);
          auto reg = make_reg(conn, req_id, id, level);
          reg->degraded = true;
          degraded.push_back(reg);
          s_degraded.fetch_add(1, std::memory_order_relaxed);
          if (timed) arm_timer(reg, timeout_ns);
          return;
        }
        case OverloadPolicy::kBlockIncrementers:
          // Backpressure: defer this frame and stop reading the
          // connection; retry_gated() re-dispatches when capacity
          // frees.  The client's pipelined traffic stalls in the
          // socket buffer — its incrementers feel the overload.
          if (!conn.gated) {
            conn.gated = true;
            s_gated.fetch_add(1, std::memory_order_relaxed);
          }
          conn.gated_frames.emplace_back(payload);
          return;
      }
    }

    auto reg = make_reg(conn, req_id, id, level);
    shared->parked.fetch_add(1, std::memory_order_relaxed);
    if (timed) arm_timer(reg, timeout_ns);
    // Parked connection: the engine holds the registration; the fire
    // runs on the shared executor, posts a completion and pokes the
    // loop.  A settled (timed-out / disconnected) reg makes the fire
    // a no-op, and the lambdas touch only LoopShared (lifetime note
    // atop this file).
    entry->counter->OnReach(
        level,
        [sh = shared, reg] {
          if (!reg->claim()) return;
          sh->parked.fetch_sub(1, std::memory_order_relaxed);
          sh->enqueue({reg, false, {}});
        },
        [sh = shared, reg](std::exception_ptr ep) {
          if (!reg->claim()) return;
          sh->parked.fetch_sub(1, std::memory_order_relaxed);
          sh->enqueue({reg, true, exception_message(std::move(ep))});
        });
  }

  std::shared_ptr<WaitReg> make_reg(Connection& conn, std::uint64_t req_id,
                                    std::uint64_t id, counter_value_t level) {
    auto reg = std::make_shared<WaitReg>();
    reg->fd = conn.fd;
    reg->gen = conn.gen;
    reg->req_id = req_id;
    reg->counter_id = id;
    reg->level = level;
    conn.waits.push_back(reg);
    return reg;
  }

  void arm_timer(const std::shared_ptr<WaitReg>& reg,
                 std::uint64_t timeout_ns) {
    timers.push(Timer{std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(timeout_ns),
                      reg});
  }

  /// Gauge bookkeeping for a claim made on the loop thread.
  void on_loop_claim(const WaitReg& reg) {
    if (reg.degraded) {
      s_degraded.fetch_sub(1, std::memory_order_relaxed);
    } else {
      shared->parked.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void do_poison(Connection& conn, std::uint64_t req_id, Reader& r) {
    std::uint64_t id = 0;
    std::string_view reason;
    if (!r.get_u64(id) || !r.get_str16(reason)) {
      return bad_request(conn, req_id, "Poison: want id+reason");
    }
    Entry* entry = entry_of(id);
    if (entry == nullptr) {
      return respond_message(conn, Status::kUnknownCounter, req_id,
                             "no counter with id " + std::to_string(id));
    }
    flush_entry(*entry);  // increments before the freeze still count
    poison_entry(*entry, std::string(reason));
    if (persist()) journal_append(journal_poison_body(id, reason));
    respond(conn, Status::kOk, req_id);
  }

  void do_stats(Connection& conn, std::uint64_t req_id, Reader& r) {
    std::uint64_t id = 0;
    if (!r.get_u64(id)) return bad_request(conn, req_id, "Stats: want id");
    if (id == 0) {
      const ServerStats s = snapshot();
      return respond_pairs(conn, req_id,
                           {
                               {"connections_accepted", s.connections_accepted},
                               {"connections_open", s.connections_open},
                               {"counters_open", s.counters_open},
                               {"requests", s.requests},
                               {"responses", s.responses},
                               {"parked_waits", s.parked_waits},
                               {"degraded_polls", s.degraded_polls},
                               {"gated_connections", s.gated_connections},
                               {"overload_rejections", s.overload_rejections},
                               {"batched_increments", s.batched_increments},
                               {"flushes", s.flushes},
                               {"protocol_errors", s.protocol_errors},
                               {"bytes_in", s.bytes_in},
                               {"bytes_out", s.bytes_out},
                               {"epoch", s.epoch},
                               {"restored_counters", s.restored_counters},
                               {"snapshots_written", s.snapshots_written},
                               {"journal_records", s.journal_records},
                               {"journal_bytes", s.journal_bytes},
                               {"sessions_open", s.sessions_open},
                               {"dedup_hits", s.dedup_hits},
                               {"slow_consumer_disconnects",
                                s.slow_consumer_disconnects},
                               {"shutdown_replies", s.shutdown_replies},
                           });
    }
    Entry* entry = entry_of(id);
    if (entry == nullptr) {
      return respond_message(conn, Status::kUnknownCounter, req_id,
                             "no counter with id " + std::to_string(id));
    }
    flush_entry(*entry);
    const CounterStatsSnapshot snap = entry->counter->stats();
    respond_pairs(conn, req_id,
                  {
                      {"value", entry->counter->value_lower_bound()},
                      {"increments", snap.increments},
                      {"checks", snap.checks},
                      {"suspensions", snap.suspensions},
                      {"wakeups", snap.wakeups},
                      {"live_nodes", snap.live_nodes},
                      {"max_live_nodes", snap.max_live_nodes},
                      {"max_live_waiters", snap.max_live_waiters},
                      {"poisons", snap.poisons},
                      {"dropped_increments", snap.dropped_increments},
                      {"overload_rejections", snap.overload_rejections},
                      {"degraded_waits", snap.degraded_waits},
                      {"async_completions", snap.async_completions},
                      {"stripe_count", snap.stripe_count},
                      {"poisoned", entry->counter->poisoned() ? 1u : 0u},
                  });
  }

  void respond_pairs(
      Connection& conn, std::uint64_t req_id,
      const std::vector<std::pair<std::string_view, std::uint64_t>>& pairs) {
    std::string body;
    put_u32(body, static_cast<std::uint32_t>(pairs.size()));
    for (const auto& [key, value] : pairs) {
      put_str16(body, key);
      put_u64(body, value);
    }
    respond(conn, Status::kOk, req_id, body);
  }

  // ---- tick work --------------------------------------------------

  void drain_completions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lk(shared->cq_mutex);
      batch.swap(shared->cq);
    }
    for (Completion& c : batch) {
      auto it = conns.find(c.reg->fd);
      if (it == conns.end() || it->second.gen != c.reg->gen) continue;
      if (c.poisoned) {
        respond_message(it->second, Status::kPoisoned, c.reg->req_id,
                        c.message);
      } else {
        std::string body;
        Entry* entry = entry_of(c.reg->counter_id);
        put_u64(body, entry != nullptr ? entry->counter->value_lower_bound()
                                       : c.reg->level);
        respond(it->second, Status::kReached, c.reg->req_id, body);
      }
    }
  }

  /// Degraded (kSpinFallback) waits: probe the value once per tick.
  /// Mirrors the engine's degraded wait — no registration to leak, and
  /// poison/deadline stay live because every probe checks them.
  void poll_degraded() {
    if (degraded.empty()) return;
    std::size_t kept = 0;
    for (auto& reg : degraded) {
      if (reg->settled.load(std::memory_order_acquire)) {
        continue;  // a timer or the death sweep settled (and counted) it
      }
      Entry* entry = entry_of(reg->counter_id);
      auto it = conns.find(reg->fd);
      Connection* conn = (it != conns.end() && it->second.gen == reg->gen)
                             ? &it->second
                             : nullptr;
      if (conn == nullptr || entry == nullptr) {
        if (reg->claim()) on_loop_claim(*reg);
        continue;
      }
      flush_entry(*entry);
      const counter_value_t value = entry->counter->value_lower_bound();
      if (value >= reg->level) {
        if (reg->claim()) {
          on_loop_claim(*reg);
          std::string body;
          put_u64(body, value);
          respond(*conn, Status::kReached, reg->req_id, body);
        }
        continue;
      }
      if (entry->counter->poisoned()) {
        if (reg->claim()) {
          on_loop_claim(*reg);
          respond_message(*conn, Status::kPoisoned, reg->req_id,
                          "counter '" + entry->name + "' poisoned below level");
        }
        continue;
      }
      degraded[kept++] = std::move(reg);
    }
    degraded.resize(kept);
  }

  void expire_timers() {
    const auto now = std::chrono::steady_clock::now();
    while (!timers.empty() && timers.top().deadline <= now) {
      std::shared_ptr<WaitReg> reg = timers.top().reg;
      timers.pop();
      if (!reg->claim()) continue;
      on_loop_claim(*reg);
      auto it = conns.find(reg->fd);
      if (it != conns.end() && it->second.gen == reg->gen) {
        respond(it->second, Status::kTimedOut, reg->req_id);
      }
    }
  }

  /// kBlockIncrementers: when capacity frees, re-dispatch deferred
  /// frames and resume reading the gated connections.
  void retry_gated() {
    if (s_gated.load(std::memory_order_relaxed) == 0) return;
    for (auto& [fd, conn] : conns) {
      if (!conn.gated) continue;
      while (!conn.gated_frames.empty()) {
        if (opts.max_parked_waits != 0 &&
            shared->parked.load(std::memory_order_relaxed) >=
                opts.max_parked_waits) {
          break;  // still over capacity; stay gated
        }
        const std::string frame = std::move(conn.gated_frames.front());
        conn.gated_frames.pop_front();
        conn.gated = false;  // dispatch may re-gate (and re-defer)
        s_gated.fetch_sub(1, std::memory_order_relaxed);
        dispatch(conn, frame);
        if (conn.gated) break;
      }
      if (!conn.gated && conn.gated_frames.empty()) {
        // Input deferred while gated is still in rbuf; parse it now.
        parse_frames(conn);
      }
    }
  }

  void flush_dirty() {
    for (const auto& [shard, idx] : dirty) {
      Entry& entry = shards[shard].entries[idx];
      if (entry.dirty) flush_entry(entry);
    }
    dirty.clear();
  }

  void flush_writes() {
    for (auto& [fd, conn] : conns) {
      while (conn.woff < conn.wbuf.size()) {
        // MSG_NOSIGNAL: a client that vanished mid-response is an
        // EPIPE (conn.dead below), not a process-killing SIGPIPE.
        const ssize_t n = ::send(fd, conn.wbuf.data() + conn.woff,
                                 conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
        if (n > 0) {
          conn.woff += static_cast<std::size_t>(n);
          s_bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;  // signal landed mid-write
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        conn.dead = true;
        break;
      }
      if (conn.woff == conn.wbuf.size()) {
        conn.wbuf.clear();
        conn.woff = 0;
      } else if (conn.woff > 256 * 1024) {
        conn.wbuf.erase(0, conn.woff);
        conn.woff = 0;
      }
    }
  }

  /// The death sweep: a connection that disconnected while parked on
  /// OnReach must not leak its registrations.  Claiming each live reg
  /// tombstones it — the engine's eventual fire is a no-op — and the
  /// parked_waits gauge drops NOW, which is what the Stats op reports
  /// and the robustness test asserts.
  void reap_dead() {
    for (auto it = conns.begin(); it != conns.end();) {
      Connection& conn = it->second;
      if (!conn.dead) {
        ++it;
        continue;
      }
      for (const auto& reg : conn.waits) {
        if (reg->claim()) on_loop_claim(*reg);
      }
      if (conn.gated) s_gated.fetch_sub(1, std::memory_order_relaxed);
      ::close(conn.fd);
      s_conns.fetch_sub(1, std::memory_order_relaxed);
      it = conns.erase(it);
    }
  }

  ServerStats snapshot() const {
    ServerStats s;
    s.connections_accepted = s_accepted.load(std::memory_order_relaxed);
    s.connections_open = s_conns.load(std::memory_order_relaxed);
    s.counters_open = s_counters.load(std::memory_order_relaxed);
    s.requests = s_requests.load(std::memory_order_relaxed);
    s.responses = s_responses.load(std::memory_order_relaxed);
    s.parked_waits = shared->parked.load(std::memory_order_relaxed);
    s.degraded_polls = s_degraded.load(std::memory_order_relaxed);
    s.gated_connections = s_gated.load(std::memory_order_relaxed);
    s.overload_rejections = s_rejections.load(std::memory_order_relaxed);
    s.batched_increments = s_batched.load(std::memory_order_relaxed);
    s.flushes = s_flushes.load(std::memory_order_relaxed);
    s.protocol_errors = s_proto_errors.load(std::memory_order_relaxed);
    s.bytes_in = s_bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = s_bytes_out.load(std::memory_order_relaxed);
    s.epoch = epoch.load(std::memory_order_relaxed);
    s.restored_counters = s_restored.load(std::memory_order_relaxed);
    s.snapshots_written = s_snapshots.load(std::memory_order_relaxed);
    s.journal_records = s_journal_records.load(std::memory_order_relaxed);
    s.journal_bytes = s_journal_bytes.load(std::memory_order_relaxed);
    s.sessions_open = s_sessions.load(std::memory_order_relaxed);
    s.dedup_hits = s_dedup.load(std::memory_order_relaxed);
    s.slow_consumer_disconnects =
        s_slow_consumer.load(std::memory_order_relaxed);
    s.shutdown_replies = s_shutdown_replies.load(std::memory_order_relaxed);
    return s;
  }
};

CounterServer::CounterServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

CounterServer::~CounterServer() = default;

void CounterServer::Start() { impl_->start(); }

void CounterServer::Stop() { impl_->stop(); }

void CounterServer::Drain() {
  // NOT stop(): stop's `stopping` flag would end the loop before the
  // tick reaches the drain check.  Request the drain, wake the loop,
  // join it (the drain itself sets `stopping` when it finishes), then
  // run stop() for the fd cleanup.
  impl_->drain_requested.store(true, std::memory_order_relaxed);
  impl_->shared->poke();
  if (impl_->loop.joinable()) impl_->loop.join();
  impl_->stop();
}

bool CounterServer::drained() const noexcept {
  return impl_->drained.load(std::memory_order_acquire);
}

std::uint64_t CounterServer::epoch() const noexcept {
  return impl_->epoch.load(std::memory_order_relaxed);
}

std::uint16_t CounterServer::tcp_port() const noexcept {
  return impl_->bound_tcp_port;
}

ServerStats CounterServer::stats() const { return impl_->snapshot(); }

}  // namespace monotonic::server
