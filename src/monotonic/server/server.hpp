// server.hpp — the counter-as-a-service shard server.
//
// The engine synchronizes threads in one process; the ROADMAP's
// production story is millions of *users*.  This server is the bridge:
// one event-loop thread multiplexes any number of client connections
// (UNIX-domain socket first, optional loopback TCP) over N engine
// shards, each logical counter a named `make_counter` instance picked
// by name hash — so "millions of named counters" costs millions of
// map entries, not millions of threads, and a hot counter still gets
// the striped value plane and sharded wait index underneath.
//
// The three engine mechanisms this PR-stack built are exactly the
// three a server needs, and each is reused rather than reinvented:
//
//   * parked waits ride the completion plane: a blocking Check parks a
//     CONNECTION as an OnReach registration firing on the shared
//     ThreadPoolExecutor (injected into every counter via
//     make_counter(spec, executor)), which posts a completion record
//     back to the event loop through the wakeup pipe — no server
//     thread ever blocks on a counter;
//   * write-side batching rides BatchingIncrementer: increments
//     accumulate per counter per event-loop tick (sub-batches flush
//     themselves at batch_size, the remainder flushes at tick end and
//     before any read of the same counter, preserving read-your-writes);
//   * admission control rides OverloadPolicy: when parked waits exceed
//     max_parked_waits the policy decides — kThrow answers
//     kOverloaded (typed client-side as CounterOverloadedError),
//     kSpinFallback demotes the wait to a server-side poll list probed
//     each tick (no engine registration, mirroring the engine's
//     degraded wait), kBlockIncrementers stops reading the offending
//     connection until capacity frees (backpressure the client's own
//     pipelined increments feel through the socket buffer).
//
// Poison propagates end-to-end: a producer's Poison reaches parked
// connections through OnReach's on_error channel and is answered as a
// typed kPoisoned frame carrying the reason.
//
// A connection that dies while parked does not leak: its wait
// registrations are tombstoned (an atomic claim raced against the
// completion firing), the parked_waits gauge drops immediately, and a
// late engine fire is a no-op against the tombstone — observable via
// the Stats op ("parked_waits"), which the robustness test pins.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "monotonic/core/wait_list.hpp"  // OverloadPolicy
#include "monotonic/support/config.hpp"

namespace monotonic::server {

struct ServerOptions {
  /// Filesystem path for the UNIX-domain listener ("" = no UDS).
  /// Unlinked on bind and again on shutdown.
  std::string uds_path;
  /// Loopback TCP listener port (0 = no TCP).  Pass a port of your
  /// choice or leave 0 and use UDS; tcp_port() reports the bound port
  /// when you pass 0 but set `tcp_any_port`.
  std::uint16_t tcp_port = 0;
  /// Bind TCP on an ephemeral port even when tcp_port == 0.
  bool tcp_any_port = false;
  /// Engine shards: logical counters are distributed by name hash.
  std::size_t shards = 4;
  /// Spec for counters opened with an empty spec string.
  std::string default_spec = "pooled:64+hybrid";
  /// Workers of the one completion pool shared by every counter.
  std::size_t executor_threads = 2;
  /// Write-side batching: sub-batch size per counter per tick (1
  /// disables batching — every increment hits the engine directly).
  counter_value_t batch_size = 64;
  /// Admission control for parked waits across all connections
  /// (0 = unlimited).
  std::size_t max_parked_waits = 0;
  /// What to do with a wait that admission turns away; see the header
  /// comment for the wire semantics of each policy.
  OverloadPolicy overload_policy = OverloadPolicy::kThrow;
  /// Cap on open logical counters (0 = unlimited); excess Opens are
  /// answered kOverloaded.
  std::size_t max_counters = 0;

  // ---- fault tolerance (docs/server.md, "Fault tolerance") --------

  /// Path of the durable state snapshot ("" = in-memory only, the
  /// pre-fault-tolerance behavior).  The journal lives next to it at
  /// `state_file + ".journal"`.  On Start the server restores every
  /// named counter from snapshot + journal at an equal-or-greater
  /// value under a bumped epoch; on Drain (and periodically, see
  /// snapshot_journal_bytes) it writes a fresh snapshot.
  std::string state_file;
  /// fsync the journal once per event-loop tick, BEFORE any of that
  /// tick's responses are written (group commit): an acked increment
  /// is on disk before the ack.  Turning this off trades the "acked
  /// implies durable" guarantee for throughput — a crash may then
  /// lose acked work back to the last sync.
  bool journal_fsync = true;
  /// Rewrite the snapshot (and truncate the journal) once the journal
  /// grows past this many bytes.  Bounds replay time after a crash.
  std::size_t snapshot_journal_bytes = 1 << 20;
  /// Per-session increment dedup window (rounded up to a multiple of
  /// 64).  A retried (session, seq) inside the window is applied at
  /// most once; seqs older than the window are conservatively treated
  /// as already applied.
  std::uint64_t dedup_window = 4096;
  /// Cap on tracked client sessions; the least-recently-used session
  /// is evicted past it (its retries then dedup as "too old: seen").
  std::size_t max_sessions = 1024;
  /// Disconnect a connection whose unsent response backlog exceeds
  /// this many bytes instead of buffering without bound (counted in
  /// stats().slow_consumer_disconnects).  0 = unlimited.
  std::size_t max_outbound_bytes = 8 << 20;
  /// Install a SIGTERM handler in Start() that triggers the same
  /// graceful drain as Drain(): parked waits answered kShuttingDown,
  /// listeners closed, snapshot written.  Process-wide (one draining
  /// server per process); off by default.
  bool drain_on_sigterm = false;
};

/// Server-wide gauges and counters, surfaced by the Stats op with
/// counter_id 0 (each field a self-describing key/value pair on the
/// wire) and by stats() in-process.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t counters_open = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t parked_waits = 0;       ///< live parked Check/OnReach waits
  std::uint64_t degraded_polls = 0;     ///< waits demoted to the tick poll list
  std::uint64_t gated_connections = 0;  ///< connections under backpressure
  std::uint64_t overload_rejections = 0;
  std::uint64_t batched_increments = 0; ///< increments absorbed into a batch
  std::uint64_t flushes = 0;            ///< batcher flushes (tick + read-side)
  std::uint64_t protocol_errors = 0;    ///< bad frames answered or dropped
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t epoch = 0;              ///< bumped on every restore
  std::uint64_t restored_counters = 0;  ///< counters revived at Start
  std::uint64_t snapshots_written = 0;
  std::uint64_t journal_records = 0;
  std::uint64_t journal_bytes = 0;      ///< since the last snapshot
  std::uint64_t sessions_open = 0;      ///< tracked Hello sessions
  std::uint64_t dedup_hits = 0;         ///< retried increments absorbed
  std::uint64_t slow_consumer_disconnects = 0;
  std::uint64_t shutdown_replies = 0;   ///< waits answered kShuttingDown
};

/// The event-loop server.  Construct, Start(), connect clients
/// (client.hpp), Stop() — Stop drains nothing: parked waits die with
/// the process, like parked threads would.
class CounterServer {
 public:
  explicit CounterServer(ServerOptions options);
  ~CounterServer();

  CounterServer(const CounterServer&) = delete;
  CounterServer& operator=(const CounterServer&) = delete;

  /// Binds the listeners and spawns the event-loop thread.  Throws
  /// std::system_error when a listener cannot be bound.
  void Start();

  /// Wakes the loop, joins it, closes every fd.  Idempotent.  Abrupt:
  /// parked waits die unanswered and no snapshot is written (the
  /// journal still holds everything acked) — the crash-shaped stop.
  void Stop();

  /// Graceful drain, the SIGTERM path: refuses new connections,
  /// answers every parked/degraded wait kShuttingDown (typed — a
  /// retry-aware client backs off instead of storming), flushes
  /// batches, writes a final snapshot, best-effort-flushes response
  /// buffers, then stops.  Idempotent; blocks until the loop exits.
  void Drain();

  /// True once a drain (Drain() or SIGTERM) has completed — the hook
  /// a forked server process uses to exit cleanly after SIGTERM.
  bool drained() const noexcept;

  /// Current server epoch: 1 on a fresh start, +1 per restore.  The
  /// Hello op reports this to clients.
  std::uint64_t epoch() const noexcept;

  /// Actual TCP port (after Start with tcp_any_port), 0 when no TCP.
  std::uint16_t tcp_port() const noexcept;

  /// In-process snapshot of the server-wide stats.
  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace monotonic::server
