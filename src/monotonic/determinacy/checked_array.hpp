// checked_array.hpp — an array of shared variables under the checker.
//
// The §4/§5 programs share *arrays* (path matrices, cell states, item
// buffers) with per-element dependency structure; checking them as one
// Checked<vector> would flag every disjoint-element access pair.
// CheckedArray tracks each element independently — exactly the
// granularity at which §6's discipline is stated ("each pair of
// operations on a shared variable") — so the paper's own programs can
// be certified at small sizes (see determinacy tests).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "monotonic/determinacy/checked.hpp"
#include "monotonic/determinacy/recorder.hpp"
#include "monotonic/support/assert.hpp"

namespace monotonic {

/// Fixed-size array of independently-checked elements.
template <typename T>
class CheckedArray {
 public:
  CheckedArray(RaceDetector& detector, std::string name, std::size_t size,
               T initial = T{})
      : name_(std::move(name)) {
    cells_.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      cells_.push_back(std::make_unique<Checked<T>>(
          detector, name_ + "[" + std::to_string(i) + "]", initial));
    }
  }
  CheckedArray(const CheckedArray&) = delete;
  CheckedArray& operator=(const CheckedArray&) = delete;

  std::size_t size() const noexcept { return cells_.size(); }

  /// Recorded element read.
  T read(std::size_t i) const {
    MC_REQUIRE(i < cells_.size(), "index out of range");
    return cells_[i]->read();
  }

  /// Recorded element write.
  void write(std::size_t i, T value) {
    MC_REQUIRE(i < cells_.size(), "index out of range");
    cells_[i]->write(std::move(value));
  }

  /// Raw element without recording; for post-join assertions.
  const T& unchecked(std::size_t i) const {
    MC_REQUIRE(i < cells_.size(), "index out of range");
    return cells_[i]->unchecked();
  }

  /// Raw copy of the whole array without recording.
  std::vector<T> unchecked_snapshot() const {
    std::vector<T> out;
    out.reserve(cells_.size());
    for (const auto& cell : cells_) out.push_back(cell->unchecked());
    return out;
  }

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Checked<T>>> cells_;
};

}  // namespace monotonic
