#include "monotonic/determinacy/report.hpp"

namespace monotonic {

const char* to_string(RaceReport::Kind kind) {
  switch (kind) {
    case RaceReport::Kind::kWriteWrite:
      return "write-write";
    case RaceReport::Kind::kReadWrite:
      return "read-write";
    case RaceReport::Kind::kWriteRead:
      return "write-read";
  }
  return "?";
}

std::string RaceReport::to_string() const {
  return std::string("race on '") + variable + "': " +
         ::monotonic::to_string(kind) + " between thread #" +
         std::to_string(first_thread) + " and thread #" +
         std::to_string(second_thread) +
         " (no transitive chain of counter operations separates them)";
}

}  // namespace monotonic
