// checked.hpp — shared variables under the determinacy checker.
//
// Checked<T> wraps a shared variable and records every read and write
// against the owning RaceDetector's happens-before order.  A pair of
// operations on the same variable, at least one of them a write, whose
// clocks are unordered is exactly a violation of §6's discipline
// ("each pair of operations on a shared variable must be separated by
// a transitive chain of counter operations") and produces a RaceReport.
//
// The wrapper is a verification harness, not a fast path: every access
// takes the detector's global lock.  Production code uses plain
// variables once the checked run is clean — §6's theorem is precisely
// that one clean execution certifies all executions (for counter-only
// synchronization).
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "monotonic/determinacy/recorder.hpp"
#include "monotonic/determinacy/report.hpp"
#include "monotonic/determinacy/vector_clock.hpp"

namespace monotonic {

/// A shared variable whose accesses are checked for §6 discipline.
template <typename T>
class Checked {
 public:
  Checked(RaceDetector& detector, std::string name, T initial = T{})
      : detector_(detector), name_(std::move(name)), value_(std::move(initial)) {}
  Checked(const Checked&) = delete;
  Checked& operator=(const Checked&) = delete;

  /// Recorded read.  Returns a copy of the current value.
  T read() const {
    std::vector<RaceReport> races;
    T copy;
    {
      auto locked = detector_.lock_thread();
      // write-read race: the last write is not ordered before this read.
      if (has_write_ && !write_clock_.leq(locked.clock) &&
          write_thread_ != locked.index) {
        races.push_back(RaceReport{name_, RaceReport::Kind::kWriteRead,
                                   write_thread_, locked.index});
      }
      reads_[locked.index] = locked.clock;
      copy = value_;
    }
    // record_race re-acquires the detector lock; it must run after the
    // Locked handle is released.
    for (auto& r : races) detector_.record_race(std::move(r));
    return copy;
  }

  /// Recorded write.
  void write(T value) {
    std::vector<RaceReport> races;
    {
      auto locked = detector_.lock_thread();
      if (has_write_ && !write_clock_.leq(locked.clock) &&
          write_thread_ != locked.index) {
        races.push_back(RaceReport{name_, RaceReport::Kind::kWriteWrite,
                                   write_thread_, locked.index});
      }
      for (const auto& [tid, clock] : reads_) {
        if (tid != locked.index && !clock.leq(locked.clock)) {
          races.push_back(RaceReport{name_, RaceReport::Kind::kReadWrite, tid,
                                     locked.index});
        }
      }
      reads_.clear();
      has_write_ = true;
      write_thread_ = locked.index;
      write_clock_ = locked.clock;
      value_ = std::move(value);
    }
    for (auto& r : races) detector_.record_race(std::move(r));
  }

  /// Recorded read-modify-write: write(fn(current)).
  template <typename Fn>
  void update(Fn&& fn) {
    write(fn(read()));
  }

  /// Raw value without recording an access.  For end-of-run assertions
  /// after all threads have joined.
  const T& unchecked() const noexcept { return value_; }

  const std::string& name() const noexcept { return name_; }

 private:
  RaceDetector& detector_;
  const std::string name_;

  // All fields below are guarded by the detector's lock (lock_thread()).
  mutable std::unordered_map<std::size_t, VectorClock> reads_;
  VectorClock write_clock_;
  std::size_t write_thread_ = 0;
  bool has_write_ = false;
  T value_;
};

}  // namespace monotonic
