// tracked_counter.hpp — a Counter that feeds the determinacy checker.
//
// Wraps any CounterLike implementation and translates its operations
// into happens-before edges (recorder.hpp):
//
//   Increment — *release*: the thread's clock is merged into the
//               counter's clock history before the value rises, so any
//               Check enabled by this increment observes it.
//   Check(L)  — *acquire*: after the underlying Check returns, the
//               thread merges the cumulative clock of the shortest
//               prefix of increments (in the counter's serialization
//               order) whose sum reaches L — exactly the increments
//               that enabled this check.  Check(0) merges nothing.
//
// Merging the enabling prefix rather than everything-so-far matters:
// with the whole-history merge, a Check(0) that happened to run after
// an unrelated Increment would appear ordered after it, and the §6
// example program 3 (two branches both Check(0)) would not be flagged.
//
// The clock history grows by one entry per Increment.  TrackedCounter
// is a verification harness (like Checked<T>), not a production path;
// §6's theorem is that one clean checked run certifies all runs.
#pragma once

#include <mutex>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/determinacy/recorder.hpp"
#include "monotonic/determinacy/vector_clock.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Checker-instrumented counter.  Semantics are identical to the
/// wrapped implementation C; only clock bookkeeping is added.
template <CounterLike C = Counter>
class TrackedCounter {
 public:
  explicit TrackedCounter(RaceDetector& detector) : detector_(detector) {}
  TrackedCounter(const TrackedCounter&) = delete;
  TrackedCounter& operator=(const TrackedCounter&) = delete;

  void Increment(counter_value_t amount = 1) {
    {
      std::scoped_lock lock(m_);
      record_release(amount);
    }
    impl_.Increment(amount);
  }

  void Check(counter_value_t level) {
    impl_.Check(level);
    if (level == 0) {
      // Enabled by construction; no increment is acquired, but the
      // check is still a thread event.
      detector_.acquire(VectorClock{});
      return;
    }
    VectorClock enabling;
    {
      std::scoped_lock lock(m_);
      // First history entry whose cumulative value reaches `level`.
      // It exists: impl_.Check(level) returned, so the increments have
      // been serialized into history_ (release precedes the value
      // becoming visible).
      for (const auto& entry : history_) {
        if (entry.cumulative_value >= level) {
          enabling = entry.cumulative_clock;
          break;
        }
      }
    }
    detector_.acquire(enabling);
  }

  C& impl() noexcept { return impl_; }
  RaceDetector& detector() noexcept { return detector_; }

 private:
  struct HistoryEntry {
    counter_value_t cumulative_value;
    VectorClock cumulative_clock;
  };

  // Requires m_.  Appends the releasing increment to the history.
  void record_release(counter_value_t amount) {
    VectorClock merged =
        history_.empty() ? VectorClock{} : history_.back().cumulative_clock;
    detector_.release(merged);
    const counter_value_t base =
        history_.empty() ? 0 : history_.back().cumulative_value;
    history_.push_back(HistoryEntry{base + amount, std::move(merged)});
  }

  RaceDetector& detector_;
  C impl_;
  std::mutex m_;  // guards history_ against concurrent Increments
  std::vector<HistoryEntry> history_;
};

}  // namespace monotonic
