// vector_clock.hpp — vector clocks for the determinacy checker.
//
// §6 sketches the discipline: "each pair of operations on a shared
// variable must be separated by a transitive chain of counter
// operations", and if that holds in one execution it holds in all of
// them.  The checker (recorder.hpp) verifies the discipline dynamically
// by maintaining a happens-before partial order; this is its clock type.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace monotonic {

/// Grow-on-demand vector clock.  Component i counts events of the
/// thread with checker-assigned index i; missing components are zero.
class VectorClock {
 public:
  VectorClock() = default;

  std::uint64_t component(std::size_t i) const noexcept {
    return i < c_.size() ? c_[i] : 0;
  }

  /// Advances this thread's own component (one event executed).
  void tick(std::size_t i) {
    ensure(i + 1);
    ++c_[i];
  }

  void set_component(std::size_t i, std::uint64_t v) {
    ensure(i + 1);
    c_[i] = v;
  }

  /// Pointwise maximum (joins knowledge from another clock).
  void merge(const VectorClock& other) {
    ensure(other.c_.size());
    for (std::size_t i = 0; i < other.c_.size(); ++i) {
      c_[i] = std::max(c_[i], other.c_[i]);
    }
  }

  /// True iff this <= other pointwise (this happens-before-or-equals
  /// other when `this` is an event snapshot and `other` a thread clock).
  bool leq(const VectorClock& other) const noexcept {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > other.component(i)) return false;
    }
    return true;
  }

  std::size_t size() const noexcept { return c_.size(); }
  std::string to_string() const;

 private:
  void ensure(std::size_t n) {
    if (c_.size() < n) c_.resize(n, 0);
  }
  std::vector<std::uint64_t> c_;
};

}  // namespace monotonic
