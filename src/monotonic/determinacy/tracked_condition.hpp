// tracked_condition.hpp — Condition (one-shot event) under the checker.
//
// A Condition is a counter restricted to {0, 1} (event.hpp's header
// note), so its checker semantics follow directly: Set is a release at
// level 1, a passed Check is an acquire of the setting thread's clock.
// With this, the paper's §4.4 condition-array program can be certified
// alongside the §4.5 counter program (determinacy tests).
//
// Idempotent Set: only the FIRST Set's clock is published — the event
// was enabled by that one; later Sets are no-ops (matching Condition's
// own semantics and the enabling-prefix rule in tracked_counter.hpp).
#pragma once

#include <mutex>

#include "monotonic/determinacy/recorder.hpp"
#include "monotonic/determinacy/vector_clock.hpp"
#include "monotonic/sync/event.hpp"

namespace monotonic {

/// Checker-instrumented one-shot condition.
class TrackedCondition {
 public:
  explicit TrackedCondition(RaceDetector& detector) : detector_(detector) {}
  TrackedCondition(const TrackedCondition&) = delete;
  TrackedCondition& operator=(const TrackedCondition&) = delete;

  void Set() {
    {
      std::scoped_lock lock(m_);
      if (!clock_published_) {
        detector_.release(clock_);
        clock_published_ = true;
      }
    }
    impl_.Set();
  }

  void Check() {
    impl_.Check();
    std::scoped_lock lock(m_);
    detector_.acquire(clock_);
  }

  Condition& impl() noexcept { return impl_; }

 private:
  RaceDetector& detector_;
  Condition impl_;
  std::mutex m_;
  VectorClock clock_;
  bool clock_published_ = false;
};

}  // namespace monotonic
