// recorder.hpp — the dynamic determinacy checker.
//
// Operationalises §6: a program whose shared variables are guarded
// against concurrent operations and whose only synchronization is
// counter operations is deterministic, and (by Thornley's thesis [21])
// the guard condition — every conflicting pair separated by a
// transitive chain of counter operations — need only be verified on
// *one* execution to hold on all.  RaceDetector verifies it on this
// execution:
//
//   * each participating thread gets a checker index and a vector clock;
//   * TrackedCounter turns Increment into a clock *release* into the
//     counter and a passed Check into an *acquire* from it;
//   * Checked<T> (checked.hpp) records variable accesses and flags any
//     conflicting pair whose clocks are unordered.
//
// Soundness note (DESIGN.md §6.4): the acquire merges everything the
// counter has accumulated at pass time, which can include increments
// that were not strictly necessary to reach the level.  That adds
// edges, so the checker can miss races that only manifest under other
// schedules of programs *outside* the counter-only discipline; within
// the discipline §6's theorem makes the observed order canonical.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "monotonic/determinacy/report.hpp"
#include "monotonic/determinacy/vector_clock.hpp"

namespace monotonic {

/// Collects happens-before state and race reports for one checked
/// program run.  All methods are thread-safe; the detector serializes
/// internally (it is a verification tool, not a fast path).
class RaceDetector {
 public:
  RaceDetector() = default;
  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  /// Index of the calling thread, assigned on first use.
  std::size_t thread_index();

  /// Snapshot of the calling thread's clock (registering it if needed).
  VectorClock thread_clock();

  // --- hooks used by TrackedCounter ------------------------------------
  /// Thread releases its clock into sync object `sync_clock`.
  void release(VectorClock& sync_clock);
  /// Thread acquires (merges in) `sync_clock`.
  void acquire(const VectorClock& sync_clock);

  // --- hooks used by Checked<T> ----------------------------------------
  /// Per-variable access metadata lives in the variable; the detector
  /// supplies clocks and records reports.
  void record_race(RaceReport report);

  std::vector<RaceReport> reports() const;
  std::size_t race_count() const;

  /// Reports deduplicated by (variable, kind, thread pair): one racy
  /// access pattern in a loop produces one line, not thousands.
  std::vector<RaceReport> unique_reports() const;

  std::size_t known_threads() const;

  /// Clears reports and all clocks; for reuse between test cases.
  /// Must not run concurrently with checked program activity.
  void reset();

  /// Internal: locked access to the calling thread's clock entry.
  /// Exposed for Checked<T>, which needs read-modify-write under the
  /// detector lock.
  class Locked {
   public:
    VectorClock& clock;
    std::size_t index;

   private:
    friend class RaceDetector;
    Locked(VectorClock& c, std::size_t i, std::unique_lock<std::mutex> l)
        : clock(c), index(i), lock_(std::move(l)) {}
    std::unique_lock<std::mutex> lock_;
  };
  Locked lock_thread();

 private:
  std::size_t thread_index_locked();

  static std::uint64_t next_epoch() noexcept;

  mutable std::mutex m_;
  std::vector<VectorClock> clocks_;   // indexed by thread index
  std::vector<RaceReport> reports_;
  // Process-unique epoch: bumped by reset() to invalidate per-thread
  // cached indices, and seeded uniquely per detector so a detector
  // constructed at a reused address cannot match stale cache entries.
  std::uint64_t epoch_ = next_epoch();
};

}  // namespace monotonic
