// report.hpp — race reports produced by the determinacy checker.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace monotonic {

/// One detected violation of the §6 shared-variable discipline: two
/// operations on the same variable, at least one a write, not separated
/// by a transitive chain of counter operations.
struct RaceReport {
  enum class Kind { kWriteWrite, kReadWrite, kWriteRead };

  std::string variable;     ///< name given at Checked<T> construction
  Kind kind;
  std::size_t first_thread;   ///< checker-assigned index of earlier op
  std::size_t second_thread;  ///< checker-assigned index of later op

  std::string to_string() const;
};

const char* to_string(RaceReport::Kind kind);

}  // namespace monotonic
