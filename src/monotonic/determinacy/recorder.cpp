#include "monotonic/determinacy/recorder.hpp"

#include <atomic>
#include <set>
#include <tuple>
#include <unordered_map>

namespace monotonic {

namespace {

// Per-OS-thread cache of (detector, epoch) -> index assignments.  The
// epoch lets reset() invalidate stale indices without touching other
// threads' storage.
struct CachedIndex {
  std::uint64_t epoch;
  std::size_t index;
};

std::unordered_map<const RaceDetector*, CachedIndex>& cache() {
  static thread_local std::unordered_map<const RaceDetector*, CachedIndex> c;
  return c;
}

}  // namespace

std::uint64_t RaceDetector::next_epoch() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::size_t RaceDetector::thread_index_locked() {
  auto& c = cache();
  auto it = c.find(this);
  if (it != c.end() && it->second.epoch == epoch_ &&
      it->second.index < clocks_.size()) {
    return it->second.index;
  }
  const std::size_t index = clocks_.size();
  clocks_.emplace_back();
  clocks_.back().tick(index);  // every thread starts with one own event
  c[this] = CachedIndex{epoch_, index};
  return index;
}

std::size_t RaceDetector::thread_index() {
  std::unique_lock lock(m_);
  return thread_index_locked();
}

VectorClock RaceDetector::thread_clock() {
  std::unique_lock lock(m_);
  return clocks_[thread_index_locked()];
}

void RaceDetector::release(VectorClock& sync_clock) {
  std::unique_lock lock(m_);
  const std::size_t i = thread_index_locked();
  sync_clock.merge(clocks_[i]);
  clocks_[i].tick(i);
}

void RaceDetector::acquire(const VectorClock& sync_clock) {
  std::unique_lock lock(m_);
  const std::size_t i = thread_index_locked();
  clocks_[i].merge(sync_clock);
  clocks_[i].tick(i);
}

void RaceDetector::record_race(RaceReport report) {
  std::unique_lock lock(m_);
  reports_.push_back(std::move(report));
}

std::vector<RaceReport> RaceDetector::reports() const {
  std::unique_lock lock(m_);
  return reports_;
}

std::size_t RaceDetector::race_count() const {
  std::unique_lock lock(m_);
  return reports_.size();
}

std::vector<RaceReport> RaceDetector::unique_reports() const {
  std::unique_lock lock(m_);
  std::vector<RaceReport> unique;
  std::set<std::tuple<std::string, int, std::size_t, std::size_t>> seen;
  for (const auto& r : reports_) {
    const auto key = std::make_tuple(r.variable, static_cast<int>(r.kind),
                                     r.first_thread, r.second_thread);
    if (seen.insert(key).second) unique.push_back(r);
  }
  return unique;
}

std::size_t RaceDetector::known_threads() const {
  std::unique_lock lock(m_);
  return clocks_.size();
}

void RaceDetector::reset() {
  std::unique_lock lock(m_);
  clocks_.clear();
  reports_.clear();
  epoch_ = next_epoch();
}

RaceDetector::Locked RaceDetector::lock_thread() {
  std::unique_lock lock(m_);
  const std::size_t i = thread_index_locked();
  return Locked(clocks_[i], i, std::move(lock));
}

}  // namespace monotonic
