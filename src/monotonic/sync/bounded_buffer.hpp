// bounded_buffer.hpp — multi-producer multi-consumer bounded buffer.
//
// §5.3 contrasts the single-writer multiple-reader *broadcast* pattern
// (each reader sees every item; counters fit) with the bounded-buffer
// problem (each item consumed once; semaphores fit, Morenoff & McLean
// [16]).  This is the semaphore solution, used by tests and the
// broadcast bench to demonstrate that the two patterns genuinely differ.
#pragma once

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "monotonic/support/assert.hpp"
#include "monotonic/sync/semaphore.hpp"

namespace monotonic {

/// Classic ring-buffer bounded queue guarded by two semaphores and a
/// lock.  push blocks when full; pop blocks when empty.  Each pushed
/// item is popped by exactly one consumer.
template <typename T>
class BoundedBuffer {
 public:
  explicit BoundedBuffer(std::size_t capacity)
      : capacity_(capacity),
        ring_(capacity),
        free_slots_(capacity),
        full_slots_(0) {
    MC_REQUIRE(capacity >= 1, "capacity must be positive");
  }
  BoundedBuffer(const BoundedBuffer&) = delete;
  BoundedBuffer& operator=(const BoundedBuffer&) = delete;

  void push(T value) {
    free_slots_.acquire();
    {
      std::scoped_lock lock(m_);
      ring_[head_] = std::move(value);
      head_ = (head_ + 1) % capacity_;
    }
    full_slots_.release();
  }

  T pop() {
    full_slots_.acquire();
    T value;
    {
      std::scoped_lock lock(m_);
      value = std::move(ring_[tail_]);
      tail_ = (tail_ + 1) % capacity_;
    }
    free_slots_.release();
    return value;
  }

  bool try_push(T value) {
    if (!free_slots_.try_acquire()) return false;
    {
      std::scoped_lock lock(m_);
      ring_[head_] = std::move(value);
      head_ = (head_ + 1) % capacity_;
    }
    full_slots_.release();
    return true;
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  std::mutex m_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  Semaphore free_slots_;
  Semaphore full_slots_;
};

}  // namespace monotonic
