#include "monotonic/sync/semaphore.hpp"

namespace monotonic {

void Semaphore::acquire(std::uint64_t n) {
  std::unique_lock lock(m_);
#if MONOTONIC_ENABLE_STATS
  if (permits_ < n) ++suspensions_;
#endif
  cv_.wait(lock, [&] { return permits_ >= n; });
  permits_ -= n;
}

bool Semaphore::try_acquire(std::uint64_t n) {
  std::scoped_lock lock(m_);
  if (permits_ < n) return false;
  permits_ -= n;
  return true;
}

void Semaphore::release(std::uint64_t n) {
  {
    std::scoped_lock lock(m_);
    permits_ += n;
  }
  // notify_all rather than notify_one: an n-ary waiter may be eligible
  // even when the front waiter is not, and wakeup storms are part of
  // what the queue-census experiment measures.
  cv_.notify_all();
}

std::uint64_t Semaphore::debug_permits() const {
  std::scoped_lock lock(m_);
  return permits_;
}

std::uint64_t Semaphore::stat_suspensions() const {
#if MONOTONIC_ENABLE_STATS
  std::scoped_lock lock(m_);
  return suspensions_;
#else
  return 0;
#endif
}

}  // namespace monotonic
