// latch.hpp — single-use countdown latch.
//
// A latch is the *dual* of a monotonic counter: it counts down to zero
// and releases everyone, whereas a Counter counts up and releases level
// by level.  Included as a baseline (cf. java.util.concurrent
// CountDownLatch, C++20 std::latch) for the related-work comparison in
// E9: one suspension queue, one release point.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "monotonic/support/assert.hpp"

namespace monotonic {

/// Single-use latch.  count_down() may be called from any thread;
/// wait() blocks until the internal count reaches zero.
class CountdownLatch {
 public:
  explicit CountdownLatch(std::uint64_t count) : count_(count) {}
  CountdownLatch(const CountdownLatch&) = delete;
  CountdownLatch& operator=(const CountdownLatch&) = delete;

  /// Decrements by n (saturating at zero is a usage error: MC_REQUIRE).
  void count_down(std::uint64_t n = 1) {
    std::unique_lock lock(m_);
    MC_REQUIRE(n <= count_, "count_down past zero");
    count_ -= n;
    if (count_ == 0) {
      lock.unlock();
      cv_.notify_all();
    }
  }

  /// Blocks until the count reaches zero.
  void wait() {
    std::unique_lock lock(m_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  /// count_down(1) then wait(); the classic arrive-and-wait.
  void arrive_and_wait() {
    count_down(1);
    wait();
  }

  bool try_wait() {
    std::scoped_lock lock(m_);
    return count_ == 0;
  }

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::uint64_t count_;
};

}  // namespace monotonic
