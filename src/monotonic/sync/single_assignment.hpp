// single_assignment.hpp — single-assignment ("sync") variable.
//
// The dataflow ancestor of counters (§8): Val/Sisal/Strand/PCN/CC++
// build determinism on variables that are written once and read many
// times; a read before the write suspends.  A SingleAssignment<T> is a
// Condition fused with a data slot — counters "extend this model by
// (i) separating the synchronization and data-holding functionality,
// and (ii) allowing synchronization on many different values of a
// single object" (§8).
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>

#include "monotonic/support/assert.hpp"

namespace monotonic {

/// Write-once cell.  set() publishes a value exactly once; get() blocks
/// until published and returns a reference valid for the cell lifetime.
template <typename T>
class SingleAssignment {
 public:
  SingleAssignment() = default;
  SingleAssignment(const SingleAssignment&) = delete;
  SingleAssignment& operator=(const SingleAssignment&) = delete;

  /// Publishes the value.  Calling set twice is a usage error.
  template <typename U>
  void set(U&& value) {
    {
      std::scoped_lock lock(m_);
      MC_REQUIRE(!slot_.has_value(), "SingleAssignment set twice");
      slot_.emplace(std::forward<U>(value));
    }
    cv_.notify_all();
  }

  /// Blocks until set() has been called, then returns the value.
  const T& get() const {
    std::unique_lock lock(m_);
    cv_.wait(lock, [&] { return slot_.has_value(); });
    return *slot_;
  }

  /// Non-blocking probe for tests; application code should use get().
  bool debug_is_set() const {
    std::scoped_lock lock(m_);
    return slot_.has_value();
  }

 private:
  mutable std::mutex m_;
  mutable std::condition_variable cv_;
  std::optional<T> slot_;
};

}  // namespace monotonic
