#include "monotonic/sync/barrier.hpp"

#include "monotonic/support/assert.hpp"

namespace monotonic {

CentralBarrier::CentralBarrier(std::size_t parties) : parties_(parties) {
  MC_REQUIRE(parties >= 1, "barrier needs at least one party");
}

void CentralBarrier::Pass() {
  std::unique_lock lock(m_);
  const bool my_sense = sense_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    sense_ = !sense_;
#if MONOTONIC_ENABLE_STATS
    ++rounds_;
#endif
    lock.unlock();
    cv_.notify_all();
    return;
  }
#if MONOTONIC_ENABLE_STATS
  ++suspensions_;
#endif
  cv_.wait(lock, [&] { return sense_ != my_sense; });
}

std::uint64_t CentralBarrier::stat_rounds() const {
#if MONOTONIC_ENABLE_STATS
  std::scoped_lock lock(m_);
  return rounds_;
#else
  return 0;
#endif
}

std::uint64_t CentralBarrier::stat_suspensions() const {
#if MONOTONIC_ENABLE_STATS
  std::scoped_lock lock(m_);
  return suspensions_;
#else
  return 0;
#endif
}

AtomicBarrier::AtomicBarrier(std::size_t parties) : parties_(parties) {
  MC_REQUIRE(parties >= 1, "barrier needs at least one party");
}

void AtomicBarrier::Pass() {
  const bool my_sense = sense_.load(std::memory_order_relaxed);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    arrived_.store(0, std::memory_order_relaxed);
    rounds_.fetch_add(1, std::memory_order_relaxed);
    sense_.store(!my_sense, std::memory_order_release);
    return;
  }
  SpinBackoff spinner;
  while (sense_.load(std::memory_order_acquire) == my_sense) spinner.once();
}

TreeBarrier::TreeBarrier(std::size_t parties) : parties_(parties) {
  MC_REQUIRE(parties >= 1, "barrier needs at least one party");
  // Build a complete binary tree with `parties` leaves (heap layout).
  // Internal nodes expect arrivals from each child subtree plus, at the
  // root path, the owning slot.  We implement the simpler "tournament of
  // two-party barriers" scheme: node count = parties - 1; leaf slot s
  // enters at node (s + parties - 1)'s parent chain.
  const std::size_t internal = parties_ > 1 ? parties_ - 1 : 1;
  nodes_.reserve(internal);
  for (std::size_t i = 0; i < internal; ++i) {
    nodes_.push_back(std::make_unique<Node>());
  }
  // Heap layout over `internal` nodes with `parties` leaves appended:
  // total heap size = internal + parties; leaf j lives at internal + j.
  // Each existing child (internal node or leaf) delivers exactly one
  // arrival per round: leaves arrive directly, an internal child's last
  // arriver carries its subtree's arrival upward.
  const std::size_t heap_size = internal + parties_;
  for (std::size_t i = 0; i < internal; ++i) {
    std::size_t expected = 0;
    if (2 * i + 1 < heap_size) ++expected;
    if (2 * i + 2 < heap_size) ++expected;
    nodes_[i]->expected = expected;
  }
}

void TreeBarrier::pass_node(std::size_t node_index) {
  Node& node = *nodes_[node_index];
  std::unique_lock lock(node.m);
  const bool my_sense = node.sense;
  if (++node.arrived == node.expected) {
    node.arrived = 0;
    // Last arrival at a non-root node proceeds to the parent before
    // releasing its siblings, so release only happens after the whole
    // tree has combined.
    if (node_index > 0) {
      lock.unlock();
      pass_node((node_index - 1) / 2);
      lock.lock();
    }
    node.sense = !my_sense;
    lock.unlock();
    node.cv.notify_all();
    return;
  }
  node.cv.wait(lock, [&] { return node.sense != my_sense; });
}

void TreeBarrier::Pass(std::size_t slot) {
  MC_REQUIRE(slot < parties_, "slot out of range");
  if (parties_ == 1) return;
  const std::size_t internal = parties_ - 1;
  const std::size_t heap_pos = internal + slot;
  pass_node((heap_pos - 1) / 2);
}

}  // namespace monotonic
