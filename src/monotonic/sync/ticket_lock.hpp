// ticket_lock.hpp — FIFO ticket spinlock.
//
// Grants the lock in arrival order.  Note that FIFO fairness is *not*
// the same as the deterministic sequential ordering a Counter provides
// (§5.2): arrival order itself is a race.  The ordered-mutex bench (E3)
// uses TicketLock to demonstrate exactly that distinction.
#pragma once

#include <atomic>
#include <cstdint>

#include "monotonic/support/spin_wait.hpp"

namespace monotonic {

/// FIFO spinlock.  Meets the C++ Lockable requirements except try_lock.
class TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() noexcept {
    const std::uint64_t my = next_.fetch_add(1, std::memory_order_relaxed);
    SpinBackoff spinner;
    while (serving_.load(std::memory_order_acquire) != my) spinner.once();
  }

  void unlock() noexcept {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> serving_{0};
};

}  // namespace monotonic
