// semaphore.hpp — classic counting semaphore (Dijkstra [7]).
//
// Built on mutex + condition variable rather than std::counting_semaphore
// so it carries the same structural instrumentation as the other
// mechanisms (suspensions, wakeups) for the queue-census experiment (E9).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "monotonic/support/config.hpp"

namespace monotonic {

/// Counting semaphore with P/V and n-ary acquire/release.
class Semaphore {
 public:
  /// Starts with `initial` permits.
  explicit Semaphore(std::uint64_t initial = 0) : permits_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// P: suspends until `n` permits are available, then takes them
  /// atomically (no partial acquisition).
  void acquire(std::uint64_t n = 1);

  /// Non-blocking P.  Returns true iff `n` permits were taken.
  bool try_acquire(std::uint64_t n = 1);

  /// V: adds `n` permits and wakes waiters.
  void release(std::uint64_t n = 1);

  /// Current permit count; test/bench introspection only.
  std::uint64_t debug_permits() const;

  /// Number of threads that actually suspended in acquire() so far.
  std::uint64_t stat_suspensions() const;

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::uint64_t permits_;
#if MONOTONIC_ENABLE_STATS
  std::uint64_t suspensions_ = 0;  // guarded by m_
#endif
};

}  // namespace monotonic
