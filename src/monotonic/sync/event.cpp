#include "monotonic/sync/event.hpp"

namespace monotonic {

void Condition::Set() {
  {
    std::scoped_lock lock(m_);
    if (set_) return;
    set_ = true;
  }
  cv_.notify_all();
}

void Condition::Check() {
  std::unique_lock lock(m_);
  if (set_) return;
#if MONOTONIC_ENABLE_STATS
  ++suspensions_;
#endif
  cv_.wait(lock, [this] { return set_; });
}

bool Condition::debug_is_set() const {
  std::scoped_lock lock(m_);
  return set_;
}

std::uint64_t Condition::stat_suspensions() const noexcept {
#if MONOTONIC_ENABLE_STATS
  std::scoped_lock lock(m_);
  return suspensions_;
#else
  return 0;
#endif
}

}  // namespace monotonic
