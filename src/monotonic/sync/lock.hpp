// lock.hpp — mutual-exclusion locks in the paper's vocabulary.
//
// The paper (§5.2, §6) writes `resultLock.Lock(); ...; resultLock.Unlock();`.
// Lock wraps std::mutex under those names so the worked examples read like
// the paper, and Holder provides the RAII form that production call sites
// should prefer (C++ Core Guidelines CP.20: use RAII, never plain
// lock()/unlock()).
#pragma once

#include <mutex>

namespace monotonic {

/// Plain mutual-exclusion lock (paper: "locks, also known as mutexes").
/// Non-recursive.  Lock/Unlock mirror the paper's API; prefer Holder.
class Lock {
 public:
  Lock() = default;
  Lock(const Lock&) = delete;
  Lock& operator=(const Lock&) = delete;

  void Lock_() { m_.lock(); }
  void Unlock() { m_.unlock(); }
  bool TryLock() { return m_.try_lock(); }

  // Lockable requirements, so std::scoped_lock/unique_lock work directly.
  void lock() { m_.lock(); }
  void unlock() { m_.unlock(); }
  bool try_lock() { return m_.try_lock(); }

  /// RAII holder: `Lock::Holder h(myLock);`
  using Holder = std::scoped_lock<Lock>;

 private:
  std::mutex m_;
};

}  // namespace monotonic
