// barrier.hpp — N-way thread barriers (Lubachevsky [14]).
//
// The paper's §4.3 baseline is `Barrier b(numThreads); ... b.Pass();`.
// Three implementations share that API:
//
//   CentralBarrier — mutex + condition variable, sense-reversing.  The
//                    reference baseline; one suspension queue (§8).
//   AtomicBarrier  — sense-reversing busy-wait on an atomic flag.  For
//                    the barrier ablation bench; no kernel suspension.
//   TreeBarrier    — static combining tree of CentralBarriers, fan-in 2.
//                    Lowers contention on large N at the cost of depth.
//
// All three count passes and (where applicable) suspensions, feeding the
// queue-census experiment (E9) and the barrier-vs-counter comparisons
// (E1, E2).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "monotonic/support/cache.hpp"
#include "monotonic/support/config.hpp"
#include "monotonic/support/spin_wait.hpp"

namespace monotonic {

/// Sense-reversing barrier on mutex + condition variable.
class CentralBarrier {
 public:
  /// A barrier for `parties` threads.  Every thread must call Pass()
  /// the same number of times; the barrier is reusable across rounds.
  explicit CentralBarrier(std::size_t parties);
  CentralBarrier(const CentralBarrier&) = delete;
  CentralBarrier& operator=(const CentralBarrier&) = delete;

  /// Blocks until all `parties` threads have called Pass() this round.
  void Pass();

  std::size_t parties() const noexcept { return parties_; }
  /// Completed rounds.
  std::uint64_t stat_rounds() const;
  /// Threads that actually suspended (total, over all rounds).
  std::uint64_t stat_suspensions() const;

 private:
  const std::size_t parties_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  bool sense_ = false;  // flips each round
#if MONOTONIC_ENABLE_STATS
  std::uint64_t rounds_ = 0;
  std::uint64_t suspensions_ = 0;
#endif
};

/// Sense-reversing barrier on atomics with adaptive spin.  Suitable when
/// threads ≈ cores and rounds are short; pathological when oversubscribed.
class AtomicBarrier {
 public:
  explicit AtomicBarrier(std::size_t parties);
  AtomicBarrier(const AtomicBarrier&) = delete;
  AtomicBarrier& operator=(const AtomicBarrier&) = delete;

  void Pass();

  std::size_t parties() const noexcept { return parties_; }
  std::uint64_t stat_rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<bool> sense_{false};
  std::atomic<std::uint64_t> rounds_{0};
};

/// Static binary combining tree of two-party central barriers.  Each
/// thread passes with a fixed `slot` in [0, parties); entry combines up
/// the tree, release broadcasts down.
class TreeBarrier {
 public:
  explicit TreeBarrier(std::size_t parties);
  TreeBarrier(const TreeBarrier&) = delete;
  TreeBarrier& operator=(const TreeBarrier&) = delete;

  /// Blocks slot `slot` until all parties arrive.  Unlike Pass(), the
  /// caller identifies itself; the tree shape is keyed on slots.
  void Pass(std::size_t slot);

  std::size_t parties() const noexcept { return parties_; }

 private:
  struct Node {
    std::mutex m;
    std::condition_variable cv;
    std::size_t arrived = 0;
    std::size_t expected = 0;
    bool sense = false;
  };

  void pass_node(std::size_t node_index);

  const std::size_t parties_;
  // Heap-layout tree: node i has children 2i+1, 2i+2; leaves map slots.
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace monotonic
