// event.hpp — one-shot condition / manual-reset event.
//
// The paper's §4.4 baseline uses an array of "Condition" objects with
// Set() and Check(): Check suspends until the condition has been Set,
// and once Set the condition stays set (it is itself monotonic — a
// Counter restricted to the value range {0, 1}).  This matches a Win32
// manual-reset event or a binary CountDownLatch.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "monotonic/support/config.hpp"

namespace monotonic {

/// One-shot event.  Initially unset.  Set() is idempotent; Check()
/// blocks until set.  There is deliberately no Unset(): monotonicity is
/// what makes Check race-free (§6).
class Condition {
 public:
  Condition() = default;
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  /// Sets the condition and wakes every thread suspended in Check().
  void Set();

  /// Suspends the calling thread until the condition is set.  Returns
  /// immediately if already set.
  void Check();

  /// True iff Set() has been called.  Test/bench introspection only:
  /// application code must synchronize through Check() (the paper's
  /// no-probe rule, §2).
  bool debug_is_set() const;

  /// Number of threads that actually suspended (slept) in Check() so far.
  std::uint64_t stat_suspensions() const noexcept;

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  bool set_ = false;
#if MONOTONIC_ENABLE_STATS
  std::uint64_t suspensions_ = 0;  // guarded by m_
#endif
};

}  // namespace monotonic
