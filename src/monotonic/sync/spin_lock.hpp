// spin_lock.hpp — test-and-test-and-set spinlock with adaptive backoff.
//
// Used as a baseline in the lock-ablation benches; not recommended for
// application code on oversubscribed machines.
#pragma once

#include <atomic>

#include "monotonic/support/spin_wait.hpp"

namespace monotonic {

/// TTAS spinlock.  Meets the C++ Lockable requirements.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    SpinBackoff spinner;
    for (;;) {
      // Test first to avoid bouncing the line in exclusive state.
      while (locked_.load(std::memory_order_relaxed)) spinner.once();
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace monotonic
