// engine_env.hpp — the wait engine's view of the outside world, as an
// injectable trait.
//
// Everything the engine and its policies do that touches the host
// platform — lock a mutex, sleep on a condition variable or futex
// word, read the clock, spin, publish through an atomic — goes through
// one environment type instead of naming std:: primitives directly:
//
//   struct Env {
//     using Mutex   = ...;   // BasicLockable + Lockable
//     using CondVar = ...;   // wait(unique_lock<Mutex>&) / wait_until /
//                            // notify_all
//     using Clock   = ...;   // static steady time_point now()
//     template <typename T> using Atomic = ...;  // std::atomic shape
//     using SpinWaiter = ...;                    // once() in poll loops
//     static void point(SchedulePoint) noexcept; // schedule hook
//     static void alloc_point();                 // fault hook: called
//                            // immediately before every heap
//                            // allocation the engine performs under
//                            // its mutex (wait/callback nodes); a
//                            // fault environment may throw
//                            // std::bad_alloc here to exercise the
//                            // strong-guarantee paths
//     static std::size_t stripe_slot() noexcept; // striped-plane home
//     static void futex_wait(Atomic<u32>*, u32);
//     static bool futex_wait_until(Atomic<u32>*, u32, time_point);
//     static void futex_wake_all(Atomic<u32>*);
//   };
//
// Production code uses RealEngineEnv (below): every alias is the std::
// primitive the engine always used, `point()` is an empty inline
// function, and the whole indirection compiles away — the production
// instantiations are bit-for-bit the pre-seam engine.
//
// The deterministic simulation harness (monotonic/sim/) supplies
// SimEngineEnv instead: a cooperative scheduler owns every primitive,
// a seeded PRNG picks the next runnable thread at each schedule point,
// the clock is virtual, and relaxed atomic stores sit in a modelled
// per-thread store buffer — so park, wake, watermark-arm, collapse,
// poison and cancel become explorable, replayable decision points.
// Because the environment is a template parameter (not a macro), sim
// and production instantiations are distinct types that can coexist in
// one binary with no ODR hazards.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stop_token>
#include <thread>

#include "monotonic/support/spin_wait.hpp"

#if defined(__linux__)
#include <climits>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace monotonic {

/// Engine decision points a simulation environment may interleave at.
/// RealEngineEnv ignores them; SimEngineEnv turns each into a seeded
/// scheduler choice.  The names follow the engine's vocabulary.
enum class SchedulePoint : std::uint8_t {
  kIncrementFast,  ///< lock-free Increment about to publish
  kIncrementSlow,  ///< Increment diverting to the locked slow pass
  kCheck,          ///< Check/CheckFor/CheckUntil entry
  kArm,            ///< waiter arming the value plane for its level
  kRearm,          ///< engine recomputing the lowest armed level
  kCollapse,       ///< linearizable collapse of the value plane
  kPark,           ///< waiter about to sleep on its wait node
  kWake,           ///< a released node's waiters being woken
  kPoison,         ///< Poison freezing the counter
  kCancel,         ///< cancellation nudge firing
  kStall,          ///< stall watchdog delivering a report
  kIndexLink,      ///< heap wait plane linking a fresh level node
  kIndexPeel,      ///< heap wait plane peeling the global-min level
  // Cross-process counter protocol points (shared_counter.hpp).  Each
  // marks a window in which a participant's death leaves the shared
  // segment in a distinct state the death detector must recover from;
  // the multi-process kill-point sweep raises SIGKILL at them.
  kSharedRegister,  ///< participant claiming its registration slot
  kSharedInflight,  ///< in-flight marker raised, value not yet published
  kSharedPublish,   ///< value published, wake word not yet bumped
  kSharedWake,      ///< waiters woken, in-flight marker not yet cleared
  kSharedSweep,     ///< death detector sweeping the registration slots
  // Predicate-wait / async-completion plane points (completion.hpp,
  // the Check(pred) surface).
  kPredicateEval,      ///< predicate about to be evaluated / re-armed
  kCompletionEnqueue,  ///< reached chain handed to the completion executor
};

namespace detail {

/// Per-thread stripe slot: a round-robin ticket taken once per thread,
/// shared by every striped counter in the process (threads that never
/// touch a striped counter never take one).  Round-robin beats hashing
/// the thread id here — T threads land on min(T, stripes) distinct
/// stripes with no birthday collisions.
inline std::size_t this_thread_stripe_slot() noexcept {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Portable timed wait by polling: sleeps in `quantum`-sized slices,
/// each clamped to the time left before `deadline`, so the wait never
/// overshoots the deadline by a full quantum (a CheckFor(1ms) on the
/// pre-clamp code could oversleep by up to 20%).  Returns false iff it
/// gave up because the deadline passed with the value unchanged.
/// Compiled on every platform so the clamp stays unit-testable even
/// where the real futex path is used.
inline bool poll_wait_until(std::atomic<std::uint32_t>* addr,
                            std::uint32_t expected,
                            std::chrono::steady_clock::time_point deadline,
                            std::chrono::microseconds quantum =
                                std::chrono::microseconds(200)) {
  while (addr->load(std::memory_order_acquire) == expected) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
        deadline - now);
    std::this_thread::sleep_for(std::min(quantum, remaining));
  }
  return true;
}

#if defined(__linux__)

inline void futex_wait(std::atomic<std::uint32_t>* addr,
                       std::uint32_t expected) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
          FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
}

/// Returns false iff the wait gave up because the deadline passed.
inline bool futex_wait_until(std::atomic<std::uint32_t>* addr,
                             std::uint32_t expected,
                             std::chrono::steady_clock::time_point deadline) {
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) return false;
  const auto rel =
      std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now);
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(rel.count() / 1000000000);
  ts.tv_nsec = static_cast<long>(rel.count() % 1000000000);
  const long rc =
      syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
              FUTEX_WAIT_PRIVATE, expected, &ts, nullptr, 0);
  return !(rc == -1 && errno == ETIMEDOUT);
}

inline void futex_wake_all(std::atomic<std::uint32_t>* addr) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
          FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
}

/// Cross-process futex shims: identical to the private ones above but
/// WITHOUT the FUTEX_PRIVATE flag, so the kernel keys the wait queue by
/// the backing (shared) mapping instead of the address space — the form
/// a futex word in a shm_open segment needs for waiters in independent
/// processes to see each other's wakes.
inline bool shared_futex_wait_until(
    std::atomic<std::uint32_t>* addr, std::uint32_t expected,
    std::chrono::steady_clock::time_point deadline) {
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) return false;
  const auto rel =
      std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now);
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(rel.count() / 1000000000);
  ts.tv_nsec = static_cast<long>(rel.count() % 1000000000);
  const long rc = syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
                          FUTEX_WAIT, expected, &ts, nullptr, 0);
  return !(rc == -1 && errno == ETIMEDOUT);
}

inline void shared_futex_wake_all(std::atomic<std::uint32_t>* addr) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAKE,
          INT_MAX, nullptr, nullptr, 0);
}

#else  // portable fallback: std::atomic wait/notify (no timed variant)

inline void futex_wait(std::atomic<std::uint32_t>* addr,
                       std::uint32_t expected) {
  addr->wait(expected, std::memory_order_acquire);
}

inline bool futex_wait_until(std::atomic<std::uint32_t>* addr,
                             std::uint32_t expected,
                             std::chrono::steady_clock::time_point deadline) {
  // std::atomic has no timed wait; poll in deadline-clamped sleeps.
  return poll_wait_until(addr, expected, deadline);
}

inline void futex_wake_all(std::atomic<std::uint32_t>* addr) {
  addr->notify_all();
}

/// Portable fallback: cross-process waiters poll the word in deadline-
/// clamped sleeps (std::atomic wait/notify is address-space local, so
/// the wake side is deliberately a no-op — pollers observe the store).
inline bool shared_futex_wait_until(
    std::atomic<std::uint32_t>* addr, std::uint32_t expected,
    std::chrono::steady_clock::time_point deadline) {
  return poll_wait_until(addr, expected, deadline);
}

inline void shared_futex_wake_all(std::atomic<std::uint32_t>* /*addr*/) {}

#endif

}  // namespace detail

/// The production environment: plain std:: primitives, an empty
/// schedule hook, the process-wide stripe-slot ticket.  Everything
/// inlines to exactly the pre-seam code.
struct RealEngineEnv {
  static constexpr bool kSimulated = false;

  using Mutex = std::mutex;
  using CondVar = std::condition_variable;
  using Clock = std::chrono::steady_clock;
  template <typename T>
  using Atomic = std::atomic<T>;
  using SpinWaiter = SpinBackoff;
  /// Cancellation hook registration (the engine's stop_token nudge).
  /// Behind the environment because ~stop_callback blocks on an
  /// in-flight invocation — an OS-level wait the simulation scheduler
  /// must model itself or hang.
  template <typename F>
  using StopCallback = std::stop_callback<F>;

  static void point(SchedulePoint) noexcept {}

  /// Fault hook before every engine heap allocation.  Production: the
  /// allocation simply proceeds (any real bad_alloc the allocator
  /// raises flows through the same strong-guarantee paths a fault
  /// environment exercises).
  static void alloc_point() {}

  static std::size_t stripe_slot() noexcept {
    return detail::this_thread_stripe_slot();
  }

  static void futex_wait(Atomic<std::uint32_t>* addr, std::uint32_t expected) {
    detail::futex_wait(addr, expected);
  }
  static bool futex_wait_until(Atomic<std::uint32_t>* addr,
                               std::uint32_t expected,
                               Clock::time_point deadline) {
    return detail::futex_wait_until(addr, expected, deadline);
  }
  static void futex_wake_all(Atomic<std::uint32_t>* addr) {
    detail::futex_wake_all(addr);
  }
};

}  // namespace monotonic
