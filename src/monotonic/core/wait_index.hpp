// wait_index.hpp — the hierarchical level index behind the wait
// plane's heap variant (WaitPlaneKind::kHeap, wait_list.hpp).
//
// The paper's §7 structure is an ordered linked list of level nodes:
// O(live levels) to join a new level, O(1) min-level, O(released
// levels) to release a prefix.  That walk is exactly what caps the
// overload-storm bench at ~10k armed waiters — arming L levels in
// ascending order costs O(L^2) pointer chases.  This header provides
// the replacement representation: per shard,
//
//   * an intrusive array binary min-heap of (level, node) entries,
//     ordered by level, with a `heap_pos` back-link stored in the node
//     so an arbitrary node (a timed-out waiter's) erases in O(log L);
//     and
//   * a flat open-addressing hash table (linear probing, power-of-two
//     capacity, backward-shift deletion) from level to node, so
//     join-or-insert finds an existing level in O(1) expected instead
//     of walking the order.  A node-based std::unordered_map would
//     cost one allocation per armed level and one scattered free per
//     woken one — at 10^6 levels those frees alone dominated the bulk
//     wake (they interleave with the wait-node allocations, so every
//     free is a cold miss).  The flat table probes one cache line,
//     clears by dropping one array, and never allocates per level.
//
// The level is stored IN the heap array, not read through the node:
// sift compares at a million live levels are then loads from one
// contiguous array instead of a dependent pointer chase per compare,
// which is what keeps the per-wake cost flat as the index grows (the
// E13 bench charts this).  The node still carries `heap_pos` so the
// two stay in lock-step.
//
// The heap keeps the §7 contract observable: the minimum level is the
// root (O(1) — the striped plane's watermark needs exactly this), and
// releasing "all levels <= value" peels ascending minima, so waiters
// are still released in level order and released nodes are still
// exactly the ascending prefix of the live set.
//
// Sharding (wait_list.hpp picks a shard by `level % shards`) bounds
// each heap's depth at O(log(L/S)); cross-shard operations (min-level,
// ascending peel) scan the S roots, which is O(S) with S <= 64 — the
// same small-linear-scan trade the striped value plane makes.
//
// Locking: none here.  Every member requires the owning counter's
// mutex, exactly like the list representation it replaces.
//
// Exception safety: `link` is the only member that allocates (a table
// rehash, and the heap array growth).  It takes an allocation hook the
// caller points at Env::alloc_point so fault environments can inject
// bad_alloc at each site, and it unwinds to the exact pre-call state:
// the rehash builds the grown table aside and swaps, the table entry
// is only placed after the heap push succeeded, and the node is never
// observable half-linked.  Everything else is noexcept.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic::detail {

/// One shard of the level index.  `Node` must expose
/// `counter_value_t level` and `std::size_t heap_pos` (the intrusive
/// back-link this shard maintains); nodes are owned by the caller.
template <typename Node>
class LevelShard {
 public:
  /// O(1) expected: the node for `level`, or nullptr.
  Node* find(counter_value_t level) const noexcept {
    if (table_.empty()) return nullptr;
    const std::size_t mask = table_.size() - 1;
    std::size_t i = slot_hash(level) & mask;
    while (table_[i].node != nullptr) {
      if (table_[i].level == level) return table_[i].node;
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  /// Links a fresh node (not found by `find`) into the shard —
  /// O(log L) sift plus the table insert.  `alloc_hook()` runs before
  /// each operation that may allocate; it (or the allocation itself)
  /// may throw, in which case the shard is exactly as it was (a
  /// completed rehash aside — invisible through this API) and the node
  /// is untouched, still owned by the caller.
  template <typename AllocHook>
  void link(Node* node, AllocHook&& alloc_hook) {
    alloc_hook();       // fault hook: the table may rehash
    ensure_capacity();  // builds the grown table aside, then swaps
    alloc_hook();       // fault hook: the heap array may grow
    heap_.push_back(Entry{node->level, node});
    place(table_, Slot{node->level, node});  // noexcept from here on
    node->heap_pos = heap_.size() - 1;
    sift_up(node->heap_pos);
  }

  /// The minimum-level node (the heap root), or nullptr when empty.
  Node* min() const noexcept {
    return heap_.empty() ? nullptr : heap_[0].node;
  }

  /// The root's level without touching the node (the watermark scan
  /// and the cross-shard peel read this).  Only valid when non-empty.
  counter_value_t min_level() const noexcept { return heap_[0].level; }

  /// Unlinks and returns the root.  O(log L).
  Node* pop_min() noexcept {
    Node* node = heap_[0].node;
    erase(node);
    return node;
  }

  /// Unlinks an arbitrary linked node (timed-out waiter).  O(log L).
  void erase(Node* node) noexcept {
    const std::size_t pos = node->heap_pos;
    MC_ASSERT(pos < heap_.size() && heap_[pos].node == node,
              "level-index back-link corrupt");
    erase_slot(node->level);
    Entry last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size()) return;  // erased the tail itself
    heap_[pos] = last;
    last.node->heap_pos = pos;
    // The hole-filler may belong above or below its new slot.
    sift_up(pos);
    if (last.node->heap_pos == pos) sift_down(pos);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  // --- Bulk drain (the big-wake fast path) -------------------------
  //
  // Releasing r of n levels by repeated pop_min costs r sift-downs of
  // ~log n dependent compares each; at a million live levels the cache
  // misses in those sifts dominate the whole wake.  When r is large
  // the caller instead (1) sorts each shard's entry array ascending in
  // place — contiguous, allocation-free, no node derefs — (2) k-way
  // merges the S sorted prefixes to visit released nodes in global
  // level order, and (3) discards each prefix in one pass.  A sorted
  // ascending array IS a valid min-heap, so the survivors need no
  // rebuild.  Between sort_ascending() and discard_prefix() the
  // heap_pos back-links are stale: the caller holds the counter mutex
  // for the whole sequence and must not call find/link/erase inside
  // it.

  /// Step 1: sort entries ascending by level.  Positions are stale
  /// until discard_prefix() runs.  Small shards use introsort; past
  /// kRadixMinSort entries the arrays no longer fit cache and n log n
  /// cold compares dominate the whole wake, so the sort switches to
  /// LSD radix through `scratch_` — a few streaming passes, one per
  /// significant byte of the largest level (E13 measured this at
  /// roughly a third of introsort's cost at 10^6 live levels).  The
  /// scratch is pre-reserved on the arm path (ensure_capacity), so
  /// this stays allocation-free and noexcept.
  void sort_ascending() noexcept {
    const std::size_t n = heap_.size();
    if (n <= kRadixMinSort) {
      std::sort(heap_.begin(), heap_.end(),
                [](const Entry& a, const Entry& b) { return a.level < b.level; });
      return;
    }
    MC_ASSERT(scratch_.capacity() >= n, "radix scratch under-reserved");
    scratch_.resize(n);  // within capacity: cannot throw
    counter_value_t max_level = 0;
    for (const Entry& entry : heap_) max_level = std::max(max_level, entry.level);
    Entry* from = heap_.data();
    Entry* to = scratch_.data();
    for (int shift = 0; shift < 64 && (max_level >> shift) != 0; shift += 8) {
      std::size_t count[256] = {};
      for (std::size_t i = 0; i < n; ++i) {
        ++count[(from[i].level >> shift) & 0xff];
      }
      std::size_t pos = 0;
      for (std::size_t bucket = 0; bucket < 256; ++bucket) {
        const std::size_t c = count[bucket];
        count[bucket] = pos;
        pos += c;
      }
      for (std::size_t i = 0; i < n; ++i) {
        to[count[(from[i].level >> shift) & 0xff]++] = from[i];
      }
      std::swap(from, to);
    }
    if (from != heap_.data()) std::copy(from, from + n, heap_.data());
  }

  /// Step 1b: after sort_ascending(), the number of entries with
  /// level <= value (binary search).
  std::size_t split(counter_value_t value) const noexcept {
    std::size_t lo = 0;
    std::size_t hi = heap_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (heap_[mid].level <= value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Step 2: merge-cursor reads into the sorted array.
  counter_value_t level_at(std::size_t i) const noexcept {
    return heap_[i].level;
  }
  Node* node_at(std::size_t i) const noexcept { return heap_[i].node; }

  /// Step 3: removes the first `r` (already-delivered) entries, their
  /// table entries with them, and re-bases the survivors' back-links.
  /// A full drain drops the table outright (one deallocation — storage
  /// shrinks back to O(live levels) after a storm); a partial one
  /// rebuilds it from the survivors in a single pass, which past the
  /// bulk crossover beats r backward-shift erases.
  void discard_prefix(std::size_t r) noexcept {
    if (r == 0) return;
    if (r == heap_.size()) {
      heap_.clear();
      std::vector<Slot>().swap(table_);
      std::vector<Entry>().swap(scratch_);
      return;
    }
    heap_.erase(heap_.begin(), heap_.begin() + static_cast<std::ptrdiff_t>(r));
    for (Slot& slot : table_) slot.node = nullptr;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      heap_[i].node->heap_pos = i;
      place(table_, Slot{heap_[i].level, heap_[i].node});
    }
  }

  /// Current tree depth: floor(log2(size)) + 1, 0 when empty.  Feeds
  /// the index_depth high-water stat.
  std::size_t depth() const noexcept { return std::bit_width(heap_.size()); }

  /// Visits every linked node, heap order (NOT level order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& entry : heap_) fn(entry.node);
  }

 private:
  /// A heap slot: the node plus a copy of its (immutable) level, so
  /// sift compares never leave the array.
  struct Entry {
    counter_value_t level;
    Node* node;
  };

  /// A hash-table slot; node == nullptr marks it empty (the level of
  /// an empty slot is meaningless, so level 0 needs no special case).
  struct Slot {
    counter_value_t level;
    Node* node;
  };

  /// splitmix64-style mixer — level % shards already consumed the low
  /// bits for shard choice, so the table must not reuse them raw.
  static std::size_t slot_hash(counter_value_t level) noexcept {
    std::uint64_t z =
        static_cast<std::uint64_t>(level) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }

  /// Linear-probe placement into a table that has a free slot (load is
  /// kept <= 1/2, so the probe always terminates).
  static void place(std::vector<Slot>& table, Slot slot) noexcept {
    const std::size_t mask = table.size() - 1;
    std::size_t i = slot_hash(slot.level) & mask;
    while (table[i].node != nullptr) i = (i + 1) & mask;
    table[i] = slot;
  }

  /// Grows the table when the next insert would push load past 1/2,
  /// and keeps the radix scratch reserved ahead of the live-level
  /// count so the bulk drain never allocates.  Strong guarantee: the
  /// grown table is built aside and swapped in.
  void ensure_capacity() {
    if (table_.empty() || (heap_.size() + 1) * 2 > table_.size()) {
      const std::size_t cap = std::max<std::size_t>(16, table_.size() * 2);
      std::vector<Slot> grown(cap, Slot{0, nullptr});
      for (const Slot& slot : table_) {
        if (slot.node != nullptr) place(grown, slot);
      }
      table_.swap(grown);
    }
    if (heap_.size() + 1 > kRadixMinSort &&
        scratch_.capacity() < heap_.size() + 1) {
      scratch_.reserve(table_.size() / 2);  // load <= 1/2, so this fits
    }
  }

  /// Removes `level`'s slot with backward-shift deletion: entries of
  /// the probe cluster past the hole move back over it when their
  /// ideal position allows, so probes never need tombstones.
  void erase_slot(counter_value_t level) noexcept {
    const std::size_t mask = table_.size() - 1;
    std::size_t hole = slot_hash(level) & mask;
    while (table_[hole].node == nullptr || table_[hole].level != level) {
      MC_ASSERT(table_[hole].node != nullptr, "level-index table miss");
      hole = (hole + 1) & mask;
    }
    std::size_t next = (hole + 1) & mask;
    while (table_[next].node != nullptr) {
      const std::size_t ideal = slot_hash(table_[next].level) & mask;
      // Movable iff the hole lies cyclically within [ideal, next].
      if (((next - ideal) & mask) >= ((next - hole) & mask)) {
        table_[hole] = table_[next];
        hole = next;
      }
      next = (next + 1) & mask;
    }
    table_[hole].node = nullptr;
  }

  void sift_up(std::size_t i) noexcept {
    Entry entry = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent].level <= entry.level) break;
      heap_[i] = heap_[parent];
      heap_[i].node->heap_pos = i;
      i = parent;
    }
    heap_[i] = entry;
    entry.node->heap_pos = i;
  }

  void sift_down(std::size_t i) noexcept {
    Entry entry = heap_[i];
    const std::size_t size = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= size) break;
      if (child + 1 < size && heap_[child + 1].level < heap_[child].level) {
        ++child;
      }
      if (heap_[child].level >= entry.level) break;
      heap_[i] = heap_[child];
      heap_[i].node->heap_pos = i;
      i = child;
    }
    heap_[i] = entry;
    entry.node->heap_pos = i;
  }

  /// Introsort-vs-radix crossover for sort_ascending (entries; 4096 of
  /// them is 64 KiB — comfortably cache-resident for introsort).
  static constexpr std::size_t kRadixMinSort = 4096;

  std::vector<Entry> heap_;     // array binary min-heap by level
  std::vector<Slot> table_;     // flat level->node index (join lookup)
  std::vector<Entry> scratch_;  // radix ping-pong buffer (bulk drain)
};

/// The shard with the globally minimal root, or nullptr when every
/// shard is empty.  O(S) — the cross-shard scan sharding buys its
/// per-shard depth bound with.
template <typename Node>
LevelShard<Node>* min_level_shard(std::vector<LevelShard<Node>>& shards) {
  LevelShard<Node>* best = nullptr;
  counter_value_t best_level = 0;
  for (auto& shard : shards) {
    if (shard.empty()) continue;
    const counter_value_t level = shard.min_level();
    if (best == nullptr || level < best_level) {
      best = &shard;
      best_level = level;
    }
  }
  return best;
}

}  // namespace monotonic::detail
