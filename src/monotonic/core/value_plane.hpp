// value_plane.hpp — the counter's VALUE PLANE, split out of the wait
// engine.
//
// BasicCounter<Policy, Plane> is two cooperating planes:
//
//   * the value plane (this header + striped_cells.hpp) owns the
//     monotone value: how it is stored, how Increment publishes into
//     it, and when an incrementer must divert to the locked slow path;
//   * the wait plane (wait_list.hpp + wait_policy.hpp, driven by
//     basic_counter.hpp) owns waiter management: the §7 ordered list,
//     OnReach callbacks, poisoning, cancellation, the stall watchdog.
//
// A plane provides:
//
//   static constexpr bool kLockFreeFastPath;  // engine picks fast paths
//   static constexpr bool kStriped;           // metadata only
//   static constexpr counter_value_t kMaxValue;
//   Plane(const WaitListOptions&, CounterStats&);
//   std::size_t stripe_count() const;
//
//   // Lock-free planes (kLockFreeFastPath == true):
//   bool add_fast(amount);      // publish; true = slow pass required
//   counter_value_t read_fast() const;          // no lock, monotone
//   counter_value_t arm(level);                 // under m_: open the
//                                               // slow path for level,
//                                               // return collapsed value
//   void rearm(lowest);         // under m_: lowest armed level (or
//                               // kNoArmedLevel) after list changes
//   void pin();                 // under m_: poison — fast path closed
//                               // forever (until Reset)
//
//   // Locking planes (kLockFreeFastPath == false):
//   void add_locked(amount);    // under m_
//
//   // All planes, under m_:
//   counter_value_t collapse();            // linearizable value
//   counter_value_t read_locked() const;   // collapse for const paths
//   void reset();
//
// Two planes live here; the striped LongAdder-style plane lives in
// striped_cells.hpp so code that never shards doesn't pay for the
// cell-array machinery.
//
//   plane           storage                    fast path    watermark
//   PlainValuePlane plain word under m_        none         —
//   AtomicWordPlane (value << 1) | attention   lock-free    1-bit
//   StripedPlane    per-stripe padded cells    lock-free    armed level
//
// The attention-bit protocol (AtomicWordPlane) is a degenerate
// watermark: arm() drops it to "somebody, somewhere" (bit 0 set) and
// rearm() can only restore "nobody" — the engine's sum-vs-level
// comparison degenerates to a single branch on the bit.  StripedPlane
// keeps the real lowest armed level, so incrementers below it skip the
// mutex entirely.
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <type_traits>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/engine_env.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// §7 reference storage: one plain word, every access under the
/// counter mutex.  The locking policies (BlockingWait, SingleCvWait)
/// default to this plane.
class PlainValuePlane {
 public:
  static constexpr bool kLockFreeFastPath = false;
  static constexpr bool kStriped = false;
  static constexpr counter_value_t kMaxValue =
      std::numeric_limits<counter_value_t>::max();

  PlainValuePlane(const WaitListOptions& /*options*/, CounterStats&) {}

  std::size_t stripe_count() const noexcept { return 1; }

  // All members require the counter mutex.
  void add_locked(counter_value_t amount) {
    MC_REQUIRE(value_ <= kMaxValue - amount, "counter value overflow");
    value_ += amount;
  }
  counter_value_t collapse() noexcept { return value_; }
  counter_value_t read_locked() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  counter_value_t value_ = 0;
};

/// Single-word lock-free storage: (value << 1) | attention.  Bit 0 set
/// means "a slow-path pass is required" (parked waiters, pending
/// callbacks, or poison).  The lost-wakeup race is closed by arm():
/// set the bit under the mutex, then re-read — a racing Increment
/// either sees the bit (and queues behind the mutex we hold) or
/// happened first (and the re-read sees its value).  The flag bit
/// halves the representable range.
template <typename Env = RealEngineEnv>
class AtomicWordPlaneT {
 public:
  using EngineEnv = Env;
  static constexpr bool kLockFreeFastPath = true;
  static constexpr bool kStriped = false;
  static constexpr counter_value_t kMaxValue =
      std::numeric_limits<counter_value_t>::max() >> 1;

  AtomicWordPlaneT(const WaitListOptions& /*options*/, CounterStats&) {}

  std::size_t stripe_count() const noexcept { return 1; }

  /// Lock-free publish.  Returns true when the attention bit was set
  /// at the moment of the add (a slow pass must run).  Overflow is
  /// checked BEFORE the fetch_add: a wrapped word would corrupt the
  /// flag bit and cannot be rolled back.  The check is optimistic
  /// (concurrent increments could still overflow between the load and
  /// the add) — like any checked usage error, racing into the boundary
  /// is a caller bug; the check catches the deterministic case.
  bool add_fast(counter_value_t amount) {
    MC_REQUIRE(amount <= kMaxValue &&
                   (word_.load(std::memory_order_relaxed) >> 1) <=
                       kMaxValue - amount,
               "counter value overflow");
    const counter_value_t prev =
        word_.fetch_add(amount << 1, std::memory_order_release);
    return (prev & kAttentionBit) != 0;
  }

  counter_value_t read_fast() const noexcept {
    return word_.load(std::memory_order_acquire) >> 1;
  }

  // The remaining members require the counter mutex.
  counter_value_t collapse() noexcept { return read_fast(); }
  counter_value_t read_locked() const noexcept { return read_fast(); }

  /// Publishes a waiter's intent to sleep (or register a callback) at
  /// `level` and returns the post-publish value for the caller's
  /// re-check.  The single bit cannot encode the level, so ANY armed
  /// level closes the fast path for ALL increments.
  counter_value_t arm(counter_value_t /*level*/) {
    word_.fetch_or(kAttentionBit, std::memory_order_relaxed);
    return read_fast();
  }

  /// Reopens the fast path only when nothing is armed at all; a
  /// remaining waiter at any level keeps the bit set.
  void rearm(counter_value_t lowest) {
    if (lowest == kNoArmedLevel) {
      word_.fetch_and(~kAttentionBit, std::memory_order_relaxed);
    }
  }

  /// Poison: pin the bit so in-flight incrementers that passed the
  /// poison pre-check drain through the locked slow path instead of
  /// racing the frozen value on the fast one.  Never cleared again
  /// (the engine skips rearm while poisoned).
  void pin() { word_.fetch_or(kAttentionBit, std::memory_order_relaxed); }

  void reset() { word_.store(0, std::memory_order_release); }

 private:
  static constexpr counter_value_t kAttentionBit = 1;
  typename Env::template Atomic<counter_value_t> word_{0};
};

/// The production instantiation (the historical name).
using AtomicWordPlane = AtomicWordPlaneT<>;

namespace detail {

/// The plane a policy gets when none is named: the storage each
/// pre-plane counter used — an atomic word for lock-free policies, a
/// mutex-guarded word for locking ones.
template <typename Policy>
using DefaultPlane =
    std::conditional_t<Policy::kLockFreeFastPath,
                       AtomicWordPlaneT<typename Policy::EngineEnv>,
                       PlainValuePlane>;

}  // namespace detail

}  // namespace monotonic
