// counter_error.hpp — the failure-model error taxonomy.
//
// The paper's monotonicity argument (§6) assumes every Increment a
// Check waits on eventually happens.  Production producers crash,
// throw, and get cancelled, so the engine carries a first-class
// failure model (see basic_counter.hpp):
//
//   * Poison(cause)    — freezes the counter at its current value,
//     wakes every parked waiter, and turns every Check above the
//     frozen value into a CounterPoisonedError carrying the producer's
//     original exception;
//   * Check(level, stop_token) — cooperative cancellation: returns
//     false instead of parking forever when the token is triggered;
//   * the stall watchdog (WaitListOptions::stall_report_after) —
//     surfaces a wait-list snapshot when a waiter is stuck past a
//     threshold, instead of a silent hang.
//
// The resource model (same engine) adds two RECOVERABLE failures:
//
//   * CounterResourceError — the engine needed memory (a wait node, a
//     callback node) and the allocator refused.  The throw carries the
//     strong guarantee: waiter counts, stats, the ordered list and the
//     value-plane watermark are exactly as before the call, the engine
//     mutex is released, and the counter remains fully usable —
//     subsequent Increment/Check succeed.
//   * CounterOverloadedError — bounded admission
//     (WaitListOptions::max_waiters / max_levels with
//     OverloadPolicy::kThrow) turned a waiter away.  Also recoverable:
//     capacity frees as parked waiters are released.
//
// Every engine exception derives from CounterError (itself a
// std::runtime_error, so pre-taxonomy `catch (std::runtime_error&)`
// sites keep working), letting callers write one `catch
// (CounterError&)` for "the counter, not my code, failed".  Patterns
// build their own vocabulary on top (BrokenChannelError is a
// CounterPoisonedError).
#pragma once

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

namespace monotonic {

/// Root of the engine's exception taxonomy.  Everything the wait
/// engine itself throws — poisoning, resource exhaustion, overload —
/// derives from this; checked-usage errors (MC_REQUIRE) deliberately
/// do not, since those are caller bugs, not counter failures.
class CounterError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by Check/CheckFor/CheckUntil on a poisoned counter when the
/// requested level lies above the frozen value — i.e. the Increment
/// this thread was waiting on can never happen.  `cause()` is the
/// exception the producer failed with (null when the counter was
/// poisoned with a bare reason string).
class CounterPoisonedError : public CounterError {
 public:
  explicit CounterPoisonedError(const std::string& what,
                                std::exception_ptr cause = {})
      : CounterError(what), cause_(std::move(cause)) {}

  /// The producer's original exception, if the counter was poisoned
  /// with one; null otherwise.
  const std::exception_ptr& cause() const noexcept { return cause_; }

 private:
  std::exception_ptr cause_;
};

/// Thrown when the engine could not allocate the memory an operation
/// needed (a wait node in Check/CheckFor/CheckUntil, a callback node
/// in OnReach).  Strong guarantee: the counter's observable state —
/// value, wait list, waiter counts, watermark, stats — is exactly what
/// it was before the failed call, and the counter remains usable.
/// Retrying after freeing memory (or after pool capacity frees) is
/// legitimate.  With a preallocated node pool
/// (WaitListOptions::preallocated_nodes, spec token "pooled[:N]")
/// steady-state Check never allocates and this error cannot occur on
/// pooled levels.
class CounterResourceError : public CounterError {
 public:
  using CounterError::CounterError;
};

/// Thrown under OverloadPolicy::kThrow when bounded admission
/// (WaitListOptions::max_waiters / max_levels) turns a waiter away:
/// the wait list is full and this thread was not allowed to park.
/// Recoverable — capacity frees as parked waiters are released or
/// time out.  The other overload policies degrade (kSpinFallback) or
/// backpressure (kBlockIncrementers) instead of throwing.
class CounterOverloadedError : public CounterError {
 public:
  using CounterError::CounterError;
};

}  // namespace monotonic
