// counter_error.hpp — the failure-model error taxonomy.
//
// The paper's monotonicity argument (§6) assumes every Increment a
// Check waits on eventually happens.  Production producers crash,
// throw, and get cancelled, so the engine carries a first-class
// failure model (see basic_counter.hpp):
//
//   * Poison(cause)    — freezes the counter at its current value,
//     wakes every parked waiter, and turns every Check above the
//     frozen value into a CounterPoisonedError carrying the producer's
//     original exception;
//   * Check(level, stop_token) — cooperative cancellation: returns
//     false instead of parking forever when the token is triggered;
//   * the stall watchdog (WaitListOptions::stall_report_after) —
//     surfaces a wait-list snapshot when a waiter is stuck past a
//     threshold, instead of a silent hang.
//
// The resource model (same engine) adds two RECOVERABLE failures:
//
//   * CounterResourceError — the engine needed memory (a wait node, a
//     callback node) and the allocator refused.  The throw carries the
//     strong guarantee: waiter counts, stats, the ordered list and the
//     value-plane watermark are exactly as before the call, the engine
//     mutex is released, and the counter remains fully usable —
//     subsequent Increment/Check succeed.
//   * CounterOverloadedError — bounded admission
//     (WaitListOptions::max_waiters / max_levels with
//     OverloadPolicy::kThrow) turned a waiter away.  Also recoverable:
//     capacity frees as parked waiters are released.
//
// Every engine exception derives from CounterError (itself a
// std::runtime_error, so pre-taxonomy `catch (std::runtime_error&)`
// sites keep working), letting callers write one `catch
// (CounterError&)` for "the counter, not my code, failed".  Patterns
// build their own vocabulary on top (BrokenChannelError is a
// CounterPoisonedError).
#pragma once

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace monotonic {

/// Root of the engine's exception taxonomy.  Everything the wait
/// engine itself throws — poisoning, resource exhaustion, overload —
/// derives from this; checked-usage errors (MC_REQUIRE) deliberately
/// do not, since those are caller bugs, not counter failures.
class CounterError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Why a counter was poisoned.  In-process counters are always
/// poisoned explicitly (a producer's Poison call, directly or via a
/// FailureDomain), so the code carries no extra information there; the
/// cross-process counter (shared_counter.hpp) adds two machine causes
/// that cannot carry an exception across the process boundary, and
/// waiters classify on the code instead:
///
///   * kParticipantDied — the death detector found a registered
///     participant gone (kill(pid,0) == ESRCH, or heartbeat staleness
///     when enabled) and poisoned the shared epoch so no waiter in any
///     process is left parked on increments that will never come;
///   * kEpochSuperseded — the counter name was recovered by a fresh
///     Create: this handle's epoch is over, and its pending waits can
///     never complete against the new epoch's value.
enum class PoisonCause : std::uint8_t {
  kExplicit,         ///< Poison(cause/reason) was called
  kParticipantDied,  ///< a registered process died mid-protocol
  kEpochSuperseded,  ///< the shared name was re-Created under this handle
};

constexpr std::string_view to_string(PoisonCause cause) noexcept {
  switch (cause) {
    case PoisonCause::kExplicit:
      return "explicit";
    case PoisonCause::kParticipantDied:
      return "participant-died";
    case PoisonCause::kEpochSuperseded:
      return "epoch-superseded";
  }
  return "?";
}

/// Thrown by Check/CheckFor/CheckUntil on a poisoned counter when the
/// requested level lies above the frozen value — i.e. the Increment
/// this thread was waiting on can never happen.  `cause()` is the
/// exception the producer failed with (null when the counter was
/// poisoned with a bare reason string or by a machine cause);
/// `poison_cause()` is the machine-readable why (see PoisonCause).
class CounterPoisonedError : public CounterError {
 public:
  explicit CounterPoisonedError(const std::string& what,
                                std::exception_ptr cause = {})
      : CounterError(what), cause_(std::move(cause)) {}

  CounterPoisonedError(const std::string& what, PoisonCause poison_cause,
                       std::exception_ptr cause = {})
      : CounterError(what),
        cause_(std::move(cause)),
        poison_cause_(poison_cause) {}

  /// The producer's original exception, if the counter was poisoned
  /// with one; null otherwise.
  const std::exception_ptr& cause() const noexcept { return cause_; }

  /// Machine-readable poison cause (kExplicit unless the cross-process
  /// failure model synthesized this error).
  PoisonCause poison_cause() const noexcept { return poison_cause_; }

 private:
  std::exception_ptr cause_;
  PoisonCause poison_cause_ = PoisonCause::kExplicit;
};

/// Thrown when the engine could not allocate the memory an operation
/// needed (a wait node in Check/CheckFor/CheckUntil, a callback node
/// in OnReach).  Strong guarantee: the counter's observable state —
/// value, wait list, waiter counts, watermark, stats — is exactly what
/// it was before the failed call, and the counter remains usable.
/// Retrying after freeing memory (or after pool capacity frees) is
/// legitimate.  With a preallocated node pool
/// (WaitListOptions::preallocated_nodes, spec token "pooled[:N]")
/// steady-state Check never allocates and this error cannot occur on
/// pooled levels.
class CounterResourceError : public CounterError {
 public:
  using CounterError::CounterError;
};

/// Thrown by the service-plane client (server/client.hpp) when an I/O
/// deadline expires: the server stopped answering within
/// ClientOptions::io_timeout (or a connect attempt blew past
/// connect_timeout), and the caller opted for a typed error instead of
/// an unbounded hang.  Recoverable — the server may merely be slow;
/// retrying (or enabling the client's retry policy) is legitimate.
/// Monotonicity makes the retry safe: an Increment that DID land
/// before the timeout only moves the value up, so re-arming the same
/// Check or re-sending the same deduplicated Increment cannot
/// double-count or regress.
class CounterTimeoutError : public CounterError {
 public:
  using CounterError::CounterError;
};

/// Thrown by the service-plane client when a reconnect lands on a
/// server running a DIFFERENT epoch (the server restarted and restored
/// its name table from the snapshot) and the caller opted out of
/// transparent re-resolution (RetryPolicy::transparent_reresolve =
/// false).  Every counter id minted under the old epoch is invalid;
/// the caller must re-resolve names before continuing.
class CounterEpochChangedError : public CounterError {
 public:
  CounterEpochChangedError(const std::string& what, std::uint64_t old_epoch,
                           std::uint64_t new_epoch)
      : CounterError(what), old_epoch_(old_epoch), new_epoch_(new_epoch) {}

  std::uint64_t old_epoch() const noexcept { return old_epoch_; }
  std::uint64_t new_epoch() const noexcept { return new_epoch_; }

 private:
  std::uint64_t old_epoch_ = 0;
  std::uint64_t new_epoch_ = 0;
};

/// Thrown by the service-plane client when the server answered
/// kShuttingDown: an ORDERLY drain (SIGTERM / CounterServer::Drain),
/// not a crash.  Distinguishing the two is what keeps a fleet of
/// retrying clients from turning a rolling restart into a retry
/// storm — a shutdown-aware client backs off on a drain grace period
/// instead of hammering the listener the moment it closes.
class CounterShutdownError : public CounterError {
 public:
  using CounterError::CounterError;
};

/// Thrown under OverloadPolicy::kThrow when bounded admission
/// (WaitListOptions::max_waiters / max_levels) turns a waiter away:
/// the wait list is full and this thread was not allowed to park.
/// Recoverable — capacity frees as parked waiters are released or
/// time out.  The other overload policies degrade (kSpinFallback) or
/// backpressure (kBlockIncrementers) instead of throwing.
class CounterOverloadedError : public CounterError {
 public:
  using CounterError::CounterError;
};

/// Normalizes an exception delivered through OnReach's on_error
/// channel to the blocking surface's contract.  The channel carries
/// the producer's ORIGINAL exception when the poison had one
/// (OnReachErrorCallbackDeliversPoisonCause pins that); surfaces built
/// on the channel that promise "poison throws CounterPoisonedError" —
/// check_any, check_sum_at_least, co_await reach() — wrap anything
/// else, keeping the original reachable via cause().
inline std::exception_ptr ensure_poisoned_error(std::exception_ptr ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const CounterPoisonedError&) {
    return ep;
  } catch (...) {
    return std::make_exception_ptr(CounterPoisonedError(
        "counter poisoned while a waiter was registered on it", ep));
  }
}

}  // namespace monotonic
