// counter_error.hpp — the failure-model error taxonomy.
//
// The paper's monotonicity argument (§6) assumes every Increment a
// Check waits on eventually happens.  Production producers crash,
// throw, and get cancelled, so the engine carries a first-class
// failure model (see basic_counter.hpp):
//
//   * Poison(cause)    — freezes the counter at its current value,
//     wakes every parked waiter, and turns every Check above the
//     frozen value into a CounterPoisonedError carrying the producer's
//     original exception;
//   * Check(level, stop_token) — cooperative cancellation: returns
//     false instead of parking forever when the token is triggered;
//   * the stall watchdog (WaitListOptions::stall_report_after) —
//     surfaces a wait-list snapshot when a waiter is stuck past a
//     threshold, instead of a silent hang.
//
// This header holds only the exception type so patterns can build
// their own vocabulary on top (BrokenChannelError is a
// CounterPoisonedError).
#pragma once

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

namespace monotonic {

/// Thrown by Check/CheckFor/CheckUntil on a poisoned counter when the
/// requested level lies above the frozen value — i.e. the Increment
/// this thread was waiting on can never happen.  `cause()` is the
/// exception the producer failed with (null when the counter was
/// poisoned with a bare reason string).
class CounterPoisonedError : public std::runtime_error {
 public:
  explicit CounterPoisonedError(const std::string& what,
                                std::exception_ptr cause = {})
      : std::runtime_error(what), cause_(std::move(cause)) {}

  /// The producer's original exception, if the counter was poisoned
  /// with one; null otherwise.
  const std::exception_ptr& cause() const noexcept { return cause_; }

 private:
  std::exception_ptr cause_;
};

}  // namespace monotonic
