// spin_counter.hpp — lock-free busy-waiting counter.
//
// Increment is a single fetch_add; Check spins (with adaptive backoff)
// on an atomic load.  No kernel suspension at all, so it wins when
// waits are short and cores are plentiful, and loses badly when
// oversubscribed — the crossover is part of the E10 ablation.
#pragma once

#include <atomic>
#include <limits>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"
#include "monotonic/support/spin_wait.hpp"

namespace monotonic {

/// Busy-wait counter.  Monotonic-counter semantics, zero queues (§8's
/// taxonomy breaks down here: waiters poll instead of suspending).
class SpinCounter {
 public:
  SpinCounter() = default;
  SpinCounter(const SpinCounter&) = delete;
  SpinCounter& operator=(const SpinCounter&) = delete;

  void Increment(counter_value_t amount = 1) {
    stats_.on_increment();
    if (amount == 0) return;
    const counter_value_t prev =
        value_.fetch_add(amount, std::memory_order_release);
    MC_REQUIRE(prev <= std::numeric_limits<counter_value_t>::max() - amount,
               "counter value overflow");
  }

  void Check(counter_value_t level) {
    stats_.on_check();
    if (value_.load(std::memory_order_acquire) >= level) {
      stats_.on_fast_check();
      return;
    }
    stats_.on_suspend();
    SpinWait spinner;
    while (value_.load(std::memory_order_acquire) < level) spinner.once();
    stats_.on_resume();
  }

  void Reset() { value_.store(0, std::memory_order_release); }

  counter_value_t debug_value() const {
    return value_.load(std::memory_order_acquire);
  }

  CounterStatsSnapshot stats() const noexcept { return stats_.snapshot(); }
  void stats_reset() noexcept { stats_.reset(); }

 private:
  std::atomic<counter_value_t> value_{0};
  CounterStats stats_;
};

}  // namespace monotonic
