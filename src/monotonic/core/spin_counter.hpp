// spin_counter.hpp — busy-waiting counter.
//
// Lock-free fast paths; a parked thread polls its wait-list node's
// atomic flag (with adaptive backoff) instead of suspending in the
// kernel.  Wins when waits are short and cores are plentiful, loses
// badly when oversubscribed — the crossover is part of the E10
// ablation.  Since the policy-based refactor this is the SpinWait
// instantiation of BasicCounter, so unlike the original fetch-add-only
// version it carries the §7 wait list too (registered waiters, Figure 2
// introspection, timed unlink) — only the *sleeping* is replaced by
// polling.  Full API documentation is on BasicCounter.
#pragma once

#include "monotonic/core/basic_counter.hpp"
#include "monotonic/core/striped_cells.hpp"
#include "monotonic/core/wait_policy.hpp"

namespace monotonic {

/// Busy-wait counter: monotonic-counter semantics, waiters poll
/// instead of suspending.
using SpinCounter = BasicCounter<SpinWait>;

/// Spin waiting with the striped value plane (see striped_cells.hpp):
/// per-stripe increment cells + watermark, polling waiters.
using ShardedSpinCounter = BasicCounter<SpinWait, StripedPlane>;

}  // namespace monotonic
