// shared_segment.hpp — the mapped-memory layout behind SharedCounter.
//
// A cross-process counter cannot share the in-process engine's heap
// structures (wait-list nodes, callback chains, std::mutex), so the
// shared plane is deliberately minimal — exactly the state whose loss
// no single process can be responsible for repairing:
//
//   * the VALUE PLANE is one 64-bit atomic word.  Monotonicity is what
//     makes this safe across processes: an observer can never read a
//     value that later goes back down, so a reader racing a writer sees
//     either "not yet" (and re-checks) or "reached" (final) — there is
//     no torn intermediate state to protect with a lock.
//   * the WAIT PLANE is one 32-bit futex word, bumped after every
//     publish (and on poison / epoch transitions) and woken with the
//     cross-process FUTEX_WAKE.  Parked waiters in every process sleep
//     against a snapshot of it, the same snapshot-then-sleep protocol
//     the in-process FutexWait policy uses (wait_policy.hpp).
//   * the FAILURE PLANE is an epoch word, a poison code, and a table of
//     per-process registration slots {pid, in-flight marker, heartbeat}
//     — everything the death detector (shared_counter.hpp) needs to
//     turn "a participant died mid-protocol" into a poisoned epoch
//     instead of a parked-forever waiter.  Crucially, none of it is
//     state only the dying process could fix: any surviving process can
//     run the sweep, declare the death, and wake everyone.
//
// The header is versioned (magic + layout version) so a process built
// against a different layout refuses to attach instead of corrupting
// the segment, and initialization is published through a ready latch:
// the creator fills the header and release-stores kReady last; openers
// spin (bounded) until they observe it.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

#include "monotonic/support/cache.hpp"
#include "monotonic/support/config.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace monotonic {

/// POSIX shm names: one leading '/', then a non-empty name with no
/// further slashes, at most NAME_MAX (255) characters in total.
inline constexpr std::size_t kSharedNameMax = 255;

/// Registration slots in one segment — the participant cap.  Each slot
/// is a private cache line (a participant hammers its own in-flight
/// marker and heartbeat on every Increment), so the cap is also the
/// segment's dominant size term: 64 slots = 4 KiB of a ~4.5 KiB map.
inline constexpr std::size_t kSharedMaxParticipants = 64;

/// Validates a shared-counter name, throwing std::invalid_argument
/// naming the offending token (the PR 3 spec-error style) on: empty
/// name, missing leading '/', embedded extra '/', or a name longer
/// than NAME_MAX.  Returns the name unchanged so call sites can
/// validate-and-forward in one expression.
inline const std::string& validate_shared_name(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument(
        "shared counter name is empty; use \"/name\" (e.g. shared:/jobs)");
  }
  if (name.front() != '/') {
    throw std::invalid_argument("shared counter name '" + name +
                                "' must start with '/'");
  }
  if (name.size() == 1) {
    throw std::invalid_argument(
        "shared counter name '/' has no name after the slash");
  }
  if (name.find('/', 1) != std::string::npos) {
    throw std::invalid_argument("shared counter name '" + name +
                                "' may contain no '/' beyond the first");
  }
  if (name.size() > kSharedNameMax) {
    throw std::invalid_argument(
        "shared counter name '" + name.substr(0, 32) + "...' is " +
        std::to_string(name.size()) + " characters; NAME_MAX is " +
        std::to_string(kSharedNameMax));
  }
  return name;
}

/// One participant registration: claimed by CAS'ing `pid` from 0, and
/// — the robust-futex idea — *left claimed* by unclean death, which is
/// exactly how the sweep distinguishes a crash from a clean detach.
struct alignas(kCacheLineSize) SharedParticipantSlot {
  /// Owning process id; 0 = free.  A clean detach CASes it back to 0;
  /// a SIGKILL leaves it set for the death detector to find.
  std::atomic<std::uint32_t> pid{0};
  /// Count of Increments between the in-flight raise and clear — the
  /// cross-process analogue of "holding the lock" in a robust futex.
  /// Diagnostic beyond pid-death: any unclean death poisons, but the
  /// report can say the victim died mid-publish.
  std::atomic<std::uint32_t> inflight{0};
  /// CLOCK_MONOTONIC nanosecond stamp of the participant's last
  /// operation (Increment, or a parked waiter's periodic detector
  /// wake).  Comparable across processes on one machine.  Secondary
  /// death signal for pid-reuse: kill(pid,0) cannot see a recycled
  /// pid, a stale heartbeat can (opt-in, SharedCounterOptions).
  std::atomic<std::uint64_t> heartbeat_ns{0};
};

/// Poison codes stored in the segment (a reason string cannot cross
/// the process boundary — there is no shared allocator to own it).
/// Mirrors PoisonCause (counter_error.hpp); kLive is segment-only.
enum : std::uint32_t {
  kSharedLive = 0,
  kSharedPoisonExplicit = 1,
  kSharedPoisonParticipantDied = 2,
};

/// The mapped segment.  Fixed layout, guarded by magic + version.
struct SharedSegmentHeader {
  static constexpr std::uint64_t kMagic = 0x314745535343'4DULL;  // "MCSSEG1"
  static constexpr std::uint32_t kVersion = 1;
  /// init_state latch values.
  enum : std::uint32_t { kInitializing = 0, kReady = 1, kRecovering = 2 };

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  /// Creator/recovery latch: openers wait for kReady (release-stored
  /// after every other field is in place).
  std::atomic<std::uint32_t> init_state{kInitializing};

  /// Generation of the name: 1 on first Create, +1 per recovery.  A
  /// handle records the epoch it joined; observing a different one
  /// means the name was recovered underneath it (kEpochSuperseded).
  std::atomic<std::uint32_t> epoch{0};
  /// kSharedLive, or the poison code of the current epoch.
  std::atomic<std::uint32_t> poison_code{kSharedLive};
  /// Pid whose death poisoned the epoch (diagnostic; 0 = none).
  std::atomic<std::uint32_t> dead_pid{0};
  /// Deaths detected over the segment's whole life (survives
  /// recovery — it is the "how often does this fleet crash" stat).
  std::atomic<std::uint64_t> participant_deaths{0};

  /// The value plane: the counter's monotone value.  Own cache line —
  /// every Increment in every process RMWs it.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> value{0};

  /// The wait plane: the cross-process futex word (generation counter,
  /// bumped on publish/poison/epoch transitions) plus the armed-waiter
  /// count that lets uncontended Increment skip the wake syscall.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> wait_word{0};
  std::atomic<std::uint32_t> waiters{0};

  SharedParticipantSlot slots[kSharedMaxParticipants];
};

// The whole point of the layout is that independent processes operate
// on it with plain atomics: every word must be address-free lock-free,
// and the struct must not acquire members needing real construction.
static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "shared segment atomics must be address-free lock-free");
static_assert(std::is_trivially_destructible_v<SharedSegmentHeader>,
              "the segment is unmapped, never destroyed");

#if !defined(_WIN32)

/// RAII mapping of a named POSIX shm segment sized for one
/// SharedSegmentHeader.  Owns the mapping, NOT the name: unlinking is
/// explicit (SharedCounter::Unlink) so the name outlives any one
/// process, which is the point of a cross-process counter.
class SharedSegment {
 public:
  SharedSegment() = default;

  SharedSegment(SharedSegment&& other) noexcept
      : header_(other.header_), created_(other.created_) {
    other.header_ = nullptr;
  }
  SharedSegment& operator=(SharedSegment&& other) noexcept {
    if (this != &other) {
      unmap();
      header_ = other.header_;
      created_ = other.created_;
      other.header_ = nullptr;
    }
    return *this;
  }
  SharedSegment(const SharedSegment&) = delete;
  SharedSegment& operator=(const SharedSegment&) = delete;

  ~SharedSegment() { unmap(); }

  /// Maps `name`, creating the backing object if `may_create` and it
  /// does not exist.  `created()` reports which path was taken; a
  /// created segment is returned in kInitializing state and the caller
  /// must publish it (fill the header, release-store kReady).
  /// Throws std::invalid_argument on a bad name, std::runtime_error on
  /// OS failures, and std::invalid_argument when `may_create` is false
  /// and the name does not exist.
  static SharedSegment map(const std::string& name, bool may_create) {
    validate_shared_name(name);
    SharedSegment seg;
    int fd = -1;
    if (may_create) {
      // O_EXCL makes creation race-free: exactly one process observes
      // created()==true and owns header initialization; EEXIST losers
      // fall through to the plain-open path below.
      fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      if (fd >= 0) {
        seg.created_ = true;
        if (::ftruncate(fd, sizeof(SharedSegmentHeader)) != 0) {
          ::close(fd);
          ::shm_unlink(name.c_str());
          throw std::runtime_error("shared counter '" + name +
                                   "': ftruncate failed");
        }
      } else if (errno != EEXIST) {
        throw std::runtime_error("shared counter '" + name +
                                 "': shm_open(O_CREAT) failed");
      }
    }
    if (fd < 0) {
      fd = ::shm_open(name.c_str(), O_RDWR, 0600);
      if (fd < 0) {
        throw std::invalid_argument("shared counter '" + name +
                                    "' does not exist" +
                                    (may_create ? "" : "; Create it first"));
      }
    }
    void* mem = ::mmap(nullptr, sizeof(SharedSegmentHeader),
                       PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (mem == MAP_FAILED) {
      throw std::runtime_error("shared counter '" + name + "': mmap failed");
    }
    seg.header_ = static_cast<SharedSegmentHeader*>(mem);
    return seg;
  }

  static void unlink(const std::string& name) {
    validate_shared_name(name);
    ::shm_unlink(name.c_str());  // ENOENT is fine: already gone
  }

  bool created() const noexcept { return created_; }
  SharedSegmentHeader* header() const noexcept { return header_; }
  explicit operator bool() const noexcept { return header_ != nullptr; }

 private:
  void unmap() noexcept {
    if (header_ != nullptr) {
      ::munmap(static_cast<void*>(header_), sizeof(SharedSegmentHeader));
      header_ = nullptr;
    }
  }

  SharedSegmentHeader* header_ = nullptr;
  bool created_ = false;
};

#endif  // !_WIN32

}  // namespace monotonic
