// counter_concept.hpp — the compile-time interface all counter
// implementations share, for generic algorithms and typed tests.
#pragma once

#include <concepts>

#include "monotonic/support/config.hpp"

namespace monotonic {

/// Anything with the paper's two fundamental operations.  The patterns
/// and algos layers are templated on this, so every experiment can be
/// run against every implementation (E10 ablation).
template <typename C>
concept CounterLike = requires(C c, counter_value_t v) {
  { c.Increment(v) };
  { c.Check(v) };
};

}  // namespace monotonic
