// counter_concept.hpp — the compile-time interfaces counter
// implementations share, for generic algorithms, decorators and typed
// tests.  Split in three tiers so a component can demand exactly what
// it uses: the patterns layer mostly needs CounterLike, timed helpers
// need TimedCounterLike, and the Figure-2 tests need
// IntrospectableCounter.
#pragma once

#include <chrono>
#include <concepts>
#include <cstddef>
#include <exception>
#include <functional>
#include <stop_token>

#include "monotonic/core/wait_list.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

namespace detail {

/// Number of value-plane stripes of any counter-like object: its own
/// stripe_count() when it has one, else 1 (unsharded).  Lets the
/// decorators and AnyCounter forward stripe metadata without requiring
/// every CounterLike to grow the accessor.
template <typename C>
std::size_t stripe_count_of(const C& c) noexcept {
  if constexpr (requires {
                  { c.stripe_count() } -> std::convertible_to<std::size_t>;
                }) {
    return c.stripe_count();
  } else {
    return 1;
  }
}

}  // namespace detail

/// Anything with the paper's two fundamental operations.  The patterns
/// and algos layers are templated on this, so every experiment can be
/// run against every implementation (E10 ablation).
template <typename C>
concept CounterLike = requires(C c, counter_value_t v) {
  { c.Increment(v) };
  { c.Check(v) };
};

/// CounterLike plus the timed and asynchronous check extensions.
/// Every BasicCounter instantiation (and every decorator over one)
/// models this since the policy-based refactor.
template <typename C>
concept TimedCounterLike =
    CounterLike<C> &&
    requires(C c, counter_value_t v, std::chrono::milliseconds d,
             std::chrono::steady_clock::time_point tp,
             std::function<void()> fn) {
      { c.CheckFor(v, d) } -> std::convertible_to<bool>;
      { c.CheckUntil(v, tp) } -> std::convertible_to<bool>;
      { c.OnReach(v, fn) };
    };

/// CounterLike plus the failure model (see counter_error.hpp): poison
/// with a cause, observe the poisoned state, and park cancellably.
/// Every BasicCounter instantiation and every shipped decorator models
/// this; the patterns layer (pipeline, broadcast, structured scopes)
/// requires it to unwind instead of hanging when a producer dies.
template <typename C>
concept FailureAwareCounter =
    CounterLike<C> &&
    requires(C c, counter_value_t v, std::exception_ptr ep,
             std::stop_token st) {
      { c.Poison(ep) };
      { c.poisoned() } -> std::convertible_to<bool>;
      { c.Check(v, st) } -> std::convertible_to<bool>;
    };

/// CounterLike plus the predicate-wait surface (see §AutoSynch in
/// docs/semantics.md): park until an arbitrary *monotone* predicate of
/// the value holds, read a conservative lower bound of the value for
/// trigger computation, and register error-aware OnReach callbacks —
/// everything multi.hpp's check_any / check_sum_at_least need.  Every
/// BasicCounter instantiation and every shipped decorator models this.
template <typename C>
concept PredicateCounterLike =
    CounterLike<C> &&
    requires(C c, const C cc, counter_value_t v, std::function<void()> fn,
             std::function<void(std::exception_ptr)> on_error,
             std::function<bool(counter_value_t)> pred) {
      { c.Check(pred) };
      { cc.value_lower_bound() } -> std::convertible_to<counter_value_t>;
      { c.OnReach(v, fn, on_error) };
    };

/// A counter whose internal wait-list structure can be observed — what
/// the Figure 2 reproduction tests and the stats-driven benches demand.
template <typename C>
concept IntrospectableCounter =
    CounterLike<C> && requires(const C c) {
      { c.debug_snapshot() } -> std::convertible_to<CounterDebugSnapshot>;
      { c.debug_value() } -> std::convertible_to<counter_value_t>;
      { c.stats() };
    };

}  // namespace monotonic
