// hybrid_counter.hpp — wait-list counter with a lock-free fast path.
//
// The §7 reference implementation takes a mutex on EVERY operation.
// For §5.3-style streaming, most operations never interact with a
// waiter: the writer increments ahead of the readers, and reader checks
// pass immediately.  HybridCounter makes those cases a single atomic
// operation and falls back to the §7 mutex + wait-list only when
// threads are (or may be) suspended:
//
//   * the value lives in one atomic word, with bit 0 reserved as the
//     attention flag (logical value = word >> 1);
//   * Increment: fetch_add(2).  If the previous word had the flag set,
//     take the mutex and release reached wait nodes;
//   * Check: if the loaded value already covers the level — return,
//     no lock.  Otherwise take the mutex, set the flag, re-check, and
//     park on a per-level node exactly like Counter.
//
// Trade-off vs Counter: Increment must leave the flag set until a
// mutex-holding pass confirms nothing needs attention, so bursts of
// increments during a waiter's residency each pay the lock; and the
// logical value is capped at 2^63-1 (one bit spent on the flag).
//
// Since the policy-based refactor the protocol above lives in
// BasicCounter itself (shared with FutexCounter and SpinCounter);
// HybridCounter is the HybridWait instantiation — lock-free fast paths
// + BlockingWait's per-node condition variables on the slow path.
// Full API documentation is on BasicCounter.
#pragma once

#include "monotonic/core/basic_counter.hpp"
#include "monotonic/core/striped_cells.hpp"
#include "monotonic/core/wait_policy.hpp"

namespace monotonic {

/// Counter with lock-free uncontended paths (production-style hybrid).
using HybridCounter = BasicCounter<HybridWait>;

/// The hybrid with the striped value plane: the producer-scalable
/// default (spec alias "sharded+hybrid", or bare "sharded").  The
/// single atomic word — one cache line all producers fight over — is
/// replaced by per-stripe padded cells plus the lowest-armed-level
/// watermark, so uncontended Increment is one fetch_add on a private
/// line; parked waiters still use the §7 wait list + per-node cvs.
using ShardedHybridCounter = BasicCounter<HybridWait, StripedPlane>;

}  // namespace monotonic
