// hybrid_counter.hpp — wait-list counter with a lock-free fast path.
//
// The §7 reference implementation takes a mutex on EVERY operation.
// For §5.3-style streaming, most operations never interact with a
// waiter: the writer increments ahead of the readers, and reader checks
// pass immediately.  HybridCounter makes those cases a single atomic
// operation and falls back to the §7 mutex + wait-list only when
// threads are (or may be) suspended:
//
//   * the value lives in one atomic word, with bit 0 reserved as the
//     HAS_WAITERS flag (logical value = word >> 1);
//   * Increment: fetch_add(2).  If the previous word had HAS_WAITERS
//     set, take the mutex and release reached wait nodes;
//   * Check: if the loaded value already covers the level — return,
//     no lock.  Otherwise take the mutex, set HAS_WAITERS, re-check,
//     and park on a per-level node exactly like Counter.
//
// The classic lost-wakeup hazard (value rises between the waiter's
// check and its enqueue) is closed by re-reading the value *after*
// setting HAS_WAITERS while holding the mutex: either the racing
// Increment sees the flag (and will take the mutex, which we hold
// first) or the waiter sees the new value (and doesn't sleep).
//
// Trade-off vs Counter: Increment must leave HAS_WAITERS set until a
// mutex-holding pass confirms the list is empty, so bursts of
// increments during a waiter's residency each pay the lock; and the
// logical value is capped at 2^63-1 (one bit spent on the flag).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <limits>
#include <mutex>

#include "monotonic/core/counter_stats.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// Counter with lock-free uncontended paths (production-style hybrid).
class HybridCounter {
 public:
  /// Maximum representable value (bit 0 of the word is the flag).
  static constexpr counter_value_t kMaxValue =
      std::numeric_limits<counter_value_t>::max() >> 1;

  HybridCounter() = default;
  ~HybridCounter();
  HybridCounter(const HybridCounter&) = delete;
  HybridCounter& operator=(const HybridCounter&) = delete;

  void Increment(counter_value_t amount = 1);
  void Check(counter_value_t level);
  void Reset();

  counter_value_t debug_value() const {
    return word_.load(std::memory_order_acquire) >> 1;
  }

  CounterStatsSnapshot stats() const noexcept { return stats_.snapshot(); }
  void stats_reset() noexcept { stats_.reset(); }

 private:
  static constexpr counter_value_t kWaitersBit = 1;

  struct WaitNode {
    counter_value_t level = 0;
    std::size_t waiters = 0;
    bool released = false;
    std::condition_variable cv;
    WaitNode* next = nullptr;
  };

  // Requires m_.  Releases every node whose level is covered and
  // clears the waiters bit when the list empties.
  void release_reached_locked();

  std::atomic<counter_value_t> word_{0};  // (value << 1) | HAS_WAITERS
  std::mutex m_;
  WaitNode* waiting_ = nullptr;  // ascending by level; guarded by m_
  CounterStats stats_;
};

}  // namespace monotonic
