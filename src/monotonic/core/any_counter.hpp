// any_counter.hpp — runtime-polymorphic counter handle.
//
// Benches and examples select an implementation by name on the command
// line; AnyCounter type-erases the four implementations behind one
// virtual interface.  Hot paths in the library itself stay templated on
// CounterLike — this wrapper exists only at harness boundaries.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

enum class CounterKind {
  kList,        ///< Counter — paper §7 wait-list implementation
  kListNoPool,  ///< Counter with the node pool disabled (ablation)
  kSingleCv,    ///< SingleCvCounter — broadcast baseline
  kFutex,       ///< FutexCounter — kernel-queue implementation
  kSpin,        ///< SpinCounter — busy-wait implementation
  kHybrid,      ///< HybridCounter — lock-free fast path + §7 slow path
};

/// Human-readable name ("list", "list-nopool", "single-cv", ...).
std::string_view to_string(CounterKind kind);

/// Parses a kind name; throws std::invalid_argument on unknown names.
CounterKind counter_kind_from_string(std::string_view name);

/// All kinds, in a stable order, for sweeps.
const std::vector<CounterKind>& all_counter_kinds();

/// Type-erased counter.
class AnyCounter {
 public:
  virtual ~AnyCounter() = default;
  virtual void Increment(counter_value_t amount) = 0;
  virtual void Check(counter_value_t level) = 0;
  virtual void Reset() = 0;
  virtual CounterStatsSnapshot stats() const = 0;
  virtual void stats_reset() = 0;
  virtual CounterKind kind() const = 0;
};

/// Creates a counter of the given kind.
std::unique_ptr<AnyCounter> make_counter(CounterKind kind);

namespace detail {

template <typename C, CounterKind K>
class CounterModel final : public AnyCounter {
 public:
  CounterModel() = default;
  template <typename... Args>
  explicit CounterModel(Args&&... args) : impl_(std::forward<Args>(args)...) {}

  void Increment(counter_value_t amount) override { impl_.Increment(amount); }
  void Check(counter_value_t level) override { impl_.Check(level); }
  void Reset() override { impl_.Reset(); }
  CounterStatsSnapshot stats() const override { return impl_.stats(); }
  void stats_reset() override { impl_.stats_reset(); }
  CounterKind kind() const override { return K; }

  C& impl() { return impl_; }

 private:
  C impl_;
};

}  // namespace detail

inline std::string_view to_string(CounterKind kind) {
  switch (kind) {
    case CounterKind::kList:
      return "list";
    case CounterKind::kListNoPool:
      return "list-nopool";
    case CounterKind::kSingleCv:
      return "single-cv";
    case CounterKind::kFutex:
      return "futex";
    case CounterKind::kSpin:
      return "spin";
    case CounterKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

inline CounterKind counter_kind_from_string(std::string_view name) {
  for (CounterKind k : all_counter_kinds()) {
    if (to_string(k) == name) return k;
  }
  MC_REQUIRE(false, "unknown counter kind");
  return CounterKind::kList;  // unreachable
}

inline const std::vector<CounterKind>& all_counter_kinds() {
  static const std::vector<CounterKind> kinds = {
      CounterKind::kList,  CounterKind::kListNoPool, CounterKind::kSingleCv,
      CounterKind::kFutex, CounterKind::kSpin,       CounterKind::kHybrid};
  return kinds;
}

inline std::unique_ptr<AnyCounter> make_counter(CounterKind kind) {
  switch (kind) {
    case CounterKind::kList:
      return std::make_unique<
          detail::CounterModel<Counter, CounterKind::kList>>();
    case CounterKind::kListNoPool: {
      Counter::Options opts;
      opts.pool_nodes = false;
      return std::make_unique<
          detail::CounterModel<Counter, CounterKind::kListNoPool>>(opts);
    }
    case CounterKind::kSingleCv:
      return std::make_unique<
          detail::CounterModel<SingleCvCounter, CounterKind::kSingleCv>>();
    case CounterKind::kFutex:
      return std::make_unique<
          detail::CounterModel<FutexCounter, CounterKind::kFutex>>();
    case CounterKind::kSpin:
      return std::make_unique<
          detail::CounterModel<SpinCounter, CounterKind::kSpin>>();
    case CounterKind::kHybrid:
      return std::make_unique<
          detail::CounterModel<HybridCounter, CounterKind::kHybrid>>();
  }
  MC_REQUIRE(false, "unknown counter kind");
  return nullptr;  // unreachable
}

}  // namespace monotonic
