// any_counter.hpp — runtime-polymorphic counter handle + spec factory.
//
// Benches and examples select an implementation by name on the command
// line; AnyCounter type-erases the implementations behind one virtual
// interface.  Hot paths in the library itself stay templated on
// CounterLike — this wrapper exists only at harness boundaries.
//
// Since the policy-based refactor every implementation supports the
// full BasicCounter surface, so the virtual interface carries the
// timed/async operations and introspection too, and make_counter grew
// a *spec-string* overload for composed decorator stacks:
//
//   spec     := ['sharded'[':'N] '+'] ['pooled'[':'N] '+']
//               base ('+' decorator)*
//   base     := kind (',' key '=' value)*          e.g. "list,pool=0"
//   decorator:= name (',' key '=' value)*          e.g. "batching,batch=64"
//
//   kinds:      list, list-nopool, single-cv, futex, spin, hybrid
//   sharded:    stripes the *value plane* (striped_cells.hpp) under the
//               chosen base; ":N" fixes the stripe count, otherwise it
//               is sized from hardware_concurrency.  Bare "sharded" is
//               shorthand for "sharded+hybrid".
//   pooled:     preallocates N wait nodes (default 64) so Check on a
//               hot level never allocates in steady state; canonical
//               form always prints the count ("pooled:64").  A spec of
//               just "pooled[:N]" is shorthand for "pooled[:N]+hybrid".
//   base opts:  pool=0|1, pool_size=N              (wait-node pooling)
//               max_waiters=N, max_levels=N        (admission bounds;
//               0 = unbounded), overload=throw|spin|block (what an
//               over-cap waiter gets: CounterOverloadedError, the
//               allocation-free degraded wait, or the admission gate),
//               waitplane=list|heap[:S]            (the WaitIndex seam:
//               §7's ordered list, or the sharded hierarchical level
//               index with S level shards, 1..64 — see wait_list.hpp)
//   decorators: traced                             (Tracer events)
//               batching  [batch=N, default 64]    (amortized Increment)
//               broadcast [shards=N, default 4]    (sharded wait lists)
//
// Decorators apply left-to-right, innermost first: "hybrid+traced"
// is Traced<hybrid>; "list+batching,batch=8+traced" is
// Traced<Batching<list>>.  A broadcast decorator rebuilds everything to
// its left once per shard.  spec() returns the canonical form, so
// bench tables are self-describing and specs round-trip.  Malformed
// specs — unknown kinds/decorators, a duplicated decorator, options on
// the wrong component — throw std::invalid_argument naming the bad
// token ("hybrid+traced+traced" → "duplicate decorator 'traced' ...").
#pragma once

#include <chrono>
#include <concepts>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <stop_token>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/counter_error.hpp"
#include "monotonic/core/counter_stats.hpp"
#include "monotonic/core/wait_list.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

enum class CounterKind {
  kList,        ///< Counter — paper §7 wait-list implementation
  kListNoPool,  ///< Counter with the node pool disabled (ablation)
  kSingleCv,    ///< SingleCvCounter — broadcast baseline
  kFutex,       ///< FutexCounter — kernel-queue implementation
  kSpin,        ///< SpinCounter — busy-wait implementation
  kHybrid,      ///< HybridCounter — lock-free fast path + §7 slow path
  /// SharedCounter — cross-process counter in a named shm segment
  /// (shared_counter.hpp).  Spec-only ("shared:/name"): it needs a
  /// name, so it has no bare make_counter(kind) form and is excluded
  /// from all_counter_kinds() sweeps.
  kShared,
};

/// Human-readable name ("list", "list-nopool", "single-cv", ...).
std::string_view to_string(CounterKind kind);

/// Parses a kind name; throws std::invalid_argument on unknown names.
CounterKind counter_kind_from_string(std::string_view name);

/// All kinds, in a stable order, for sweeps.
const std::vector<CounterKind>& all_counter_kinds();

/// Type-erased counter carrying the full BasicCounter surface.
class AnyCounter {
 public:
  virtual ~AnyCounter() = default;
  virtual void Increment(counter_value_t amount) = 0;
  virtual void Check(counter_value_t level) = 0;
  /// Timed Check; true iff the level was reached before the timeout.
  virtual bool CheckFor(counter_value_t level,
                        std::chrono::nanoseconds timeout) = 0;
  /// Cancellable Check; see BasicCounter::Check(level, stop_token).
  virtual bool Check(counter_value_t level, std::stop_token stop) = 0;
  /// Predicate wait: parks until `pred(value)` holds.  The predicate
  /// must be monotone (once true, stays true as the value rises); the
  /// engine reduces it to an exact threshold (basic_counter.hpp).
  /// Named CheckWhen because virtuals cannot be templates; AnyHandle
  /// re-exposes it as Check(pred) to match the concrete counters.
  virtual void CheckWhen(std::function<bool(counter_value_t)> pred) = 0;
  /// Cancellable predicate wait; false iff `stop` fired first.
  virtual bool CheckWhen(std::function<bool(counter_value_t)> pred,
                         std::stop_token stop) = 0;
  /// Monotone lower bound of the value — the sanctioned read for
  /// multi.hpp trigger computation (debug_value is debug-only).
  virtual counter_value_t value_lower_bound() const = 0;
  /// Async Check; see BasicCounter::OnReach for the execution contract.
  virtual void OnReach(counter_value_t level, std::function<void()> fn) = 0;
  /// Async Check with a poison-delivery callback.
  virtual void OnReach(counter_value_t level, std::function<void()> fn,
                       std::function<void(std::exception_ptr)> on_error) = 0;
  /// Failure model; see BasicCounter::Poison / poisoned().
  virtual void Poison(std::exception_ptr cause) = 0;
  virtual bool poisoned() const = 0;
  virtual void Reset() = 0;
  virtual CounterDebugSnapshot debug_snapshot() const = 0;
  virtual counter_value_t debug_value() const = 0;
  virtual CounterStatsSnapshot stats() const = 0;
  virtual void stats_reset() = 0;
  /// Value-plane stripes of the innermost implementation (1 when
  /// unsharded; >1 only for "sharded[:N]+..." specs).
  virtual std::size_t stripe_count() const = 0;
  /// Kind of the innermost (base) implementation.
  virtual CounterKind kind() const = 0;
  /// Canonical spec string ("hybrid+traced"); round-trips through
  /// make_counter(spec).
  virtual const std::string& spec() const = 0;
};

/// Creates an undecorated counter of the given kind.
std::unique_ptr<AnyCounter> make_counter(CounterKind kind);

/// Creates a counter (possibly a decorator stack) from a spec string —
/// see the grammar in the header comment.  Throws std::invalid_argument
/// on malformed specs, unknown kinds/decorators/options.
std::unique_ptr<AnyCounter> make_counter(std::string_view spec);

/// Same, with an ambient completion executor: when the spec does not
/// name an executor itself, the counter delivers its OnReach /
/// predicate completions on `default_executor` instead of inline on
/// the incrementing thread.  An explicit spec token always wins —
/// "executor=pool:N" builds its own pool, "executor=inline" pins
/// inline delivery — and the injected executor never appears in the
/// canonical spec (it is ambient infrastructure, not configuration).
/// This is how one executor drains many counters (the shard server
/// opens millions of logical counters; a pool per counter would be a
/// thread explosion).  "shared:" specs ignore the injection:
/// cross-process counters deliver completions via their own waiter
/// slices.
std::unique_ptr<AnyCounter> make_counter(
    std::string_view spec,
    std::shared_ptr<CompletionExecutor> default_executor);

/// One-line usage string for CLIs (--counter=SPEC help text).
std::string_view counter_spec_help();

/// Owning CounterLike view over a type-erased counter, so the generic
/// decorators (Traced<C>, Batching<C>, Broadcasting<C>) and anything
/// else templated on CounterLike can wrap a runtime-selected stack.
class AnyHandle {
 public:
  explicit AnyHandle(std::unique_ptr<AnyCounter> inner)
      : inner_(std::move(inner)) {
    MC_REQUIRE(inner_ != nullptr, "AnyHandle requires a counter");
  }
  AnyHandle(AnyHandle&&) noexcept = default;
  AnyHandle& operator=(AnyHandle&&) noexcept = default;

  void Increment(counter_value_t amount = 1) { inner_->Increment(amount); }
  void Check(counter_value_t level) { inner_->Check(level); }

  template <typename Rep, typename Period>
  bool CheckFor(counter_value_t level,
                std::chrono::duration<Rep, Period> timeout) {
    return inner_->CheckFor(
        level, std::chrono::duration_cast<std::chrono::nanoseconds>(timeout));
  }

  template <typename Clock, typename Duration>
  bool CheckUntil(counter_value_t level,
                  std::chrono::time_point<Clock, Duration> deadline) {
    const auto remaining = deadline - Clock::now();
    return inner_->CheckFor(
        level, remaining.count() > 0
                   ? std::chrono::duration_cast<std::chrono::nanoseconds>(
                         remaining)
                   : std::chrono::nanoseconds{0});
  }

  bool Check(counter_value_t level, std::stop_token stop) {
    return inner_->Check(level, std::move(stop));
  }

  // Predicate waits, same constraints as BasicCounter's overloads so
  // AnyHandle models PredicateCounterLike.
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  void Check(Pred pred) {
    inner_->CheckWhen(std::function<bool(counter_value_t)>(std::move(pred)));
  }
  template <typename Pred>
    requires(!std::convertible_to<Pred, counter_value_t> &&
             std::predicate<Pred&, counter_value_t>)
  bool Check(Pred pred, std::stop_token stop) {
    return inner_->CheckWhen(
        std::function<bool(counter_value_t)>(std::move(pred)),
        std::move(stop));
  }

  counter_value_t value_lower_bound() const {
    return inner_->value_lower_bound();
  }

  void OnReach(counter_value_t level, std::function<void()> fn,
               std::function<void(std::exception_ptr)> on_error = {}) {
    if (on_error) {
      inner_->OnReach(level, std::move(fn), std::move(on_error));
    } else {
      inner_->OnReach(level, std::move(fn));
    }
  }

  void Poison(std::exception_ptr cause) { inner_->Poison(std::move(cause)); }
  /// Reason-string convenience mirroring BasicCounter::Poison(reason).
  void Poison(std::string_view reason) {
    inner_->Poison(
        std::make_exception_ptr(CounterPoisonedError(std::string(reason))));
  }
  bool poisoned() const { return inner_->poisoned(); }

  void Reset() { inner_->Reset(); }
  CounterDebugSnapshot debug_snapshot() const {
    return inner_->debug_snapshot();
  }
  counter_value_t debug_value() const { return inner_->debug_value(); }
  CounterStatsSnapshot stats() const { return inner_->stats(); }
  void stats_reset() { inner_->stats_reset(); }
  std::size_t stripe_count() const { return inner_->stripe_count(); }
  CounterKind kind() const { return inner_->kind(); }
  const std::string& spec() const { return inner_->spec(); }

  AnyCounter& erased() { return *inner_; }

 private:
  std::unique_ptr<AnyCounter> inner_;
};

namespace detail {

/// Adapts a concrete counter (or decorator stack) to AnyCounter.  Kind
/// and spec are runtime data so one template serves every composition.
template <typename C>
class CounterModel final : public AnyCounter {
 public:
  template <typename... Args>
  CounterModel(CounterKind kind, std::string spec, Args&&... args)
      : kind_(kind),
        spec_(std::move(spec)),
        impl_(std::forward<Args>(args)...) {}

  void Increment(counter_value_t amount) override { impl_.Increment(amount); }
  void Check(counter_value_t level) override { impl_.Check(level); }
  bool CheckFor(counter_value_t level,
                std::chrono::nanoseconds timeout) override {
    return impl_.CheckFor(level, timeout);
  }
  bool Check(counter_value_t level, std::stop_token stop) override {
    return impl_.Check(level, std::move(stop));
  }
  void CheckWhen(std::function<bool(counter_value_t)> pred) override {
    impl_.Check(std::move(pred));
  }
  bool CheckWhen(std::function<bool(counter_value_t)> pred,
                 std::stop_token stop) override {
    return impl_.Check(std::move(pred), std::move(stop));
  }
  counter_value_t value_lower_bound() const override {
    return impl_.value_lower_bound();
  }
  void OnReach(counter_value_t level, std::function<void()> fn) override {
    impl_.OnReach(level, std::move(fn));
  }
  void OnReach(counter_value_t level, std::function<void()> fn,
               std::function<void(std::exception_ptr)> on_error) override {
    impl_.OnReach(level, std::move(fn), std::move(on_error));
  }
  void Poison(std::exception_ptr cause) override {
    impl_.Poison(std::move(cause));
  }
  bool poisoned() const override { return impl_.poisoned(); }
  void Reset() override { impl_.Reset(); }
  CounterDebugSnapshot debug_snapshot() const override {
    return impl_.debug_snapshot();
  }
  counter_value_t debug_value() const override { return impl_.debug_value(); }
  CounterStatsSnapshot stats() const override { return impl_.stats(); }
  void stats_reset() override { impl_.stats_reset(); }
  std::size_t stripe_count() const override {
    return detail::stripe_count_of(impl_);
  }
  CounterKind kind() const override { return kind_; }
  const std::string& spec() const override { return spec_; }

  C& impl() { return impl_; }

 private:
  CounterKind kind_;
  std::string spec_;
  C impl_;
};

}  // namespace detail

}  // namespace monotonic
