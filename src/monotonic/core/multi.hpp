// multi.hpp — waiting on several counters at once.
//
// A pleasant consequence of monotonicity (§6): a conjunction of counter
// conditions can be waited for as a *sequence* of Checks, in any order,
// with no lock-ordering discipline and no possibility of missed
// wakeups — once value_i >= level_i becomes true it stays true, so
// checking one counter can never invalidate another already-checked
// one.  Contrast acquiring multiple locks, where order matters and
// deadlock looms (C++ Core Guidelines CP.21 exists precisely because
// of that).
//
// There is deliberately no check_any: "first counter to reach its
// level" is a race on relative timing, which the no-probe rule (§2)
// excludes from the deterministic core.  A timed check_all_for is
// provided for integration with non-deterministic outer layers.
#pragma once

#include <chrono>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <utility>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// One (counter, level) conjunct for check_all.
template <CounterLike C>
struct CounterCondition {
  C* counter;
  counter_value_t level;
};

/// Suspends until every counter has reached its level.  Order-
/// independent and deadlock-free by monotonicity.
template <CounterLike C>
void check_all(std::span<const CounterCondition<C>> conditions) {
  for (const auto& cond : conditions) cond.counter->Check(cond.level);
}

template <CounterLike C>
void check_all(std::initializer_list<CounterCondition<C>> conditions) {
  for (const auto& cond : conditions) cond.counter->Check(cond.level);
}

/// Both counters up to one level each — the common pairwise case
/// (e.g. §5.1's two-neighbour wait).
template <CounterLike C>
void check_both(C& a, counter_value_t level_a, C& b,
                counter_value_t level_b) {
  a.Check(level_a);
  b.Check(level_b);
}

/// Timed conjunction: true iff every level was reached before the
/// deadline.  On timeout, counters already checked stay satisfied
/// (monotonicity), so retrying is cheap.  Works with any implementation
/// since the policy-based refactor made CheckUntil universal.
template <TimedCounterLike C, typename Rep, typename Period>
bool check_all_for(std::span<const CounterCondition<C>> conditions,
                   std::chrono::duration<Rep, Period> timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (const auto& cond : conditions) {
    if (!cond.counter->CheckUntil(cond.level, deadline)) return false;
  }
  return true;
}

}  // namespace monotonic
