// multi.hpp — waiting on several counters at once.
//
// A pleasant consequence of monotonicity (§6): a conjunction of counter
// conditions can be waited for as a *sequence* of Checks, in any order,
// with no lock-ordering discipline and no possibility of missed
// wakeups — once value_i >= level_i becomes true it stays true, so
// checking one counter can never invalidate another already-checked
// one.  Contrast acquiring multiple locks, where order matters and
// deadlock looms (C++ Core Guidelines CP.21 exists precisely because
// of that).
//
// Disjunctions and threshold sums ride the ENGINE, not a polling loop:
//
//   * check_any registers one OnReach per condition and parks the
//     caller on an internal one-shot gate counter — the first
//     condition to fire increments the gate, so the waiter wakes
//     through the ordinary wait plane (selective wakeup, no probe
//     loop).  "Which condition fired first" is a race on relative
//     timing, so check_any is OUTSIDE the deterministic core (§2's
//     no-probe rule); it exists for integration layers, and its result
//     is the honest name of that nondeterminism.
//
//   * check_sum_at_least waits for value(c_1) + ... + value(c_n) >= k
//     with AutoSynch-style conservative trigger levels: from a stale
//     (monotone, hence safe) lower bound of each value it computes the
//     pigeonhole trigger v_i + ceil(deficit/n) — if the sum ever
//     reaches k, at least one counter must have crossed its trigger —
//     waits for any of those exact levels through the level index, and
//     recomputes on wake.  No broadcast storms, no polling: each round
//     arms n precise levels, and each wake proves the sum grew by at
//     least ceil(deficit/n), so the loop terminates.
//
//   * sum_of(a, b, ...) >= k is expression sugar over
//     check_sum_at_least.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstddef>
#include <limits>
#include <exception>
#include <initializer_list>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_concept.hpp"
#include "monotonic/core/counter_error.hpp"
#include "monotonic/support/assert.hpp"
#include "monotonic/support/config.hpp"

namespace monotonic {

/// One (counter, level) conjunct/disjunct for check_all / check_any.
template <CounterLike C>
struct CounterCondition {
  C* counter;
  counter_value_t level;
};

/// Suspends until every counter has reached its level.  Order-
/// independent and deadlock-free by monotonicity.
template <CounterLike C>
void check_all(std::span<const CounterCondition<C>> conditions) {
  for (const auto& cond : conditions) cond.counter->Check(cond.level);
}

template <CounterLike C>
void check_all(std::initializer_list<CounterCondition<C>> conditions) {
  for (const auto& cond : conditions) cond.counter->Check(cond.level);
}

/// Both counters up to one level each — the common pairwise case
/// (e.g. §5.1's two-neighbour wait).
template <CounterLike C>
void check_both(C& a, counter_value_t level_a, C& b,
                counter_value_t level_b) {
  a.Check(level_a);
  b.Check(level_b);
}

/// Timed conjunction: true iff every level was reached before the
/// deadline.  On timeout, counters already checked stay satisfied
/// (monotonicity), so retrying is cheap.  Works with any implementation
/// since the policy-based refactor made CheckUntil universal.
template <TimedCounterLike C, typename Rep, typename Period>
bool check_all_for(std::span<const CounterCondition<C>> conditions,
                   std::chrono::duration<Rep, Period> timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (const auto& cond : conditions) {
    if (!cond.counter->CheckUntil(cond.level, deadline)) return false;
  }
  return true;
}

namespace detail {

/// Shared between the check_any waiter and the per-condition OnReach
/// callbacks.  shared_ptr lifetime: losing callbacks have no
/// deregistration (the engine's OnReach is permanent) and fire
/// whenever their level is eventually reached — possibly long after
/// the waiter returned — so they must land on live memory.  The
/// residual is bounded: one callback node per non-winning condition.
template <typename Gate>
struct AnyWaitState {
  Gate gate;  ///< one-shot: the winner Increments it to 1
  std::atomic<bool> claimed{false};
  std::size_t winner = 0;
  std::exception_ptr error;

  /// First firer wins; payload is written before the gate Increment,
  /// so the waiter's Check-side synchronization publishes it.
  void fire_reached(std::size_t index) {
    if (claimed.exchange(true, std::memory_order_acq_rel)) return;
    winner = index;
    gate.Increment(1);
  }
  void fire_error(std::exception_ptr ep) {
    if (claimed.exchange(true, std::memory_order_acq_rel)) return;
    error = ensure_poisoned_error(std::move(ep));
    gate.Increment(1);
  }
};

}  // namespace detail

/// Suspends until ANY condition holds; returns the index of the first
/// condition observed to fire.  First event wins — including failure:
/// a condition whose counter is poisoned below its level fires the
/// wait with that counter's CounterPoisonedError (fail-fast, like
/// check_all unwinding on its first poisoned Check).  Conditions whose
/// counters are already at level complete immediately (lowest index
/// wins among them).
///
/// `Gate` is the internal one-shot counter type the caller parks on —
/// the default is fine everywhere except the simulation harness, which
/// passes its own Env's counter so the gate wait is scheduled.
///
/// Determinism note: which index returns depends on timing; check_any
/// is for integration layers, not the §6 deterministic core.
template <typename Gate = Counter, CounterLike C>
std::size_t check_any(std::span<const CounterCondition<C>> conditions) {
  MC_REQUIRE(!conditions.empty(), "check_any of no conditions");
  auto state = std::make_shared<detail::AnyWaitState<Gate>>();
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    conditions[i].counter->OnReach(
        conditions[i].level, [state, i] { state->fire_reached(i); },
        [state](std::exception_ptr ep) { state->fire_error(std::move(ep)); });
  }
  state->gate.Check(1);
  if (state->error) std::rethrow_exception(state->error);
  return state->winner;
}

template <typename Gate = Counter, CounterLike C>
std::size_t check_any(std::initializer_list<CounterCondition<C>> conditions) {
  return check_any<Gate, C>(
      std::span<const CounterCondition<C>>(conditions.begin(),
                                           conditions.size()));
}

/// Suspends until value(c_1) + ... + value(c_n) >= k.  The sum of
/// monotone values is monotone, so this is a monotone predicate over
/// the joint state and inherits the no-lost-wakeup argument — the
/// implementation just has to arm triggers the level index can serve.
///
/// Each round reads a conservative lower bound v_i of every value
/// (stale reads are safe: values only rise), and if the sum is short
/// by d, arms trigger levels t_i = v_i + ceil(d/n).  Pigeonhole: when
/// the true sum reaches k, at least one counter's value has grown by
/// ceil(d/n) past its bound, so at least one trigger fires — waiting
/// for any of them (check_any) cannot miss.  On wake the round
/// recomputes from fresh bounds (the AutoSynch recompute-on-wake
/// discipline).  Progress: every wake proves the sum grew by at least
/// ceil(d/n) >= 1, so the loop terminates in at most k rounds (far
/// fewer in practice — each round closes at least 1/n of the deficit).
///
/// Poison of any constituent counter below its trigger fails the wait
/// with that counter's CounterPoisonedError, unless the frozen sum
/// already satisfies k (checked at the top of each round).
template <typename Gate = Counter, typename C>
  requires CounterLike<C> && requires(const C c) {
    { c.value_lower_bound() } -> std::convertible_to<counter_value_t>;
  }
void check_sum_at_least(std::span<C* const> counters, counter_value_t k) {
  MC_REQUIRE(!counters.empty(), "check_sum_at_least of no counters");
  const counter_value_t n = static_cast<counter_value_t>(counters.size());
  for (;;) {
    std::vector<counter_value_t> bounds;
    bounds.reserve(counters.size());
    counter_value_t sum = 0;
    for (const C* c : counters) {
      const counter_value_t v = c->value_lower_bound();
      bounds.push_back(v);
      sum += v;
    }
    if (sum >= k) return;
    const counter_value_t deficit = k - sum;
    const counter_value_t step = (deficit + n - 1) / n;  // ceil(d/n) >= 1
    std::vector<CounterCondition<C>> triggers;
    triggers.reserve(counters.size());
    for (std::size_t i = 0; i < counters.size(); ++i) {
      // Clamp: a trigger past the representable range can never fire,
      // but by pigeonhole SOME unclamped trigger stays reachable as
      // long as k itself is (Check REQUIREs per-counter range anyway).
      constexpr counter_value_t cap = [] {
        if constexpr (requires { C::kMaxValue; }) {
          return C::kMaxValue;
        } else {
          return std::numeric_limits<counter_value_t>::max() >> 1;
        }
      }();
      const counter_value_t t =
          bounds[i] > cap - step ? cap : bounds[i] + step;
      triggers.push_back(CounterCondition<C>{counters[i], t});
    }
    check_any<Gate, C>(
        std::span<const CounterCondition<C>>(triggers.data(),
                                             triggers.size()));
  }
}

template <typename Gate = Counter, typename C>
  requires CounterLike<C> && requires(const C c) {
    { c.value_lower_bound() } -> std::convertible_to<counter_value_t>;
  }
void check_sum_at_least(std::initializer_list<C*> counters,
                        counter_value_t k) {
  std::vector<C*> v(counters.begin(), counters.end());
  check_sum_at_least<Gate, C>(std::span<C* const>(v.data(), v.size()), k);
}

/// Threshold-expression sugar: `(sum_of(a, b) >= k).wait()` — or pass
/// the expression around as a value first.  Homogeneous counter types
/// only (the conditions must share one engine).
template <typename Gate, typename C>
class SumThreshold {
 public:
  SumThreshold(std::vector<C*> counters, counter_value_t k)
      : counters_(std::move(counters)), k_(k) {}

  /// Blocks until the sum is at least the threshold.
  void wait() const {
    check_sum_at_least<Gate, C>(
        std::span<C* const>(counters_.data(), counters_.size()), k_);
  }

 private:
  std::vector<C*> counters_;
  counter_value_t k_;
};

template <typename Gate, typename C>
class SumExpression {
 public:
  explicit SumExpression(std::vector<C*> counters)
      : counters_(std::move(counters)) {}

  SumThreshold<Gate, C> operator>=(counter_value_t k) const {
    return SumThreshold<Gate, C>(counters_, k);
  }

 private:
  std::vector<C*> counters_;
};

/// `(sum_of(a, b) >= 100).wait()` — wait until a + b reaches 100.
template <typename Gate = Counter, typename C, typename... Rest>
  requires(std::same_as<C, Rest> && ...)
SumExpression<Gate, C> sum_of(C& first, Rest&... rest) {
  return SumExpression<Gate, C>(std::vector<C*>{&first, &rest...});
}

}  // namespace monotonic
