// completion.hpp — the async completion plane: a pluggable executor
// that drains reached-callback work off the incrementer's critical
// path.
//
// The engine's OnReach contract has always been "detach the reached
// chain under the lock, run it outside the lock" — but *outside the
// lock* still meant *on the incrementing thread*.  A slow callback
// (logging, RPC, fsync) therefore stalled the producer even though it
// no longer held the counter lock.  ActiveMonitor (PAPERS.md) calls
// this out: moving monitor executions to dedicated threads buys
// parallelism the synchronization structure already permits.
//
// CompletionExecutor is that seam.  The engine hands it closures (one
// per detached callback chain) via post(); implementations decide
// where they run:
//
//   * no executor (WaitListOptions::completion_executor == nullptr) —
//     inline delivery on the incrementing thread, bit-for-bit the
//     pre-executor semantics;
//   * ThreadPoolExecutor(N) — a fixed pool of worker threads drains a
//     FIFO CompletionQueue, so Increment's cost returns to O(detach)
//     regardless of how slow user callbacks are;
//   * ManualExecutor — tests and the sim pump the queue explicitly,
//     making completion delivery a schedulable event.
//
// Ordering: post() is FIFO per executor, and the engine posts chains
// in reached order, so single-threaded executors preserve the inline
// plane's per-counter callback order.  A multi-threaded pool
// deliberately does not (chains run concurrently); callbacks that need
// mutual exclusion must bring their own, exactly as with concurrent
// Increments today.
//
// This header is standalone — it depends only on the standard library,
// so the awaitable header (and user code) can include it without
// dragging in the engine.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace monotonic {

/// Where detached completion work runs.  Implementations must tolerate
/// post() from arbitrary threads (including from inside a completion
/// already running on the executor).
class CompletionExecutor {
 public:
  virtual ~CompletionExecutor() = default;

  /// Enqueues one unit of completion work.  Must not run `work`
  /// synchronously while the caller could be holding the counter lock
  /// — the engine always posts *after* detaching under the lock, so an
  /// implementation that runs inline (see InlineExecutor) is safe, but
  /// a custom executor must never re-enter the counter that posted to
  /// it from within post() itself unless it is prepared for a
  /// recursive Increment.
  virtual void post(std::function<void()> work) = 0;
};

/// Runs work synchronously inside post() — the explicit spelling of
/// the default (null-executor) inline plane, for code that wants to
/// pass "inline" as an object rather than a nullptr.
class InlineExecutor final : public CompletionExecutor {
 public:
  void post(std::function<void()> work) override { work(); }
};

/// Queue pumped by explicit drain() calls.  Tests and the simulator
/// use this to make completion delivery a schedulable step.
class ManualExecutor final : public CompletionExecutor {
 public:
  void post(std::function<void()> work) override {
    std::lock_guard<std::mutex> lk(m_);
    queue_.push_back(std::move(work));
  }

  /// Runs every queued completion (including ones posted by the work
  /// itself); returns how many ran.
  std::size_t drain() {
    std::size_t ran = 0;
    for (;;) {
      std::function<void()> work;
      {
        std::lock_guard<std::mutex> lk(m_);
        if (queue_.empty()) return ran;
        work = std::move(queue_.front());
        queue_.pop_front();
      }
      work();
      ++ran;
    }
  }

  /// Runs at most one queued completion; false when the queue is empty.
  bool drain_one() {
    std::function<void()> work;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (queue_.empty()) return false;
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    work();
    return true;
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lk(m_);
    return queue_.size();
  }

 private:
  mutable std::mutex m_;
  std::deque<std::function<void()>> queue_;
};

/// Fixed pool of worker threads draining a FIFO queue.  One worker
/// (the default) preserves per-counter callback order; more workers
/// trade order for parallel completion throughput.
///
/// Destruction drains: the destructor stops admission, lets the
/// workers finish everything already queued, then joins — so a counter
/// whose callbacks capture stack state can safely outlive its bursts
/// as long as it outlives the executor (the usual composition is
/// executor declared before counter, destroyed after).
class ThreadPoolExecutor final : public CompletionExecutor {
 public:
  explicit ThreadPoolExecutor(std::size_t threads = 1) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { run(); });
    }
  }

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  ~ThreadPoolExecutor() override {
    {
      std::lock_guard<std::mutex> lk(m_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  void post(std::function<void()> work) override {
    {
      std::lock_guard<std::mutex> lk(m_);
      // Work posted during shutdown (e.g. a completion chaining
      // another) still runs: the workers drain the queue dry before
      // exiting, and post() is only called from threads the owner is
      // responsible for joining first.
      queue_.push_back(std::move(work));
    }
    cv_.notify_one();
  }

  std::size_t worker_count() const noexcept { return workers_.size(); }

 private:
  void run() {
    for (;;) {
      std::function<void()> work;
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ && drained
        work = std::move(queue_.front());
        queue_.pop_front();
      }
      work();
    }
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace monotonic
