// any_counter.cpp — kind names and the spec-string factory.
//
// The recursive builder is the interesting part: every decorator layer
// wraps the layer beneath it through AnyHandle, so the same generic
// templates (Traced<C>, Batching<C>, Broadcasting<C>) serve both
// compile-time composition and runtime spec strings.  A broadcast
// layer re-runs the builder once per shard, giving each shard its own
// private copy of the inner stack.

#include "monotonic/core/any_counter.hpp"

#include <string>
#include <utility>
#include <vector>

#include "monotonic/core/broadcast_counter.hpp"
#include "monotonic/core/counter.hpp"
#include "monotonic/core/counter_decorator.hpp"
#include "monotonic/core/futex_counter.hpp"
#include "monotonic/core/hybrid_counter.hpp"
#include "monotonic/core/spin_counter.hpp"
#include "monotonic/support/trace.hpp"

namespace monotonic {

std::string_view to_string(CounterKind kind) {
  switch (kind) {
    case CounterKind::kList:
      return "list";
    case CounterKind::kListNoPool:
      return "list-nopool";
    case CounterKind::kSingleCv:
      return "single-cv";
    case CounterKind::kFutex:
      return "futex";
    case CounterKind::kSpin:
      return "spin";
    case CounterKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

CounterKind counter_kind_from_string(std::string_view name) {
  for (CounterKind k : all_counter_kinds()) {
    if (to_string(k) == name) return k;
  }
  MC_REQUIRE(false, "unknown counter kind");
  return CounterKind::kList;  // unreachable
}

const std::vector<CounterKind>& all_counter_kinds() {
  static const std::vector<CounterKind> kinds = {
      CounterKind::kList,  CounterKind::kListNoPool, CounterKind::kSingleCv,
      CounterKind::kFutex, CounterKind::kSpin,       CounterKind::kHybrid};
  return kinds;
}

std::string_view counter_spec_help() {
  return "kind[,opt=val...][+decorator[,opt=val...]]... — kinds: list, "
         "list-nopool, single-cv, futex, spin, hybrid; base opts: pool=0|1, "
         "pool_size=N; decorators: traced, batching[,batch=N], "
         "broadcast[,shards=N]";
}

namespace {

struct SpecPart {
  std::string name;
  std::vector<std::pair<std::string, std::string>> options;
};

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<SpecPart> parse_spec(std::string_view spec) {
  std::vector<SpecPart> parts;
  for (const std::string& chunk : split(spec, '+')) {
    const std::vector<std::string> tokens = split(chunk, ',');
    MC_REQUIRE(!tokens.empty() && !tokens.front().empty(),
               "empty component in counter spec");
    SpecPart part;
    part.name = tokens.front();
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::string& tok = tokens[i];
      const std::size_t eq = tok.find('=');
      MC_REQUIRE(eq != std::string::npos && eq > 0 && eq + 1 < tok.size(),
                 "counter spec options must be key=value");
      part.options.emplace_back(trim(tok.substr(0, eq)),
                                trim(tok.substr(eq + 1)));
    }
    parts.push_back(std::move(part));
  }
  return parts;
}

std::uint64_t parse_uint(const std::string& key, const std::string& value) {
  std::uint64_t out = 0;
  MC_REQUIRE(!value.empty(), "counter spec option value must be numeric");
  for (char c : value) {
    MC_REQUIRE(c >= '0' && c <= '9',
               "counter spec option value must be numeric");
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  (void)key;
  return out;
}

struct BaseConfig {
  CounterKind kind;
  WaitListOptions options;
};

BaseConfig parse_base(const SpecPart& part) {
  BaseConfig cfg;
  cfg.kind = counter_kind_from_string(part.name);
  if (cfg.kind == CounterKind::kListNoPool) cfg.options.pool_nodes = false;
  for (const auto& [key, value] : part.options) {
    if (key == "pool") {
      cfg.options.pool_nodes = parse_uint(key, value) != 0;
    } else if (key == "pool_size") {
      cfg.options.max_pool_size = parse_uint(key, value);
    } else {
      MC_REQUIRE(false, "unknown counter option");
    }
  }
  // "list,pool=0" and "list-nopool" are the same configuration; fold to
  // the named kind so canonical specs are unique.
  if (cfg.kind == CounterKind::kList && !cfg.options.pool_nodes) {
    cfg.kind = CounterKind::kListNoPool;
  } else if (cfg.kind == CounterKind::kListNoPool && cfg.options.pool_nodes) {
    cfg.kind = CounterKind::kList;
  }
  return cfg;
}

std::string canonical_base(const BaseConfig& cfg) {
  std::string out{to_string(cfg.kind)};
  const bool default_pool = cfg.kind != CounterKind::kListNoPool;
  if (cfg.options.pool_nodes != default_pool) {
    out += cfg.options.pool_nodes ? ",pool=1" : ",pool=0";
  }
  if (cfg.options.max_pool_size != WaitListOptions{}.max_pool_size) {
    out += ",pool_size=" + std::to_string(cfg.options.max_pool_size);
  }
  return out;
}

std::unique_ptr<AnyCounter> make_base(const BaseConfig& cfg,
                                      std::string spec) {
  using detail::CounterModel;
  switch (cfg.kind) {
    case CounterKind::kList:
    case CounterKind::kListNoPool:
      return std::make_unique<CounterModel<Counter>>(cfg.kind, std::move(spec),
                                                     cfg.options);
    case CounterKind::kSingleCv:
      return std::make_unique<CounterModel<SingleCvCounter>>(
          cfg.kind, std::move(spec), cfg.options);
    case CounterKind::kFutex:
      return std::make_unique<CounterModel<FutexCounter>>(
          cfg.kind, std::move(spec), cfg.options);
    case CounterKind::kSpin:
      return std::make_unique<CounterModel<SpinCounter>>(
          cfg.kind, std::move(spec), cfg.options);
    case CounterKind::kHybrid:
      return std::make_unique<CounterModel<HybridCounter>>(
          cfg.kind, std::move(spec), cfg.options);
  }
  MC_REQUIRE(false, "unknown counter kind");
  return nullptr;  // unreachable
}

/// Builds the base plus the first `layers` decorators of the parsed
/// spec.  `canonical` is the canonical spec up to and including that
/// layer (what the returned counter reports from spec()).
std::unique_ptr<AnyCounter> build_layers(const std::vector<SpecPart>& parts,
                                         const BaseConfig& base,
                                         std::size_t layers);

std::string canonical_layers(const std::vector<SpecPart>& parts,
                             const BaseConfig& base, std::size_t layers) {
  std::string spec = canonical_base(base);
  for (std::size_t i = 1; i <= layers; ++i) {
    const SpecPart& part = parts[i];
    spec += '+';
    if (part.name == "traced") {
      spec += "traced";
    } else if (part.name == "batching") {
      counter_value_t batch = 64;
      for (const auto& [key, value] : part.options) {
        MC_REQUIRE(key == "batch", "unknown batching option");
        batch = parse_uint(key, value);
      }
      spec += batch == 64 ? std::string("batching")
                          : "batching,batch=" + std::to_string(batch);
    } else if (part.name == "broadcast") {
      std::uint64_t shards = Broadcasting<Counter>::kDefaultShards;
      for (const auto& [key, value] : part.options) {
        MC_REQUIRE(key == "shards", "unknown broadcast option");
        shards = parse_uint(key, value);
      }
      spec += shards == Broadcasting<Counter>::kDefaultShards
                  ? std::string("broadcast")
                  : "broadcast,shards=" + std::to_string(shards);
    } else {
      MC_REQUIRE(false, "unknown counter decorator");
    }
  }
  return spec;
}

std::unique_ptr<AnyCounter> build_layers(const std::vector<SpecPart>& parts,
                                         const BaseConfig& base,
                                         std::size_t layers) {
  std::string spec = canonical_layers(parts, base, layers);
  if (layers == 0) return make_base(base, std::move(spec));

  using detail::CounterModel;
  const SpecPart& part = parts[layers];
  if (part.name == "traced") {
    return std::make_unique<CounterModel<Traced<AnyHandle>>>(
        base.kind, std::move(spec), "counter", Tracer::global(), inner_args,
        AnyHandle(build_layers(parts, base, layers - 1)));
  }
  if (part.name == "batching") {
    counter_value_t batch = 64;
    for (const auto& [key, value] : part.options) {
      MC_REQUIRE(key == "batch", "unknown batching option");
      batch = parse_uint(key, value);
    }
    return std::make_unique<CounterModel<Batching<AnyHandle>>>(
        base.kind, std::move(spec), batch, inner_args,
        AnyHandle(build_layers(parts, base, layers - 1)));
  }
  if (part.name == "broadcast") {
    std::uint64_t shards = Broadcasting<Counter>::kDefaultShards;
    for (const auto& [key, value] : part.options) {
      MC_REQUIRE(key == "shards", "unknown broadcast option");
      shards = parse_uint(key, value);
    }
    MC_REQUIRE(shards >= 1, "broadcast requires at least one shard");
    return std::make_unique<CounterModel<Broadcasting<AnyHandle>>>(
        base.kind, std::move(spec), static_cast<std::size_t>(shards),
        [&](std::size_t) {
          return std::make_unique<AnyHandle>(
              build_layers(parts, base, layers - 1));
        });
  }
  MC_REQUIRE(false, "unknown counter decorator");
  return nullptr;  // unreachable
}

}  // namespace

std::unique_ptr<AnyCounter> make_counter(CounterKind kind) {
  BaseConfig cfg;
  cfg.kind = kind;
  if (kind == CounterKind::kListNoPool) cfg.options.pool_nodes = false;
  return make_base(cfg, std::string(to_string(kind)));
}

std::unique_ptr<AnyCounter> make_counter(std::string_view spec) {
  const std::vector<SpecPart> parts = parse_spec(spec);
  const BaseConfig base = parse_base(parts.front());
  return build_layers(parts, base, parts.size() - 1);
}

}  // namespace monotonic
